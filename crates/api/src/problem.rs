//! The resolved search problem handed to every strategy.

use crate::error::ApiError;
use crate::request::OptimizeRequest;
use cme_core::{CacheSpec, CmeModel, EvalEngine, MissEstimate, SamplingConfig};
use cme_ga::GaConfig;
use cme_loopnest::{LoopNest, MemoryLayout, TileSizes};

/// Reject geometries the model cannot represent (non-positive fields, a
/// size that is not a whole number of sets) before they reach arithmetic
/// that would panic or silently truncate. Both session entry points call
/// this.
pub fn validate_cache(cache: &CacheSpec) -> Result<(), ApiError> {
    if cache.size <= 0 || cache.line <= 0 || cache.assoc <= 0 {
        return Err(ApiError::BadRequest(format!(
            "cache geometry must be positive, got {cache:?}"
        )));
    }
    if cache.size % (cache.line * cache.assoc) != 0 {
        return Err(ApiError::BadRequest(format!(
            "cache size {} is not a multiple of line × assoc = {}",
            cache.size,
            cache.line * cache.assoc
        )));
    }
    Ok(())
}

/// An [`OptimizeRequest`] with its nest source resolved and the default
/// layout materialised: the single input type of
/// [`crate::SearchStrategy::search`].
#[derive(Debug, Clone)]
pub struct Problem {
    pub nest: LoopNest,
    /// The unpadded baseline layout (padding strategies derive their own).
    pub layout: MemoryLayout,
    pub cache: CacheSpec,
    pub sampling: SamplingConfig,
    pub ga: GaConfig,
}

impl Problem {
    /// Resolve a request into a concrete problem.
    pub fn from_request(req: &OptimizeRequest) -> Result<Problem, ApiError> {
        let nest = req.nest.resolve()?;
        validate_cache(&req.cache)?;
        let layout = MemoryLayout::contiguous(&nest);
        Ok(Problem { nest, layout, cache: req.cache, sampling: req.sampling, ga: req.ga })
    }

    pub fn model(&self) -> CmeModel {
        CmeModel::new(self.cache)
    }

    /// Build this problem's shared evaluation engine — one per strategy
    /// run; every candidate the search evaluates borrows its precomputed
    /// per-kernel analysis (and its before/after estimates come from the
    /// same state).
    pub fn engine(&self) -> EvalEngine {
        EvalEngine::new(self.model(), &self.nest, &self.layout, self.sampling, self.ga.seed)
    }

    /// CME estimate of this problem's nest under `layout` with an optional
    /// tiling, using the problem's sampling configuration and a seed
    /// derived deterministically from the GA seed and the tile vector.
    pub fn estimate(&self, layout: &MemoryLayout, tiles: Option<&TileSizes>) -> MissEstimate {
        self.model().estimate_nest(&self.nest, layout, tiles, &self.sampling, self.ga.seed)
    }

    /// Estimate of the untransformed nest (the `before` of every outcome).
    pub fn baseline_estimate(&self) -> MissEstimate {
        self.estimate(&self.layout, None)
    }
}
