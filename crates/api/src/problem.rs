//! The resolved search problem handed to every strategy.

use crate::error::ApiError;
use crate::request::{EstimatorSpec, OptimizeRequest};
use cme_core::{
    CacheHierarchy, CacheSpec, CmeModel, Estimator, EstimatorKind, EvalEngine, MissEstimate,
    SamplingConfig, SharedDisplacements,
};
use cme_ga::GaConfig;
use cme_loopnest::{LoopNest, MemoryLayout};

/// Reject hierarchies the model cannot represent — non-positive geometry
/// fields, a size that is not a whole number of sets, or a non-finite /
/// non-positive miss latency on any level — before they reach arithmetic
/// that would panic or silently truncate. Both session entry points call
/// this.
pub fn validate_cache(cache: &CacheHierarchy) -> Result<(), ApiError> {
    cache.validate().map_err(ApiError::BadRequest)
}

/// An [`OptimizeRequest`] with its nest source resolved and the default
/// layout materialised: the single input type of
/// [`crate::SearchStrategy::search`].
#[derive(Debug, Clone)]
pub struct Problem {
    pub nest: LoopNest,
    /// The unpadded baseline layout (padding strategies derive their own).
    pub layout: MemoryLayout,
    /// The cache hierarchy the search optimises for (one legacy level ≡
    /// the paper's single-cache model).
    pub hierarchy: CacheHierarchy,
    pub sampling: SamplingConfig,
    pub ga: GaConfig,
    /// Optional process-wide displacement store every engine built for
    /// this problem consults on local-memo misses ([`Session`] copies its
    /// own handle in). `None` ⇒ fully per-request state; results are
    /// byte-identical either way.
    ///
    /// [`Session`]: crate::Session
    pub displacements: Option<SharedDisplacements>,
    /// Scoring backend candidate transforms are evaluated with (the
    /// request's effective `estimator` field).
    pub estimator: EstimatorSpec,
    /// Error-message context naming where the nest came from (``kernel
    /// `X` `` / ``inline nest `X` ``) — capability rejections lead with
    /// it so the wording stays uniform across sources.
    pub source: String,
}

impl Problem {
    /// Resolve a request into a concrete problem.
    pub fn from_request(req: &OptimizeRequest) -> Result<Problem, ApiError> {
        let nest = req.nest.resolve()?;
        validate_cache(&req.cache)?;
        let layout = MemoryLayout::contiguous(&nest);
        let problem = Problem {
            nest,
            layout,
            hierarchy: req.cache.clone(),
            sampling: req.sampling,
            ga: req.ga,
            displacements: None,
            estimator: req.estimator(),
            source: req.nest.label(),
        };
        // The lattice backend counts whole boxes in closed form; a
        // triangular space would be silently over-counted, so refuse it
        // up front for every strategy rather than per call site.
        if problem.estimator == EstimatorSpec::lattice {
            problem.require_rectangular("`lattice` estimator")?;
        }
        Ok(problem)
    }

    /// Gate for triangular-incapable paths: `Ok` on rectangular nests,
    /// otherwise a [`ApiError::BadRequest`] whose wording follows the
    /// uniform source convention (``kernel `X`: …`` / ``inline nest
    /// `X`: …``) — callers pass the capability name (e.g. "padding
    /// search").
    pub fn require_rectangular(&self, what: &str) -> Result<(), ApiError> {
        if self.nest.is_rectangular() {
            return Ok(());
        }
        Err(ApiError::BadRequest(format!(
            "{}: the {what} supports rectangular loop bounds only, but this nest has affine \
             (triangular) bounds — use the sampled `cme` estimator with the tiling, baseline, \
             oblivious or latency families",
            self.source
        )))
    }

    /// The innermost (L1) geometry — what the single-level baseline
    /// heuristics consume.
    pub fn l1(&self) -> CacheSpec {
        self.hierarchy.l1()
    }

    /// The innermost level's CME model.
    pub fn model(&self) -> CmeModel {
        CmeModel::new(self.l1())
    }

    /// Build this problem's shared evaluation engine — one per strategy
    /// run; every candidate the search evaluates borrows its precomputed
    /// per-kernel, per-level analysis (and its before/after estimates come
    /// from the same state).
    pub fn engine(&self) -> EvalEngine {
        EvalEngine::new_hierarchy_shared(
            &self.hierarchy,
            &self.nest,
            &self.layout,
            self.sampling,
            self.ga.seed,
            self.displacements.as_ref().map(SharedDisplacements::provider),
        )
    }

    /// The engine-side backend selector for this problem's estimator.
    pub fn estimator_kind(&self) -> EstimatorKind {
        match self.estimator {
            EstimatorSpec::cme => EstimatorKind::Cme,
            EstimatorSpec::lattice => EstimatorKind::Lattice,
        }
    }

    /// Build this problem's scoring backend over a prebuilt engine (the
    /// engine outlives the borrowing backend, so callers hold both).
    pub fn backend<'e>(&self, engine: &'e EvalEngine) -> Box<dyn Estimator + 'e> {
        self.estimator_kind().build(engine)
    }

    /// Canonical estimate of the untransformed nest (the `before` of
    /// every outcome) — hierarchy-aware, from a fresh engine and this
    /// problem's estimator backend. Strategies that already hold an
    /// engine use `problem.backend(&engine).estimate_canonical(None)`
    /// directly; this is the standalone convenience form.
    pub fn baseline_estimate(&self) -> MissEstimate {
        let engine = self.engine();
        let before = self.backend(&engine).estimate_canonical(None);
        before
    }
}
