//! Serde-able request types: everything needed to reproduce a search.
//!
//! A request is a *value*: it round-trips losslessly through JSON, so it
//! can be logged, queued, shipped to a service and replayed byte-for-byte
//! (every optimiser in the suite is deterministic for a fixed seed).

use crate::error::ApiError;
use cme_core::{CacheHierarchy, SamplingConfig};
use cme_ga::GaConfig;
use cme_loopnest::{LoopNest, TileSizes};
use serde::{Deserialize, Serialize};

/// Where the loop nest comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NestSource {
    /// A Table 1 kernel by registry name, optionally at an explicit
    /// problem size (`None` ⇒ the kernel's default size).
    Kernel { name: String, size: Option<i64> },
    /// A fully inlined nest specification (the IR is itself serde-able).
    Inline(LoopNest),
}

impl NestSource {
    /// Shorthand for a registry kernel at its default size.
    pub fn kernel(name: impl Into<String>) -> Self {
        NestSource::Kernel { name: name.into(), size: None }
    }

    /// Shorthand for a registry kernel at an explicit size.
    pub fn kernel_sized(name: impl Into<String>, size: i64) -> Self {
        NestSource::Kernel { name: name.into(), size: Some(size) }
    }

    /// Shorthand for an inline nest (validated on [`Self::resolve`], not
    /// here — so a `NestSource` can carry a not-yet-valid nest across the
    /// wire and fail with the full request context).
    pub fn inline(nest: LoopNest) -> Self {
        NestSource::Inline(nest)
    }

    /// The error-message context for this source — ``kernel `X` `` or
    /// ``inline nest `X` `` — which every nest-related rejection leads
    /// with (the convention documented on [`ApiError`]).
    pub fn label(&self) -> String {
        match self {
            NestSource::Kernel { name, .. } => format!("kernel `{name}`"),
            NestSource::Inline(nest) => format!("inline nest `{}`", nest.name),
        }
    }

    /// Build the concrete nest this source describes.
    pub fn resolve(&self) -> Result<LoopNest, ApiError> {
        match self {
            NestSource::Kernel { name, size } => {
                let spec = cme_kernels::kernel_by_name(name)
                    .ok_or_else(|| ApiError::UnknownKernel(name.clone()))?;
                let n = size.unwrap_or(spec.default_size);
                if n < 1 {
                    return Err(ApiError::BadRequest(format!(
                        "kernel `{name}`: size must be ≥ 1, got {n}"
                    )));
                }
                Ok((spec.build)(n))
            }
            NestSource::Inline(nest) => {
                nest.validate().map_err(|e| {
                    ApiError::BadRequest(format!("inline nest `{}`: {e}", nest.name))
                })?;
                Ok(nest.clone())
            }
        }
    }
}

/// Which padding search variant to run (paper §4.3 / Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PaddingMode {
    /// Padding parameters only.
    Pad,
    /// Table 3's sequential pipeline: padding first, then tiling on the
    /// padded layout.
    PadThenTile,
    /// Joint padding + tiling in a single GA (the paper's future work).
    Joint,
}

/// Which §5 related-work heuristic to score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BaselineKind {
    /// Lam/Rothberg/Wolf-style largest non-self-interfering square.
    LrwSquare,
    /// Coleman/McKinley TSS-style Euclidean-sequence selection.
    Tss,
    /// Folklore fixed cache-fraction tiles.
    FixedFraction { fraction: f64 },
}

/// Which scoring backend evaluates candidate transforms — the wire form
/// of the [`cme_core::Estimator`] seam. Lowercase variant names are the
/// wire strings (`"cme"`, `"lattice"`).
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EstimatorSpec {
    /// The paper's sampled CME classifier (§2.3) — the default, and the
    /// backend every golden output is pinned to.
    #[default]
    cme,
    /// Closed-form lattice counting: exact reuse populations, stratified
    /// interference verdicts, no sampling noise.
    lattice,
}

impl EstimatorSpec {
    /// The wire string, which is also [`cme_core::Estimator::name`].
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorSpec::cme => "cme",
            EstimatorSpec::lattice => "lattice",
        }
    }

    /// Parse a wire string (CLI flag values share the wire vocabulary).
    pub fn parse(s: &str) -> Result<Self, ApiError> {
        match s {
            "cme" => Ok(EstimatorSpec::cme),
            "lattice" => Ok(EstimatorSpec::lattice),
            other => Err(ApiError::BadRequest(format!(
                "unknown estimator `{other}` (expected `cme` or `lattice`)"
            ))),
        }
    }
}

/// Which search to run over the transform space — the strategy selector
/// resolved by [`crate::strategy::build_strategy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrategySpec {
    /// §3: GA tile-size search.
    Tiling,
    /// §4.3: GA padding search in one of three modes.
    Padding { mode: PaddingMode },
    /// Extension: legal loop permutations × GA tile search.
    Interchange,
    /// Ground truth: sweep every tile vector (stride `step`), refusing
    /// sweeps above `max_evals` objective evaluations.
    Exhaustive { step: i64, max_evals: u64 },
    /// §5 related-work heuristic, scored by the same estimator.
    Baseline { kind: BaselineKind },
    /// PCOT-style cache-oblivious divide and conquer: derive tiles by
    /// halving the longest legal dimension to a machine-independent base
    /// case. The derivation never reads the request's cache — the
    /// hierarchy only *scores* the result.
    CacheOblivious,
    /// Cashman-style latency-based tiling: probe miss-ratio scaling on a
    /// budgeted shrunk instance through the exact simulator and fit the
    /// knee — O(probes) instead of a GA run.
    LatencyBased,
}

impl StrategySpec {
    /// Stable human-readable identifier (also recorded in the outcome).
    pub fn name(&self) -> String {
        match self {
            StrategySpec::Tiling => "tiling".into(),
            StrategySpec::Padding { mode: PaddingMode::Pad } => "padding".into(),
            StrategySpec::Padding { mode: PaddingMode::PadThenTile } => "padding:then-tile".into(),
            StrategySpec::Padding { mode: PaddingMode::Joint } => "padding:joint".into(),
            StrategySpec::Interchange => "interchange".into(),
            StrategySpec::Exhaustive { .. } => "exhaustive".into(),
            StrategySpec::Baseline { kind: BaselineKind::LrwSquare } => "baseline:lrw".into(),
            StrategySpec::Baseline { kind: BaselineKind::Tss } => "baseline:tss".into(),
            StrategySpec::Baseline { kind: BaselineKind::FixedFraction { .. } } => {
                "baseline:fixed-fraction".into()
            }
            StrategySpec::CacheOblivious => "oblivious".into(),
            StrategySpec::LatencyBased => "latency".into(),
        }
    }

    /// Parse a tournament token (the CLI `--strategies` vocabulary, also
    /// accepted as strings in the wire `strategies` array of a compare
    /// request): `ga`/`tiling`, `oblivious`, `latency`, `interchange`,
    /// `padding[:then-tile|:joint]`, `baseline:lrw|tss|fixed-fraction`,
    /// and `exhaustive` (paper-scale defaults: step 1, 100 000 evals).
    pub fn parse_token(s: &str) -> Result<StrategySpec, ApiError> {
        match s {
            "ga" | "tiling" => Ok(StrategySpec::Tiling),
            "oblivious" | "cache-oblivious" => Ok(StrategySpec::CacheOblivious),
            "latency" | "latency-based" => Ok(StrategySpec::LatencyBased),
            "interchange" => Ok(StrategySpec::Interchange),
            "padding" => Ok(StrategySpec::Padding { mode: PaddingMode::Pad }),
            "padding:then-tile" => Ok(StrategySpec::Padding { mode: PaddingMode::PadThenTile }),
            "padding:joint" => Ok(StrategySpec::Padding { mode: PaddingMode::Joint }),
            "exhaustive" => Ok(StrategySpec::Exhaustive { step: 1, max_evals: 100_000 }),
            "baseline:lrw" => Ok(StrategySpec::Baseline { kind: BaselineKind::LrwSquare }),
            "baseline:tss" => Ok(StrategySpec::Baseline { kind: BaselineKind::Tss }),
            "baseline:fixed-fraction" => {
                Ok(StrategySpec::Baseline { kind: BaselineKind::FixedFraction { fraction: 0.5 } })
            }
            other => Err(ApiError::BadRequest(format!(
                "unknown strategy token `{other}` (expected one of ga, tiling, oblivious, \
                 latency, interchange, padding, padding:then-tile, padding:joint, exhaustive, \
                 baseline:lrw, baseline:tss, baseline:fixed-fraction)"
            ))),
        }
    }
}

/// One complete optimisation request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeRequest {
    pub nest: NestSource,
    /// The cache hierarchy to optimise for. A bare single-level cache
    /// object (`{"size", "line", "assoc"}`) parses as a one-level legacy
    /// hierarchy, and a legacy hierarchy serialises back to the bare
    /// form — the pre-hierarchy wire format is unchanged in both
    /// directions.
    pub cache: CacheHierarchy,
    pub sampling: SamplingConfig,
    /// GA parameters, including the seed every stochastic stage derives
    /// from. Strategies that do not run a GA (exhaustive, baselines) still
    /// use `ga.seed` for their sampling seeds.
    pub ga: GaConfig,
    pub strategy: StrategySpec,
    /// Scoring backend for candidate transforms. Absent ⇒ the sampled
    /// CME classifier — existing requests keep their wire shape (and
    /// therefore their canonical cache keys) unchanged.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub estimator: Option<EstimatorSpec>,
}

impl OptimizeRequest {
    /// A request with the paper's defaults: 8 KB direct-mapped cache,
    /// 164-point sampling, the §3.3 GA configuration.
    pub fn new(nest: NestSource, strategy: StrategySpec) -> Self {
        OptimizeRequest {
            nest,
            cache: CacheHierarchy::single(cme_core::CacheSpec::paper_8k()),
            sampling: SamplingConfig::paper(),
            ga: GaConfig::default(),
            strategy,
            estimator: None,
        }
    }

    /// Select the scoring backend (`None` ⇒ sampled CME, the default).
    pub fn with_estimator(mut self, estimator: EstimatorSpec) -> Self {
        self.estimator = Some(estimator);
        self
    }

    /// The effective scoring backend.
    pub fn estimator(&self) -> EstimatorSpec {
        self.estimator.unwrap_or_default()
    }

    /// Set the cache: accepts a bare [`cme_core::CacheSpec`] (one legacy
    /// level) or a full [`CacheHierarchy`].
    pub fn with_cache(mut self, cache: impl Into<CacheHierarchy>) -> Self {
        self.cache = cache.into();
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.ga.seed = seed;
        self
    }

    pub fn with_sampling(mut self, sampling: SamplingConfig) -> Self {
        self.sampling = sampling;
        self
    }
}

/// A pure analysis request: estimate (or exactly classify) a nest's miss
/// behaviour under an optional explicit tiling — no search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeRequest {
    pub nest: NestSource,
    /// Cache hierarchy to analyse against (same back-compat rule as
    /// [`OptimizeRequest::cache`]: a bare cache object is a one-level
    /// legacy hierarchy).
    pub cache: CacheHierarchy,
    pub sampling: SamplingConfig,
    /// Sampling seed.
    pub seed: u64,
    /// Analyse this tiling instead of the original nest.
    pub tiles: Option<TileSizes>,
    /// Classify every iteration point instead of sampling.
    pub exhaustive: bool,
}

impl AnalyzeRequest {
    pub fn new(nest: NestSource) -> Self {
        AnalyzeRequest {
            nest,
            cache: CacheHierarchy::single(cme_core::CacheSpec::paper_8k()),
            sampling: SamplingConfig::paper(),
            seed: 0xCE11,
            tiles: None,
            exhaustive: false,
        }
    }
}

/// A lint request: run the static dependence analysis and kernel lints
/// over a nest — no miss estimation, no search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintRequest {
    pub nest: NestSource,
    /// Cache hierarchy the footprint lints compare against (same
    /// back-compat rule as [`OptimizeRequest::cache`]: a bare cache
    /// object is a one-level legacy hierarchy).
    pub cache: CacheHierarchy,
}

impl LintRequest {
    /// Lint against the paper's 8 KB direct-mapped cache.
    pub fn new(nest: NestSource) -> Self {
        LintRequest { nest, cache: CacheHierarchy::single(cme_core::CacheSpec::paper_8k()) }
    }

    /// Set the cache: accepts a bare [`cme_core::CacheSpec`] or a full
    /// [`CacheHierarchy`].
    pub fn with_cache(mut self, cache: impl Into<CacheHierarchy>) -> Self {
        self.cache = cache.into();
        self
    }
}

/// A strategy tournament: run several families over one base request and
/// rank them by the shared latency-weighted objective. Every entry is
/// scored by the same estimator against the same canonical `before`, so
/// cross-family gains are directly comparable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareRequest {
    /// The request every family runs: nest, cache, sampling, GA config,
    /// estimator. Its own `strategy` field is ignored — `strategies`
    /// below selects the entrants.
    pub base: OptimizeRequest,
    /// The families to race, in request order (at least one). The serve
    /// layer additionally accepts [`StrategySpec::parse_token`] strings
    /// like `"ga"` / `"oblivious"` in this array.
    pub strategies: Vec<StrategySpec>,
}

impl CompareRequest {
    /// The default tournament: GA tiling vs cache-oblivious vs
    /// latency-based vs the LRW baseline.
    pub fn new(base: OptimizeRequest) -> Self {
        CompareRequest {
            base,
            strategies: vec![
                StrategySpec::Tiling,
                StrategySpec::CacheOblivious,
                StrategySpec::LatencyBased,
                StrategySpec::Baseline { kind: BaselineKind::LrwSquare },
            ],
        }
    }

    /// Replace the line-up (builder style, mirrors the other requests).
    pub fn with_strategies(mut self, strategies: Vec<StrategySpec>) -> Self {
        self.strategies = strategies;
        self
    }

    /// The per-family optimize request for entrant `k`.
    pub fn entrant(&self, k: usize) -> OptimizeRequest {
        OptimizeRequest { strategy: self.strategies[k].clone(), ..self.base.clone() }
    }
}
