#![forbid(unsafe_code)]
//! `cme-api` — the unified request/outcome layer over every optimiser in
//! the suite.
//!
//! The paper's contribution is one idea — minimise CME-predicted
//! replacement misses over a transform space — but the underlying crates
//! grew four differently-shaped entry points (tiling, padding,
//! interchange, exhaustive/baseline sweeps). This crate redesigns the
//! public surface around three pieces:
//!
//! * **Requests** ([`OptimizeRequest`], [`AnalyzeRequest`]): plain values
//!   that round-trip losslessly through JSON. A request carries its nest
//!   (registry kernel or inline IR), cache geometry, sampling
//!   configuration, GA parameters (including the seed) and a
//!   [`StrategySpec`] selector — everything needed to reproduce a search
//!   bit-for-bit.
//! * **Strategies** ([`SearchStrategy`]): one trait,
//!   `search(&Problem) -> Result<Outcome, ApiError>`, with adapters for
//!   all five search families. New strategies plug in without touching
//!   callers.
//! * **Sessions** ([`Session`]): the execution seam. `run` for one
//!   request, `run_batch` for a rayon-parallel batch with
//!   order-preserving, bit-deterministic results — the interface a
//!   service layer binds to.
//!
//! ```
//! use cme_api::{NestSource, OptimizeRequest, Session, StrategySpec};
//! use cme_api::cme::CacheSpec;
//!
//! let req = OptimizeRequest::new(
//!     NestSource::kernel_sized("MM", 64),
//!     StrategySpec::Tiling,
//! )
//! .with_cache(CacheSpec::direct_mapped(1024, 32))
//! .with_seed(7);
//!
//! // Requests are values: they survive the wire.
//! let wire = serde_json::to_string(&req).unwrap();
//! let back: OptimizeRequest = serde_json::from_str(&wire).unwrap();
//! assert_eq!(req, back);
//!
//! let outcome = Session::default().run(&back).unwrap();
//! assert_eq!(outcome.strategy, "tiling");
//! assert!(outcome.after.replacement_ratio() <= outcome.before.replacement_ratio());
//! ```

pub mod error;
pub mod outcome;
pub mod problem;
pub mod request;
pub mod session;
pub mod strategy;

pub use error::ApiError;
pub use outcome::{AnalyzeOutcome, CompareEntry, CompareOutcome, LintOutcome, Outcome, Transform};
pub use problem::validate_cache;
pub use problem::Problem;
pub use request::{
    AnalyzeRequest, BaselineKind, CompareRequest, EstimatorSpec, LintRequest, NestSource,
    OptimizeRequest, PaddingMode, StrategySpec,
};
pub use session::{Session, SessionBuilder};
pub use strategy::{build_strategy, SearchStrategy};

// Re-exported so API consumers can name every type a request or outcome
// embeds without depending on the whole workspace.
pub use cme_analysis::{Diagnostic, LegalitySummary, Severity};
pub use cme_core as cme;
pub use cme_core::{CacheHierarchy, CacheLevel};
pub use cme_ga::GaConfig;
pub use cme_loopnest::TileSizes;
pub use cme_tileopt::problem::GaSummary;

#[cfg(test)]
mod tests {
    use super::*;
    use cme_core::CacheSpec;

    fn tiny_request(strategy: StrategySpec) -> OptimizeRequest {
        OptimizeRequest::new(NestSource::kernel_sized("T2D", 32), strategy)
            .with_cache(CacheSpec::direct_mapped(1024, 32))
            .with_seed(11)
    }

    #[test]
    fn unknown_kernel_is_reported() {
        let req = OptimizeRequest::new(NestSource::kernel("NOPE"), StrategySpec::Tiling);
        match Session::default().run(&req) {
            Err(ApiError::UnknownKernel(name)) => assert_eq!(name, "NOPE"),
            other => panic!("expected UnknownKernel, got {other:?}"),
        }
    }

    #[test]
    fn nest_error_wording_is_uniform_across_sources() {
        // Both source kinds lead with their context (`kernel `X`` /
        // `inline nest `X``), and reference-level failures name the
        // reference index and array the same way — clients can show these
        // verbatim regardless of where the nest came from.
        let unknown = NestSource::kernel("NOPE").resolve().unwrap_err();
        assert!(unknown.to_string().starts_with("kernel `NOPE`: "), "got: {unknown}");

        let bad_size = NestSource::kernel_sized("MM", 0).resolve().unwrap_err();
        assert!(bad_size.to_string().starts_with("bad request: kernel `MM`: "), "got: {bad_size}");

        let mut nest = cme_kernels::kernel_by_name("T2D").unwrap().build_default();
        nest.refs[1].subscripts[0] = nest.refs[1].subscripts[0].shift(10_000);
        let name = nest.name.clone();
        let inline = NestSource::inline(nest).resolve().unwrap_err();
        let msg = inline.to_string();
        assert!(
            msg.starts_with(&format!("bad request: inline nest `{name}`: ref 1 (`")),
            "got: {msg}"
        );
    }

    fn triangular_inline() -> cme_loopnest::LoopNest {
        use cme_loopnest::builder::{sub, sub_const, NestBuilder};
        let mut nb = NestBuilder::new("tri");
        let i = nb.add_loop("i", 1, 16);
        let j = nb.add_loop_bounds("j", sub_const(1), sub(i));
        let a = nb.array("a", &[16, 16]);
        nb.write(a, &[sub(i), sub(j)]);
        nb.finish().unwrap()
    }

    #[test]
    fn triangular_incapable_paths_reject_uniformly() {
        // Every path that cannot handle a non-rectangular iteration
        // space answers a structured BadRequest (a 400 at the serve
        // layer) whose wording leads with the source context — never a
        // panic, never a silent hull-based answer.
        let nest = triangular_inline();
        let incapable = [
            StrategySpec::Padding { mode: PaddingMode::Pad },
            StrategySpec::Padding { mode: PaddingMode::PadThenTile },
            StrategySpec::Padding { mode: PaddingMode::Joint },
            StrategySpec::Interchange,
            StrategySpec::Exhaustive { step: 1, max_evals: 100_000 },
        ];
        for spec in incapable {
            let req = OptimizeRequest::new(NestSource::inline(nest.clone()), spec.clone())
                .with_cache(CacheSpec::direct_mapped(1024, 32));
            match Session::default().run(&req) {
                Err(ApiError::BadRequest(msg)) => {
                    assert!(msg.starts_with("inline nest `tri`: "), "{spec:?}: {msg}");
                    assert!(msg.contains("rectangular loop bounds only"), "{spec:?}: {msg}");
                }
                other => panic!("{spec:?}: expected BadRequest, got {other:?}"),
            }
        }
        // The lattice estimator is refused regardless of strategy.
        let req = OptimizeRequest::new(NestSource::inline(nest.clone()), StrategySpec::Tiling)
            .with_cache(CacheSpec::direct_mapped(1024, 32))
            .with_estimator(EstimatorSpec::lattice);
        match Session::default().run(&req) {
            Err(ApiError::BadRequest(msg)) => {
                assert!(msg.starts_with("inline nest `tri`: "), "{msg}");
                assert!(msg.contains("`lattice` estimator"), "{msg}");
            }
            other => panic!("expected BadRequest, got {other:?}"),
        }
        // Registry-sourced triangular nests lead with the kernel context,
        // matching `nest_error_wording_is_uniform_across_sources`.
        let req = OptimizeRequest::new(
            NestSource::kernel_sized("TRSOLVE", 24),
            StrategySpec::Interchange,
        )
        .with_cache(CacheSpec::direct_mapped(1024, 32));
        match Session::default().run(&req) {
            Err(ApiError::BadRequest(msg)) => {
                assert!(msg.starts_with("kernel `TRSOLVE`: "), "{msg}");
                assert!(msg.contains("rectangular loop bounds only"), "{msg}");
            }
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn triangular_capable_families_still_run() {
        // The sampled estimator and the non-gated families handle the
        // triangular space end to end.
        for spec in [
            StrategySpec::Tiling,
            StrategySpec::CacheOblivious,
            StrategySpec::LatencyBased,
            StrategySpec::Baseline { kind: BaselineKind::LrwSquare },
        ] {
            let req = OptimizeRequest::new(NestSource::inline(triangular_inline()), spec.clone())
                .with_cache(CacheSpec::direct_mapped(1024, 32))
                .with_seed(3);
            let out = Session::default().run(&req).unwrap();
            assert!(
                out.after.replacement_ratio() <= out.before.replacement_ratio() + 1e-9,
                "{spec:?} must not hurt the triangular nest"
            );
        }
    }

    #[test]
    fn bad_cache_is_rejected() {
        let mut req = tiny_request(StrategySpec::Tiling);
        req.cache = CacheSpec { size: 100, line: 32, assoc: 1 }.into();
        assert!(matches!(Session::default().run(&req), Err(ApiError::BadRequest(_))));
    }

    #[test]
    fn analyze_rejects_bad_cache_too() {
        // Both session entry points share the geometry validation; a zero
        // line size would otherwise divide by zero inside the model.
        for cache in
            [CacheSpec { size: 0, line: 32, assoc: 1 }, CacheSpec { size: 100, line: 32, assoc: 1 }]
        {
            let mut req = AnalyzeRequest::new(NestSource::kernel_sized("T2D", 16));
            req.cache = cache.into();
            assert!(matches!(Session::default().analyze(&req), Err(ApiError::BadRequest(_))));
        }
    }

    #[test]
    fn oversized_exhaustive_is_refused_not_paniced() {
        let req = tiny_request(StrategySpec::Exhaustive { step: 1, max_evals: 10 });
        assert!(matches!(Session::default().run(&req), Err(ApiError::TooLarge(_))));
    }

    #[test]
    fn baseline_fraction_is_validated() {
        let req = tiny_request(StrategySpec::Baseline {
            kind: BaselineKind::FixedFraction { fraction: 0.0 },
        });
        assert!(matches!(Session::default().run(&req), Err(ApiError::BadRequest(_))));
    }

    #[test]
    fn tiling_outcome_reduces_transpose_misses() {
        let out = Session::default().run(&tiny_request(StrategySpec::Tiling)).unwrap();
        assert_eq!(out.kernel, "T2D_32");
        assert!(out.transform.tiles.is_some());
        assert!(out.ga.is_some());
        assert!(out.replacement_gain() > 0.0, "tiling must help a thrashing transpose");
    }

    #[test]
    fn without_timing_is_the_canonical_comparison_form() {
        // Two runs of one deterministic request may legitimately differ
        // only in `wall_ms`; structural equality is therefore defined on
        // the timing-stripped form (this is also what the service-layer
        // outcome cache stores and compares).
        let out = Session::default().run(&tiny_request(StrategySpec::Tiling)).unwrap();
        let mut rerun = out.clone();
        rerun.wall_ms = out.wall_ms + 5;
        assert_ne!(out, rerun, "raw outcomes embed wall-clock time");
        assert_eq!(out.without_timing(), rerun.without_timing());
        assert_eq!(out.without_timing().wall_ms, 0);
    }

    #[test]
    fn outcomes_carry_the_legality_digest() {
        let out = Session::default().run(&tiny_request(StrategySpec::Tiling)).unwrap();
        let legality = out.legality.as_ref().expect("Session::run stamps legality");
        assert!(legality.rectangular_tiling, "T2D is fully permutable");
        assert_eq!(legality.carried_dependences, 0);
        assert!(!legality.budget_exhausted);
        // The digest is part of the wire format and round-trips.
        let wire = serde_json::to_string(&out).unwrap();
        let back: Outcome = serde_json::from_str(&wire).unwrap();
        assert_eq!(out.without_timing(), back.without_timing());
    }

    #[test]
    fn lint_finds_transpose_reuse_hazard() {
        let req = LintRequest::new(NestSource::kernel_sized("T2D", 64));
        let out = Session::default().lint(&req).unwrap();
        assert_eq!(out.kernel, "T2D_64");
        assert!(out.legality.rectangular_tiling);
        // T2D's read `b(i,j)` streams along j while `a` is column-major:
        // the read has no reuse in the innermost loop.
        assert!(
            out.diagnostics.iter().any(|d| d.code == "no-reuse"),
            "expected a no-reuse diagnostic, got {:?}",
            out.diagnostics
        );
        // Lint outcomes round-trip and compare timing-stripped.
        let wire = serde_json::to_string(&out).unwrap();
        let back: LintOutcome = serde_json::from_str(&wire).unwrap();
        assert_eq!(out.without_timing(), back.without_timing());
    }

    #[test]
    fn lint_validates_inputs_like_the_other_entry_points() {
        let mut req = LintRequest::new(NestSource::kernel("T2D"));
        req.cache = CacheSpec { size: 100, line: 32, assoc: 1 }.into();
        assert!(matches!(Session::default().lint(&req), Err(ApiError::BadRequest(_))));
        let req = LintRequest::new(NestSource::kernel("NOPE"));
        assert!(matches!(Session::default().lint(&req), Err(ApiError::UnknownKernel(_))));
    }

    #[test]
    fn strategy_names_are_stable() {
        // These identifiers appear in serialised outcomes; changing them
        // is a wire-format break.
        assert_eq!(StrategySpec::Tiling.name(), "tiling");
        assert_eq!(StrategySpec::Padding { mode: PaddingMode::Pad }.name(), "padding");
        assert_eq!(
            StrategySpec::Padding { mode: PaddingMode::PadThenTile }.name(),
            "padding:then-tile"
        );
        assert_eq!(StrategySpec::Padding { mode: PaddingMode::Joint }.name(), "padding:joint");
        assert_eq!(StrategySpec::Interchange.name(), "interchange");
        assert_eq!(StrategySpec::Exhaustive { step: 1, max_evals: 1 }.name(), "exhaustive");
        assert_eq!(StrategySpec::Baseline { kind: BaselineKind::LrwSquare }.name(), "baseline:lrw");
        assert_eq!(StrategySpec::CacheOblivious.name(), "oblivious");
        assert_eq!(StrategySpec::LatencyBased.name(), "latency");
    }

    #[test]
    fn strategy_tokens_parse_to_the_expected_specs() {
        // CLI/HTTP token spellings; `name()` of the parsed spec matches
        // the canonical token so round-trips are stable.
        for (token, expect) in [
            ("ga", StrategySpec::Tiling),
            ("tiling", StrategySpec::Tiling),
            ("oblivious", StrategySpec::CacheOblivious),
            ("cache-oblivious", StrategySpec::CacheOblivious),
            ("latency", StrategySpec::LatencyBased),
            ("latency-based", StrategySpec::LatencyBased),
            ("interchange", StrategySpec::Interchange),
            ("padding", StrategySpec::Padding { mode: PaddingMode::Pad }),
            ("baseline:lrw", StrategySpec::Baseline { kind: BaselineKind::LrwSquare }),
            ("baseline:tss", StrategySpec::Baseline { kind: BaselineKind::Tss }),
        ] {
            assert_eq!(StrategySpec::parse_token(token).unwrap(), expect, "token {token}");
        }
        let err = StrategySpec::parse_token("nope").unwrap_err();
        assert!(matches!(err, ApiError::BadRequest(_)), "got {err:?}");
        assert!(err.to_string().contains("nope"), "error names the bad token: {err}");
    }

    #[test]
    fn compare_ranks_families_over_one_shared_baseline() {
        let base = tiny_request(StrategySpec::Tiling);
        let req = CompareRequest::new(base.clone()).with_strategies(vec![
            StrategySpec::Baseline { kind: BaselineKind::LrwSquare },
            StrategySpec::Tiling,
            StrategySpec::CacheOblivious,
            StrategySpec::LatencyBased,
        ]);
        let out = Session::default().compare(&req).unwrap();
        assert_eq!(out.kernel, "T2D_32");
        assert_eq!(out.entries.len(), 4);
        // Ranked ascending by the spelled-out key, key matches the outcome.
        for pair in out.entries.windows(2) {
            assert!(pair[0].weighted_cost <= pair[1].weighted_cost);
        }
        for entry in &out.entries {
            assert_eq!(entry.weighted_cost, entry.outcome.after.weighted_cost());
            // One canonical baseline: every family reports the same `before`.
            let shared = serde_json::to_string(&out.entries[0].outcome.before).unwrap();
            assert_eq!(serde_json::to_string(&entry.outcome.before).unwrap(), shared);
        }
        // Winner indexes the *request* line-up and names the best entry.
        assert_eq!(
            req.strategies[out.winner].name(),
            out.best().outcome.strategy,
            "winner must point at entries[0]'s family"
        );
        // Tournament equals sequential runs, modulo timing.
        for (k, spec) in req.strategies.iter().enumerate() {
            let solo = Session::default().run(&req.entrant(k)).unwrap();
            let entry = out
                .entries
                .iter()
                .find(|e| e.outcome.strategy == spec.name())
                .expect("every family appears in the ranking");
            assert_eq!(solo.without_timing(), entry.outcome.without_timing());
        }
    }

    #[test]
    fn compare_with_no_strategies_is_rejected() {
        let req =
            CompareRequest::new(tiny_request(StrategySpec::Tiling)).with_strategies(Vec::new());
        assert!(matches!(Session::default().compare(&req), Err(ApiError::BadRequest(_))));
    }

    #[test]
    fn estimator_field_is_absent_by_default_on_the_wire() {
        // Requests that don't pick a backend keep their pre-estimator
        // wire shape byte-for-byte — goldens and cache keys unchanged.
        let req = tiny_request(StrategySpec::Tiling);
        let wire = serde_json::to_string(&req).unwrap();
        assert!(!wire.contains("estimator"), "default wire form must omit the field: {wire}");
        let back: OptimizeRequest = serde_json::from_str(&wire).unwrap();
        assert_eq!(back.estimator, None);
        assert_eq!(back.estimator(), EstimatorSpec::cme);

        let lat = tiny_request(StrategySpec::Tiling).with_estimator(EstimatorSpec::lattice);
        let wire = serde_json::to_string(&lat).unwrap();
        assert!(wire.contains("\"estimator\":\"lattice\""), "got: {wire}");
        let back: OptimizeRequest = serde_json::from_str(&wire).unwrap();
        assert_eq!(back, lat);

        assert!(EstimatorSpec::parse("nope").is_err());
        assert_eq!(EstimatorSpec::parse("cme").unwrap(), EstimatorSpec::cme);
        assert_eq!(EstimatorSpec::parse("lattice").unwrap(), EstimatorSpec::lattice);
    }

    #[test]
    fn lattice_estimator_runs_the_searches() {
        // The exact backend drives the same GA machinery; runs are
        // deterministic and improve on the untiled baseline.
        for strategy in [
            StrategySpec::Tiling,
            StrategySpec::Baseline { kind: BaselineKind::LrwSquare },
            StrategySpec::Exhaustive { step: 8, max_evals: 100 },
        ] {
            let req = tiny_request(strategy.clone()).with_estimator(EstimatorSpec::lattice);
            let out = Session::default().run(&req).unwrap();
            let rerun = Session::default().run(&req).unwrap();
            assert_eq!(out.without_timing(), rerun.without_timing(), "{strategy:?}");
            assert!(
                out.after.replacement_ratio() <= out.before.replacement_ratio(),
                "{strategy:?}: lattice-scored transform must not hurt: {} -> {}",
                out.before.replacement_ratio(),
                out.after.replacement_ratio()
            );
        }
    }

    #[test]
    fn padding_rejects_the_lattice_estimator() {
        // Padding scores candidate *layouts*, which only the sampled
        // classifier can address-remap — requesting lattice is an error,
        // not a silent fallback.
        for mode in [PaddingMode::Pad, PaddingMode::PadThenTile, PaddingMode::Joint] {
            let req =
                tiny_request(StrategySpec::Padding { mode }).with_estimator(EstimatorSpec::lattice);
            match Session::default().run(&req) {
                Err(ApiError::BadRequest(msg)) => {
                    assert!(msg.contains("estimator"), "got: {msg}")
                }
                other => panic!("expected BadRequest, got {other:?}"),
            }
        }
    }
}
