//! The polymorphic search-strategy layer: one trait, seven families.
//!
//! Every optimiser in the suite — §3 GA tiling, §4.3 GA padding (plain,
//! then-tile, joint), the interchange extension, the exhaustive oracle,
//! the §5 related-work baselines, the PCOT-style cache-oblivious
//! derivation and Cashman-style latency-based probing — is adapted here
//! to one signature over
//! one problem type, returning one outcome type. Search strategy becomes a
//! *value* (see [`StrategySpec`]): serialisable, selectable per request,
//! and open for extension by implementing [`SearchStrategy`] downstream.

use crate::error::ApiError;
use crate::outcome::{Outcome, Transform};
use crate::problem::Problem;
use crate::request::{BaselineKind, PaddingMode, StrategySpec};
use cme_analysis::rectangular_tiling_legality;
use cme_loopnest::deps::TilingLegality;
use cme_loopnest::TileSizes;
use cme_tileopt::problem::GaSummary;
use cme_tileopt::{
    baselines, exhaustive_search_on, optimize_with_interchange, PaddingOptimizer, TilingOptimizer,
};
use std::time::Instant;

/// A search over the transform space of a [`Problem`], minimising
/// CME-predicted replacement misses.
pub trait SearchStrategy: Sync {
    /// Stable identifier recorded in [`Outcome::strategy`].
    fn name(&self) -> String;

    /// Run the search.
    fn search(&self, problem: &Problem) -> Result<Outcome, ApiError>;
}

/// Resolve a serialisable strategy selector into a runnable strategy.
pub fn build_strategy(spec: &StrategySpec) -> Box<dyn SearchStrategy> {
    match spec {
        StrategySpec::Tiling => Box::new(TilingStrategy),
        StrategySpec::Padding { mode } => Box::new(PaddingStrategy { mode: *mode }),
        StrategySpec::Interchange => Box::new(InterchangeStrategy),
        StrategySpec::Exhaustive { step, max_evals } => {
            Box::new(ExhaustiveStrategy { step: *step, max_evals: *max_evals })
        }
        StrategySpec::Baseline { kind } => Box::new(BaselineStrategy { kind: *kind }),
        StrategySpec::CacheOblivious => Box::new(CacheObliviousStrategy),
        StrategySpec::LatencyBased => Box::new(LatencyBasedStrategy),
    }
}

/// Common outcome scaffolding: stamps identity, timing and telemetry.
struct OutcomeBuilder<'a> {
    problem: &'a Problem,
    strategy: String,
    started: Instant,
}

impl<'a> OutcomeBuilder<'a> {
    fn new(strategy: &dyn SearchStrategy, problem: &'a Problem) -> Self {
        OutcomeBuilder { problem, strategy: strategy.name(), started: Instant::now() }
    }

    fn finish(
        self,
        transform: Transform,
        before: cme_core::MissEstimate,
        after: cme_core::MissEstimate,
        ga: Option<GaSummary>,
        explored: Option<u64>,
    ) -> Outcome {
        Outcome {
            strategy: self.strategy,
            kernel: self.problem.nest.name.clone(),
            cache: self.problem.hierarchy.clone(),
            transform,
            before,
            after,
            ga,
            explored,
            legality: None,
            wall_ms: self.started.elapsed().as_millis() as u64,
        }
    }
}

fn tiling_optimizer(problem: &Problem) -> TilingOptimizer {
    TilingOptimizer {
        hierarchy: problem.hierarchy.clone(),
        sampling: problem.sampling,
        ga: problem.ga,
        provider: problem.displacements.clone(),
        estimator: problem.estimator_kind(),
    }
}

/// Padding searches score candidate *layouts*, whose address remap lives
/// in the sampled classifier; the lattice backend counts the base layout
/// only, so requesting it is a usage error, not a silent fallback.
fn require_sampled_estimator(problem: &Problem, what: &str) -> Result<(), ApiError> {
    match problem.estimator {
        crate::request::EstimatorSpec::cme => Ok(()),
        other => Err(ApiError::BadRequest(format!(
            "{what} require the sampled `cme` estimator, got `{}`",
            other.name()
        ))),
    }
}

fn padding_optimizer(problem: &Problem) -> PaddingOptimizer {
    let mut opt = PaddingOptimizer::for_hierarchy(problem.hierarchy.clone());
    opt.sampling = problem.sampling;
    opt.ga = problem.ga;
    opt.provider = problem.displacements.clone();
    opt
}

fn require_tileable(problem: &Problem) -> Result<(), ApiError> {
    if let TilingLegality::Illegal { reason } = rectangular_tiling_legality(&problem.nest) {
        return Err(ApiError::IllegalTransform(format!(
            "tiling `{}` is illegal: {reason}",
            problem.nest.name
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// §3: GA tile-size search
// ---------------------------------------------------------------------------

pub struct TilingStrategy;

impl SearchStrategy for TilingStrategy {
    fn name(&self) -> String {
        StrategySpec::Tiling.name()
    }

    fn search(&self, problem: &Problem) -> Result<Outcome, ApiError> {
        let b = OutcomeBuilder::new(self, problem);
        let out = tiling_optimizer(problem)
            .optimize(&problem.nest, &problem.layout)
            .map_err(ApiError::IllegalTransform)?;
        // `out.before` uses the canonical seeding (TilingObjective::
        // estimate_untiled == Problem::baseline_estimate), so every
        // strategy family reports an identical baseline for the same
        // request and no re-estimation is needed here.
        Ok(b.finish(Transform::tiles(out.tiles), out.before, out.after, Some(out.ga), None))
    }
}

// ---------------------------------------------------------------------------
// §4.3: GA padding search (three modes)
// ---------------------------------------------------------------------------

pub struct PaddingStrategy {
    pub mode: PaddingMode,
}

impl SearchStrategy for PaddingStrategy {
    fn name(&self) -> String {
        StrategySpec::Padding { mode: self.mode }.name()
    }

    fn search(&self, problem: &Problem) -> Result<Outcome, ApiError> {
        require_sampled_estimator(problem, "padding strategies")?;
        // Padding GAs size their search space from rectangular array
        // extents; a triangular nest would be scored against a layout
        // family it never uses.
        problem.require_rectangular("padding search")?;
        let b = OutcomeBuilder::new(self, problem);
        let opt = padding_optimizer(problem);
        // The optimisers' `original`/`before` fields use the canonical
        // seeding (CmeModel::estimate_nest), so they equal
        // Problem::baseline_estimate for this request — reused directly.
        match self.mode {
            PaddingMode::Pad => {
                let out = opt.optimize(&problem.nest);
                let transform = Transform { pads: Some(out.values), ..Transform::default() };
                Ok(b.finish(transform, out.original, out.padded, Some(out.ga), None))
            }
            PaddingMode::PadThenTile => {
                let out =
                    opt.optimize_then_tile(&problem.nest).map_err(ApiError::IllegalTransform)?;
                let tiled = out.tiled.expect("optimize_then_tile always tiles");
                let transform = Transform {
                    pads: Some(out.values),
                    tiles: Some(tiled.tiles),
                    permutation: None,
                };
                Ok(b.finish(transform, out.original, tiled.after, Some(tiled.ga), None))
            }
            PaddingMode::Joint => {
                let out =
                    opt.optimize_joint_full(&problem.nest).map_err(ApiError::IllegalTransform)?;
                let transform =
                    Transform { pads: Some(out.pads), tiles: Some(out.tiles), permutation: None };
                Ok(b.finish(transform, out.before, out.after, Some(out.ga), None))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Extension: legal permutations × GA tiling
// ---------------------------------------------------------------------------

pub struct InterchangeStrategy;

impl SearchStrategy for InterchangeStrategy {
    fn name(&self) -> String {
        StrategySpec::Interchange.name()
    }

    fn search(&self, problem: &Problem) -> Result<Outcome, ApiError> {
        // Permuting loops whose bounds reference outer induction
        // variables is not a plain reorder (the bounds would have to be
        // re-derived); refuse rather than emit an illegal permutation.
        problem.require_rectangular("interchange search")?;
        let b = OutcomeBuilder::new(self, problem);
        // `before` is the *source order* untiled — the interchange search
        // itself reports its best permutation's estimates (each legal
        // permutation gets its own engine: the analysis is per-order).
        let before = problem.baseline_estimate();
        let out = optimize_with_interchange(&tiling_optimizer(problem), &problem.nest)
            .map_err(ApiError::IllegalTransform)?;
        let transform = Transform {
            permutation: Some(out.permutation),
            tiles: Some(out.tiling.tiles),
            pads: None,
        };
        Ok(b.finish(
            transform,
            before,
            out.tiling.after,
            Some(out.tiling.ga),
            Some(out.explored as u64),
        ))
    }
}

// ---------------------------------------------------------------------------
// Ground truth: exhaustive tile sweep
// ---------------------------------------------------------------------------

pub struct ExhaustiveStrategy {
    pub step: i64,
    pub max_evals: u64,
}

impl SearchStrategy for ExhaustiveStrategy {
    fn name(&self) -> String {
        StrategySpec::Exhaustive { step: self.step, max_evals: self.max_evals }.name()
    }

    fn search(&self, problem: &Problem) -> Result<Outcome, ApiError> {
        // The sweep's eval budget and landscape are declared over the
        // rectangular hull; on a triangular space the "ground truth"
        // label would be a misdeclaration.
        problem.require_rectangular("exhaustive tile sweep")?;
        let b = OutcomeBuilder::new(self, problem);
        require_tileable(problem)?;
        // One shared engine: the whole sweep, the baseline and the final
        // estimate borrow the same per-kernel analysis (through the
        // request's estimator backend).
        let engine = problem.engine();
        let est = problem.backend(&engine);
        let res = exhaustive_search_on(est.as_ref(), self.step, self.max_evals)
            .map_err(ApiError::TooLarge)?;
        let before = est.estimate_canonical(None);
        let after = est.estimate_canonical(Some(&res.best_tiles));
        let explored = res.landscape.len() as u64;
        Ok(b.finish(Transform::tiles(res.best_tiles), before, after, None, Some(explored)))
    }
}

// ---------------------------------------------------------------------------
// §5 related-work heuristics
// ---------------------------------------------------------------------------

pub struct BaselineStrategy {
    pub kind: BaselineKind,
}

impl SearchStrategy for BaselineStrategy {
    fn name(&self) -> String {
        StrategySpec::Baseline { kind: self.kind }.name()
    }

    fn search(&self, problem: &Problem) -> Result<Outcome, ApiError> {
        let b = OutcomeBuilder::new(self, problem);
        require_tileable(problem)?;
        let tiles: TileSizes = match self.kind {
            BaselineKind::LrwSquare => {
                baselines::lrw_square(&problem.nest, &problem.layout, problem.l1())
            }
            BaselineKind::Tss => {
                baselines::tss_coleman_mckinley(&problem.nest, &problem.layout, problem.l1())
            }
            BaselineKind::FixedFraction { fraction } => {
                if !(fraction > 0.0 && fraction <= 1.0) {
                    return Err(ApiError::BadRequest(format!(
                        "fixed-fraction baseline needs a fraction in (0, 1], got {fraction}"
                    )));
                }
                baselines::fixed_fraction(&problem.nest, problem.l1(), fraction)
            }
        };
        tiles.validate(&problem.nest).map_err(|e| ApiError::IllegalTransform(e.to_string()))?;
        let engine = problem.engine();
        let est = problem.backend(&engine);
        let before = est.estimate_canonical(None);
        let after = est.estimate_canonical(Some(&tiles));
        Ok(b.finish(Transform::tiles(tiles), before, after, None, None))
    }
}

// ---------------------------------------------------------------------------
// Cache-oblivious divide and conquer (PCOT-style)
// ---------------------------------------------------------------------------

/// Derives tiles from the nest alone — recursive halving of the longest
/// legal dimension to a machine-independent base case. The request's
/// hierarchy never reaches the derivation (`cache_oblivious_tiles` takes
/// only the nest); it scores the result like any other family, so
/// swapping the hierarchy changes the estimates but not the transform.
/// Dimensions whose carried dependences forbid blocking keep their full
/// span, so no tiling-legality gate is needed: the emitted transform is
/// legal by construction (pinned by the legality-enforcement test).
pub struct CacheObliviousStrategy;

impl SearchStrategy for CacheObliviousStrategy {
    fn name(&self) -> String {
        StrategySpec::CacheOblivious.name()
    }

    fn search(&self, problem: &Problem) -> Result<Outcome, ApiError> {
        let b = OutcomeBuilder::new(self, problem);
        let res = cme_tileopt::cache_oblivious_tiles(&problem.nest);
        res.tiles.validate(&problem.nest).map_err(|e| ApiError::IllegalTransform(e.to_string()))?;
        let engine = problem.engine();
        let est = problem.backend(&engine);
        let before = est.estimate_canonical(None);
        let after = est.estimate_canonical(Some(&res.tiles));
        Ok(b.finish(Transform::tiles(res.tiles), before, after, None, Some(res.halvings)))
    }
}

// ---------------------------------------------------------------------------
// Latency-based tiling (Cashman-style miss-ratio probing)
// ---------------------------------------------------------------------------

/// Probes miss-ratio scaling on a budgeted shrunk instance through the
/// exact simulator and fits the knee — O(probes) simulator passes
/// instead of a GA run. `Outcome::explored` records the probe count.
pub struct LatencyBasedStrategy;

impl SearchStrategy for LatencyBasedStrategy {
    fn name(&self) -> String {
        StrategySpec::LatencyBased.name()
    }

    fn search(&self, problem: &Problem) -> Result<Outcome, ApiError> {
        let b = OutcomeBuilder::new(self, problem);
        require_tileable(problem)?;
        let res = cme_tileopt::latency_based_tiles(&problem.nest, &problem.hierarchy);
        res.tiles.validate(&problem.nest).map_err(|e| ApiError::IllegalTransform(e.to_string()))?;
        let engine = problem.engine();
        let est = problem.backend(&engine);
        let before = est.estimate_canonical(None);
        let after = est.estimate_canonical(Some(&res.tiles));
        Ok(b.finish(Transform::tiles(res.tiles), before, after, None, Some(res.probes)))
    }
}
