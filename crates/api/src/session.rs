//! The execution seam: a [`Session`] turns requests into outcomes, one at
//! a time or as a parallel batch — the surface a future service layer
//! (HTTP handler, queue worker) binds to.

use crate::error::ApiError;
use crate::outcome::{AnalyzeOutcome, CompareOutcome, LintOutcome, Outcome};
use crate::problem::Problem;
use crate::request::{AnalyzeRequest, CompareRequest, LintRequest, OptimizeRequest};
use crate::strategy::build_strategy;
use cme_core::{DisplacementProvider, EvalEngine, SharedDisplacements};
use cme_loopnest::MemoryLayout;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Configures and builds a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    parallel: bool,
    displacements: Option<SharedDisplacements>,
}

impl SessionBuilder {
    /// Run batches on all available cores (default) or sequentially.
    /// Results are bit-identical either way — parallelism only changes
    /// wall-clock time.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Attach a process-wide displacement store, shared by every engine
    /// the session builds (across `run`, `run_batch` and `analyze`).
    /// Displacement sets are pure functions of their key, so outcomes are
    /// byte-identical with or without a provider — only the Diophantine
    /// work is shared.
    pub fn displacement_provider(mut self, provider: Arc<dyn DisplacementProvider>) -> Self {
        self.displacements = Some(SharedDisplacements::new(provider));
        self
    }

    pub fn build(self) -> Session {
        Session { parallel: self.parallel, displacements: self.displacements }
    }
}

/// Stateless executor for API requests. Cheap to build and `Sync`: one
/// session can serve many threads. (With an attached displacement
/// provider the session stays deterministic — the provider only memoises
/// pure computations.)
#[derive(Debug, Clone)]
pub struct Session {
    parallel: bool,
    displacements: Option<SharedDisplacements>,
}

impl Default for Session {
    fn default() -> Self {
        Session::builder().build()
    }
}

impl Session {
    pub fn builder() -> SessionBuilder {
        SessionBuilder { parallel: true, displacements: None }
    }

    /// Run one optimisation request through its selected strategy. The
    /// outcome carries the dependence-analysis digest of the original
    /// nest in [`Outcome::legality`].
    pub fn run(&self, req: &OptimizeRequest) -> Result<Outcome, ApiError> {
        let mut problem = Problem::from_request(req)?;
        problem.displacements = self.displacements.clone();
        let mut outcome = build_strategy(&req.strategy).search(&problem)?;
        outcome.legality = Some(cme_analysis::legality_summary(&problem.nest));
        Ok(outcome)
    }

    /// Run a batch of independent requests, in parallel unless the session
    /// was built with `.parallel(false)`. The result order matches the
    /// request order, and every outcome equals what [`Self::run`] would
    /// return for that request alone (modulo `wall_ms`).
    pub fn run_batch(&self, reqs: &[OptimizeRequest]) -> Vec<Result<Outcome, ApiError>> {
        if self.parallel {
            reqs.par_iter().map(|req| self.run(req)).collect()
        } else {
            reqs.iter().map(|req| self.run(req)).collect()
        }
    }

    /// Run a strategy tournament: every family in `req.strategies` over
    /// the shared base request, ranked by the latency-weighted objective
    /// (`after.weighted_cost()`, ties keep request order). Each entrant
    /// equals what [`Self::run`] would answer for the per-family request
    /// alone (modulo `wall_ms`), so all entries share one byte-identical
    /// canonical `before`. Any entrant's failure fails the tournament —
    /// a ranking over half a line-up would be misleading.
    pub fn compare(&self, req: &CompareRequest) -> Result<CompareOutcome, ApiError> {
        let started = Instant::now();
        if req.strategies.is_empty() {
            return Err(ApiError::BadRequest("compare request needs at least one strategy".into()));
        }
        let entrants: Vec<OptimizeRequest> =
            (0..req.strategies.len()).map(|k| req.entrant(k)).collect();
        let mut outcomes = Vec::with_capacity(entrants.len());
        for result in self.run_batch(&entrants) {
            outcomes.push(result?);
        }
        Ok(CompareOutcome::rank(outcomes, started.elapsed().as_millis() as u64))
    }

    /// Run a pure analysis request (no search). The engine-assembled
    /// analysis equals the from-scratch `CmeModel` path byte-for-byte on
    /// a legacy single-level cache; a non-legacy hierarchy additionally
    /// yields the per-level breakdown in the estimate/report.
    pub fn analyze(&self, req: &AnalyzeRequest) -> Result<AnalyzeOutcome, ApiError> {
        let started = Instant::now();
        crate::problem::validate_cache(&req.cache)?;
        let nest = req.nest.resolve()?;
        if let Some(tiles) = &req.tiles {
            tiles.validate(&nest).map_err(|e| ApiError::BadRequest(e.to_string()))?;
        }
        let layout = MemoryLayout::contiguous(&nest);
        let engine = EvalEngine::new_hierarchy_shared(
            &req.cache,
            &nest,
            &layout,
            req.sampling,
            req.seed,
            self.displacements.as_ref().map(SharedDisplacements::provider),
        );
        let effective = req.tiles.as_ref().filter(|t| !t.is_trivial(&nest));
        let (estimate, exact) = if req.exhaustive {
            (None, Some(engine.exhaustive_report(effective)))
        } else {
            (Some(engine.estimate_canonical(effective)), None)
        };
        Ok(AnalyzeOutcome {
            kernel: nest.name.clone(),
            cache: req.cache.clone(),
            tiles: req.tiles.clone(),
            estimate,
            exact,
            wall_ms: started.elapsed().as_millis() as u64,
        })
    }

    /// Run a lint request: static dependence analysis plus the kernel
    /// lints, no miss estimation. Deterministic for a fixed request, so
    /// outcomes are cacheable in [`LintOutcome::without_timing`] form.
    pub fn lint(&self, req: &LintRequest) -> Result<LintOutcome, ApiError> {
        let started = Instant::now();
        crate::problem::validate_cache(&req.cache)?;
        let nest = req.nest.resolve()?;
        let report = cme_analysis::lint_report(&nest, &req.cache);
        Ok(LintOutcome {
            kernel: nest.name.clone(),
            cache: req.cache.clone(),
            legality: report.legality,
            diagnostics: report.diagnostics,
            wall_ms: started.elapsed().as_millis() as u64,
        })
    }
}
