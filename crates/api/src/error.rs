//! The one error type every API entry point returns.

use serde::{Deserialize, Serialize};

/// Why a request could not produce an [`crate::Outcome`].
///
/// Message convention (kept uniform across nest sources so clients can
/// show them verbatim): every nest-related message starts with the
/// source context — ``kernel `NAME` `` for registry kernels, ``inline
/// nest `NAME` `` for inline ones — followed by `: ` and the failing
/// field; reference-level problems name the reference as
/// ``ref N (`array`)`` (the index into the nest's `refs` table).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApiError {
    /// The request named a kernel the registry does not know.
    UnknownKernel(String),
    /// The request was structurally invalid (bad sizes, empty nest, …).
    BadRequest(String),
    /// The requested transformation is illegal for the nest (e.g.
    /// rectangular tiling of a non-permutable dependence).
    IllegalTransform(String),
    /// The search was refused because it would exceed a declared budget
    /// (e.g. an exhaustive sweep past `max_evals`).
    TooLarge(String),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::UnknownKernel(name) => {
                write!(f, "kernel `{name}`: not in the registry (run `cme kernels` for the list)")
            }
            ApiError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ApiError::IllegalTransform(msg) => write!(f, "illegal transform: {msg}"),
            ApiError::TooLarge(msg) => write!(f, "search too large: {msg}"),
        }
    }
}

impl std::error::Error for ApiError {}
