//! The unified outcome type every strategy returns.

use cme_analysis::{Diagnostic, LegalitySummary};
use cme_core::{CacheHierarchy, MissEstimate, MissReport};
use cme_loopnest::TileSizes;
use cme_tileopt::problem::GaSummary;
use serde::{Deserialize, Serialize};

/// The transformation a search chose, in application order: permute the
/// loops, pad the layout, tile the (permuted) nest. Unset components mean
/// "leave unchanged", so every strategy family fits one shape.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transform {
    /// Loop permutation (new level `k` runs old loop `permutation[k]`).
    pub permutation: Option<Vec<usize>>,
    /// Raw padding parameters (1-based GA values: one inter-array pad per
    /// array, then one intra-array pad per array when searched); decode
    /// with [`cme_tileopt::PaddingSpace::layout_for`].
    pub pads: Option<Vec<i64>>,
    /// Tile sizes, outermost loop first.
    pub tiles: Option<TileSizes>,
}

impl Transform {
    pub fn tiles(tiles: TileSizes) -> Self {
        Transform { tiles: Some(tiles), ..Transform::default() }
    }

    /// True when the search chose to change nothing.
    pub fn is_identity(&self) -> bool {
        self.permutation.is_none() && self.pads.is_none() && self.tiles.is_none()
    }
}

/// What a [`crate::SearchStrategy`] produced: the chosen transform, the
/// CME estimates on both sides of it, and the search telemetry.
///
/// `PartialEq` compares every field *including* `wall_ms`; two outcomes
/// of the same deterministic request differ only there, so compare
/// [`Self::without_timing`] forms (tests and caches must never compare
/// raw outcomes, or they inherit wall-clock flakiness).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Strategy identifier (see [`crate::StrategySpec::name`]).
    pub strategy: String,
    /// Nest name (kernel registry name or inline nest name).
    pub kernel: String,
    /// The cache hierarchy the search ran against (serialised as a bare
    /// cache object when it is a one-level legacy hierarchy).
    pub cache: CacheHierarchy,
    pub transform: Transform,
    /// Estimate for the original nest and layout.
    pub before: MissEstimate,
    /// Estimate after applying [`Self::transform`].
    pub after: MissEstimate,
    /// GA telemetry, when the strategy ran one.
    pub ga: Option<GaSummary>,
    /// Candidates explored beyond the GA: legal permutations tried
    /// (interchange) or tile vectors evaluated (exhaustive).
    pub explored: Option<u64>,
    /// Dependence-analysis digest of the *original* nest (carried /
    /// loop-independent dependence counts, tiling legality). Stamped by
    /// [`crate::Session::run`]; absent in pre-analysis outcomes.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub legality: Option<LegalitySummary>,
    /// Wall-clock time of the search in milliseconds.
    pub wall_ms: u64,
}

impl Outcome {
    /// Replacement-miss improvement in ratio points (positive = better).
    pub fn replacement_gain(&self) -> f64 {
        self.before.replacement_ratio() - self.after.replacement_ratio()
    }

    /// A copy with the wall-clock field zeroed — everything else is
    /// deterministic for a fixed request, so this is the canonical form
    /// for comparisons and caching.
    pub fn without_timing(&self) -> Outcome {
        Outcome { wall_ms: 0, ..self.clone() }
    }
}

/// Result of an [`crate::AnalyzeRequest`]: no search, just the model.
/// As with [`Outcome`], compare [`Self::without_timing`] forms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeOutcome {
    pub kernel: String,
    pub cache: CacheHierarchy,
    /// The tiling that was analysed (None = original nest).
    pub tiles: Option<TileSizes>,
    /// Sampled estimate (absent when exhaustive classification was
    /// requested instead).
    pub estimate: Option<MissEstimate>,
    /// Exact per-reference counts (present iff the request set
    /// `exhaustive`).
    pub exact: Option<MissReport>,
    pub wall_ms: u64,
}

impl AnalyzeOutcome {
    /// Total miss ratio from whichever analysis ran.
    pub fn miss_ratio(&self) -> f64 {
        match (&self.exact, &self.estimate) {
            (Some(report), _) => report.miss_ratio(),
            (None, Some(est)) => est.miss_ratio(),
            (None, None) => 0.0,
        }
    }

    /// Replacement miss ratio from whichever analysis ran.
    pub fn replacement_ratio(&self) -> f64 {
        match (&self.exact, &self.estimate) {
            (Some(report), _) => report.replacement_ratio(),
            (None, Some(est)) => est.replacement_ratio(),
            (None, None) => 0.0,
        }
    }

    pub fn without_timing(&self) -> AnalyzeOutcome {
        AnalyzeOutcome { wall_ms: 0, ..self.clone() }
    }
}

/// Result of a [`crate::LintRequest`]: the legality digest and the
/// structured diagnostics, in report order. As with [`Outcome`], compare
/// [`Self::without_timing`] forms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintOutcome {
    pub kernel: String,
    pub cache: CacheHierarchy,
    /// Dependence-analysis digest of the nest.
    pub legality: LegalitySummary,
    /// Structured diagnostics (stable codes, ref-indexed messages).
    pub diagnostics: Vec<Diagnostic>,
    pub wall_ms: u64,
}

impl LintOutcome {
    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == cme_analysis::Severity::Warning).count()
    }

    pub fn without_timing(&self) -> LintOutcome {
        LintOutcome { wall_ms: 0, ..self.clone() }
    }
}
