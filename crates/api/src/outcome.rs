//! The unified outcome type every strategy returns.

use cme_analysis::{Diagnostic, LegalitySummary};
use cme_core::{CacheHierarchy, MissEstimate, MissReport};
use cme_loopnest::TileSizes;
use cme_tileopt::problem::GaSummary;
use serde::{Deserialize, Serialize};

/// The transformation a search chose, in application order: permute the
/// loops, pad the layout, tile the (permuted) nest. Unset components mean
/// "leave unchanged", so every strategy family fits one shape.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transform {
    /// Loop permutation (new level `k` runs old loop `permutation[k]`).
    pub permutation: Option<Vec<usize>>,
    /// Raw padding parameters (1-based GA values: one inter-array pad per
    /// array, then one intra-array pad per array when searched); decode
    /// with [`cme_tileopt::PaddingSpace::layout_for`].
    pub pads: Option<Vec<i64>>,
    /// Tile sizes, outermost loop first.
    pub tiles: Option<TileSizes>,
}

impl Transform {
    pub fn tiles(tiles: TileSizes) -> Self {
        Transform { tiles: Some(tiles), ..Transform::default() }
    }

    /// True when the search chose to change nothing.
    pub fn is_identity(&self) -> bool {
        self.permutation.is_none() && self.pads.is_none() && self.tiles.is_none()
    }
}

/// What a [`crate::SearchStrategy`] produced: the chosen transform, the
/// CME estimates on both sides of it, and the search telemetry.
///
/// `PartialEq` compares every field *including* `wall_ms`; two outcomes
/// of the same deterministic request differ only there, so compare
/// [`Self::without_timing`] forms (tests and caches must never compare
/// raw outcomes, or they inherit wall-clock flakiness).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Strategy identifier (see [`crate::StrategySpec::name`]).
    pub strategy: String,
    /// Nest name (kernel registry name or inline nest name).
    pub kernel: String,
    /// The cache hierarchy the search ran against (serialised as a bare
    /// cache object when it is a one-level legacy hierarchy).
    pub cache: CacheHierarchy,
    pub transform: Transform,
    /// Estimate for the original nest and layout.
    pub before: MissEstimate,
    /// Estimate after applying [`Self::transform`].
    pub after: MissEstimate,
    /// GA telemetry, when the strategy ran one.
    pub ga: Option<GaSummary>,
    /// Candidates explored beyond the GA: legal permutations tried
    /// (interchange) or tile vectors evaluated (exhaustive).
    pub explored: Option<u64>,
    /// Dependence-analysis digest of the *original* nest (carried /
    /// loop-independent dependence counts, tiling legality). Stamped by
    /// [`crate::Session::run`]; absent in pre-analysis outcomes.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub legality: Option<LegalitySummary>,
    /// Wall-clock time of the search in milliseconds.
    pub wall_ms: u64,
}

impl Outcome {
    /// Replacement-miss improvement in ratio points (positive = better).
    pub fn replacement_gain(&self) -> f64 {
        self.before.replacement_ratio() - self.after.replacement_ratio()
    }

    /// A copy with the wall-clock field zeroed — everything else is
    /// deterministic for a fixed request, so this is the canonical form
    /// for comparisons and caching.
    pub fn without_timing(&self) -> Outcome {
        Outcome { wall_ms: 0, ..self.clone() }
    }
}

/// One ranked tournament entrant: the family's full outcome plus the
/// ranking key, spelled out so wire clients need no recomputation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareEntry {
    /// The family's outcome — strategy name, transform, `before`/`after`
    /// estimates (the `before` is byte-identical across entries: every
    /// family reports the same canonical baseline), per-family `wall_ms`.
    pub outcome: Outcome,
    /// The ranking key: `outcome.after.weighted_cost()` (Σ level
    /// replacement misses × miss latency after the transform).
    pub weighted_cost: f64,
}

/// Result of a [`crate::CompareRequest`]: every family's outcome, ranked
/// best-first by the latency-weighted objective. As with [`Outcome`],
/// compare [`Self::without_timing`] forms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareOutcome {
    pub kernel: String,
    pub cache: CacheHierarchy,
    /// Entrants ranked by ascending `weighted_cost` (ties keep request
    /// order — the ranking is deterministic).
    pub entries: Vec<CompareEntry>,
    /// Index **into the request's `strategies` array** of the winning
    /// family (`entries[0]`'s position in the original line-up).
    pub winner: usize,
    /// Wall-clock time of the whole tournament in milliseconds.
    pub wall_ms: u64,
}

impl CompareOutcome {
    /// Rank per-family outcomes (in request order) into a tournament:
    /// ascending `after.weighted_cost()`, ties broken by request order
    /// (NaN cannot occur — weighted costs are finite sums of finite
    /// non-negative terms). `winner` is the best entrant's index in the
    /// input order. `outcomes` must be non-empty: compare requests with
    /// no strategies are rejected before execution.
    pub fn rank(outcomes: Vec<Outcome>, wall_ms: u64) -> CompareOutcome {
        let kernel = outcomes[0].kernel.clone();
        let cache = outcomes[0].cache.clone();
        let costs: Vec<f64> = outcomes.iter().map(|o| o.after.weighted_cost()).collect();
        let mut order: Vec<usize> = (0..outcomes.len()).collect();
        order.sort_by(|&a, &b| costs[a].total_cmp(&costs[b]).then(a.cmp(&b)));
        let winner = order[0];
        let entries = order
            .into_iter()
            .map(|k| CompareEntry { outcome: outcomes[k].clone(), weighted_cost: costs[k] })
            .collect();
        CompareOutcome { kernel, cache, entries, winner, wall_ms }
    }

    /// A copy with every wall-clock field zeroed (the tournament's and
    /// each entrant's) — the canonical form for comparisons and caching.
    pub fn without_timing(&self) -> CompareOutcome {
        CompareOutcome {
            entries: self
                .entries
                .iter()
                .map(|e| CompareEntry {
                    outcome: e.outcome.without_timing(),
                    weighted_cost: e.weighted_cost,
                })
                .collect(),
            wall_ms: 0,
            ..self.clone()
        }
    }

    /// The winning entrant (entries are never empty: compare requests
    /// with no strategies are rejected before execution).
    pub fn best(&self) -> &CompareEntry {
        &self.entries[0]
    }
}

/// Result of an [`crate::AnalyzeRequest`]: no search, just the model.
/// As with [`Outcome`], compare [`Self::without_timing`] forms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeOutcome {
    pub kernel: String,
    pub cache: CacheHierarchy,
    /// The tiling that was analysed (None = original nest).
    pub tiles: Option<TileSizes>,
    /// Sampled estimate (absent when exhaustive classification was
    /// requested instead).
    pub estimate: Option<MissEstimate>,
    /// Exact per-reference counts (present iff the request set
    /// `exhaustive`).
    pub exact: Option<MissReport>,
    pub wall_ms: u64,
}

impl AnalyzeOutcome {
    /// Total miss ratio from whichever analysis ran.
    pub fn miss_ratio(&self) -> f64 {
        match (&self.exact, &self.estimate) {
            (Some(report), _) => report.miss_ratio(),
            (None, Some(est)) => est.miss_ratio(),
            (None, None) => 0.0,
        }
    }

    /// Replacement miss ratio from whichever analysis ran.
    pub fn replacement_ratio(&self) -> f64 {
        match (&self.exact, &self.estimate) {
            (Some(report), _) => report.replacement_ratio(),
            (None, Some(est)) => est.replacement_ratio(),
            (None, None) => 0.0,
        }
    }

    pub fn without_timing(&self) -> AnalyzeOutcome {
        AnalyzeOutcome { wall_ms: 0, ..self.clone() }
    }
}

/// Result of a [`crate::LintRequest`]: the legality digest and the
/// structured diagnostics, in report order. As with [`Outcome`], compare
/// [`Self::without_timing`] forms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintOutcome {
    pub kernel: String,
    pub cache: CacheHierarchy,
    /// Dependence-analysis digest of the nest.
    pub legality: LegalitySummary,
    /// Structured diagnostics (stable codes, ref-indexed messages).
    pub diagnostics: Vec<Diagnostic>,
    pub wall_ms: u64,
}

impl LintOutcome {
    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == cme_analysis::Severity::Warning).count()
    }

    pub fn without_timing(&self) -> LintOutcome {
        LintOutcome { wall_ms: 0, ..self.clone() }
    }
}
