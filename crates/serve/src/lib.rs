//! `cme-serve` — the network service layer over [`cme_api`]: a
//! dependency-free HTTP/1.1 JSON server on `std::net` that turns the
//! PR-1 `Session` seam into `POST /optimize`, `POST /analyze`,
//! `POST /lint`, `POST /batch`, `GET /healthz`, `GET /metrics` and
//! `POST /shutdown`.
//!
//! The design goals, in order:
//!
//! * **Bounded everything.** A fixed worker pool drains a fixed-capacity
//!   connection queue; when the queue is full the accept thread answers
//!   `503` immediately ([`pool`]). Arrival rate can never grow memory.
//! * **Memoised outcomes.** CME analysis + GA search dominates request
//!   cost and every search is deterministic for a fixed request, so a
//!   sharded LRU keyed by the *canonical* serialised request answers
//!   repeats without running anything ([`cache`]). Hits and evictions are
//!   visible in `GET /metrics` ([`metrics`]).
//! * **Layers testable without sockets.** HTTP framing ([`http`]),
//!   routing ([`router`]), the queue/pool and the cache are all plain
//!   data-in/data-out modules; only [`server`] owns a `TcpListener`.
//!
//! ```
//! use cme_serve::{HttpClient, ServeConfig};
//!
//! let config = ServeConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServeConfig::default() };
//! let handle = cme_serve::start(&config).unwrap();
//!
//! let mut client = HttpClient::connect(handle.addr()).unwrap();
//! let (status, body) = client.get("/healthz").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"status\":\"ok\""));
//!
//! handle.shutdown_and_join();
//! ```

pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod server;

pub use cache::{canonical_key, canonical_lint_key, LintCache, OutcomeCache};
pub use client::HttpClient;
pub use http::{HttpRequest, HttpResponse};
pub use metrics::Metrics;
pub use pool::{BoundedQueue, WorkerPool};
pub use router::App;
pub use server::{install_signal_handlers, start, ServerHandle};

use std::time::Duration;

/// Server configuration; the defaults suit an interactive `cme serve`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Worker threads handling connections (≥ 1).
    pub workers: usize,
    /// Connections that may wait for a worker before `503`s begin (≥ 1).
    pub queue_depth: usize,
    /// Outcome-cache capacity in entries; 0 disables caching.
    pub cache_entries: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Per-connection read timeout, so an idle or stalled peer cannot
    /// hold a worker forever.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            queue_depth: 64,
            cache_entries: 1024,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(10),
        }
    }
}
