//! `cme-serve` — the network service layer over [`cme_api`]: a
//! dependency-free HTTP/1.1 JSON server on `std::net` that turns the
//! PR-1 `Session` seam into `POST /optimize`, `POST /analyze`,
//! `POST /lint`, `POST /batch`, `GET /healthz`, `GET /metrics` and
//! `POST /shutdown`.
//!
//! The design goals, in order:
//!
//! * **Readiness, not blocking reads.** A single IO driver thread owns
//!   every connection between requests, reads nonblockingly, and frames
//!   complete requests ([`server`], [`http::frame_request`]); workers
//!   only ever see fully-read requests, so a slow or stalled sender
//!   cannot occupy a worker.
//! * **Bounded everything.** A fixed worker pool drains a fixed-capacity
//!   queue of *ready* requests; when the queue is full the driver
//!   answers `503` immediately ([`pool`]). Arrival rate can never grow
//!   memory, and write timeouts bound the send side too.
//! * **Shared runtime state.** Cross-request evaluation state — the
//!   tiered outcome cache (optionally disk-backed via `cache_dir`), the
//!   process-wide displacement cache and in-flight request coalescing —
//!   lives in [`cme_runtime`] and is owned by the [`router::App`];
//!   [`cache`] re-exports the cache types for compatibility. All of it
//!   is visible in `GET /metrics` ([`metrics`]).
//! * **Layers testable without sockets.** HTTP framing ([`http`]),
//!   routing ([`router`]), the queue/pool and the caches are all plain
//!   data-in/data-out modules; only [`server`] owns a `TcpListener`.
//!
//! ```
//! use cme_serve::{HttpClient, ServeConfig};
//!
//! let config = ServeConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServeConfig::default() };
//! let handle = cme_serve::start(&config).unwrap();
//!
//! let mut client = HttpClient::connect(handle.addr()).unwrap();
//! let (status, body) = client.get("/healthz").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"status\":\"ok\""));
//!
//! handle.shutdown_and_join();
//! ```

pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod server;

pub use cache::{
    canonical_key, canonical_lint_key, LintCache, OutcomeCache, Tier, TieredOutcomeCache,
};
pub use client::HttpClient;
pub use http::{frame_request, Frame, HttpRequest, HttpResponse};
pub use metrics::Metrics;
pub use pool::{BoundedQueue, WorkerPool};
pub use router::App;
pub use server::{install_signal_handlers, start, ServerHandle};

use cme_runtime::RuntimeConfig;
use std::path::PathBuf;
use std::time::Duration;

/// Server configuration; the defaults suit an interactive `cme serve`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Worker threads handling requests (≥ 1).
    pub workers: usize,
    /// Ready requests that may wait for a worker before `503`s begin
    /// (≥ 1).
    pub queue_depth: usize,
    /// Outcome- and lint-cache capacity in entries; 0 disables caching.
    pub cache_entries: usize,
    /// Process-wide displacement-cache capacity in entries; 0 disables
    /// cross-request sharing of the Diophantine half of CME evaluation.
    pub displacement_entries: usize,
    /// Directory for the persistent outcome tier; `None` keeps the
    /// outcome cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Per-connection IO timeout: a peer silent for this long while a
    /// request is incomplete is dropped, and response writes give up
    /// after it, so a stalled peer cannot hold a worker.
    pub read_timeout: Duration,
}

impl ServeConfig {
    /// The [`cme_runtime`] configuration this server config implies.
    pub fn runtime_config(&self) -> RuntimeConfig {
        RuntimeConfig {
            outcome_entries: self.cache_entries,
            lint_entries: self.cache_entries,
            // Tournaments are much larger values; a quarter of the
            // outcome capacity keeps the memory footprint comparable
            // (0 still means disabled).
            compare_entries: match self.cache_entries {
                0 => 0,
                n => (n / 4).clamp(1, 256),
            },
            displacement_entries: self.displacement_entries,
            cache_dir: self.cache_dir.clone(),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            queue_depth: 64,
            cache_entries: 1024,
            displacement_entries: 4096,
            cache_dir: None,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(10),
        }
    }
}
