//! A bounded MPMC job queue plus a fixed-size worker pool — the service's
//! backpressure core. Socket-free: jobs are any `Send` type, so the whole
//! layer is unit-testable with integers.
//!
//! The queue never blocks producers: [`BoundedQueue::try_push`] hands the
//! job back when the queue is full, and the caller decides what rejection
//! means (the accept loop answers 503). Memory use is therefore bounded
//! by `capacity` no matter how fast requests arrive.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity FIFO shared between the accept loop (producer) and the
/// workers (consumers).
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// A worker panic poisons the mutex; the queue state itself is always
    /// consistent (no invariants span the lock), so keep serving.
    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue without blocking. `Err` hands the item back when the queue
    /// is at capacity or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, blocking until an item arrives. `None` means the queue was
    /// closed and fully drained — the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stop accepting jobs and wake every blocked worker. Already-queued
    /// jobs are still drained.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A fixed set of named threads draining one [`BoundedQueue`].
pub struct WorkerPool {
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `count` workers (at least one), each looping
    /// `pop → handler` until the queue closes and drains.
    pub fn spawn<T, F>(count: usize, queue: Arc<BoundedQueue<T>>, handler: F) -> Self
    where
        T: Send + 'static,
        F: Fn(T) + Send + Sync + 'static,
    {
        let handler = Arc::new(handler);
        let workers = (0..count.max(1))
            .map(|k| {
                let queue = Arc::clone(&queue);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("cme-serve-worker-{k}"))
                    .spawn(move || {
                        while let Some(item) = queue.pop() {
                            handler(item);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { workers }
    }

    /// Wait for every worker to exit (the queue must be closed first, or
    /// this blocks forever).
    pub fn join(self) {
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn try_push_rejects_when_full_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(()), "a pop frees a slot");
    }

    #[test]
    fn pop_is_fifo_and_close_drains_then_stops() {
        let q = BoundedQueue::new(8);
        for k in 0..5 {
            q.try_push(k).unwrap();
        }
        q.close();
        assert_eq!(q.try_push(99), Err(99), "closed queue rejects");
        assert_eq!((0..5).map(|_| q.pop().unwrap()).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(q.pop(), None, "drained + closed ends the worker loop");
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u64>::new(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn pool_processes_every_accepted_job() {
        let q = Arc::new(BoundedQueue::new(64));
        let sum = Arc::new(AtomicU64::new(0));
        let pool = {
            let sum = Arc::clone(&sum);
            WorkerPool::spawn(4, Arc::clone(&q), move |v: u64| {
                sum.fetch_add(v, Ordering::Relaxed);
            })
        };
        let mut accepted = 0u64;
        for v in 1..=50u64 {
            // Workers drain concurrently, so pushes may or may not be
            // rejected; only accepted jobs count.
            if q.try_push(v).is_ok() {
                accepted += v;
            }
        }
        q.close();
        pool.join();
        assert_eq!(sum.load(Ordering::Relaxed), accepted);
    }

    #[test]
    fn zero_sizes_are_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Err(2));
    }
}
