//! The outcome memo-cache: a sharded LRU keyed by the *canonical*
//! serialisation of an [`OptimizeRequest`].
//!
//! Canonical means the key is produced by re-serialising the **parsed**
//! request, so two JSON bodies that differ in object key order,
//! whitespace, or spelled-out default fields collapse onto one entry.
//! Values are stored timing-stripped ([`Outcome::without_timing`]) — the
//! cached form is the canonical comparison form, and a hit is
//! byte-identical to a fresh run modulo `wall_ms`, which the router
//! re-stamps with the (near-zero) time the lookup took. Every search in
//! the suite is deterministic for a fixed request, which is what makes
//! memoisation sound in the first place.

use cme_api::{LintOutcome, LintRequest, OptimizeRequest, Outcome};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The cache key for a request: its serialised form after parsing, which
/// normalises field order and defaults.
pub fn canonical_key(req: &OptimizeRequest) -> String {
    serde_json::to_string(req).expect("requests always serialise")
}

/// The cache key for a lint request (same canonicalisation rule).
pub fn canonical_lint_key(req: &LintRequest) -> String {
    serde_json::to_string(req).expect("requests always serialise")
}

const NIL: usize = usize::MAX;

struct Entry<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// A plain single-threaded LRU map (one shard of [`OutcomeCache`], the
/// whole of [`LintCache`]): `HashMap` for lookup, an index-linked list
/// through a slab of entries for recency order. Both `get` and `insert`
/// are O(1). Generic over the cached value; defaults to [`Outcome`].
pub struct Lru<V = Outcome> {
    map: HashMap<String, usize>,
    entries: Vec<Entry<V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<V> Lru<V> {
    pub fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::new(),
            entries: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.entries[i].prev, self.entries[i].next);
        match prev {
            NIL => self.head = next,
            p => self.entries[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.entries[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.entries[i].prev = NIL;
        self.entries[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.entries[h].prev = i,
        }
        self.head = i;
    }

    /// Look up and mark most-recently-used.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(&self.entries[i].value)
    }

    /// Insert or refresh; returns `true` when a least-recently-used entry
    /// was evicted to make room.
    pub fn insert(&mut self, key: String, value: V) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.entries[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        let mut evicted = false;
        let i = if self.map.len() >= self.capacity {
            // Reuse the LRU slot in place of allocating a new one.
            let i = self.tail;
            self.unlink(i);
            self.map.remove(&self.entries[i].key);
            self.entries[i].key.clone_from(&key);
            self.entries[i].value = value;
            evicted = true;
            i
        } else {
            self.entries.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
            self.entries.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Keys in recency order, most recent first (test/diagnostic helper).
    pub fn keys_by_recency(&self) -> Vec<&str> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            keys.push(self.entries[i].key.as_str());
            i = self.entries[i].next;
        }
        keys
    }
}

/// Thread-safe LRU over `SHARDS` independently locked [`Lru`]s, plus hit
/// and eviction telemetry for `/metrics`. Capacity 0 disables caching
/// (lookups miss, inserts drop).
pub struct OutcomeCache {
    shards: Vec<Mutex<Lru>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl OutcomeCache {
    pub fn new(capacity: usize) -> Self {
        // Shard only when each shard stays big enough (≥ 32 entries) that
        // hot keys colliding on one shard cannot thrash a near-empty
        // cache; small capacities get a single shard. The remainder is
        // spread over the first shards so per-shard capacities sum to
        // exactly `capacity` — the configured bound is a hard ceiling.
        let shard_count = (capacity / 32).clamp(1, 8);
        let (base, rem) = (capacity / shard_count, capacity % shard_count);
        OutcomeCache {
            shards: (0..shard_count)
                .map(|i| Mutex::new(Lru::new(base + usize::from(i < rem))))
                .collect(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> MutexGuard<'_, Lru> {
        // DefaultHasher::new() is unkeyed, so shard placement is stable
        // across runs (replay-friendly).
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let i = (h.finish() % self.shards.len() as u64) as usize;
        self.shards[i].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a timing-stripped outcome, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<Outcome> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let found = self.shard(key).get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store the timing-stripped form of `outcome` under `key`.
    pub fn insert(&self, key: String, outcome: &Outcome) {
        if self.capacity == 0 {
            return;
        }
        if self.shard(&key).insert(key.clone(), outcome.without_timing()) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// The `/lint` memo-cache: one mutex around an [`Lru`] of timing-stripped
/// [`LintOutcome`]s. Lints are dependence analysis only — orders of
/// magnitude cheaper than a search — so a single shard suffices; the
/// telemetry mirrors [`OutcomeCache`] for `/metrics`. Capacity 0
/// disables caching.
pub struct LintCache {
    lru: Mutex<Lru<LintOutcome>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl LintCache {
    pub fn new(capacity: usize) -> Self {
        LintCache {
            lru: Mutex::new(Lru::new(capacity.max(1))),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Lru<LintOutcome>> {
        self.lru.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a timing-stripped lint outcome, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<LintOutcome> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let found = self.lock().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store the timing-stripped form of `outcome` under `key`.
    pub fn insert(&self, key: String, outcome: &LintOutcome) {
        if self.capacity == 0 {
            return;
        }
        if self.lock().insert(key, outcome.without_timing()) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_api::cme::estimate::SolverStats;
    use cme_api::cme::{CacheSpec, MissEstimate};
    use cme_api::Transform;

    fn outcome(tag: &str, wall_ms: u64) -> Outcome {
        let est = MissEstimate {
            n_samples: 1,
            volume: 1,
            exact: true,
            per_ref: Vec::new(),
            solver: SolverStats::default(),
            levels: None,
        };
        Outcome {
            strategy: "tiling".into(),
            kernel: tag.into(),
            cache: CacheSpec::paper_8k().into(),
            transform: Transform::default(),
            before: est.clone(),
            after: est,
            ga: None,
            explored: None,
            legality: None,
            wall_ms,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used_not_least_recently_inserted() {
        let mut lru = Lru::new(3);
        for k in ["a", "b", "c"] {
            assert!(!lru.insert(k.into(), outcome(k, 0)));
        }
        // Touch `a`: recency becomes a, c, b.
        assert!(lru.get("a").is_some());
        assert_eq!(lru.keys_by_recency(), ["a", "c", "b"]);
        // A fourth insert must evict `b`, the LRU — not `a`, the oldest.
        assert!(lru.insert("d".into(), outcome("d", 0)));
        assert_eq!(lru.len(), 3);
        assert!(lru.get("b").is_none());
        assert_eq!(lru.keys_by_recency(), ["d", "a", "c"]);
        // Re-inserting an existing key refreshes, never evicts.
        assert!(!lru.insert("c".into(), outcome("c2", 0)));
        assert_eq!(lru.keys_by_recency(), ["c", "d", "a"]);
        assert_eq!(lru.get("c").unwrap().kernel, "c2");
    }

    #[test]
    fn canonical_key_collapses_json_field_order() {
        // The same request spelled with different JSON key orders must
        // produce one cache entry.
        let a: OptimizeRequest = serde_json::from_str(
            r#"{"nest":{"Kernel":{"name":"MM","size":64}},
                "cache":{"size":8192,"line":32,"assoc":1},
                "sampling":{"z":1.28,"half_width":0.05,"override_n":null},
                "ga":{"population":20,"crossover_prob":0.4,"mutation_prob":0.01,
                      "min_generations":20,"max_generations":50,
                      "convergence_margin":0.05,"seed":7},
                "strategy":"Tiling"}"#,
        )
        .unwrap_or_else(|e| panic!("fixture must parse: {e}"));
        let b: OptimizeRequest = serde_json::from_str(
            r#"{"strategy":"Tiling",
                "ga":{"seed":7,"convergence_margin":0.05,"max_generations":50,
                      "min_generations":20,"mutation_prob":0.01,"crossover_prob":0.4,
                      "population":20},
                "cache":{"assoc":1,"line":32,"size":8192},
                "sampling":{"override_n":null,"half_width":0.05,"z":1.28},
                "nest":{"Kernel":{"size":64,"name":"MM"}}}"#,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(canonical_key(&a), canonical_key(&b));

        let cache = OutcomeCache::new(16);
        cache.insert(canonical_key(&a), &outcome("mm", 3));
        assert!(cache.get(&canonical_key(&b)).is_some(), "key-order variant must hit");
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
    }

    #[test]
    fn stored_outcomes_are_timing_stripped() {
        let cache = OutcomeCache::new(4);
        cache.insert("k".into(), &outcome("x", 1234));
        let got = cache.get("k").unwrap();
        assert_eq!(got.wall_ms, 0, "cache must hold the canonical comparison form");
        assert_eq!(got.without_timing(), outcome("x", 1234).without_timing());
    }

    #[test]
    fn capacity_bounds_hold_across_shards() {
        // 100 does not divide evenly over its 3 shards — the bound must
        // still be a hard ceiling, not rounded up per shard.
        for capacity in [8usize, 13, 100] {
            let cache = OutcomeCache::new(capacity);
            for k in 0..200 {
                cache.insert(format!("key-{k}"), &outcome("x", 0));
            }
            assert!(
                cache.len() <= capacity,
                "len {} exceeds configured capacity {capacity}",
                cache.len()
            );
            assert!(cache.evictions() >= 200 - capacity as u64);
        }
    }

    #[test]
    fn small_caches_use_one_shard_so_hot_keys_cannot_thrash() {
        // With a sub-32-entry capacity every entry lives in one LRU:
        // alternating between `capacity` distinct hot keys must hit every
        // time once warm, never evict.
        let cache = OutcomeCache::new(8);
        for k in 0..8 {
            cache.insert(format!("hot-{k}"), &outcome("x", 0));
        }
        for round in 0..3 {
            for k in 0..8 {
                assert!(cache.get(&format!("hot-{k}")).is_some(), "round {round} key {k}");
            }
        }
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.hits(), 24);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = OutcomeCache::new(0);
        cache.insert("k".into(), &outcome("x", 0));
        assert!(cache.get("k").is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.misses(), 1);
    }
}
