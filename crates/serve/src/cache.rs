//! Outcome memoisation for the service layer.
//!
//! The caches themselves moved to [`cme_runtime`] when cross-request
//! state became a subsystem of its own (the canonical-key rule, the
//! sharded LRU tiers and the optional persistent layer are documented
//! there). This module re-exports the service-facing names so existing
//! `cme_serve::cache::…` call sites keep working.

pub use cme_runtime::{
    canonical_key, canonical_lint_key, DiskStats, DiskTier, LintCache, Lru, OutcomeCache, Tier,
    TieredOutcomeCache,
};
