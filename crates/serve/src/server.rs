//! The TCP layer: a polling accept loop, bounded hand-off to the worker
//! pool (full queue ⇒ immediate 503, written by the accept thread), a
//! per-connection keep-alive driver, and graceful shutdown on
//! `POST /shutdown` or SIGINT/SIGTERM.
//!
//! Shutdown sequence: the flag flips (route handler or signal), the
//! accept loop notices within its poll interval and stops accepting, the
//! queue closes, and the read side of every registered connection is shut
//! down — workers blocked waiting for the *next* request on an idle
//! keep-alive socket wake immediately with EOF, while a worker mid-search
//! still writes its response (the write side stays open). Then
//! [`ServerHandle::join`] returns.

use crate::http::{parse_request, write_response, HttpParseError, HttpResponse};
use crate::pool::{BoundedQueue, WorkerPool};
use crate::router::App;
use crate::ServeConfig;
use std::collections::HashMap;
use std::io::{BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop re-checks the shutdown flag when idle.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Set by the signal handler; checked alongside the per-server flag so
/// one handler installation covers any number of servers.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Install SIGINT/SIGTERM handlers that flip the shared shutdown flag
/// (the handler only stores to an atomic — async-signal-safe). Call once
/// from the binary entry point; a no-op off Unix.
#[cfg(unix)]
pub fn install_signal_handlers() {
    unsafe extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
pub fn install_signal_handlers() {}

pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Clones of every connection a worker currently holds, so shutdown can
/// interrupt reads that would otherwise block until the read timeout.
struct ConnectionRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
    closing: AtomicBool,
}

impl ConnectionRegistry {
    fn new() -> Self {
        ConnectionRegistry {
            streams: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            closing: AtomicBool::new(false),
        }
    }

    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        if self.closing.load(Ordering::SeqCst) {
            // Shutdown already began: cut the read side right away so the
            // worker serves at most the bytes already in flight.
            let _ = clone.shutdown(Shutdown::Read);
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().unwrap_or_else(PoisonError::into_inner).insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.streams.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
    }

    /// Stop the read side of every live connection. Blocked
    /// `parse_request` calls return EOF immediately; responses already
    /// being computed still go out on the intact write side.
    fn shutdown_reads(&self) {
        self.closing.store(true, Ordering::SeqCst);
        let streams =
            std::mem::take(&mut *self.streams.lock().unwrap_or_else(PoisonError::into_inner));
        for stream in streams.into_values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// A running server: its bound address, shared [`App`] state (metrics and
/// cache are readable from here), and the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    app: Arc<App>,
    accept: JoinHandle<()>,
    pool: WorkerPool,
}

impl ServerHandle {
    /// The actually bound address (resolves `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Begin graceful shutdown (idempotent; `join` completes it).
    pub fn shutdown(&self) {
        self.app.request_shutdown();
    }

    /// Wait until the accept loop and every worker have exited.
    pub fn join(self) {
        let _ = self.accept.join();
        self.pool.join();
    }

    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Bind, spawn the accept loop and the worker pool, and return
/// immediately. The server runs until shutdown is requested.
pub fn start(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr.as_str())?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let app = Arc::new(App::new(config.workers, config.cache_entries));
    let queue = Arc::new(BoundedQueue::new(config.queue_depth));
    let registry = Arc::new(ConnectionRegistry::new());

    let pool = {
        let app = Arc::clone(&app);
        let queue = Arc::clone(&queue);
        let registry = Arc::clone(&registry);
        let read_timeout = config.read_timeout;
        let max_body = config.max_body_bytes;
        WorkerPool::spawn(config.workers, Arc::clone(&queue), move |stream: TcpStream| {
            app.metrics.queue_depth.store(queue.len() as u64, Ordering::Relaxed);
            let id = registry.register(&stream);
            handle_connection(&app, stream, read_timeout, max_body);
            if let Some(id) = id {
                registry.deregister(id);
            }
        })
    };

    let accept = {
        let app = Arc::clone(&app);
        std::thread::Builder::new()
            .name("cme-serve-accept".into())
            .spawn(move || accept_loop(&listener, &app, &queue, &registry))
            .expect("spawn accept thread")
    };

    Ok(ServerHandle { addr, app, accept, pool })
}

fn accept_loop(
    listener: &TcpListener,
    app: &Arc<App>,
    queue: &Arc<BoundedQueue<TcpStream>>,
    registry: &ConnectionRegistry,
) {
    loop {
        if app.shutdown_requested() || signalled() {
            // Fold the signal into the app flag so workers mid-keep-alive
            // stop after their current response instead of serving an
            // active client forever.
            app.request_shutdown();
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Accepted sockets must be blocking regardless of what
                // they inherit from the non-blocking listener.
                let _ = stream.set_nonblocking(false);
                match queue.try_push(stream) {
                    Ok(()) => {
                        app.metrics.queue_depth.store(queue.len() as u64, Ordering::Relaxed);
                    }
                    Err(stream) => {
                        app.metrics.rejected_total.fetch_add(1, Ordering::Relaxed);
                        reject_overloaded(stream);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept failures (EMFILE, ECONNABORTED, …): back
            // off briefly instead of spinning or dying.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    queue.close();
    // Wake workers parked on idle keep-alive reads; see module docs.
    registry.shutdown_reads();
}

/// Backpressure: answer 503 from the accept thread and drop the
/// connection — memory stays bounded by the queue, never by the arrival
/// rate. The client's request bytes are drained (without blocking accept)
/// before closing: unread receive-buffer data would otherwise turn the
/// close into a TCP RST that can discard the 503 in flight.
fn reject_overloaded(mut stream: TcpStream) {
    let drain = |stream: &mut TcpStream| {
        // Bounded and non-blocking: stop at WouldBlock, EOF, or a cap, so
        // neither a silent nor a flooding client can stall the accept
        // thread.
        let mut scratch = [0u8; 4096];
        let mut drained = 0usize;
        while drained < 64 * 1024 {
            match stream.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n,
            }
        }
    };
    let _ = stream.set_nonblocking(true);
    drain(&mut stream);
    let resp = HttpResponse::error(503, "server overloaded: request queue is full, retry later");
    let _ = stream.set_nonblocking(false);
    let _ = write_response(&mut stream, &resp, false);
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_nonblocking(true);
    drain(&mut stream);
}

/// Drive one connection: parse → route → respond, looping while
/// keep-alive holds and shutdown has not begun.
fn handle_connection(app: &App, stream: TcpStream, read_timeout: Duration, max_body: usize) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    loop {
        match parse_request(&mut reader, max_body) {
            Ok(req) => {
                let resp = app.handle(&req);
                // Evaluated after handling so a `/shutdown` response
                // closes its own connection.
                let keep = req.keep_alive() && !app.shutdown_requested();
                if write_response(&mut writer, &resp, keep).is_err() || !keep {
                    return;
                }
            }
            // Peer closed (or timed out) — nothing useful to answer.
            Err(HttpParseError::ConnectionClosed | HttpParseError::Io(_)) => return,
            Err(HttpParseError::Malformed(msg)) => {
                let _ = write_response(&mut writer, &HttpResponse::error(400, &msg), false);
                return;
            }
            Err(HttpParseError::BodyTooLarge { declared, cap }) => {
                let msg = format!("body of {declared} bytes exceeds the {cap}-byte cap");
                let _ = write_response(&mut writer, &HttpResponse::error(413, &msg), false);
                return;
            }
        }
    }
}
