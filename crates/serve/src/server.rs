//! The TCP layer, built around **readiness** rather than
//! blocking-reads-per-worker: a single IO driver thread owns the
//! listener and every connection that is *between* requests, reads
//! whatever bytes are available without ever blocking, and hands a
//! connection to the worker pool only once a complete request has been
//! framed. Workers therefore never wait on a peer's send rate — a client
//! that dribbles a request one byte a second costs the driver a buffer,
//! not a worker.
//!
//! Life of a connection:
//!
//! ```text
//!   accept ──► driver read/frame loop ──► bounded queue ──► worker
//!     ▲   (nonblocking; 400/413/503/timeouts   (full ⇒ 503)   handle +
//!     │    answered right here)                               write
//!     └────────────── keep-alive return ◄─────────────────────┘
//! ```
//!
//! * The driver *waits on readiness* instead of sleeping: between
//!   passes it parks in `poll(2)` over the listener, every owned
//!   connection, and a self-wake pipe the workers nudge when they return
//!   a keep-alive connection — so a response is followed by the next
//!   request's read on the very next pass, not after a timer tick. (On
//!   non-Unix targets the wait degrades to a short sleep.) Each pass
//!   accepts new sockets, drains readable bytes into per-connection
//!   buffers, frames requests with [`frame_request`], and enforces the
//!   read deadline so a stalled peer is dropped instead of parked on.
//! * Backpressure is unchanged from the worker-pool design: the queue of
//!   *ready* requests is bounded, and overflow is answered `503` at once
//!   — but now only fully-read requests occupy slots, so slow senders
//!   can't fill it. The connection table itself is also bounded
//!   (`queue_depth + 2·workers + 32`); beyond that, accepts get the same
//!   `503`.
//! * Workers write responses with a write timeout (the configured read
//!   timeout), so a peer that stops *receiving* releases the worker too;
//!   on keep-alive the connection goes back to the driver for the next
//!   request, carrying any pipelined bytes already read.
//!
//! Shutdown (route handler or SIGINT/SIGTERM): the driver stops
//! accepting, drops idle connections, and closes the queue; workers
//! drain the requests already framed (a worker mid-search still writes
//! its response); [`ServerHandle::join`] then flushes the runtime's
//! persistent tier and returns.

use crate::http::{
    frame_request, write_response, Frame, HttpParseError, HttpRequest, HttpResponse,
};
use crate::pool::{BoundedQueue, WorkerPool};
use crate::router::App;
use crate::ServeConfig;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on one readiness wait: shutdown requested through the
/// route handler (no fd event, no nudge) is noticed within this.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// How long accepts stay gated after a transient `accept` failure
/// (EMFILE, ECONNABORTED, …).
const ACCEPT_BACKOFF: Duration = Duration::from_millis(10);

/// Set by the signal handler; checked alongside the per-server flag so
/// one handler installation covers any number of servers.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Install SIGINT/SIGTERM handlers that flip the shared shutdown flag
/// (the handler only stores to an atomic — async-signal-safe). Call once
/// from the binary entry point; a no-op off Unix.
#[cfg(unix)]
pub fn install_signal_handlers() {
    unsafe extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
pub fn install_signal_handlers() {}

pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// A connection owned by the IO driver: its socket (nonblocking while
/// here), the bytes read so far of the request being framed, and the
/// deadline after which a silent peer is dropped.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    deadline: Instant,
}

/// A fully-framed request handed to a worker: the socket (made blocking
/// by the worker), the request, and any pipelined bytes read beyond it.
struct Job {
    stream: TcpStream,
    req: HttpRequest,
    remainder: Vec<u8>,
}

/// Keep-alive connections on their way back from workers to the driver,
/// plus the write half of the driver's self-wake pipe: a push nudges the
/// driver out of its readiness wait, so the connection's next request is
/// read immediately instead of after a timer tick.
struct ReturnLane {
    conns: Mutex<Vec<Conn>>,
    #[cfg(unix)]
    wake: std::os::unix::net::UnixStream,
}

impl ReturnLane {
    /// Build the lane and the read half of its wake pipe (the driver
    /// includes it in every readiness wait and drains it when signalled).
    #[cfg(unix)]
    fn new() -> (Self, std::os::unix::net::UnixStream) {
        let (wake, wake_rx) =
            std::os::unix::net::UnixStream::pair().expect("socketpair for driver wake");
        // Both halves nonblocking: a full pipe just coalesces nudges, and
        // the driver's drain stops at WouldBlock.
        wake.set_nonblocking(true).expect("nonblocking wake tx");
        wake_rx.set_nonblocking(true).expect("nonblocking wake rx");
        (ReturnLane { conns: Mutex::new(Vec::new()), wake }, wake_rx)
    }

    #[cfg(not(unix))]
    fn new() -> (Self, ()) {
        (ReturnLane { conns: Mutex::new(Vec::new()) }, ())
    }

    fn push(&self, conn: Conn) {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner).push(conn);
        self.nudge();
    }

    /// Wake the driver (best-effort: a full pipe already guarantees a
    /// pending wakeup, and errors only cost latency, not correctness).
    fn nudge(&self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            let _ = (&self.wake).write(&[1u8]);
        }
    }

    fn drain(&self) -> Vec<Conn> {
        std::mem::take(&mut *self.conns.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Debounce for transient `accept` failures: instead of sleeping on the
/// driver thread (which would stall every established connection for the
/// backoff), the gate marks accepts unready until a deadline and the
/// driver keeps polling and serving the connections it already owns.
struct AcceptGate {
    until: Option<Instant>,
}

impl AcceptGate {
    fn new() -> Self {
        AcceptGate { until: None }
    }

    /// May the driver call `accept` now? Clears an expired backoff.
    fn ready(&mut self, now: Instant) -> bool {
        match self.until {
            Some(t) if now < t => false,
            _ => {
                self.until = None;
                true
            }
        }
    }

    /// Record a transient failure: gate accepts for `ACCEPT_BACKOFF`.
    fn trip(&mut self, now: Instant) {
        self.until = Some(now + ACCEPT_BACKOFF);
    }

    /// Time left on the gate (None when accepts are ready) — bounds the
    /// readiness wait so the backoff expires on schedule.
    fn remaining(&self, now: Instant) -> Option<Duration> {
        self.until.map(|t| t.saturating_duration_since(now))
    }
}

/// A running server: its bound address, shared [`App`] state (metrics and
/// caches are readable from here), and the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    app: Arc<App>,
    driver: JoinHandle<()>,
    pool: WorkerPool,
}

impl ServerHandle {
    /// The actually bound address (resolves `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Begin graceful shutdown (idempotent; `join` completes it).
    pub fn shutdown(&self) {
        self.app.request_shutdown();
    }

    /// Wait until the driver and every worker have exited, then flush
    /// the runtime's persistent tier (catching outcomes computed after
    /// any `/shutdown`-route flush).
    pub fn join(self) {
        let _ = self.driver.join();
        self.pool.join();
        self.app.runtime.flush();
    }

    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Bind, spawn the IO driver and the worker pool, and return
/// immediately. The server runs until shutdown is requested.
pub fn start(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr.as_str())?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let app = Arc::new(App::with_runtime(config.workers, &config.runtime_config()));
    let queue = Arc::new(BoundedQueue::new(config.queue_depth));
    let (returns, wake_rx) = ReturnLane::new();
    let returns = Arc::new(returns);

    let pool = {
        let app = Arc::clone(&app);
        let queue = Arc::clone(&queue);
        let returns = Arc::clone(&returns);
        let io_timeout = config.read_timeout;
        WorkerPool::spawn(config.workers, Arc::clone(&queue), move |job: Job| {
            app.metrics.queue_depth.store(queue.len() as u64, Ordering::Relaxed);
            serve_job(&app, job, io_timeout, &returns);
        })
    };

    let driver = {
        let app = Arc::clone(&app);
        let config = config.clone();
        std::thread::Builder::new()
            .name("cme-serve-io".into())
            .spawn(move || drive(&listener, &app, &queue, &returns, &wake_rx, &config))
            .expect("spawn io driver thread")
    };

    Ok(ServerHandle { addr, app, driver, pool })
}

/// Handle one framed request on a worker: blocking socket, bounded
/// write, then either return the connection to the driver (keep-alive)
/// or close it.
fn serve_job(app: &App, job: Job, io_timeout: Duration, returns: &ReturnLane) {
    let Job { stream, req, remainder } = job;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    // Write-side backpressure: a peer that stops reading its response
    // blocks this worker for at most the IO timeout, then the write
    // fails and the connection is dropped.
    let _ = stream.set_write_timeout(Some(io_timeout));
    let mut writer = stream;
    let resp = app.handle(&req);
    // Evaluated after handling so a `/shutdown` response closes its own
    // connection.
    let keep = req.keep_alive() && !app.shutdown_requested();
    if write_response(&mut writer, &resp, keep).is_err() || !keep {
        return;
    }
    if writer.set_nonblocking(true).is_ok() {
        returns.push(Conn {
            stream: writer,
            buf: remainder,
            deadline: Instant::now() + io_timeout,
        });
    }
}

/// What a driver pass decided to do with one connection.
enum Verdict {
    Keep,
    Close,
}

/// The IO driver loop: accept, read, frame, dispatch, expire — then wait
/// for *readiness* (listener, owned connections, or a worker's nudge)
/// instead of sleeping a fixed tick.
#[cfg(unix)]
type WakeRx = std::os::unix::net::UnixStream;
#[cfg(not(unix))]
type WakeRx = ();

fn drive(
    listener: &TcpListener,
    app: &Arc<App>,
    queue: &Arc<BoundedQueue<Job>>,
    returns: &ReturnLane,
    wake_rx: &WakeRx,
    config: &ServeConfig,
) {
    // Bound on connections the driver tracks; beyond it accepts are
    // 503'd so buffered heads can't grow without limit.
    let open_cap = config.queue_depth + 2 * config.workers + 32;
    let mut conns: Vec<Conn> = Vec::new();
    let mut accept_gate = AcceptGate::new();
    loop {
        if app.shutdown_requested() || signalled() {
            // Fold the signal into the app flag so workers returning
            // keep-alive connections close them instead.
            app.request_shutdown();
            break;
        }
        let mut progressed = false;

        // Keep-alive connections coming back from workers. Their
        // remainder buffers may already hold a pipelined request, so
        // they go through the same frame pass below.
        let returned = returns.drain();
        progressed |= !returned.is_empty();
        conns.extend(returned);

        // Accept burst (skipped while a transient-failure backoff is
        // live — established connections below are still polled).
        if accept_gate.ready(Instant::now()) {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        progressed = true;
                        if conns.len() >= open_cap {
                            app.metrics.rejected_total.fetch_add(1, Ordering::Relaxed);
                            reject_overloaded(stream);
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        conns.push(Conn {
                            stream,
                            buf: Vec::new(),
                            deadline: Instant::now() + config.read_timeout,
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    // Transient accept failures (EMFILE, ECONNABORTED, …):
                    // gate accepts briefly instead of sleeping, so the
                    // connections already being served don't stall.
                    Err(_) => {
                        accept_gate.trip(Instant::now());
                        break;
                    }
                }
            }
        }

        // Read + frame pass over every owned connection.
        let now = Instant::now();
        let mut k = 0;
        while k < conns.len() {
            let verdict = poll_conn(&mut conns[k], app, queue, config, now, &mut progressed);
            match verdict {
                Verdict::Keep => k += 1,
                Verdict::Close => {
                    // swap_remove is fine: order carries no fairness
                    // beyond the poll pass itself.
                    drop(conns.swap_remove(k));
                }
            }
        }

        if !progressed {
            let now = Instant::now();
            let timeout = match accept_gate.remaining(now) {
                // Wake when the accept backoff expires even if no fd
                // fires; the listener is excluded from the wait below
                // while gated, or a pending accept would busy-loop it.
                Some(left) => IDLE_POLL.min(left.max(Duration::from_millis(1))),
                None => IDLE_POLL,
            };
            wait_readable(listener, wake_rx, &conns, accept_gate.ready(now), timeout);
            drain_wake(wake_rx);
        }
    }
    // Stop feeding workers and let them drain what was already framed.
    queue.close();
    // Idle and half-read connections die with the driver (dropped here);
    // workers returning keep-alive conns after this point hit the closed
    // lane harmlessly — `join` happens after the pool drains.
    drop(conns.drain(..));
}

/// Read whatever is available on one connection, then try to frame and
/// dispatch requests. Returns whether the driver should keep polling it.
fn poll_conn(
    conn: &mut Conn,
    app: &Arc<App>,
    queue: &Arc<BoundedQueue<Job>>,
    config: &ServeConfig,
    now: Instant,
    progressed: &mut bool,
) -> Verdict {
    // Drain the socket without blocking.
    let mut scratch = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut scratch) {
            Ok(0) => return Verdict::Close, // peer closed
            Ok(n) => {
                *progressed = true;
                conn.buf.extend_from_slice(&scratch[..n]);
                conn.deadline = now + config.read_timeout;
                // Cap what one connection may buffer: a head is already
                // bounded by the framer, so the only way past the body
                // cap plus head room is a pipelining flood.
                if conn.buf.len() > config.max_body_bytes + crate::http::MAX_HEAD_BYTES {
                    answer_and_close(conn, &HttpResponse::error(413, "pipelined burst too large"));
                    return Verdict::Close;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Close,
        }
    }

    match frame_request(&conn.buf, config.max_body_bytes) {
        Frame::Incomplete => {
            if now >= conn.deadline {
                // Same contract as the old blocking read timeout: a
                // silent peer is dropped without a response.
                return Verdict::Close;
            }
            Verdict::Keep
        }
        Frame::Ready { req, consumed } => {
            *progressed = true;
            let remainder = conn.buf.split_off(consumed);
            let Ok(stream) = conn.stream.try_clone() else {
                return Verdict::Close;
            };
            let job = Job { stream, req, remainder };
            match queue.try_push(job) {
                Ok(()) => {
                    app.metrics.queue_depth.store(queue.len() as u64, Ordering::Relaxed);
                    // The worker owns the socket now (via its clone);
                    // the driver must stop polling this connection or it
                    // would steal the *next* request's bytes mid-handle.
                    Verdict::Close
                }
                Err(_job) => {
                    // The 503 contract: a full queue of *ready* requests
                    // answers immediately from the driver.
                    app.metrics.rejected_total.fetch_add(1, Ordering::Relaxed);
                    answer_and_close(
                        conn,
                        &HttpResponse::error(
                            503,
                            "server overloaded: request queue is full, retry later",
                        ),
                    );
                    Verdict::Close
                }
            }
        }
        Frame::Bad(e) => {
            let resp = match e {
                HttpParseError::BodyTooLarge { declared, cap } => HttpResponse::error(
                    413,
                    &format!("body of {declared} bytes exceeds the {cap}-byte cap"),
                ),
                HttpParseError::Malformed(msg) => HttpResponse::error(400, &msg),
                // Unreachable from a buffer (no IO, no EOF), but total.
                HttpParseError::ConnectionClosed | HttpParseError::Io(_) => {
                    return Verdict::Close;
                }
            };
            answer_and_close(conn, &resp);
            Verdict::Close
        }
    }
}

/// Best-effort error reply from the driver thread. The socket stays
/// nonblocking — these responses are small enough for the send buffer,
/// and the driver must never wait on a peer; a `WouldBlock` here just
/// costs the client its error body.
fn answer_and_close(conn: &mut Conn, resp: &HttpResponse) {
    let _ = write_response(&mut conn.stream, resp, false);
    let _ = conn.stream.shutdown(Shutdown::Both);
}

/// Park the driver until the listener, the wake pipe, or any owned
/// connection becomes readable — or `timeout` elapses. Readiness only
/// *ends the wait*: the next driver pass re-reads everything
/// nonblockingly, so spurious wakeups and `poll` errors are safe (they
/// degrade to the old timer-tick behaviour, never to a missed event).
/// `accept_ready` excludes the listener while accepts are gated, so a
/// pending connection can't busy-loop the backoff away.
#[cfg(unix)]
fn wait_readable(
    listener: &TcpListener,
    wake_rx: &WakeRx,
    conns: &[Conn],
    accept_ready: bool,
    timeout: Duration,
) {
    use std::os::unix::io::AsRawFd;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }
    const POLLIN: i16 = 0x001;
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    }

    let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len() + 2);
    if accept_ready {
        fds.push(PollFd { fd: listener.as_raw_fd(), events: POLLIN, revents: 0 });
    }
    fds.push(PollFd { fd: wake_rx.as_raw_fd(), events: POLLIN, revents: 0 });
    for conn in conns {
        fds.push(PollFd { fd: conn.stream.as_raw_fd(), events: POLLIN, revents: 0 });
    }
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    // SAFETY: `fds` outlives the call and `nfds` is its exact length;
    // `poll` only writes the `revents` fields within that slice.
    unsafe {
        poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, ms);
    }
}

#[cfg(not(unix))]
fn wait_readable(
    _listener: &TcpListener,
    _wake_rx: &WakeRx,
    _conns: &[Conn],
    _accept_ready: bool,
    timeout: Duration,
) {
    std::thread::sleep(timeout.min(Duration::from_millis(2)));
}

/// Clear pending nudges so the next wait parks (the bytes are
/// level-triggered wake tokens, not data).
fn drain_wake(wake_rx: &WakeRx) {
    #[cfg(unix)]
    {
        let mut scratch = [0u8; 64];
        let mut rx = wake_rx; // `&UnixStream` implements `Read`
        while matches!(Read::read(&mut rx, &mut scratch), Ok(n) if n > 0) {}
    }
    #[cfg(not(unix))]
    let _ = wake_rx;
}

/// Overload rejection for a just-accepted socket (connection table
/// full). The client's request bytes are drained (without blocking the
/// driver) before closing: unread receive-buffer data would otherwise
/// turn the close into a TCP RST that can discard the 503 in flight.
fn reject_overloaded(mut stream: TcpStream) {
    let drain = |stream: &mut TcpStream| {
        // Bounded and non-blocking: stop at WouldBlock, EOF, or a cap, so
        // neither a silent nor a flooding client can stall the driver.
        let mut scratch = [0u8; 4096];
        let mut drained = 0usize;
        while drained < 64 * 1024 {
            match stream.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n,
            }
        }
    };
    let _ = stream.set_nonblocking(true);
    drain(&mut stream);
    let resp = HttpResponse::error(503, "server overloaded: request queue is full, retry later");
    let _ = write_response(&mut stream, &resp, false);
    let _ = stream.shutdown(Shutdown::Write);
    drain(&mut stream);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_gate_blocks_only_until_the_deadline() {
        let t0 = Instant::now();
        let mut gate = AcceptGate::new();
        assert!(gate.ready(t0), "a fresh gate accepts");
        assert_eq!(gate.remaining(t0), None);

        gate.trip(t0);
        assert!(!gate.ready(t0), "a tripped gate blocks immediately");
        assert!(!gate.ready(t0 + ACCEPT_BACKOFF / 2), "still inside the backoff");
        assert_eq!(gate.remaining(t0 + ACCEPT_BACKOFF / 2), Some(ACCEPT_BACKOFF / 2));

        // The regression this guards: the backoff must *expire by clock*,
        // not by a driver-thread sleep — at the deadline the gate opens
        // and clears.
        assert!(gate.ready(t0 + ACCEPT_BACKOFF));
        assert_eq!(gate.remaining(t0 + ACCEPT_BACKOFF), None);

        // Re-tripping restarts the window.
        gate.trip(t0 + ACCEPT_BACKOFF);
        assert!(!gate.ready(t0 + ACCEPT_BACKOFF));
        assert!(gate.ready(t0 + ACCEPT_BACKOFF * 2));
    }

    #[cfg(unix)]
    #[test]
    fn return_lane_nudges_are_drained_not_accumulated() {
        let (lane, rx) = ReturnLane::new();
        for _ in 0..10 {
            lane.nudge();
        }
        drain_wake(&rx);
        // Pipe empty again: a nonblocking read finds nothing.
        let mut one = [0u8; 1];
        let mut reader = &rx;
        match Read::read(&mut reader, &mut one) {
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::WouldBlock),
            Ok(n) => panic!("expected drained pipe, read {n} bytes"),
        }
    }
}
