//! HTTP/1.1 framing over any `BufRead`/`Write` pair — no sockets in this
//! module, so the parser and writer are unit-testable on byte buffers.
//!
//! Supports exactly what the service needs: request line + headers +
//! `Content-Length` bodies (transfer encodings are rejected), hard caps
//! on header and body size, and HTTP/1.0 / 1.1 keep-alive semantics.

use std::io::{BufRead, Write};

/// Total bytes allowed for the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    pub method: String,
    /// Path as sent; no route uses query strings, so they are not split.
    pub path: String,
    /// True for `HTTP/1.1`, false for `HTTP/1.0`.
    pub http11: bool,
    /// Header pairs; names are lower-cased at parse time.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Look up a header by (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an explicit
    /// `Connection` header overrides either.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(c) if c.contains("close") => false,
            Some(c) if c.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be read off the wire.
#[derive(Debug)]
pub enum HttpParseError {
    /// Clean EOF before the first byte of a request: the peer ended a
    /// keep-alive connection. Not an error to report.
    ConnectionClosed,
    /// Read failure (including read timeouts) mid-stream.
    Io(std::io::Error),
    /// Structurally invalid request — the response is a 400.
    Malformed(String),
    /// Declared body above the configured cap — the response is a 413.
    /// The body is *not* read, so a hostile `Content-Length` cannot make
    /// the server buffer it.
    BodyTooLarge { declared: usize, cap: usize },
}

/// Read one line (CRLF- or LF-terminated), charging its bytes against the
/// shared head budget. The read itself goes through a `Take` of the
/// remaining budget, so a newline-free flood can never buffer more than
/// `MAX_HEAD_BYTES` — the cap bounds memory, not just parsed size.
fn read_line<R: BufRead>(
    reader: &mut R,
    head_bytes: &mut usize,
    first: bool,
) -> Result<String, HttpParseError> {
    let mut buf = Vec::new();
    let budget = (MAX_HEAD_BYTES + 1 - *head_bytes) as u64;
    let mut limited = std::io::Read::take(&mut *reader, budget);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => {
            return Err(if first {
                HttpParseError::ConnectionClosed
            } else {
                HttpParseError::Malformed("unexpected EOF inside request head".into())
            });
        }
        Ok(_) => {}
        Err(e) => return Err(HttpParseError::Io(e)),
    }
    *head_bytes += buf.len();
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(HttpParseError::Malformed(format!(
            "request head exceeds {MAX_HEAD_BYTES} bytes"
        )));
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpParseError::Malformed("non-UTF-8 request head".into()))
}

/// Parse the request line and headers (no body) and validate the body
/// declaration; returns the body-less request plus the declared
/// `Content-Length`. Shared by the blocking reader ([`parse_request`])
/// and the buffer framer ([`frame_request`]).
fn parse_head<R: BufRead>(
    reader: &mut R,
    max_body: usize,
) -> Result<(HttpRequest, usize), HttpParseError> {
    let mut head_bytes = 0usize;
    let request_line = read_line(reader, &mut head_bytes, true)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpParseError::Malformed(format!("bad request line `{request_line}`")));
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpParseError::Malformed(format!("unsupported version `{other}`")));
        }
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut head_bytes, false)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpParseError::Malformed(format!("header without `:`: `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let req = HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        http11,
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpParseError::Malformed(
            "transfer encodings are not supported; send a Content-Length body".into(),
        ));
    }
    let declared = match req.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpParseError::Malformed(format!("bad Content-Length `{v}`")))?,
    };
    if declared > max_body {
        return Err(HttpParseError::BodyTooLarge { declared, cap: max_body });
    }
    Ok((req, declared))
}

/// Parse one request from the stream. Blocks until a full request (or an
/// error) is available; `max_body` caps the accepted `Content-Length`.
pub fn parse_request<R: BufRead>(
    reader: &mut R,
    max_body: usize,
) -> Result<HttpRequest, HttpParseError> {
    let (req, declared) = parse_head(reader, max_body)?;
    let mut body = vec![0u8; declared];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HttpParseError::Malformed("body shorter than Content-Length".into())
        } else {
            HttpParseError::Io(e)
        }
    })?;
    Ok(HttpRequest { body, ..req })
}

/// What [`frame_request`] found at the front of a connection buffer.
#[derive(Debug)]
pub enum Frame {
    /// Not enough bytes yet for a full request — keep reading.
    Incomplete,
    /// One complete request, occupying the first `consumed` buffer bytes
    /// (any remainder is the next pipelined request).
    Ready { req: HttpRequest, consumed: usize },
    /// The bytes can never become a valid request; answer and close.
    Bad(HttpParseError),
}

/// Index just past the head terminator (`\r\n\r\n`, or the bare `\n\n`
/// the line reader also tolerates), if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    // A lone `\n\n` is two bytes, so scanning windows of two finds both
    // forms; `\r\n\r\n` is recognised as the `\n` at its end preceded by
    // `\r\n` or `\n`.
    let mut k = 0;
    while k < buf.len() {
        if buf[k] == b'\n' {
            let rest = &buf[k + 1..];
            if rest.first() == Some(&b'\n') {
                return Some(k + 2);
            }
            if rest.len() >= 2 && rest[0] == b'\r' && rest[1] == b'\n' {
                return Some(k + 3);
            }
        }
        k += 1;
    }
    None
}

/// Try to frame one complete request from the front of `buf` — the
/// non-blocking counterpart of [`parse_request`], used by the readiness
/// core: the IO driver accumulates bytes as they arrive and calls this
/// after every read, so no thread ever *waits* on a slow peer.
pub fn frame_request(buf: &[u8], max_body: usize) -> Frame {
    let Some(head_end) = find_head_end(buf) else {
        // No terminator yet. A head that already exceeds the cap can
        // never become valid — refuse now rather than buffering more.
        if buf.len() > MAX_HEAD_BYTES {
            return Frame::Bad(HttpParseError::Malformed(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        return Frame::Incomplete;
    };
    let mut head = &buf[..head_end];
    let (req, declared) = match parse_head(&mut head, max_body) {
        Ok(parsed) => parsed,
        Err(e) => return Frame::Bad(e),
    };
    let body_end = head_end + declared;
    if buf.len() < body_end {
        return Frame::Incomplete;
    }
    let req = HttpRequest { body: buf[head_end..body_end].to_vec(), ..req };
    Frame::Ready { req, consumed: body_end }
}

/// A response ready for the wire. Every route answers JSON, so the
/// content type is fixed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    pub status: u16,
    pub body: String,
}

impl HttpResponse {
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        HttpResponse { status, body: body.into() }
    }

    /// An error body: `{"error": <JSON-escaped message>}`. Escaping is
    /// done by hand: the error path must be infallible — it cannot
    /// panic, and it cannot depend on a serialiser succeeding.
    pub fn error(status: u16, message: &str) -> Self {
        HttpResponse { status, body: format!("{{\"error\":{}}}", json_escape(message)) }
    }
}

/// Quote `s` as a JSON string literal (RFC 8259 §7: escape the quote,
/// the backslash and all control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialise a response, with the `Connection` header reflecting whether
/// the server will keep the stream open.
pub fn write_response<W: Write>(
    w: &mut W,
    resp: &HttpResponse,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        resp.status,
        status_reason(resp.status),
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    w.write_all(head.as_bytes())?;
    w.write_all(resp.body.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<HttpRequest, HttpParseError> {
        parse_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body_and_case_insensitive_headers() {
        let req = parse(b"POST /optimize HTTP/1.1\r\ncontent-LENGTH: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let k = |raw: &[u8]| parse(raw).unwrap().keep_alive();
        assert!(k(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(!k(b"GET / HTTP/1.0\r\n\r\n"));
        assert!(!k(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(k(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
    }

    #[test]
    fn two_pipelined_requests_parse_from_one_stream() {
        let raw: &[u8] = b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw);
        let a = parse_request(&mut reader, 1024).unwrap();
        assert_eq!((a.path.as_str(), a.body.as_slice()), ("/a", b"hi".as_slice()));
        let b = parse_request(&mut reader, 1024).unwrap();
        assert_eq!(b.path, "/b");
        assert!(matches!(parse_request(&mut reader, 1024), Err(HttpParseError::ConnectionClosed)));
    }

    #[test]
    fn malformed_request_line_is_rejected() {
        assert!(matches!(
            parse(b"NOT A VALID REQUEST LINE\r\n\r\n"),
            Err(HttpParseError::Malformed(_))
        ));
        assert!(matches!(parse(b"GET /\r\n\r\n"), Err(HttpParseError::Malformed(_))));
        assert!(matches!(parse(b"GET / HTTP/2\r\n\r\n"), Err(HttpParseError::Malformed(_))));
    }

    #[test]
    fn oversized_body_is_refused_without_reading_it() {
        // Declared 9999 > cap 1024, and the body bytes are absent — the
        // parser must refuse on the declaration alone.
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        match err {
            HttpParseError::BodyTooLarge { declared, cap } => {
                assert_eq!((declared, cap), (9999, 1024));
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_and_bad_length_are_malformed() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpParseError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(HttpParseError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(
            std::iter::repeat_n(b"X-Filler: aaaaaaaaaaaaaaaaaaaa\r\n".as_slice(), 600).flatten(),
        );
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(parse(&raw), Err(HttpParseError::Malformed(_))));
    }

    #[test]
    fn newline_free_flood_is_rejected_without_buffering_it() {
        // A request line with no terminator must fail at the head cap,
        // not accumulate the peer's entire stream in memory. The reader
        // below would hand out 1 GiB if asked; the parser must stop at
        // MAX_HEAD_BYTES + 1 bytes consumed.
        struct Flood {
            served: usize,
        }
        impl std::io::Read for Flood {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = buf.len().min(1 << 30);
                buf[..n].fill(b'a');
                self.served += n;
                Ok(n)
            }
        }
        let mut reader = BufReader::new(Flood { served: 0 });
        assert!(matches!(parse_request(&mut reader, 1024), Err(HttpParseError::Malformed(_))));
        assert!(
            reader.get_ref().served <= MAX_HEAD_BYTES + 8 * 1024 + 1,
            "parser consumed {} bytes — the head cap did not bound the read",
            reader.get_ref().served
        );
    }

    #[test]
    fn response_wire_format_round_trips() {
        let mut out = Vec::new();
        write_response(&mut out, &HttpResponse::json(200, "{\"ok\":true}"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, &HttpResponse::error(503, "queue full"), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }

    #[test]
    fn error_bodies_are_valid_json_for_any_message() {
        // The hand escaper must agree with a real JSON parser on quotes,
        // backslashes, newlines and raw control characters.
        for msg in ["plain", "with \"quotes\"", "back\\slash", "line\nbreak\ttab", "ctrl\u{1}end"] {
            let resp = HttpResponse::error(400, msg);
            let parsed: serde::Value = serde_json::from_str(&resp.body)
                .unwrap_or_else(|e| panic!("body {:?} must parse: {e}", resp.body));
            assert_eq!(parsed.get("error").and_then(serde::Value::as_str), Some(msg));
        }
    }

    #[test]
    fn frame_grows_byte_by_byte_then_yields_one_request() {
        let wire = b"POST /optimize HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 0..wire.len() {
            assert!(
                matches!(frame_request(&wire[..cut], 1024), Frame::Incomplete),
                "prefix of {cut} bytes must be Incomplete"
            );
        }
        match frame_request(wire, 1024) {
            Frame::Ready { req, consumed } => {
                assert_eq!(req.path, "/optimize");
                assert_eq!(req.body, b"body");
                assert_eq!(consumed, wire.len());
            }
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn frame_leaves_pipelined_bytes_for_the_next_request() {
        let wire =
            b"POST /lint HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /healthz HTTP/1.1\r\n\r\n";
        let Frame::Ready { req, consumed } = frame_request(wire, 1024) else {
            panic!("first request must frame");
        };
        assert_eq!(req.path, "/lint");
        assert_eq!(req.body, b"hi");
        let Frame::Ready { req: second, consumed: c2 } = frame_request(&wire[consumed..], 1024)
        else {
            panic!("pipelined request must frame from the remainder");
        };
        assert_eq!(second.path, "/healthz");
        assert_eq!(consumed + c2, wire.len());
    }

    #[test]
    fn frame_tolerates_bare_lf_terminators() {
        let Frame::Ready { req, .. } = frame_request(b"GET /healthz HTTP/1.1\n\n", 1024) else {
            panic!("bare-LF head must frame");
        };
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn frame_rejects_bad_heads_and_oversized_bodies() {
        assert!(matches!(
            frame_request(b"NOT HTTP\r\n\r\n", 1024),
            Frame::Bad(HttpParseError::Malformed(_))
        ));
        assert!(matches!(
            frame_request(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n", 1024),
            Frame::Bad(HttpParseError::BodyTooLarge { declared: 9999, cap: 1024 })
        ));
        // A terminator-free flood past the head cap can never become
        // valid; the framer refuses instead of buffering forever.
        let flood = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(matches!(frame_request(&flood, 1024), Frame::Bad(HttpParseError::Malformed(_))));
    }
}
