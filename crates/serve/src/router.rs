//! Method + path dispatch over the shared [`App`] state. Handlers take a
//! parsed [`HttpRequest`] and return an [`HttpResponse`], so the whole
//! routing layer is unit-testable without opening a socket.
//!
//! Routes:
//!
//! | Route             | Body                      | Result                          |
//! |-------------------|---------------------------|---------------------------------|
//! | `POST /optimize`  | one `OptimizeRequest`     | `Outcome` (memo-cached)         |
//! | `POST /analyze`   | one `AnalyzeRequest`      | `AnalyzeOutcome`                |
//! | `POST /lint`      | one `LintRequest`         | `LintOutcome` (memo-cached)     |
//! | `POST /compare`   | one `CompareRequest`      | `CompareOutcome` (memo-cached)  |
//! | `POST /batch`     | `[OptimizeRequest, ...]`  | array of outcomes / errors      |
//! | `GET /healthz`    | —                         | liveness + uptime               |
//! | `GET /metrics`    | —                         | the telemetry document          |
//! | `POST /shutdown`  | —                         | begins graceful shutdown        |
//!
//! Request bodies may omit `cache`, `sampling` and `ga` (and the analyze
//! extras); the paper's defaults are filled in **before** parsing, so a
//! minimal `{"nest": ..., "strategy": ...}` is a complete request and maps
//! to the same cache entry as its fully spelled-out form.

use crate::cache::canonical_key;
use crate::http::{HttpRequest, HttpResponse};
use crate::metrics::Metrics;
use cme_api::cme::{CacheSpec, SamplingConfig};
use cme_api::{ApiError, GaConfig, LintRequest, OptimizeRequest, Outcome};
use cme_runtime::{Resolution, Runtime, RuntimeConfig, RuntimeError};
use serde::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Shared service state: the process-wide [`Runtime`] (session,
/// displacement store, tiered outcome cache, lint cache, coalescing),
/// telemetry, and the graceful-shutdown flag. One `App` serves every
/// worker thread.
pub struct App {
    pub runtime: Runtime,
    pub metrics: Metrics,
    workers: usize,
    shutdown: AtomicBool,
}

impl App {
    /// Memory-only app: `cache_entries` sizes the outcome and lint
    /// caches, everything else at [`RuntimeConfig`] defaults.
    pub fn new(workers: usize, cache_entries: usize) -> App {
        App::with_runtime(
            workers,
            &RuntimeConfig {
                outcome_entries: cache_entries,
                lint_entries: cache_entries,
                ..RuntimeConfig::default()
            },
        )
    }

    pub fn with_runtime(workers: usize, config: &RuntimeConfig) -> App {
        App {
            runtime: Runtime::new(config),
            metrics: Metrics::new(),
            workers,
            shutdown: AtomicBool::new(false),
        }
    }

    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Route one request, maintaining the request counters and the
    /// whole-request latency histogram.
    pub fn handle(&self, req: &HttpRequest) -> HttpResponse {
        let started = Instant::now();
        self.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        let resp = self.route(req);
        if resp.status >= 400 {
            self.metrics.errors_total.fetch_add(1, Ordering::Relaxed);
        }
        self.metrics.request_us.record(started.elapsed());
        resp
    }

    fn route(&self, req: &HttpRequest) -> HttpResponse {
        let bump = |c: &std::sync::atomic::AtomicU64| {
            c.fetch_add(1, Ordering::Relaxed);
        };
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/optimize") => {
                bump(&self.metrics.routes.optimize);
                self.optimize(&req.body)
            }
            ("POST", "/analyze") => {
                bump(&self.metrics.routes.analyze);
                self.analyze(&req.body)
            }
            ("POST", "/lint") => {
                bump(&self.metrics.routes.lint);
                self.lint(&req.body)
            }
            ("POST", "/compare") => {
                bump(&self.metrics.routes.compare);
                self.compare(&req.body)
            }
            ("POST", "/batch") => {
                bump(&self.metrics.routes.batch);
                self.batch(&req.body)
            }
            ("GET", "/healthz") => {
                bump(&self.metrics.routes.healthz);
                HttpResponse::json(
                    200,
                    format!("{{\"status\":\"ok\",\"uptime_ms\":{}}}", self.metrics.uptime_ms()),
                )
            }
            ("GET", "/metrics") => {
                bump(&self.metrics.routes.metrics);
                let doc = self.metrics.snapshot(self.workers, &self.runtime);
                ok_json(&doc)
            }
            ("POST", "/shutdown") => {
                bump(&self.metrics.routes.shutdown);
                self.request_shutdown();
                // Flush the persistent outcome tier before answering, so
                // a client that drove `/shutdown` can rely on the warmed
                // entries being on disk. (The server flushes again after
                // the workers drain, catching outcomes still in flight.)
                let flushed = self.runtime.flush();
                HttpResponse::json(
                    200,
                    format!("{{\"status\":\"shutting down\",\"flushed\":{flushed}}}"),
                )
            }
            (_, "/optimize" | "/analyze" | "/lint" | "/compare" | "/batch" | "/shutdown") => {
                bump(&self.metrics.routes.unmatched);
                HttpResponse::error(405, "use POST for this route")
            }
            (_, "/healthz" | "/metrics") => {
                bump(&self.metrics.routes.unmatched);
                HttpResponse::error(405, "use GET for this route")
            }
            (_, path) => {
                bump(&self.metrics.routes.unmatched);
                HttpResponse::error(404, &format!("no route `{path}`"))
            }
        }
    }

    /// `POST /optimize`: parse → canonicalise → tiers. The runtime tries
    /// the hot outcome cache, then the persistent tier, then coalesces
    /// with any identical in-flight computation before actually running
    /// the search. The outcome comes back timing-stripped; this handler
    /// re-stamps `wall_ms` with the time the request actually took here
    /// (near-zero for hits, the search time for leaders).
    fn optimize(&self, body: &[u8]) -> HttpResponse {
        let started = Instant::now();
        let req = match parse_optimize_request(body) {
            Ok(req) => req,
            Err(resp) => return resp,
        };
        let (result, how) = self.runtime.optimize(&req);
        match result {
            Ok(mut out) => {
                out.wall_ms = started.elapsed().as_millis() as u64;
                match how {
                    Resolution::CacheHot | Resolution::CacheDisk => {
                        self.metrics.optimize_hit_us.record(started.elapsed());
                    }
                    Resolution::Computed | Resolution::Coalesced | Resolution::LeaderFailed => {
                        self.metrics.optimize_cold_us.record(started.elapsed());
                    }
                }
                ok_json(&out)
            }
            Err(RuntimeError::Api(e)) => api_error_response(&e),
            // The flight this request joined died with its leader; the
            // fault is the server's, not the request's.
            Err(RuntimeError::LeaderFailed) => HttpResponse::error(
                500,
                "the computation this request was coalesced onto failed; retry",
            ),
        }
    }

    /// `POST /analyze`: pure model queries are already fast (no GA), so
    /// they bypass the outcome cache.
    fn analyze(&self, body: &[u8]) -> HttpResponse {
        let mut value = match parse_json_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        fill_defaults(
            &mut value,
            &[
                ("cache", serde_json::to_value(&CacheSpec::paper_8k())),
                ("sampling", serde_json::to_value(&SamplingConfig::paper())),
                ("seed", Value::Int(0xCE11)),
                ("tiles", Value::Null),
                ("exhaustive", Value::Bool(false)),
            ],
        );
        let req: cme_api::AnalyzeRequest = match serde_json::from_value(&value) {
            Ok(req) => req,
            Err(e) => return HttpResponse::error(400, &format!("bad analyze request: {e}")),
        };
        match self.runtime.session().analyze(&req) {
            Ok(out) => ok_json(&out),
            Err(e) => api_error_response(&e),
        }
    }

    /// `POST /lint`: static dependence analysis + kernel lints. Lints
    /// are deterministic and searchless, yet memo-cached like `/optimize`
    /// (same canonical-key rule, own LRU) so repeated editor/CI polls of
    /// one kernel cost a hash lookup.
    fn lint(&self, body: &[u8]) -> HttpResponse {
        let started = Instant::now();
        let mut value = match parse_json_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        fill_defaults(&mut value, &[("cache", serde_json::to_value(&CacheSpec::paper_8k()))]);
        let req: LintRequest = match serde_json::from_value(&value) {
            Ok(req) => req,
            Err(e) => return HttpResponse::error(400, &format!("bad lint request: {e}")),
        };
        match self.runtime.lint(&req) {
            (Ok(mut out), hit) => {
                out.wall_ms = started.elapsed().as_millis() as u64;
                if hit {
                    self.metrics.lint_hit_us.record(started.elapsed());
                } else {
                    self.metrics.lint_cold_us.record(started.elapsed());
                }
                ok_json(&out)
            }
            (Err(e), _) => api_error_response(&e),
        }
    }

    /// `POST /compare`: a strategy tournament over one base request.
    /// The `strategies` array accepts CLI-style tokens (`"ga"`,
    /// `"oblivious"`, `"latency"`, `"baseline:lrw"`, ...) alongside full
    /// `StrategySpec` JSON values, and defaults to the standard four-way
    /// line-up when absent. The runtime answers from its compare memo
    /// when it can, reusing the per-family outcome cache otherwise; the
    /// outcome comes back timing-stripped and `wall_ms` is re-stamped
    /// here, like `/optimize`.
    fn compare(&self, body: &[u8]) -> HttpResponse {
        let started = Instant::now();
        let req = match parse_compare_request(body) {
            Ok(req) => req,
            Err(resp) => return resp,
        };
        match self.runtime.compare(&req) {
            (Ok(mut out), hit) => {
                out.wall_ms = started.elapsed().as_millis() as u64;
                if hit {
                    self.metrics.compare_hit_us.record(started.elapsed());
                } else {
                    self.metrics.compare_cold_us.record(started.elapsed());
                }
                ok_json(&out)
            }
            (Err(e), _) => api_error_response(&e),
        }
    }

    /// `POST /batch`: a JSON array of optimize requests. Hits come from
    /// the cache; the misses run through `Session::run_batch` (rayon) in
    /// request order. Per-request failures do not fail the batch — each
    /// slot is either an `Outcome` or an error object.
    fn batch(&self, body: &[u8]) -> HttpResponse {
        let value = match parse_json_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let Some(items) = value.as_array() else {
            return HttpResponse::error(400, "batch body must be a JSON array of requests");
        };
        let mut reqs = Vec::with_capacity(items.len());
        for (k, item) in items.iter().enumerate() {
            let mut item = item.clone();
            fill_optimize_defaults(&mut item);
            match serde_json::from_value::<OptimizeRequest>(&item) {
                Ok(req) => reqs.push(req),
                Err(e) => {
                    return HttpResponse::error(400, &format!("bad request at index {k}: {e}"));
                }
            }
        }

        // Cache pass (both tiers): hits are re-stamped with their
        // (near-zero) lookup time, exactly like the single-request route.
        // Misses run through `Session::run_batch` below rather than the
        // coalescing group — the dedup pass already collapses duplicates
        // *within* the batch, which is the common case.
        let keys: Vec<String> = reqs.iter().map(canonical_key).collect();
        let mut slots: Vec<Option<Result<Outcome, ApiError>>> = keys
            .iter()
            .map(|key| {
                let started = Instant::now();
                self.runtime.outcomes().get(key).map(|mut out| {
                    out.wall_ms = started.elapsed().as_millis() as u64;
                    Ok(out)
                })
            })
            .collect();

        // Deduplicate the misses by canonical key so `[X, X, X]` runs the
        // search once and fans the outcome back out to every slot.
        let mut unique_reqs: Vec<OptimizeRequest> = Vec::new();
        let mut unique_keys: Vec<String> = Vec::new();
        let mut slot_unique: Vec<(usize, usize)> = Vec::new();
        let mut by_key: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for k in 0..slots.len() {
            if slots[k].is_none() {
                let u = *by_key.entry(keys[k].as_str()).or_insert_with(|| {
                    unique_reqs.push(reqs[k].clone());
                    unique_keys.push(keys[k].clone());
                    unique_reqs.len() - 1
                });
                slot_unique.push((k, u));
            }
        }
        let unique_results = self.runtime.session().run_batch(&unique_reqs);
        for (key, result) in unique_keys.iter().zip(&unique_results) {
            if let Ok(out) = result {
                self.runtime.outcomes().insert(key.clone(), out);
            }
        }
        for (k, u) in slot_unique {
            slots[k] = Some(unique_results[u].clone());
        }

        let results: Vec<Value> = slots
            .into_iter()
            .map(|slot| match slot {
                Some(Ok(out)) => serde_json::to_value(&out),
                Some(Err(e)) => Value::Object(vec![
                    ("error".into(), serde_json::to_value(&e)),
                    ("message".into(), Value::Str(e.to_string())),
                ]),
                // Unreachable by construction (every miss slot was filled
                // from `slot_unique`), but a handler must not panic.
                None => Value::Object(vec![(
                    "error".into(),
                    Value::Str("internal: batch slot left unfilled".into()),
                )]),
            })
            .collect();
        ok_json(&results)
    }
}

/// Serialise a 200 response body; a serialisation failure is answered as
/// a 500 instead of unwinding the worker thread.
fn ok_json<T: serde::Serialize>(value: &T) -> HttpResponse {
    match serde_json::to_string(value) {
        Ok(body) => HttpResponse::json(200, body),
        Err(e) => HttpResponse::error(500, &format!("response serialisation failed: {e}")),
    }
}

/// The HTTP status an [`ApiError`] maps to.
pub fn api_error_status(e: &ApiError) -> u16 {
    match e {
        ApiError::UnknownKernel(_) => 404,
        ApiError::BadRequest(_) => 400,
        ApiError::IllegalTransform(_) | ApiError::TooLarge(_) => 422,
    }
}

fn api_error_response(e: &ApiError) -> HttpResponse {
    let body = Value::Object(vec![
        ("error".into(), serde_json::to_value(e)),
        ("message".into(), Value::Str(e.to_string())),
    ]);
    match serde_json::to_string(&body) {
        Ok(json) => HttpResponse::json(api_error_status(e), json),
        // `HttpResponse::error` escapes by hand, so the fallback cannot
        // fail; only the structured `"error"` tag is lost.
        Err(_) => HttpResponse::error(api_error_status(e), &e.to_string()),
    }
}

fn parse_json_body(body: &[u8]) -> Result<Value, HttpResponse> {
    let text =
        std::str::from_utf8(body).map_err(|_| HttpResponse::error(400, "body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| HttpResponse::error(400, &format!("bad JSON: {e}")))
}

/// Add defaults for absent top-level fields (no-op on non-objects — the
/// parse that follows reports the real error).
fn fill_defaults(value: &mut Value, defaults: &[(&str, Value)]) {
    if let Value::Object(fields) = value {
        for (name, default) in defaults {
            if serde::get_field(fields, name).is_none() {
                fields.push(((*name).to_string(), default.clone()));
            }
        }
    }
}

fn fill_optimize_defaults(value: &mut Value) {
    fill_defaults(
        value,
        &[
            ("cache", serde_json::to_value(&CacheSpec::paper_8k())),
            ("sampling", serde_json::to_value(&SamplingConfig::paper())),
            ("ga", serde_json::to_value(&GaConfig::default())),
        ],
    );
}

/// Parse an `/optimize` body: JSON → defaults → typed request.
pub fn parse_optimize_request(body: &[u8]) -> Result<OptimizeRequest, HttpResponse> {
    let mut value = parse_json_body(body)?;
    fill_optimize_defaults(&mut value);
    serde_json::from_value(&value)
        .map_err(|e| HttpResponse::error(400, &format!("bad optimize request: {e}")))
}

/// Parse a `/compare` body: JSON → defaults on the base request and the
/// line-up → token mapping → typed request. The base request's own
/// `strategy` defaults to `"Tiling"` (the tournament ignores it, but the
/// type requires one); an absent `strategies` array becomes the standard
/// four-way line-up.
pub fn parse_compare_request(body: &[u8]) -> Result<cme_api::CompareRequest, HttpResponse> {
    let mut value = parse_json_body(body)?;
    if let Value::Object(fields) = &mut value {
        if serde::get_field(fields, "strategies").is_none() {
            fields.push((
                "strategies".into(),
                Value::Array(
                    ["ga", "oblivious", "latency", "baseline:lrw"]
                        .iter()
                        .map(|t| Value::Str((*t).to_string()))
                        .collect(),
                ),
            ));
        }
        for (name, member) in fields.iter_mut() {
            match (name.as_str(), member) {
                ("base", base) => {
                    fill_optimize_defaults(base);
                    fill_defaults(base, &[("strategy", Value::Str("Tiling".into()))]);
                }
                ("strategies", Value::Array(items)) => {
                    for item in items.iter_mut() {
                        // CLI-style tokens become full specs; other
                        // strings (e.g. serde unit variants like
                        // "Tiling") fall through to the typed parse.
                        if let Value::Str(token) = item {
                            if let Ok(spec) = cme_api::StrategySpec::parse_token(token) {
                                *item = serde_json::to_value(&spec);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    serde_json::from_value(&value)
        .map_err(|e| HttpResponse::error(400, &format!("bad compare request: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_api::Session;
    fn post(path: &str, body: &str) -> HttpRequest {
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            http11: true,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            http11: true,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A cheap deterministic request: exhaustive sweep of a tiny
    /// transpose (no GA, a few hundred evaluations).
    const TINY: &str = r#"{
        "nest": {"Kernel": {"name": "T2D", "size": 12}},
        "cache": {"size": 256, "line": 16, "assoc": 1},
        "strategy": {"Exhaustive": {"step": 4, "max_evals": 500}}
    }"#;

    #[test]
    fn healthz_and_metrics_answer() {
        let app = App::new(2, 8);
        let h = app.handle(&get("/healthz"));
        assert_eq!(h.status, 200);
        assert!(h.body.contains("\"status\":\"ok\""));
        let m = app.handle(&get("/metrics"));
        assert_eq!(m.status, 200);
        let doc: Value = serde_json::from_str(&m.body).unwrap();
        // (The wire parser reads small numbers back as `Int`. The count
        // is 2: the `/metrics` request itself is tallied before the
        // snapshot is taken.)
        assert_eq!(doc.get("requests_total"), Some(&Value::Int(2)), "healthz was counted");
        assert_eq!(doc.get("workers"), Some(&Value::Int(2)));
    }

    #[test]
    fn optimize_with_defaults_matches_session_run_timing_stripped() {
        let app = App::new(1, 8);
        let resp = app.handle(&post("/optimize", TINY));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let served: Outcome = serde_json::from_str(&resp.body).unwrap();

        let direct =
            Session::default().run(&parse_optimize_request(TINY.as_bytes()).unwrap()).unwrap();
        assert_eq!(served.without_timing(), direct.without_timing());
    }

    #[test]
    fn second_identical_request_hits_the_cache() {
        let app = App::new(1, 8);
        let cold = app.handle(&post("/optimize", TINY));
        assert_eq!(app.runtime.outcomes().hits(), 0);
        // Different key order and spelled-out defaults — still the same
        // canonical request.
        let reordered = format!(
            r#"{{"strategy": {{"Exhaustive": {{"max_evals": 500, "step": 4}}}},
                "cache": {{"assoc": 1, "size": 256, "line": 16}},
                "nest": {{"Kernel": {{"size": 12, "name": "T2D"}}}},
                "ga": {ga}}}"#,
            ga = serde_json::to_string(&GaConfig::default()).unwrap()
        );
        let hot = app.handle(&post("/optimize", &reordered));
        assert_eq!(hot.status, 200, "{}", hot.body);
        assert_eq!(app.runtime.outcomes().hits(), 1);
        let a: Outcome = serde_json::from_str(&cold.body).unwrap();
        let b: Outcome = serde_json::from_str(&hot.body).unwrap();
        assert_eq!(a.without_timing(), b.without_timing());
    }

    #[test]
    fn inline_nests_share_one_canonical_cache_entry() {
        // The outcome cache is keyed by the canonical re-serialised
        // request; that must cover inline nests too, so spelling variants
        // of one inline kernel (key order, spelled-out defaults) collapse
        // to a single entry.
        let app = App::new(1, 8);
        let inline = r#"{
            "nest": {"Inline": {
                "name": "tiny",
                "loops": [{"name": "i", "lo": 1, "hi": 8}],
                "arrays": [{"name": "x", "extents": [8], "elem_size": 4,
                            "layout": "ColumnMajor"}],
                "refs": [{"array": 0, "subscripts": [{"coeffs": [1], "c0": 0}],
                          "access": "Write"}]
            }},
            "cache": {"size": 256, "line": 16, "assoc": 1},
            "strategy": {"Exhaustive": {"step": 1, "max_evals": 100}}
        }"#;
        let cold = app.handle(&post("/optimize", inline));
        assert_eq!(cold.status, 200, "{}", cold.body);
        assert_eq!(app.runtime.outcomes().hits(), 0);
        let respelled = r#"{
            "strategy": {"Exhaustive": {"max_evals": 100, "step": 1}},
            "cache": {"assoc": 1, "line": 16, "size": 256},
            "nest": {"Inline": {
                "refs": [{"access": "Write", "array": 0,
                          "subscripts": [{"c0": 0, "coeffs": [1]}]}],
                "arrays": [{"layout": "ColumnMajor", "elem_size": 4,
                            "extents": [8], "name": "x"}],
                "loops": [{"hi": 8, "lo": 1, "name": "i"}],
                "name": "tiny"
            }}
        }"#;
        let hot = app.handle(&post("/optimize", respelled));
        assert_eq!(hot.status, 200, "{}", hot.body);
        assert_eq!(app.runtime.outcomes().hits(), 1, "inline spelling variants share one key");
        assert_eq!(app.runtime.outcomes().len(), 1);
        let a: Outcome = serde_json::from_str(&cold.body).unwrap();
        let b: Outcome = serde_json::from_str(&hot.body).unwrap();
        assert_eq!(a.without_timing(), b.without_timing());
        assert_eq!(a.kernel, "tiny");
    }

    #[test]
    fn api_errors_map_to_http_statuses() {
        let app = App::new(1, 8);
        let unknown = app.handle(&post(
            "/optimize",
            r#"{"nest": {"Kernel": {"name": "NOPE", "size": null}}, "strategy": "Tiling"}"#,
        ));
        assert_eq!(unknown.status, 404, "{}", unknown.body);
        assert!(unknown.body.contains("UnknownKernel"));

        let too_large = app.handle(&post(
            "/optimize",
            r#"{"nest": {"Kernel": {"name": "T2D", "size": 64}},
                "strategy": {"Exhaustive": {"step": 1, "max_evals": 2}}}"#,
        ));
        assert_eq!(too_large.status, 422, "{}", too_large.body);

        assert_eq!(app.handle(&post("/optimize", "not json")).status, 400);
        assert_eq!(app.handle(&post("/optimize", "[1,2]")).status, 400);
    }

    #[test]
    fn unknown_routes_and_methods_are_refused() {
        let app = App::new(1, 8);
        assert_eq!(app.handle(&get("/nope")).status, 404);
        assert_eq!(app.handle(&get("/optimize")).status, 405);
        assert_eq!(app.handle(&post("/metrics", "")).status, 405);
        let m = app.handle(&get("/metrics"));
        let doc: Value = serde_json::from_str(&m.body).unwrap();
        assert_eq!(doc.get("errors_total"), Some(&Value::Int(3)));
    }

    #[test]
    fn batch_mixes_cache_hits_errors_and_fresh_runs() {
        let app = App::new(1, 8);
        app.handle(&post("/optimize", TINY)); // warm one entry
                                              // Slot 3 duplicates slot 2's cold request: the dedup pass must run
                                              // the search once and fan the outcome out to both slots.
        let fresh = r#"{"nest": {"Kernel": {"name": "T2D", "size": 8}},
                        "cache": {"size": 256, "line": 16, "assoc": 1},
                        "strategy": {"Exhaustive": {"step": 4, "max_evals": 500}}}"#;
        let body = format!(
            r#"[{TINY},
                {{"nest": {{"Kernel": {{"name": "NOPE", "size": null}}}}, "strategy": "Tiling"}},
                {fresh}, {fresh}]"#
        );
        let resp = app.handle(&post("/batch", &body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let results: Vec<Value> = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(results.len(), 4);
        assert!(results[0].get("strategy").is_some(), "slot 0 is an outcome");
        assert!(results[1].get("error").is_some(), "slot 1 is an error");
        assert!(results[2].get("strategy").is_some(), "slot 2 is an outcome");
        assert_eq!(results[2], results[3], "duplicate slots share one search's outcome");
        assert_eq!(app.runtime.outcomes().hits(), 1, "slot 0 came from the cache");

        // The batch's (deduplicated) fresh run is now cached too.
        assert_eq!(app.runtime.outcomes().len(), 2);
    }

    #[test]
    fn compare_ranks_families_and_caches_the_tournament() {
        let app = App::new(1, 8);
        // GA-free line-up keeps the test fast; tokens and a spelled-out
        // spec may mix freely in one array.
        let body = r#"{
            "base": {"nest": {"Kernel": {"name": "MM", "size": 24}},
                     "cache": {"size": 256, "line": 16, "assoc": 1}},
            "strategies": ["oblivious", "latency", {"Baseline": {"kind": "LrwSquare"}}]
        }"#;
        let cold = app.handle(&post("/compare", body));
        assert_eq!(cold.status, 200, "{}", cold.body);
        let out: cme_api::CompareOutcome = serde_json::from_str(&cold.body).unwrap();
        assert_eq!(out.kernel, "MM_24");
        assert_eq!(out.entries.len(), 3);
        for pair in out.entries.windows(2) {
            assert!(pair[0].weighted_cost <= pair[1].weighted_cost, "ranked ascending");
        }
        assert!(out.winner < 3);
        // All entries share one canonical baseline, byte-for-byte.
        let shared = serde_json::to_string(&out.entries[0].outcome.before).unwrap();
        for entry in &out.entries {
            assert_eq!(serde_json::to_string(&entry.outcome.before).unwrap(), shared);
        }
        // The per-family outcomes warmed the optimize cache...
        assert_eq!(app.runtime.outcomes().len(), 3);
        // ...and the repeat answers from the compare memo.
        assert_eq!(app.runtime.compares().hits(), 0);
        let hot = app.handle(&post("/compare", body));
        assert_eq!(hot.status, 200, "{}", hot.body);
        assert_eq!(app.runtime.compares().hits(), 1);
        let rerun: cme_api::CompareOutcome = serde_json::from_str(&hot.body).unwrap();
        assert_eq!(out.without_timing(), rerun.without_timing());
    }

    #[test]
    fn compare_defaults_fill_the_standard_line_up() {
        let req =
            parse_compare_request(br#"{"base": {"nest": {"Kernel": {"name": "MM", "size": 32}}}}"#)
                .unwrap();
        let names: Vec<String> = req.strategies.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["tiling", "oblivious", "latency", "baseline:lrw"]);
        assert_eq!(req.base.strategy, cme_api::StrategySpec::Tiling);
        assert_eq!(req.base.cache, CacheSpec::paper_8k().into());
    }

    #[test]
    fn compare_rejects_bad_tokens_and_empty_line_ups() {
        let app = App::new(1, 8);
        let bad = app.handle(&post(
            "/compare",
            r#"{"base": {"nest": {"Kernel": {"name": "MM", "size": 24}}},
                "strategies": ["nope"]}"#,
        ));
        assert_eq!(bad.status, 400, "{}", bad.body);
        let empty = app.handle(&post(
            "/compare",
            r#"{"base": {"nest": {"Kernel": {"name": "MM", "size": 24}}},
                "strategies": []}"#,
        ));
        assert_eq!(empty.status, 400, "{}", empty.body);
        assert!(empty.body.contains("at least one strategy"), "{}", empty.body);
        assert_eq!(app.handle(&get("/compare")).status, 405);
    }

    #[test]
    fn shutdown_route_sets_the_flag() {
        let app = App::new(1, 8);
        assert!(!app.shutdown_requested());
        let resp = app.handle(&post("/shutdown", ""));
        assert_eq!(resp.status, 200);
        assert!(app.shutdown_requested());
    }

    #[test]
    fn lint_answers_and_caches() {
        let app = App::new(1, 8);
        let body = r#"{"nest": {"Kernel": {"name": "T2D", "size": 64}}}"#;
        let cold = app.handle(&post("/lint", body));
        assert_eq!(cold.status, 200, "{}", cold.body);
        let out: cme_api::LintOutcome = serde_json::from_str(&cold.body).unwrap();
        assert!(out.legality.rectangular_tiling);
        assert!(out.diagnostics.iter().any(|d| d.code == "no-reuse"), "{}", cold.body);
        assert_eq!(app.runtime.lints().hits(), 0);

        // Same request with the default cache spelled out: one entry.
        let spelled = format!(
            r#"{{"cache": {cache}, "nest": {{"Kernel": {{"size": 64, "name": "T2D"}}}}}}"#,
            cache = serde_json::to_string(&CacheSpec::paper_8k()).unwrap()
        );
        let hot = app.handle(&post("/lint", &spelled));
        assert_eq!(hot.status, 200, "{}", hot.body);
        assert_eq!(app.runtime.lints().hits(), 1);
        assert_eq!(app.runtime.lints().len(), 1);
        let a: cme_api::LintOutcome = serde_json::from_str(&cold.body).unwrap();
        let b: cme_api::LintOutcome = serde_json::from_str(&hot.body).unwrap();
        assert_eq!(a.without_timing(), b.without_timing());
    }

    #[test]
    fn lint_maps_api_errors_like_the_other_routes() {
        let app = App::new(1, 8);
        let unknown =
            app.handle(&post("/lint", r#"{"nest": {"Kernel": {"name": "NOPE", "size": null}}}"#));
        assert_eq!(unknown.status, 404, "{}", unknown.body);
        assert!(unknown.body.contains("UnknownKernel"));
        assert_eq!(app.handle(&post("/lint", "not json")).status, 400);
        assert_eq!(app.handle(&get("/lint")).status, 405);
    }

    #[test]
    fn analyze_answers_with_defaults() {
        let app = App::new(1, 8);
        let resp = app.handle(&post(
            "/analyze",
            r#"{"nest": {"Kernel": {"name": "T2D", "size": 16}},
                "cache": {"size": 256, "line": 16, "assoc": 1},
                "exhaustive": true}"#,
        ));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let out: cme_api::AnalyzeOutcome = serde_json::from_str(&resp.body).unwrap();
        assert!(out.exact.is_some());
        assert!(out.miss_ratio() > 0.0);
    }
}
