//! A minimal blocking HTTP/1.1 client, just enough to exercise the
//! server: used by the loopback integration tests, the throughput
//! benchmark, and as the library-grade sibling of the raw-bytes demo in
//! `examples/http_client.rs`. One client holds one keep-alive connection;
//! `send` calls on it are sequential requests on that connection.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

impl HttpClient {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(HttpClient { reader: BufReader::new(stream), writer })
    }

    /// One request/response exchange; returns `(status, body)`.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: cme-serve\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }

    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.send("GET", path, None)
    }

    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.send("POST", path, Some(body))
    }
}

/// Read one `HTTP/1.x` response with a `Content-Length` body.
pub fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<(u16, String)> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(invalid("connection closed before a response"));
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("bad status line `{}`", line.trim_end())))?;

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(invalid("connection closed inside response headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| invalid(format!("bad Content-Length `{value}`")))?;
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body).map(|b| (status, b)).map_err(|_| invalid("non-UTF-8 response body"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_a_response_off_a_buffer() {
        let raw: &[u8] =
            b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: 14\r\nConnection: close\r\n\r\n{\"error\":\"x\"}!";
        let (status, body) = read_response(&mut BufReader::new(raw)).unwrap();
        assert_eq!(status, 503);
        assert_eq!(body, "{\"error\":\"x\"}!");
    }

    #[test]
    fn rejects_garbage_status_lines() {
        let raw: &[u8] = b"garbage\r\n\r\n";
        assert!(read_response(&mut BufReader::new(raw)).is_err());
    }
}
