//! Service telemetry: atomic counters and fixed-bucket latency
//! histograms, rendered as the `/metrics` JSON document. Everything here
//! is lock-free on the hot path — handlers only touch atomics.

use cme_runtime::Runtime;
use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Upper bucket bounds in microseconds; one overflow bucket follows.
pub const LATENCY_BOUNDS_US: [u64; 10] =
    [100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000];

/// A fixed-bucket latency histogram (cumulative-free: each bucket counts
/// samples at or under its bound that exceeded the previous bound).
pub struct Histogram {
    counts: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    pub fn record(&self, elapsed: Duration) {
        self.record_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    pub fn record_us(&self, us: u64) {
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    pub fn snapshot(&self) -> Value {
        Value::Object(vec![
            (
                "bounds_us".into(),
                Value::Array(LATENCY_BOUNDS_US.iter().map(|&b| Value::UInt(b)).collect()),
            ),
            (
                "counts".into(),
                Value::Array(
                    self.counts.iter().map(|c| Value::UInt(c.load(Ordering::Relaxed))).collect(),
                ),
            ),
            ("count".into(), Value::UInt(self.count())),
            ("sum_us".into(), Value::UInt(self.sum_us.load(Ordering::Relaxed))),
            ("mean_us".into(), Value::Float(self.mean_us())),
        ])
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Per-route request counters.
#[derive(Default)]
pub struct RouteCounters {
    pub optimize: AtomicU64,
    pub analyze: AtomicU64,
    pub lint: AtomicU64,
    pub compare: AtomicU64,
    pub batch: AtomicU64,
    pub healthz: AtomicU64,
    pub metrics: AtomicU64,
    pub shutdown: AtomicU64,
    pub unmatched: AtomicU64,
}

/// Everything `/metrics` reports (cache statistics live on the cache
/// itself and are merged at snapshot time).
pub struct Metrics {
    started: Instant,
    /// Requests parsed and routed.
    pub requests_total: AtomicU64,
    /// Connections answered 503 because the bounded queue was full.
    pub rejected_total: AtomicU64,
    /// Routed requests that produced a non-2xx response.
    pub errors_total: AtomicU64,
    /// Connections currently waiting for a worker (gauge).
    pub queue_depth: AtomicU64,
    pub routes: RouteCounters,
    /// `/optimize` latency when the search actually ran.
    pub optimize_cold_us: Histogram,
    /// `/optimize` latency when the outcome cache answered.
    pub optimize_hit_us: Histogram,
    /// `/lint` latency when the analysis actually ran.
    pub lint_cold_us: Histogram,
    /// `/lint` latency when the lint cache answered.
    pub lint_hit_us: Histogram,
    /// `/compare` latency when at least part of the tournament ran.
    pub compare_cold_us: Histogram,
    /// `/compare` latency when the compare cache answered whole.
    pub compare_hit_us: Histogram,
    /// Latency of every routed request.
    pub request_us: Histogram,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            routes: RouteCounters::default(),
            optimize_cold_us: Histogram::new(),
            optimize_hit_us: Histogram::new(),
            lint_cold_us: Histogram::new(),
            lint_hit_us: Histogram::new(),
            compare_cold_us: Histogram::new(),
            compare_hit_us: Histogram::new(),
            request_us: Histogram::new(),
        }
    }

    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The `/metrics` document (see the README field glossary).
    pub fn snapshot(&self, workers: usize, runtime: &Runtime) -> Value {
        let load = |c: &AtomicU64| Value::UInt(c.load(Ordering::Relaxed));
        let cache = runtime.outcomes();
        let lint_cache = runtime.lints();
        let compare_cache = runtime.compares();
        let disp = runtime.displacements().stats();
        let flights = runtime.flights().stats();
        // The persistent tier's stats, or `null` when `--cache-dir` was
        // not configured (entries stay 0 until the lazy index loads).
        let disk = match cache.disk_stats() {
            None => Value::Null,
            Some(d) => Value::Object(vec![
                ("loaded".into(), Value::Bool(d.loaded)),
                ("entries".into(), Value::UInt(d.entries as u64)),
                ("hits".into(), Value::UInt(d.hits)),
                ("misses".into(), Value::UInt(d.misses)),
                ("appended".into(), Value::UInt(d.appended)),
            ]),
        };
        Value::Object(vec![
            ("uptime_ms".into(), Value::UInt(self.uptime_ms())),
            ("workers".into(), Value::UInt(workers as u64)),
            ("requests_total".into(), load(&self.requests_total)),
            ("rejected_total".into(), load(&self.rejected_total)),
            ("errors_total".into(), load(&self.errors_total)),
            ("queue_depth".into(), load(&self.queue_depth)),
            (
                "routes".into(),
                Value::Object(vec![
                    ("optimize".into(), load(&self.routes.optimize)),
                    ("analyze".into(), load(&self.routes.analyze)),
                    ("lint".into(), load(&self.routes.lint)),
                    ("compare".into(), load(&self.routes.compare)),
                    ("batch".into(), load(&self.routes.batch)),
                    ("healthz".into(), load(&self.routes.healthz)),
                    ("metrics".into(), load(&self.routes.metrics)),
                    ("shutdown".into(), load(&self.routes.shutdown)),
                    ("unmatched".into(), load(&self.routes.unmatched)),
                ]),
            ),
            (
                "cache".into(),
                Value::Object(vec![
                    ("entries".into(), Value::UInt(cache.len() as u64)),
                    ("capacity".into(), Value::UInt(cache.capacity() as u64)),
                    ("hits".into(), Value::UInt(cache.hits())),
                    ("misses".into(), Value::UInt(cache.misses())),
                    ("evictions".into(), Value::UInt(cache.evictions())),
                    ("disk".into(), disk),
                ]),
            ),
            (
                "lint_cache".into(),
                Value::Object(vec![
                    ("entries".into(), Value::UInt(lint_cache.len() as u64)),
                    ("capacity".into(), Value::UInt(lint_cache.capacity() as u64)),
                    ("hits".into(), Value::UInt(lint_cache.hits())),
                    ("misses".into(), Value::UInt(lint_cache.misses())),
                    ("evictions".into(), Value::UInt(lint_cache.evictions())),
                ]),
            ),
            (
                "compare_cache".into(),
                Value::Object(vec![
                    ("entries".into(), Value::UInt(compare_cache.len() as u64)),
                    ("capacity".into(), Value::UInt(compare_cache.capacity() as u64)),
                    ("hits".into(), Value::UInt(compare_cache.hits())),
                    ("misses".into(), Value::UInt(compare_cache.misses())),
                    ("evictions".into(), Value::UInt(compare_cache.evictions())),
                ]),
            ),
            (
                "displacement_cache".into(),
                Value::Object(vec![
                    ("entries".into(), Value::UInt(disp.entries as u64)),
                    ("capacity".into(), Value::UInt(disp.capacity as u64)),
                    ("hits".into(), Value::UInt(disp.hits)),
                    ("misses".into(), Value::UInt(disp.misses)),
                    ("evictions".into(), Value::UInt(disp.evictions)),
                ]),
            ),
            (
                "coalescing".into(),
                Value::Object(vec![
                    ("leaders".into(), Value::UInt(flights.leaders)),
                    ("followers".into(), Value::UInt(flights.followers)),
                    ("failures".into(), Value::UInt(flights.failures)),
                    ("in_flight".into(), Value::UInt(flights.in_flight as u64)),
                ]),
            ),
            (
                "latency_us".into(),
                Value::Object(vec![
                    ("optimize_cold".into(), self.optimize_cold_us.snapshot()),
                    ("optimize_hit".into(), self.optimize_hit_us.snapshot()),
                    ("lint_cold".into(), self.lint_cold_us.snapshot()),
                    ("lint_hit".into(), self.lint_hit_us.snapshot()),
                    ("compare_cold".into(), self.compare_cold_us.snapshot()),
                    ("compare_hit".into(), self.compare_hit_us.snapshot()),
                    ("all".into(), self.request_us.snapshot()),
                ]),
            ),
        ])
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let h = Histogram::new();
        h.record_us(1); // ≤ 100 → bucket 0
        h.record_us(100); // ≤ 100 → bucket 0
        h.record_us(101); // ≤ 500 → bucket 1
        h.record_us(6_000_000); // overflow bucket
        assert_eq!(h.count(), 4);
        let snap = h.snapshot();
        let counts = snap.get("counts").and_then(Value::as_array).unwrap();
        assert_eq!(counts[0], Value::UInt(2));
        assert_eq!(counts[1], Value::UInt(1));
        assert_eq!(counts[LATENCY_BOUNDS_US.len()], Value::UInt(1));
        assert!((h.mean_us() - (1.0 + 100.0 + 101.0 + 6_000_000.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_has_every_documented_field() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        let runtime = Runtime::new(&cme_runtime::RuntimeConfig {
            outcome_entries: 8,
            lint_entries: 8,
            compare_entries: 4,
            displacement_entries: 16,
            cache_dir: None,
        });
        let snap = m.snapshot(4, &runtime);
        for field in [
            "uptime_ms",
            "workers",
            "requests_total",
            "rejected_total",
            "errors_total",
            "queue_depth",
            "routes",
            "cache",
            "lint_cache",
            "compare_cache",
            "displacement_cache",
            "coalescing",
            "latency_us",
        ] {
            assert!(snap.get(field).is_some(), "missing `{field}`");
        }
        assert_eq!(snap.get("requests_total"), Some(&Value::UInt(3)));
        assert_eq!(snap.get("cache").unwrap().get("capacity"), Some(&Value::UInt(8)));
        // No --cache-dir in this runtime: the disk tier reports null.
        assert_eq!(snap.get("cache").unwrap().get("disk"), Some(&Value::Null));
        assert_eq!(snap.get("lint_cache").unwrap().get("capacity"), Some(&Value::UInt(8)));
        assert_eq!(snap.get("compare_cache").unwrap().get("capacity"), Some(&Value::UInt(4)));
        assert_eq!(snap.get("displacement_cache").unwrap().get("capacity"), Some(&Value::UInt(16)));
        assert!(snap.get("coalescing").unwrap().get("leaders").is_some());
        assert!(snap.get("routes").unwrap().get("lint").is_some());
        assert!(snap.get("routes").unwrap().get("compare").is_some());
        assert!(snap.get("latency_us").unwrap().get("lint_cold").is_some());
        assert!(snap.get("latency_us").unwrap().get("compare_cold").is_some());
        assert!(snap.get("latency_us").unwrap().get("compare_hit").is_some());
    }

    #[test]
    fn snapshot_reports_disk_tier_stats_when_configured() {
        let dir =
            std::env::temp_dir().join(format!("cme-serve-metrics-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = Metrics::new();
        let runtime = Runtime::new(&cme_runtime::RuntimeConfig {
            cache_dir: Some(dir.clone()),
            ..cme_runtime::RuntimeConfig::default()
        });
        let snap = m.snapshot(1, &runtime);
        let disk = snap.get("cache").unwrap().get("disk").expect("disk section");
        assert_eq!(disk.get("loaded"), Some(&Value::Bool(false)), "stats never force a load");
        assert_eq!(disk.get("entries"), Some(&Value::UInt(0)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
