//! Memory references: affine subscripts into declared arrays.

use crate::array::ArrayId;
use cme_polyhedra::AffineForm;
use serde::{Deserialize, Serialize};

/// Read or write access. Both allocate a line on miss (write-allocate
/// fetch-on-write), so the cache model treats them identically; the
/// distinction matters for dependence analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    Read,
    Write,
}

/// A memory reference `array(sub_1(i), ..., sub_r(i))` appearing at a fixed
/// position in the loop body. Body position is the index of the reference
/// in [`crate::LoopNest::refs`]; references of one iteration are executed
/// in that order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRef {
    pub array: ArrayId,
    /// One affine form per array dimension, over the nest's loop variables.
    pub subscripts: Vec<AffineForm>,
    pub access: AccessKind,
}

impl MemRef {
    pub fn read(array: ArrayId, subscripts: Vec<AffineForm>) -> Self {
        MemRef { array, subscripts, access: AccessKind::Read }
    }

    pub fn write(array: ArrayId, subscripts: Vec<AffineForm>) -> Self {
        MemRef { array, subscripts, access: AccessKind::Write }
    }

    pub fn is_write(&self) -> bool {
        matches!(self.access, AccessKind::Write)
    }

    /// True iff two references are *uniformly generated*: same array and
    /// identical subscript coefficients (constants may differ). Reuse
    /// vectors between references are only defined within such sets.
    pub fn uniform_with(&self, other: &MemRef) -> bool {
        self.array == other.array
            && self.subscripts.len() == other.subscripts.len()
            && self.subscripts.iter().zip(&other.subscripts).all(|(a, b)| a.coeffs == b.coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniformity() {
        let a = ArrayId(0);
        // a(i, j) and a(i, j+1): uniform. a(i, j) and a(j, i): not.
        let ij = vec![AffineForm::new(vec![1, 0], 0), AffineForm::new(vec![0, 1], 0)];
        let ij1 = vec![AffineForm::new(vec![1, 0], 0), AffineForm::new(vec![0, 1], 1)];
        let ji = vec![AffineForm::new(vec![0, 1], 0), AffineForm::new(vec![1, 0], 0)];
        let r1 = MemRef::read(a, ij);
        let r2 = MemRef::read(a, ij1);
        let r3 = MemRef::read(a, ji);
        assert!(r1.uniform_with(&r2));
        assert!(!r1.uniform_with(&r3));
        assert!(!r1.uniform_with(&MemRef::read(ArrayId(1), r1.subscripts.clone())));
    }
}
