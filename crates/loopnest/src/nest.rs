//! The perfect loop nest: loops + arrays + ordered references.

use crate::array::{ArrayDecl, ArrayId};
use crate::error::NestError;
use crate::refs::MemRef;
use cme_polyhedra::{AffineForm, IntBox, Interval};
use serde::{Deserialize, Serialize};

/// One loop `do var = lo, hi` (step 1).
///
/// `lo`/`hi` are always the *hull* bounds — the tightest constants
/// containing every value the bound can take. A triangular (affine) bound
/// over outer induction variables additionally carries its exact form in
/// `lo_aff`/`hi_aff`; constant bounds leave both `None`, so rectangular
/// nests keep their exact historical wire bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopDef {
    pub name: String,
    pub lo: i64,
    pub hi: i64,
    /// Exact affine lower bound over the full nest's loop variables
    /// (coefficients at this loop's level and deeper must be zero).
    /// `None` means the constant bound `lo`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub lo_aff: Option<AffineForm>,
    /// Exact affine upper bound; `None` means the constant bound `hi`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub hi_aff: Option<AffineForm>,
}

impl LoopDef {
    pub fn new(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        LoopDef { name: name.into(), lo, hi, lo_aff: None, hi_aff: None }
    }

    /// A loop with affine bounds. `lo`/`hi` must be the hull of the forms
    /// over the outer iteration space (checked by [`LoopNest::validate`]).
    pub fn with_affine_bounds(
        name: impl Into<String>,
        lo: i64,
        hi: i64,
        lo_aff: Option<AffineForm>,
        hi_aff: Option<AffineForm>,
    ) -> Self {
        LoopDef { name: name.into(), lo, hi, lo_aff, hi_aff }
    }

    /// True iff both bounds are plain constants.
    pub fn is_rectangular(&self) -> bool {
        self.lo_aff.is_none() && self.hi_aff.is_none()
    }

    /// Number of iterations of the hull range.
    pub fn span(&self) -> i64 {
        self.hi - self.lo + 1
    }

    /// The lower bound as an affine form over `depth` loop variables.
    pub fn lo_form(&self, depth: usize) -> AffineForm {
        self.lo_aff.clone().unwrap_or_else(|| AffineForm::constant(depth, self.lo))
    }

    /// The upper bound as an affine form over `depth` loop variables.
    pub fn hi_form(&self, depth: usize) -> AffineForm {
        self.hi_aff.clone().unwrap_or_else(|| AffineForm::constant(depth, self.hi))
    }
}

/// A perfectly nested affine loop nest (paper restriction: "only perfectly
/// nested loops in which the array subscript expressions are affine
/// functions of the induction variables").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopNest {
    /// Kernel name (for reports).
    pub name: String,
    /// Loops, outermost first.
    pub loops: Vec<LoopDef>,
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Body references in execution order within one iteration.
    pub refs: Vec<MemRef>,
}

impl LoopNest {
    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// The iteration-space *hull* box over the original loop variables:
    /// for rectangular nests this is the exact iteration space; for
    /// triangular nests it is the tightest enclosing box.
    pub fn iter_box(&self) -> IntBox {
        IntBox::new(self.loops.iter().map(|l| Interval::new(l.lo, l.hi)).collect())
    }

    /// True iff every loop has constant bounds (the exact iteration space
    /// is [`Self::iter_box`]).
    pub fn is_rectangular(&self) -> bool {
        self.loops.iter().all(LoopDef::is_rectangular)
    }

    /// Enumeration budget for exact triangular shape counting (steps over
    /// dimensions that later affine bounds reference). Nests whose count
    /// exceeds it fail validation, so everything downstream may assume the
    /// count is cheap to recompute.
    pub const SHAPE_ENUM_BUDGET: u64 = 1 << 22;

    /// Total iterations of the nest — exact, also for triangular shapes.
    pub fn iterations(&self) -> u64 {
        if self.is_rectangular() {
            return self.iter_box().volume();
        }
        self.try_shape_volume(Self::SHAPE_ENUM_BUDGET)
            .expect("validated nests stay under the shape enumeration budget")
    }

    /// Exact point count of the (possibly triangular) iteration space, or
    /// `None` when the recursive count would exceed `budget` enumeration
    /// steps. Dimensions no affine bound references are counted by
    /// multiplication, so rectangular sub-spaces cost one step.
    pub fn try_shape_volume(&self, budget: u64) -> Option<u64> {
        let d = self.depth();
        // Dimensions some affine bound references (nonzero coefficient).
        let mut referenced = vec![false; d];
        for l in &self.loops {
            for f in [&l.lo_aff, &l.hi_aff].into_iter().flatten() {
                for (t, &c) in f.coeffs.iter().enumerate().take(d) {
                    if c != 0 {
                        referenced[t] = true;
                    }
                }
            }
        }
        let mut vals = vec![0i64; d];
        let mut budget = budget;
        let n = self.count_shape(0, &mut vals, &referenced, &mut budget)?;
        u64::try_from(n).ok()
    }

    /// Evaluate a bound form using only the coefficients of already-fixed
    /// outer dimensions (`vals[..t]`); validation guarantees deeper
    /// coefficients are zero.
    fn bound_at(f: &AffineForm, vals: &[i64], t: usize) -> i64 {
        let mut acc = f.c0 as i128;
        for (c, v) in f.coeffs.iter().zip(vals).take(t) {
            acc += (*c as i128) * (*v as i128);
        }
        i64::try_from(acc).expect("bound eval overflow")
    }

    /// The exact range of loop `t` once the outer values `vals[..t]` are
    /// fixed (possibly empty for triangular bounds).
    pub fn bound_interval(&self, t: usize, vals: &[i64]) -> Interval {
        let l = &self.loops[t];
        let lo = l.lo_aff.as_ref().map_or(l.lo, |f| Self::bound_at(f, vals, t));
        let hi = l.hi_aff.as_ref().map_or(l.hi, |f| Self::bound_at(f, vals, t));
        Interval::new(lo, hi)
    }

    fn count_shape(
        &self,
        t: usize,
        vals: &mut [i64],
        referenced: &[bool],
        budget: &mut u64,
    ) -> Option<u128> {
        if t == self.depth() {
            return Some(1);
        }
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let iv = self.bound_interval(t, vals);
        if iv.is_empty() {
            return Some(0);
        }
        if referenced[t] {
            let mut acc: u128 = 0;
            for v in iv.iter() {
                vals[t] = v;
                acc += self.count_shape(t + 1, vals, referenced, budget)?;
            }
            Some(acc)
        } else {
            Some((iv.len() as u128) * self.count_shape(t + 1, vals, referenced, budget)?)
        }
    }

    /// Total memory accesses (iterations × references).
    pub fn accesses(&self) -> u64 {
        self.iterations() * self.refs.len() as u64
    }

    /// Loop spans, outermost first (the `U_i` of the paper).
    pub fn spans(&self) -> Vec<i64> {
        self.loops.iter().map(LoopDef::span).collect()
    }

    /// Look up an array by id.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// Address-space bound on the declared arrays (2^62 bytes, summed).
    /// Everything downstream (layout bases, trace addresses, footprints)
    /// stays inside `i64` under this cap, so validation can promise the
    /// engine panic-free arithmetic even for hostile wire nests.
    pub const MAX_TOTAL_BYTES: i128 = 1 << 62;

    /// Validate structural invariants:
    /// * every loop non-empty,
    /// * every array with positive extents/element size and the total
    ///   footprint under [`Self::MAX_TOTAL_BYTES`],
    /// * every reference's array id inside the declared array table,
    /// * every subscript over exactly `depth` variables,
    /// * subscript count matches array rank,
    /// * subscripts stay within declared extents over the whole iteration
    ///   space (so traces never touch memory outside the arrays).
    ///
    /// Nests can arrive from untrusted wire bodies (`{"Inline": …}`), so
    /// every check here uses non-panicking arithmetic: overflowing
    /// subscripts or astronomic extents are validation *errors*, never
    /// panics.
    pub fn validate(&self) -> Result<(), NestError> {
        for l in &self.loops {
            if l.lo > l.hi {
                return Err(NestError::EmptyLoop { loop_name: l.name.clone() });
            }
        }
        self.validate_bounds()?;
        let mut total_bytes: i128 = 0;
        for a in &self.arrays {
            if a.elem_size <= 0 || a.extents.iter().any(|&e| e <= 0) {
                return Err(NestError::BadArray { array: a.name.clone() });
            }
            let mut bytes = a.elem_size as i128;
            for &e in &a.extents {
                bytes *= e as i128; // ≤ 2^62 · 2^63 per step: cannot overflow i128
                if bytes > Self::MAX_TOTAL_BYTES {
                    return Err(NestError::ArrayTooLarge { array: a.name.clone() });
                }
            }
            total_bytes += bytes;
            if total_bytes > Self::MAX_TOTAL_BYTES {
                return Err(NestError::ArrayTooLarge { array: a.name.clone() });
            }
        }
        let b = self.iter_box();
        for (ref_index, r) in self.refs.iter().enumerate() {
            if r.array.0 >= self.arrays.len() {
                return Err(NestError::UnknownArray {
                    ref_index,
                    id: r.array.0,
                    arrays: self.arrays.len(),
                });
            }
            let arr = self.array(r.array);
            if r.subscripts.len() != arr.rank() {
                return Err(NestError::RankMismatch {
                    ref_index,
                    array: arr.name.clone(),
                    rank: arr.rank(),
                    got: r.subscripts.len(),
                });
            }
            for (d, s) in r.subscripts.iter().enumerate() {
                if s.n_vars() != self.depth() {
                    return Err(NestError::SubscriptArity {
                        ref_index,
                        array: arr.name.clone(),
                        expected: self.depth(),
                        got: s.n_vars(),
                    });
                }
                // Widened (i128) copy of `AffineForm::range_over`: a
                // hostile coeff·bound product can overflow i64, which
                // must be an OutOfBounds error here, not the panic the
                // i64 path asserts on.
                let mut lo = s.c0 as i128;
                let mut hi = lo;
                for (c, iv) in s.coeffs.iter().zip(&b.dims) {
                    let (at_lo, at_hi) =
                        ((*c as i128) * (iv.lo as i128), (*c as i128) * (iv.hi as i128));
                    lo += at_lo.min(at_hi);
                    hi += at_lo.max(at_hi);
                }
                if lo < 1 || hi > arr.extents[d] as i128 {
                    let clamp = |v: i128| v.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
                    return Err(NestError::OutOfBounds {
                        ref_index,
                        array: arr.name.clone(),
                        dim: d,
                        range: (clamp(lo), clamp(hi)),
                        extent: arr.extents[d],
                    });
                }
            }
        }
        Ok(())
    }

    /// The subscript form of reference `r`, dimension `d`, as an affine
    /// form over the loop variables.
    pub fn subscript(&self, r: usize, d: usize) -> &AffineForm {
        &self.refs[r].subscripts[d]
    }

    /// Validate the affine-bound invariants:
    /// * each affine bound spans exactly `depth` variables, references
    ///   only *outer* loops and is genuinely non-constant (constant bounds
    ///   are canonical as plain `lo`/`hi`, keeping the wire format stable);
    /// * `lo`/`hi` equal the interval hull of the forms over the outer
    ///   hull box (so every hull consumer stays sound);
    /// * the exact shape is non-empty and countable within
    ///   [`Self::SHAPE_ENUM_BUDGET`].
    fn validate_bounds(&self) -> Result<(), NestError> {
        let d = self.depth();
        let hull = self.iter_box();
        for (t, l) in self.loops.iter().enumerate() {
            for (which, f, hull_bound) in [("lower", &l.lo_aff, l.lo), ("upper", &l.hi_aff, l.hi)] {
                let Some(f) = f else { continue };
                if f.n_vars() != d {
                    return Err(NestError::BadBound {
                        loop_name: l.name.clone(),
                        reason: format!(
                            "affine {which} bound spans {} variables, nest has {d}",
                            f.n_vars()
                        ),
                    });
                }
                if f.coeffs[t..].iter().any(|&c| c != 0) {
                    return Err(NestError::BadBound {
                        loop_name: l.name.clone(),
                        reason: format!("affine {which} bound may only reference outer loops"),
                    });
                }
                if f.is_constant() {
                    return Err(NestError::BadBound {
                        loop_name: l.name.clone(),
                        reason: format!(
                            "affine {which} bound is constant; use the plain bound field"
                        ),
                    });
                }
                // Widened interval hull of the form over the outer hull
                // box; must match the declared constant hull exactly.
                let mut lo = f.c0 as i128;
                let mut hi = lo;
                for (c, iv) in f.coeffs.iter().zip(&hull.dims) {
                    let (a, b) = ((*c as i128) * (iv.lo as i128), (*c as i128) * (iv.hi as i128));
                    lo += a.min(b);
                    hi += a.max(b);
                }
                let want = if which == "lower" { lo } else { hi };
                if want != hull_bound as i128 {
                    return Err(NestError::BadBound {
                        loop_name: l.name.clone(),
                        reason: format!(
                            "declared hull {which} bound {hull_bound} differs from the \
                             form's hull value {want}"
                        ),
                    });
                }
            }
        }
        if !self.is_rectangular() {
            match self.try_shape_volume(Self::SHAPE_ENUM_BUDGET) {
                None => return Err(NestError::ShapeBudget),
                Some(0) => return Err(NestError::EmptyShape),
                Some(_) => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refs::MemRef;

    /// do i = 1,4 / do j = 1,6 : a(j, i) = b(i, j)
    fn transpose_nest() -> LoopNest {
        let a = ArrayDecl::real4("a", &[6, 4]);
        let b = ArrayDecl::real4("b", &[4, 6]);
        let i = AffineForm::new(vec![1, 0], 0);
        let j = AffineForm::new(vec![0, 1], 0);
        LoopNest {
            name: "t2d".into(),
            loops: vec![LoopDef::new("i", 1, 4), LoopDef::new("j", 1, 6)],
            arrays: vec![a, b],
            refs: vec![
                MemRef::read(ArrayId(1), vec![i.clone(), j.clone()]),
                MemRef::write(ArrayId(0), vec![j, i]),
            ],
        }
    }

    #[test]
    fn valid_nest_passes() {
        let n = transpose_nest();
        assert!(n.validate().is_ok());
        assert_eq!(n.iterations(), 24);
        assert_eq!(n.accesses(), 48);
        assert_eq!(n.spans(), vec![4, 6]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut n = transpose_nest();
        // Shift subscript of a(j, i) to j+1: max 7 > extent 6.
        n.refs[1].subscripts[0] = n.refs[1].subscripts[0].shift(1);
        match n.validate() {
            Err(NestError::OutOfBounds { array, dim, .. }) => {
                assert_eq!(array, "a");
                assert_eq!(dim, 0);
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn empty_loop_detected() {
        let mut n = transpose_nest();
        n.loops[0].hi = 0;
        assert!(matches!(n.validate(), Err(NestError::EmptyLoop { .. })));
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut n = transpose_nest();
        n.refs[0].subscripts.pop();
        assert!(matches!(n.validate(), Err(NestError::RankMismatch { ref_index: 0, .. })));
    }

    #[test]
    fn overflowing_subscripts_are_errors_not_panics() {
        // A wire nest can carry coefficients whose products with the
        // loop bounds overflow i64; validation must answer OutOfBounds
        // (the i64 `range_over` path would panic).
        let mut n = transpose_nest();
        n.refs[0].subscripts[0] = AffineForm::new(vec![4_000_000_000_000_000_000, 0], 0);
        assert!(matches!(n.validate(), Err(NestError::OutOfBounds { ref_index: 0, .. })));
    }

    #[test]
    fn astronomic_extents_are_refused() {
        // Extents that pass the >0 check but whose footprint overflows
        // downstream layout arithmetic must be refused up front.
        let mut n = transpose_nest();
        n.arrays[0].extents = vec![3_000_000_000, 3_000_000_000, 3_000_000_000];
        n.refs[1].subscripts = vec![
            AffineForm::new(vec![0, 0], 1),
            AffineForm::new(vec![0, 0], 1),
            AffineForm::new(vec![0, 0], 1),
        ];
        match n.validate() {
            Err(NestError::ArrayTooLarge { array }) => assert_eq!(array, "a"),
            other => panic!("expected ArrayTooLarge, got {other:?}"),
        }
    }

    /// do i = 1,4 / do j = 1,i : a(i,j) — lower-triangle walk.
    fn triangular_nest() -> LoopNest {
        let a = ArrayDecl::real4("a", &[4, 4]);
        let i = AffineForm::new(vec![1, 0], 0);
        let j = AffineForm::new(vec![0, 1], 0);
        LoopNest {
            name: "tri".into(),
            loops: vec![
                LoopDef::new("i", 1, 4),
                LoopDef::with_affine_bounds("j", 1, 4, None, Some(AffineForm::new(vec![1, 0], 0))),
            ],
            arrays: vec![a],
            refs: vec![MemRef::read(ArrayId(0), vec![i, j])],
        }
    }

    #[test]
    fn triangular_nest_counts_exactly() {
        let n = triangular_nest();
        assert!(n.validate().is_ok());
        assert!(!n.is_rectangular());
        // Σ_{i=1..4} i = 10 iterations, hull box holds 16.
        assert_eq!(n.iterations(), 10);
        assert_eq!(n.accesses(), 10);
        assert_eq!(n.iter_box().volume(), 16);
        assert_eq!(n.bound_interval(1, &[3, 0]), Interval::new(1, 3));
    }

    #[test]
    fn triangular_hull_mismatch_detected() {
        let mut n = triangular_nest();
        n.loops[1].hi = 3; // true hull of `i` over i ∈ [1,4] is 4
        assert!(matches!(n.validate(), Err(NestError::BadBound { .. })));
    }

    #[test]
    fn constant_affine_bound_is_refused() {
        let mut n = triangular_nest();
        n.loops[1].hi_aff = Some(AffineForm::constant(2, 4));
        assert!(matches!(n.validate(), Err(NestError::BadBound { .. })));
    }

    #[test]
    fn affine_bound_must_reference_outer_loops_only() {
        let mut n = triangular_nest();
        n.loops[0].hi_aff = Some(AffineForm::new(vec![0, 1], 0)); // i bounded by j
        assert!(matches!(n.validate(), Err(NestError::BadBound { .. })));
    }

    #[test]
    fn empty_triangular_shape_detected() {
        let mut n = triangular_nest();
        // j = i+1 .. i: every per-i range empty, hull still non-empty.
        n.loops[1].lo_aff = Some(AffineForm::new(vec![1, 0], 1));
        n.loops[1].lo = 2;
        n.loops[1].hi_aff = Some(AffineForm::new(vec![1, 0], 0));
        n.loops[1].hi = 4;
        n.refs.clear();
        assert!(matches!(n.validate(), Err(NestError::EmptyShape)));
    }

    #[test]
    fn unknown_array_id_detected() {
        // A hand-written (wire) nest can name an array id the table does
        // not have; validation must refuse it instead of panicking.
        let mut n = transpose_nest();
        n.refs[1].array = ArrayId(7);
        match n.validate() {
            Err(NestError::UnknownArray { ref_index, id, arrays }) => {
                assert_eq!((ref_index, id, arrays), (1, 7, 2));
            }
            other => panic!("expected UnknownArray, got {other:?}"),
        }
    }
}
