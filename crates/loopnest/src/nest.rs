//! The perfect loop nest: loops + arrays + ordered references.

use crate::array::{ArrayDecl, ArrayId};
use crate::error::NestError;
use crate::refs::MemRef;
use cme_polyhedra::{AffineForm, IntBox, Interval};
use serde::{Deserialize, Serialize};

/// One loop `do var = lo, hi` (step 1; constant bounds).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopDef {
    pub name: String,
    pub lo: i64,
    pub hi: i64,
}

impl LoopDef {
    pub fn new(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        LoopDef { name: name.into(), lo, hi }
    }

    /// Number of iterations.
    pub fn span(&self) -> i64 {
        self.hi - self.lo + 1
    }
}

/// A perfectly nested affine loop nest (paper restriction: "only perfectly
/// nested loops in which the array subscript expressions are affine
/// functions of the induction variables").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopNest {
    /// Kernel name (for reports).
    pub name: String,
    /// Loops, outermost first.
    pub loops: Vec<LoopDef>,
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Body references in execution order within one iteration.
    pub refs: Vec<MemRef>,
}

impl LoopNest {
    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// The iteration-space box over the original loop variables.
    pub fn iter_box(&self) -> IntBox {
        IntBox::new(self.loops.iter().map(|l| Interval::new(l.lo, l.hi)).collect())
    }

    /// Total iterations of the nest.
    pub fn iterations(&self) -> u64 {
        self.iter_box().volume()
    }

    /// Total memory accesses (iterations × references).
    pub fn accesses(&self) -> u64 {
        self.iterations() * self.refs.len() as u64
    }

    /// Loop spans, outermost first (the `U_i` of the paper).
    pub fn spans(&self) -> Vec<i64> {
        self.loops.iter().map(LoopDef::span).collect()
    }

    /// Look up an array by id.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// Address-space bound on the declared arrays (2^62 bytes, summed).
    /// Everything downstream (layout bases, trace addresses, footprints)
    /// stays inside `i64` under this cap, so validation can promise the
    /// engine panic-free arithmetic even for hostile wire nests.
    pub const MAX_TOTAL_BYTES: i128 = 1 << 62;

    /// Validate structural invariants:
    /// * every loop non-empty,
    /// * every array with positive extents/element size and the total
    ///   footprint under [`Self::MAX_TOTAL_BYTES`],
    /// * every reference's array id inside the declared array table,
    /// * every subscript over exactly `depth` variables,
    /// * subscript count matches array rank,
    /// * subscripts stay within declared extents over the whole iteration
    ///   space (so traces never touch memory outside the arrays).
    ///
    /// Nests can arrive from untrusted wire bodies (`{"Inline": …}`), so
    /// every check here uses non-panicking arithmetic: overflowing
    /// subscripts or astronomic extents are validation *errors*, never
    /// panics.
    pub fn validate(&self) -> Result<(), NestError> {
        for l in &self.loops {
            if l.lo > l.hi {
                return Err(NestError::EmptyLoop { loop_name: l.name.clone() });
            }
        }
        let mut total_bytes: i128 = 0;
        for a in &self.arrays {
            if a.elem_size <= 0 || a.extents.iter().any(|&e| e <= 0) {
                return Err(NestError::BadArray { array: a.name.clone() });
            }
            let mut bytes = a.elem_size as i128;
            for &e in &a.extents {
                bytes *= e as i128; // ≤ 2^62 · 2^63 per step: cannot overflow i128
                if bytes > Self::MAX_TOTAL_BYTES {
                    return Err(NestError::ArrayTooLarge { array: a.name.clone() });
                }
            }
            total_bytes += bytes;
            if total_bytes > Self::MAX_TOTAL_BYTES {
                return Err(NestError::ArrayTooLarge { array: a.name.clone() });
            }
        }
        let b = self.iter_box();
        for (ref_index, r) in self.refs.iter().enumerate() {
            if r.array.0 >= self.arrays.len() {
                return Err(NestError::UnknownArray {
                    ref_index,
                    id: r.array.0,
                    arrays: self.arrays.len(),
                });
            }
            let arr = self.array(r.array);
            if r.subscripts.len() != arr.rank() {
                return Err(NestError::RankMismatch {
                    ref_index,
                    array: arr.name.clone(),
                    rank: arr.rank(),
                    got: r.subscripts.len(),
                });
            }
            for (d, s) in r.subscripts.iter().enumerate() {
                if s.n_vars() != self.depth() {
                    return Err(NestError::SubscriptArity {
                        ref_index,
                        array: arr.name.clone(),
                        expected: self.depth(),
                        got: s.n_vars(),
                    });
                }
                // Widened (i128) copy of `AffineForm::range_over`: a
                // hostile coeff·bound product can overflow i64, which
                // must be an OutOfBounds error here, not the panic the
                // i64 path asserts on.
                let mut lo = s.c0 as i128;
                let mut hi = lo;
                for (c, iv) in s.coeffs.iter().zip(&b.dims) {
                    let (at_lo, at_hi) =
                        ((*c as i128) * (iv.lo as i128), (*c as i128) * (iv.hi as i128));
                    lo += at_lo.min(at_hi);
                    hi += at_lo.max(at_hi);
                }
                if lo < 1 || hi > arr.extents[d] as i128 {
                    let clamp = |v: i128| v.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
                    return Err(NestError::OutOfBounds {
                        ref_index,
                        array: arr.name.clone(),
                        dim: d,
                        range: (clamp(lo), clamp(hi)),
                        extent: arr.extents[d],
                    });
                }
            }
        }
        Ok(())
    }

    /// The subscript form of reference `r`, dimension `d`, as an affine
    /// form over the loop variables.
    pub fn subscript(&self, r: usize, d: usize) -> &AffineForm {
        &self.refs[r].subscripts[d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refs::MemRef;

    /// do i = 1,4 / do j = 1,6 : a(j, i) = b(i, j)
    fn transpose_nest() -> LoopNest {
        let a = ArrayDecl::real4("a", &[6, 4]);
        let b = ArrayDecl::real4("b", &[4, 6]);
        let i = AffineForm::new(vec![1, 0], 0);
        let j = AffineForm::new(vec![0, 1], 0);
        LoopNest {
            name: "t2d".into(),
            loops: vec![LoopDef::new("i", 1, 4), LoopDef::new("j", 1, 6)],
            arrays: vec![a, b],
            refs: vec![
                MemRef::read(ArrayId(1), vec![i.clone(), j.clone()]),
                MemRef::write(ArrayId(0), vec![j, i]),
            ],
        }
    }

    #[test]
    fn valid_nest_passes() {
        let n = transpose_nest();
        assert!(n.validate().is_ok());
        assert_eq!(n.iterations(), 24);
        assert_eq!(n.accesses(), 48);
        assert_eq!(n.spans(), vec![4, 6]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut n = transpose_nest();
        // Shift subscript of a(j, i) to j+1: max 7 > extent 6.
        n.refs[1].subscripts[0] = n.refs[1].subscripts[0].shift(1);
        match n.validate() {
            Err(NestError::OutOfBounds { array, dim, .. }) => {
                assert_eq!(array, "a");
                assert_eq!(dim, 0);
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn empty_loop_detected() {
        let mut n = transpose_nest();
        n.loops[0].hi = 0;
        assert!(matches!(n.validate(), Err(NestError::EmptyLoop { .. })));
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut n = transpose_nest();
        n.refs[0].subscripts.pop();
        assert!(matches!(n.validate(), Err(NestError::RankMismatch { ref_index: 0, .. })));
    }

    #[test]
    fn overflowing_subscripts_are_errors_not_panics() {
        // A wire nest can carry coefficients whose products with the
        // loop bounds overflow i64; validation must answer OutOfBounds
        // (the i64 `range_over` path would panic).
        let mut n = transpose_nest();
        n.refs[0].subscripts[0] = AffineForm::new(vec![4_000_000_000_000_000_000, 0], 0);
        assert!(matches!(n.validate(), Err(NestError::OutOfBounds { ref_index: 0, .. })));
    }

    #[test]
    fn astronomic_extents_are_refused() {
        // Extents that pass the >0 check but whose footprint overflows
        // downstream layout arithmetic must be refused up front.
        let mut n = transpose_nest();
        n.arrays[0].extents = vec![3_000_000_000, 3_000_000_000, 3_000_000_000];
        n.refs[1].subscripts = vec![
            AffineForm::new(vec![0, 0], 1),
            AffineForm::new(vec![0, 0], 1),
            AffineForm::new(vec![0, 0], 1),
        ];
        match n.validate() {
            Err(NestError::ArrayTooLarge { array }) => assert_eq!(array, "a"),
            other => panic!("expected ArrayTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn unknown_array_id_detected() {
        // A hand-written (wire) nest can name an array id the table does
        // not have; validation must refuse it instead of panicking.
        let mut n = transpose_nest();
        n.refs[1].array = ArrayId(7);
        match n.validate() {
            Err(NestError::UnknownArray { ref_index, id, arrays }) => {
                assert_eq!((ref_index, id, arrays), (1, 7, 2));
            }
            other => panic!("expected UnknownArray, got {other:?}"),
        }
    }
}
