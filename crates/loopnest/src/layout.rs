//! Memory layouts: base addresses and padding.
//!
//! A layout decides where each array lives. Padding — the transformation
//! of paper §4.3 and of Vera/González/Llosa's "near-optimal padding" —
//! is represented here as (a) *inter-array* padding: extra bytes inserted
//! before an array's base, and (b) *intra-array* padding: enlarged extents
//! (typically the leading dimension), which change element strides. CMEs
//! see padding purely through the per-reference affine address forms this
//! module produces.

use crate::array::ArrayDecl;
use crate::nest::LoopNest;
use cme_polyhedra::AffineForm;
use serde::{Deserialize, Serialize};

/// A concrete placement of every array of a nest in a flat byte-addressed
/// memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryLayout {
    /// Base byte address per array.
    pub bases: Vec<i64>,
    /// Padded extents per array (≥ declared extents).
    pub padded_extents: Vec<Vec<i64>>,
}

/// Base-address alignment applied by [`MemoryLayout::contiguous`] and
/// [`MemoryLayout::with_padding`]. Real allocators and Fortran compilers
/// align array storage; without it, adjacent arrays share cache lines
/// across their boundary, a micro-effect no analytical cache model
/// (including the paper's CMEs) represents.
pub const BASE_ALIGN: i64 = 64;

impl MemoryLayout {
    /// Arrays placed in declaration order with line-aligned bases, no
    /// padding — the layout a straightforward Fortran compiler would
    /// produce.
    pub fn contiguous(nest: &LoopNest) -> Self {
        Self::with_padding(
            nest,
            &vec![0; nest.arrays.len()],
            &nest.arrays.iter().map(|a| vec![0; a.rank()]).collect::<Vec<_>>(),
        )
    }

    /// Layout with explicit padding:
    /// * `inter[k]` — bytes inserted before array `k`'s base (applied
    ///   after alignment, so padding displaces the base by exactly the
    ///   requested amount),
    /// * `intra[k][d]` — extra elements appended to dimension `d` of array
    ///   `k` (changes strides of higher dimensions).
    pub fn with_padding(nest: &LoopNest, inter: &[i64], intra: &[Vec<i64>]) -> Self {
        assert_eq!(inter.len(), nest.arrays.len());
        assert_eq!(intra.len(), nest.arrays.len());
        let mut bases = Vec::with_capacity(nest.arrays.len());
        let mut padded = Vec::with_capacity(nest.arrays.len());
        let mut cursor: i64 = 0;
        for (k, a) in nest.arrays.iter().enumerate() {
            let ext: Vec<i64> = a.extents.iter().zip(&intra[k]).map(|(e, p)| e + p).collect();
            cursor = (cursor + BASE_ALIGN - 1) / BASE_ALIGN * BASE_ALIGN + inter[k];
            bases.push(cursor);
            let elems: i64 = ext.iter().product();
            cursor += elems * a.elem_size;
            padded.push(ext);
        }
        MemoryLayout { bases, padded_extents: padded }
    }

    /// Arrays packed back-to-back with *no* alignment: arrays may share
    /// cache lines across their boundary. Kept for studying that effect
    /// against the simulator; the analytical model is conservative here.
    pub fn packed(nest: &LoopNest) -> Self {
        let mut bases = Vec::with_capacity(nest.arrays.len());
        let mut padded = Vec::with_capacity(nest.arrays.len());
        let mut cursor: i64 = 0;
        for a in &nest.arrays {
            bases.push(cursor);
            cursor += a.bytes();
            padded.push(a.extents.clone());
        }
        MemoryLayout { bases, padded_extents: padded }
    }

    /// Total memory footprint in bytes (end of the last array).
    pub fn footprint(&self, nest: &LoopNest) -> i64 {
        nest.arrays
            .iter()
            .enumerate()
            .map(|(k, a)| {
                self.bases[k] + self.padded_extents[k].iter().product::<i64>() * a.elem_size
            })
            .max()
            .unwrap_or(0)
    }

    /// The affine byte-address form of reference `r` over the nest's
    /// original loop variables:
    /// `addr(i) = base + es·Σ_d (sub_d(i) − 1)·stride_d`.
    pub fn address_form(&self, nest: &LoopNest, r: usize) -> AffineForm {
        let mref = &nest.refs[r];
        let arr: &ArrayDecl = nest.array(mref.array);
        let strides = arr.strides_for(&self.padded_extents[mref.array.0]);
        let n = nest.depth();
        let mut form = AffineForm::constant(n, self.bases[mref.array.0]);
        for (d, sub) in mref.subscripts.iter().enumerate() {
            // es·stride_d·(sub_d − 1)
            let scaled = sub.shift(-1).scale(strides[d] * arr.elem_size);
            form = form.add(&scaled);
        }
        form
    }

    /// Address forms for every reference of the nest.
    pub fn address_forms(&self, nest: &LoopNest) -> Vec<AffineForm> {
        (0..nest.refs.len()).map(|r| self.address_form(nest, r)).collect()
    }

    /// Evaluate the byte address of reference `r` at a concrete original
    /// iteration point (slow path; traces use the affine forms).
    pub fn address_at(&self, nest: &LoopNest, r: usize, point: &[i64]) -> i64 {
        self.address_form(nest, r).eval(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayId;
    use crate::nest::{LoopDef, LoopNest};
    use crate::refs::MemRef;

    /// do i = 1,3 / do j = 1,4 : b(i,j) read; a(j,i) write — a is 4x3, b is 3x4.
    fn nest() -> LoopNest {
        let i = AffineForm::new(vec![1, 0], 0);
        let j = AffineForm::new(vec![0, 1], 0);
        LoopNest {
            name: "t".into(),
            loops: vec![LoopDef::new("i", 1, 3), LoopDef::new("j", 1, 4)],
            arrays: vec![ArrayDecl::real4("a", &[4, 3]), ArrayDecl::real4("b", &[3, 4])],
            refs: vec![
                MemRef::read(ArrayId(1), vec![i.clone(), j.clone()]),
                MemRef::write(ArrayId(0), vec![j, i]),
            ],
        }
    }

    #[test]
    fn contiguous_layout_addresses() {
        let n = nest();
        let l = MemoryLayout::contiguous(&n);
        // a is 12 elements × 4 B = 48 bytes; b's base is aligned up to 64.
        assert_eq!(l.bases, vec![0, 64]);
        // b(i,j) column-major: addr = 64 + 4·((i−1) + (j−1)·3)
        let f = l.address_form(&n, 0);
        assert_eq!(f.eval(&[1, 1]), 64);
        assert_eq!(f.eval(&[2, 1]), 68);
        assert_eq!(f.eval(&[1, 2]), 64 + 12);
        // a(j,i): addr = 0 + 4·((j−1) + (i−1)·4)
        let g = l.address_form(&n, 1);
        assert_eq!(g.eval(&[1, 1]), 0);
        assert_eq!(g.eval(&[1, 2]), 4);
        assert_eq!(g.eval(&[2, 1]), 16);
        assert_eq!(l.footprint(&n), 64 + 48);
    }

    #[test]
    fn inter_padding_shifts_bases() {
        let n = nest();
        let l = MemoryLayout::with_padding(&n, &[8, 32], &[vec![0, 0], vec![0, 0]]);
        // a at 0+8; cursor 8+48 = 56, aligned to 64, +32 = 96.
        assert_eq!(l.bases, vec![8, 96]);
    }

    #[test]
    fn intra_padding_changes_strides() {
        let n = nest();
        // Pad leading dimension of b from 3 to 5.
        let l = MemoryLayout::with_padding(&n, &[0, 0], &[vec![0, 0], vec![2, 0]]);
        let f = l.address_form(&n, 0);
        // b(i,j): addr = base + 4·((i−1) + (j−1)·5)
        assert_eq!(f.eval(&[1, 2]) - f.eval(&[1, 1]), 20);
        // Footprint grows accordingly: aligned base 64 + 5·4·4 = 144.
        assert_eq!(l.footprint(&n), 64 + 80);
    }

    #[test]
    fn address_forms_match_pointwise_eval() {
        let n = nest();
        let l = MemoryLayout::contiguous(&n);
        let forms = l.address_forms(&n);
        for i in 1..=3 {
            for j in 1..=4 {
                for (r, f) in forms.iter().enumerate() {
                    assert_eq!(f.eval(&[i, j]), l.address_at(&n, r, &[i, j]));
                }
            }
        }
    }
}
