//! Array declarations: Fortran-flavoured (1-based, column-major by
//! default), with configurable element size and storage order.

use serde::{Deserialize, Serialize};

/// Identifies an array within a [`crate::LoopNest`] (index into its array
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub usize);

/// Storage order of a multi-dimensional array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Fortran order: the *first* subscript is contiguous.
    #[default]
    ColumnMajor,
    /// C order: the *last* subscript is contiguous.
    RowMajor,
}

/// A declared array: `REAL name(extent_1, ..., extent_r)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayDecl {
    pub name: String,
    /// Declared extents per dimension (1-based subscripts `1..=extent`).
    pub extents: Vec<i64>,
    /// Bytes per element (REAL*4 by default).
    pub elem_size: i64,
    pub layout: Layout,
}

impl ArrayDecl {
    /// A column-major REAL*4 array.
    pub fn real4(name: impl Into<String>, extents: &[i64]) -> Self {
        ArrayDecl {
            name: name.into(),
            extents: extents.to_vec(),
            elem_size: 4,
            layout: Layout::ColumnMajor,
        }
    }

    /// A column-major REAL*8 array.
    pub fn real8(name: impl Into<String>, extents: &[i64]) -> Self {
        ArrayDecl {
            name: name.into(),
            extents: extents.to_vec(),
            elem_size: 8,
            layout: Layout::ColumnMajor,
        }
    }

    /// Array rank.
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Total number of elements with the declared (unpadded) extents.
    pub fn elements(&self) -> i64 {
        self.extents.iter().product()
    }

    /// Total size in bytes with the declared (unpadded) extents.
    pub fn bytes(&self) -> i64 {
        self.elements() * self.elem_size
    }

    /// Element strides (in elements) for the given per-dimension extents
    /// (callers pass padded extents when intra-array padding applies).
    pub fn strides_for(&self, extents: &[i64]) -> Vec<i64> {
        debug_assert_eq!(extents.len(), self.extents.len());
        let r = extents.len();
        let mut strides = vec![0i64; r];
        match self.layout {
            Layout::ColumnMajor => {
                let mut s = 1i64;
                for d in 0..r {
                    strides[d] = s;
                    s = s.checked_mul(extents[d]).expect("array too large");
                }
            }
            Layout::RowMajor => {
                let mut s = 1i64;
                for d in (0..r).rev() {
                    strides[d] = s;
                    s = s.checked_mul(extents[d]).expect("array too large");
                }
            }
        }
        strides
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_strides() {
        let a = ArrayDecl::real4("a", &[10, 20, 30]);
        assert_eq!(a.strides_for(&[10, 20, 30]), vec![1, 10, 200]);
        assert_eq!(a.elements(), 6000);
        assert_eq!(a.bytes(), 24000);
    }

    #[test]
    fn row_major_strides() {
        let mut a = ArrayDecl::real4("a", &[10, 20, 30]);
        a.layout = Layout::RowMajor;
        assert_eq!(a.strides_for(&[10, 20, 30]), vec![600, 30, 1]);
    }

    #[test]
    fn padded_strides_differ() {
        let a = ArrayDecl::real4("a", &[8, 8]);
        assert_eq!(a.strides_for(&[8, 8]), vec![1, 8]);
        assert_eq!(a.strides_for(&[9, 8]), vec![1, 9]); // leading-dim pad
    }
}
