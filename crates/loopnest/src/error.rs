//! Error type for IR construction and validation.

use std::fmt;

/// Errors raised while building or validating a loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NestError {
    /// A loop has an empty iteration range (`lo > hi`).
    EmptyLoop { loop_name: String },
    /// A subscript references more variables than the nest has loops.
    SubscriptArity { array: String, expected: usize, got: usize },
    /// Number of subscripts differs from the array rank.
    RankMismatch { array: String, rank: usize, got: usize },
    /// A subscript can leave the declared array bounds.
    OutOfBounds { array: String, dim: usize, range: (i64, i64), extent: i64 },
    /// Tile size vector has the wrong length.
    TileArity { expected: usize, got: usize },
    /// A tile size is outside `[1, span]`.
    TileRange { dim: usize, tile: i64, span: i64 },
    /// The requested transformation violates data dependences.
    IllegalTiling { reason: String },
    /// Array declared with a non-positive extent or element size.
    BadArray { array: String },
}

impl fmt::Display for NestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NestError::EmptyLoop { loop_name } => {
                write!(f, "loop `{loop_name}` has an empty range")
            }
            NestError::SubscriptArity { array, expected, got } => {
                write!(f, "subscript of `{array}` spans {got} variables, nest has {expected}")
            }
            NestError::RankMismatch { array, rank, got } => {
                write!(
                    f,
                    "array `{array}` has rank {rank} but was subscripted with {got} expressions"
                )
            }
            NestError::OutOfBounds { array, dim, range, extent } => write!(
                f,
                "subscript {dim} of `{array}` ranges over [{}, {}] outside [1, {extent}]",
                range.0, range.1
            ),
            NestError::TileArity { expected, got } => {
                write!(f, "tile vector has {got} entries, nest has {expected} loops")
            }
            NestError::TileRange { dim, tile, span } => {
                write!(f, "tile size {tile} for loop {dim} outside [1, {span}]")
            }
            NestError::IllegalTiling { reason } => write!(f, "tiling is illegal: {reason}"),
            NestError::BadArray { array } => {
                write!(f, "array `{array}` has non-positive extent or element size")
            }
        }
    }
}

impl std::error::Error for NestError {}
