//! Error type for IR construction and validation.

use std::fmt;

/// Errors raised while building or validating a loop nest.
///
/// Reference-level variants carry `ref_index` — the position of the
/// offending reference in [`crate::LoopNest::refs`] — so messages name the
/// failing reference consistently ("ref 2 (`a`): …") wherever a nest can
/// come from user input (inline wire bodies, `--nest`/`--src` files).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NestError {
    /// A loop has an empty iteration range (`lo > hi`).
    EmptyLoop { loop_name: String },
    /// An affine loop bound is malformed (wrong arity, references the
    /// loop itself or deeper loops, is constant, or disagrees with the
    /// declared constant hull).
    BadBound { loop_name: String, reason: String },
    /// Triangular bounds leave the nest with zero iterations.
    EmptyShape,
    /// Counting the exact triangular shape would exceed
    /// [`crate::LoopNest::SHAPE_ENUM_BUDGET`] enumeration steps.
    ShapeBudget,
    /// A subscript references more variables than the nest has loops.
    SubscriptArity { ref_index: usize, array: String, expected: usize, got: usize },
    /// Number of subscripts differs from the array rank.
    RankMismatch { ref_index: usize, array: String, rank: usize, got: usize },
    /// A subscript can leave the declared array bounds.
    OutOfBounds { ref_index: usize, array: String, dim: usize, range: (i64, i64), extent: i64 },
    /// A reference names an array id outside the declared array table
    /// (possible on hand-written inline nests; builder-made nests cannot
    /// produce it).
    UnknownArray { ref_index: usize, id: usize, arrays: usize },
    /// Tile size vector has the wrong length.
    TileArity { expected: usize, got: usize },
    /// A tile size is outside `[1, span]`.
    TileRange { dim: usize, tile: i64, span: i64 },
    /// The requested transformation violates data dependences.
    IllegalTiling { reason: String },
    /// Array declared with a non-positive extent or element size.
    BadArray { array: String },
    /// Declared arrays exceed the address-space bound
    /// ([`crate::LoopNest::MAX_TOTAL_BYTES`]) — downstream layout/trace
    /// arithmetic could overflow, so the nest is refused up front.
    ArrayTooLarge { array: String },
}

impl fmt::Display for NestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NestError::EmptyLoop { loop_name } => {
                write!(f, "loop `{loop_name}` has an empty range")
            }
            NestError::BadBound { loop_name, reason } => {
                write!(f, "loop `{loop_name}`: {reason}")
            }
            NestError::EmptyShape => {
                write!(f, "affine bounds leave the nest with no iterations")
            }
            NestError::ShapeBudget => {
                write!(f, "affine bounds exceed the shape enumeration budget (2^22 steps)")
            }
            NestError::SubscriptArity { ref_index, array, expected, got } => {
                write!(
                    f,
                    "ref {ref_index} (`{array}`): subscript spans {got} variables, \
                     nest has {expected}"
                )
            }
            NestError::RankMismatch { ref_index, array, rank, got } => {
                write!(f, "ref {ref_index} (`{array}`): {got} subscripts for a rank-{rank} array")
            }
            NestError::OutOfBounds { ref_index, array, dim, range, extent } => write!(
                f,
                "ref {ref_index} (`{array}`): subscript {dim} ranges over [{}, {}] \
                 outside [1, {extent}]",
                range.0, range.1
            ),
            NestError::UnknownArray { ref_index, id, arrays } => {
                write!(f, "ref {ref_index}: array id {id} outside the {arrays}-entry array table")
            }
            NestError::TileArity { expected, got } => {
                write!(f, "tile vector has {got} entries, nest has {expected} loops")
            }
            NestError::TileRange { dim, tile, span } => {
                write!(f, "tile size {tile} for loop {dim} outside [1, {span}]")
            }
            NestError::IllegalTiling { reason } => write!(f, "tiling is illegal: {reason}"),
            NestError::BadArray { array } => {
                write!(f, "array `{array}` has non-positive extent or element size")
            }
            NestError::ArrayTooLarge { array } => {
                write!(f, "array `{array}`: declared arrays exceed 2^62 bytes")
            }
        }
    }
}

impl std::error::Error for NestError {}
