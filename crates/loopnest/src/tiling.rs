//! Tile-size vectors and their validation.
//!
//! Tiling (paper §3) strip-mines every loop `i_t` by `T_t` and moves all
//! block loops outermost, preserving the original relative order in both
//! bands (Fig. 3(b)). The transformation itself is represented by
//! [`crate::ExecSpace::tiled`]; this module holds the parameter vector.

use crate::error::NestError;
use crate::nest::LoopNest;
use serde::{Deserialize, Serialize};

/// Tile sizes `T_1..T_d`, one per loop, outermost first. `T_t ∈ [1, U_t]`
/// where `U_t` is the loop span; `T_t = U_t` leaves loop `t` effectively
/// untiled.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileSizes(pub Vec<i64>);

impl TileSizes {
    /// The trivial tiling (every tile spans the whole loop) — the identity
    /// transformation.
    pub fn trivial(nest: &LoopNest) -> Self {
        TileSizes(nest.spans())
    }

    /// Validate against a nest: one entry per loop, each in `[1, span]`.
    pub fn validate(&self, nest: &LoopNest) -> Result<(), NestError> {
        if self.0.len() != nest.depth() {
            return Err(NestError::TileArity { expected: nest.depth(), got: self.0.len() });
        }
        for (t, (&tile, span)) in self.0.iter().zip(nest.spans()).enumerate() {
            if tile < 1 || tile > span {
                return Err(NestError::TileRange { dim: t, tile, span });
            }
        }
        Ok(())
    }

    /// True iff this is the identity tiling for the nest.
    pub fn is_trivial(&self, nest: &LoopNest) -> bool {
        self.0 == nest.spans()
    }

    /// Number of blocks per dimension: `⌈span_t / T_t⌉`.
    pub fn blocks(&self, nest: &LoopNest) -> Vec<i64> {
        self.0.iter().zip(nest.spans()).map(|(&t, s)| (s + t - 1) / t).collect()
    }
}

impl std::fmt::Display for TileSizes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (k, t) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayDecl;
    use crate::nest::{LoopDef, LoopNest};

    fn nest() -> LoopNest {
        LoopNest {
            name: "n".into(),
            loops: vec![LoopDef::new("i", 1, 10), LoopDef::new("j", 1, 7)],
            arrays: vec![ArrayDecl::real4("a", &[10, 10])],
            refs: vec![],
        }
    }

    #[test]
    fn validation() {
        let n = nest();
        assert!(TileSizes(vec![3, 7]).validate(&n).is_ok());
        assert!(matches!(TileSizes(vec![3]).validate(&n), Err(NestError::TileArity { .. })));
        assert!(matches!(TileSizes(vec![0, 7]).validate(&n), Err(NestError::TileRange { .. })));
        assert!(matches!(TileSizes(vec![3, 8]).validate(&n), Err(NestError::TileRange { .. })));
    }

    #[test]
    fn trivial_and_blocks() {
        let n = nest();
        let t = TileSizes::trivial(&n);
        assert!(t.is_trivial(&n));
        assert_eq!(t.0, vec![10, 7]);
        assert_eq!(TileSizes(vec![3, 3]).blocks(&n), vec![4, 3]);
    }
}
