//! Ergonomic construction of loop nests.
//!
//! ```
//! use cme_loopnest::builder::{NestBuilder, sub};
//!
//! // do i = 1,N / do j = 1,N / do k = 1,N : a(i,j) += b(i,k)·c(k,j)
//! let n = 100;
//! let mut nb = NestBuilder::new("mm");
//! let i = nb.add_loop("i", 1, n);
//! let j = nb.add_loop("j", 1, n);
//! let k = nb.add_loop("k", 1, n);
//! let a = nb.array("a", &[n, n]);
//! let b = nb.array("b", &[n, n]);
//! let c = nb.array("c", &[n, n]);
//! nb.read(a, &[sub(i), sub(j)]);
//! nb.read(b, &[sub(i), sub(k)]);
//! nb.read(c, &[sub(k), sub(j)]);
//! nb.write(a, &[sub(i), sub(j)]);
//! let nest = nb.finish().unwrap();
//! assert_eq!(nest.depth(), 3);
//! ```

use crate::array::{ArrayDecl, ArrayId, Layout};
use crate::error::NestError;
use crate::nest::{LoopDef, LoopNest};
use crate::refs::{AccessKind, MemRef};
use cme_polyhedra::AffineForm;

/// Handle to a loop variable created by [`NestBuilder::add_loop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopVar(pub usize);

/// A subscript expression under construction: sparse affine terms over
/// loop variables plus a constant.
#[derive(Debug, Clone, Default)]
pub struct SubExpr {
    terms: Vec<(usize, i64)>,
    c: i64,
}

/// The subscript `v` (identity on one loop variable).
pub fn sub(v: LoopVar) -> SubExpr {
    SubExpr { terms: vec![(v.0, 1)], c: 0 }
}

/// The constant subscript `c`.
pub fn sub_const(c: i64) -> SubExpr {
    SubExpr { terms: vec![], c }
}

impl SubExpr {
    /// Add a constant offset: `self + c`.
    pub fn plus(mut self, c: i64) -> Self {
        self.c += c;
        self
    }

    /// Subtract a constant: `self − c`.
    pub fn minus(self, c: i64) -> Self {
        self.plus(-c)
    }

    /// Add a scaled loop variable: `self + k·v`.
    pub fn plus_var(mut self, v: LoopVar, k: i64) -> Self {
        self.terms.push((v.0, k));
        self
    }

    /// Scale the whole expression: `k·self`.
    pub fn times(mut self, k: i64) -> Self {
        for t in &mut self.terms {
            t.1 *= k;
        }
        self.c *= k;
        self
    }

    fn into_form(self, depth: usize) -> AffineForm {
        let mut coeffs = vec![0i64; depth];
        for (v, k) in self.terms {
            assert!(v < depth, "loop variable out of range");
            coeffs[v] += k;
        }
        AffineForm::new(coeffs, self.c)
    }
}

/// Incremental builder for [`LoopNest`].
#[derive(Debug, Default)]
pub struct NestBuilder {
    name: String,
    loops: Vec<LoopDef>,
    /// Affine bounds declared via [`Self::add_loop_bounds`], resolved
    /// against the final depth in [`Self::finish`].
    bound_exprs: Vec<(usize, SubExpr, SubExpr)>,
    arrays: Vec<ArrayDecl>,
    refs: Vec<(ArrayId, Vec<SubExpr>, AccessKind)>,
    elem_size: i64,
    layout: Layout,
}

impl NestBuilder {
    /// New builder; arrays default to column-major REAL*4.
    pub fn new(name: impl Into<String>) -> Self {
        NestBuilder {
            name: name.into(),
            loops: Vec::new(),
            bound_exprs: Vec::new(),
            arrays: Vec::new(),
            refs: Vec::new(),
            elem_size: 4,
            layout: Layout::ColumnMajor,
        }
    }

    /// Set the element size (bytes) for subsequently declared arrays.
    pub fn elem_size(&mut self, bytes: i64) -> &mut Self {
        self.elem_size = bytes;
        self
    }

    /// Set the layout for subsequently declared arrays.
    pub fn layout(&mut self, layout: Layout) -> &mut Self {
        self.layout = layout;
        self
    }

    /// Declare the next (inner) loop `do name = lo, hi`.
    pub fn add_loop(&mut self, name: impl Into<String>, lo: i64, hi: i64) -> LoopVar {
        self.loops.push(LoopDef::new(name, lo, hi));
        LoopVar(self.loops.len() - 1)
    }

    /// Declare the next (inner) loop with possibly affine bounds over
    /// *earlier* loop variables, e.g. `do j = 1, i` as
    /// `add_loop_bounds("j", sub_const(1), sub(i))`. Constant expressions
    /// fold into plain constant bounds (the canonical wire form); hulls
    /// are derived automatically in [`Self::finish`].
    pub fn add_loop_bounds(
        &mut self,
        name: impl Into<String>,
        lo: SubExpr,
        hi: SubExpr,
    ) -> LoopVar {
        self.loops.push(LoopDef::new(name, 0, 0));
        self.bound_exprs.push((self.loops.len() - 1, lo, hi));
        LoopVar(self.loops.len() - 1)
    }

    /// Declare an array with the current element size / layout.
    pub fn array(&mut self, name: impl Into<String>, extents: &[i64]) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            extents: extents.to_vec(),
            elem_size: self.elem_size,
            layout: self.layout,
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Append a read reference.
    pub fn read(&mut self, array: ArrayId, subscripts: &[SubExpr]) -> &mut Self {
        self.refs.push((array, subscripts.to_vec(), AccessKind::Read));
        self
    }

    /// Append a write reference.
    pub fn write(&mut self, array: ArrayId, subscripts: &[SubExpr]) -> &mut Self {
        self.refs.push((array, subscripts.to_vec(), AccessKind::Write));
        self
    }

    /// Build and validate the nest.
    pub fn finish(self) -> Result<LoopNest, NestError> {
        let depth = self.loops.len();
        let mut loops = self.loops;
        // Resolve affine bounds in declaration order, so each loop's hull
        // interval can be derived from the (already final) outer hulls —
        // the same interval-arithmetic rule `LoopNest::validate` checks.
        for (idx, lo_e, hi_e) in self.bound_exprs {
            let lo_form = lo_e.into_form(depth);
            let hi_form = hi_e.into_form(depth);
            let hull = |loops: &[LoopDef], f: &AffineForm, want_max: bool| -> i64 {
                let mut acc = f.c0 as i128;
                for (p, &c) in f.coeffs.iter().enumerate().take(idx) {
                    let (a, b) =
                        ((c as i128) * (loops[p].lo as i128), (c as i128) * (loops[p].hi as i128));
                    acc += if want_max { a.max(b) } else { a.min(b) };
                }
                i64::try_from(acc).expect("bound hull overflow")
            };
            loops[idx].lo = hull(&loops, &lo_form, false);
            loops[idx].hi = hull(&loops, &hi_form, true);
            loops[idx].lo_aff = Some(lo_form).filter(|f| !f.is_constant());
            loops[idx].hi_aff = Some(hi_form).filter(|f| !f.is_constant());
        }
        let nest = LoopNest {
            name: self.name,
            loops,
            arrays: self.arrays,
            refs: self
                .refs
                .into_iter()
                .map(|(a, subs, kind)| MemRef {
                    array: a,
                    subscripts: subs.into_iter().map(|s| s.into_form(depth)).collect(),
                    access: kind,
                })
                .collect(),
        };
        nest.validate()?;
        Ok(nest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_transpose() {
        let mut nb = NestBuilder::new("t2d");
        let i = nb.add_loop("i", 1, 8);
        let j = nb.add_loop("j", 1, 8);
        let a = nb.array("a", &[8, 8]);
        let b = nb.array("b", &[8, 8]);
        nb.read(b, &[sub(i), sub(j)]);
        nb.write(a, &[sub(j), sub(i)]);
        let nest = nb.finish().unwrap();
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.refs.len(), 2);
        assert!(nest.refs[1].is_write());
    }

    #[test]
    fn subscript_arithmetic() {
        let mut nb = NestBuilder::new("stencil");
        let i = nb.add_loop("i", 2, 7);
        let x = nb.array("x", &[8]);
        nb.read(x, &[sub(i).minus(1)]);
        nb.read(x, &[sub(i).plus(1)]);
        nb.write(x, &[sub(i)]);
        let nest = nb.finish().unwrap();
        assert_eq!(nest.refs[0].subscripts[0], AffineForm::new(vec![1], -1));
        assert_eq!(nest.refs[1].subscripts[0], AffineForm::new(vec![1], 1));
    }

    #[test]
    fn strided_and_reversed_subscripts() {
        let mut nb = NestBuilder::new("fft_like");
        let j = nb.add_loop("j", 1, 4);
        let cc = nb.array("cc", &[9]);
        // cc(2j − 1) and cc(9 − j):
        nb.read(cc, &[sub(j).times(2).minus(1)]);
        nb.read(cc, &[sub_const(9).plus_var(j, -1)]);
        let nest = nb.finish().unwrap();
        assert_eq!(nest.refs[0].subscripts[0], AffineForm::new(vec![2], -1));
        assert_eq!(nest.refs[1].subscripts[0], AffineForm::new(vec![-1], 9));
    }

    #[test]
    fn builder_surfaces_validation_errors() {
        let mut nb = NestBuilder::new("bad");
        let i = nb.add_loop("i", 1, 9);
        let a = nb.array("a", &[8]);
        nb.write(a, &[sub(i)]); // i reaches 9 > extent 8
        assert!(nb.finish().is_err());
    }
}
