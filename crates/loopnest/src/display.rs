//! Pseudo-Fortran pretty-printing of nests, original and tiled.
//!
//! Used by examples and experiment reports so humans can see exactly which
//! loop structure was analysed (compare paper Figs. 1 and 3).

use crate::nest::LoopNest;
use crate::tiling::TileSizes;
use cme_polyhedra::AffineForm;
use std::fmt::Write as _;

/// Render one subscript form with loop-variable names.
fn fmt_sub(f: &AffineForm, names: &[&str]) -> String {
    let mut out = String::new();
    let mut first = true;
    for (t, &c) in f.coeffs.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let name = names[t];
        if first {
            match c {
                1 => write!(out, "{name}").unwrap(),
                -1 => write!(out, "-{name}").unwrap(),
                _ => write!(out, "{c}*{name}").unwrap(),
            }
            first = false;
        } else if c == 1 {
            write!(out, "+{name}").unwrap();
        } else if c == -1 {
            write!(out, "-{name}").unwrap();
        } else if c < 0 {
            write!(out, "{c}*{name}").unwrap();
        } else {
            write!(out, "+{c}*{name}").unwrap();
        }
    }
    if first {
        write!(out, "{}", f.c0).unwrap();
    } else if f.c0 > 0 {
        write!(out, "+{}", f.c0).unwrap();
    } else if f.c0 < 0 {
        write!(out, "{}", f.c0).unwrap();
    }
    out
}

fn fmt_ref(nest: &LoopNest, r: usize, names: &[&str]) -> String {
    let mref = &nest.refs[r];
    let arr = nest.array(mref.array);
    let subs: Vec<String> = mref.subscripts.iter().map(|s| fmt_sub(s, names)).collect();
    format!("{}({})", arr.name, subs.join(","))
}

/// Render one loop bound: the affine form when present (triangular
/// bounds), the constant hull bound otherwise.
fn fmt_bound(aff: Option<&AffineForm>, constant: i64, names: &[&str]) -> String {
    match aff {
        Some(f) => fmt_sub(f, names),
        None => constant.to_string(),
    }
}

/// Render the original nest as pseudo-Fortran.
pub fn render(nest: &LoopNest) -> String {
    let names: Vec<&str> = nest.loops.iter().map(|l| l.name.as_str()).collect();
    let mut out = String::new();
    for (lvl, l) in nest.loops.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}do {} = {}, {}",
            "  ".repeat(lvl),
            l.name,
            fmt_bound(l.lo_aff.as_ref(), l.lo, &names),
            fmt_bound(l.hi_aff.as_ref(), l.hi, &names)
        );
    }
    let indent = "  ".repeat(nest.loops.len());
    let writes: Vec<usize> = (0..nest.refs.len()).filter(|&r| nest.refs[r].is_write()).collect();
    let reads: Vec<String> = (0..nest.refs.len())
        .filter(|&r| !nest.refs[r].is_write())
        .map(|r| fmt_ref(nest, r, &names))
        .collect();
    if writes.len() == 1 {
        let _ =
            writeln!(out, "{indent}{} = f({})", fmt_ref(nest, writes[0], &names), reads.join(", "));
    } else {
        for w in writes {
            let _ = writeln!(out, "{indent}{} = ...", fmt_ref(nest, w, &names));
        }
        if !reads.is_empty() {
            let _ = writeln!(out, "{indent}... uses {}", reads.join(", "));
        }
    }
    for lvl in (0..nest.loops.len()).rev() {
        let _ = writeln!(out, "{}enddo", "  ".repeat(lvl));
    }
    out
}

/// Render the tiled nest (strip-mined block loops outermost, `min` upper
/// bounds on element loops) as pseudo-Fortran — the shape of Fig. 3(b).
pub fn render_tiled(nest: &LoopNest, tiles: &TileSizes) -> String {
    let mut out = String::new();
    let d = nest.depth();
    for (lvl, l) in nest.loops.iter().enumerate() {
        let t = tiles.0[lvl];
        let _ = writeln!(
            out,
            "{}do {}{} = {}, {}, {}",
            "  ".repeat(lvl),
            l.name,
            l.name,
            l.lo,
            l.hi,
            t
        );
    }
    for (lvl, l) in nest.loops.iter().enumerate() {
        let t = tiles.0[lvl];
        let _ = writeln!(
            out,
            "{}do {} = {}{}, min({}{}+{}, {})",
            "  ".repeat(d + lvl),
            l.name,
            l.name,
            l.name,
            l.name,
            l.name,
            t - 1,
            l.hi
        );
    }
    let names: Vec<&str> = nest.loops.iter().map(|l| l.name.as_str()).collect();
    let indent = "  ".repeat(2 * d);
    let writes: Vec<usize> = (0..nest.refs.len()).filter(|&r| nest.refs[r].is_write()).collect();
    let reads: Vec<String> = (0..nest.refs.len())
        .filter(|&r| !nest.refs[r].is_write())
        .map(|r| fmt_ref(nest, r, &names))
        .collect();
    if writes.len() == 1 {
        let _ =
            writeln!(out, "{indent}{} = f({})", fmt_ref(nest, writes[0], &names), reads.join(", "));
    } else {
        for w in writes {
            let _ = writeln!(out, "{indent}{} = ...", fmt_ref(nest, w, &names));
        }
    }
    for lvl in (0..2 * d).rev() {
        let _ = writeln!(out, "{}enddo", "  ".repeat(lvl));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{sub, NestBuilder};

    fn mm() -> LoopNest {
        let mut nb = NestBuilder::new("mm");
        let i = nb.add_loop("i", 1, 8);
        let j = nb.add_loop("j", 1, 8);
        let k = nb.add_loop("k", 1, 8);
        let a = nb.array("a", &[8, 8]);
        let b = nb.array("b", &[8, 8]);
        let c = nb.array("c", &[8, 8]);
        nb.read(a, &[sub(i), sub(j)]);
        nb.read(b, &[sub(i), sub(k)]);
        nb.read(c, &[sub(k), sub(j)]);
        nb.write(a, &[sub(i), sub(j)]);
        nb.finish().unwrap()
    }

    #[test]
    fn renders_original() {
        let s = render(&mm());
        assert!(s.contains("do i = 1, 8"));
        assert!(s.contains("a(i,j) = f(a(i,j), b(i,k), c(k,j))"));
        assert_eq!(s.matches("enddo").count(), 3);
    }

    #[test]
    fn renders_tiled_with_min_bounds() {
        let s = render_tiled(&mm(), &TileSizes(vec![4, 4, 4]));
        assert!(s.contains("do ii = 1, 8, 4"));
        assert!(s.contains("do i = ii, min(ii+3, 8)"));
        assert_eq!(s.matches("enddo").count(), 6);
    }

    #[test]
    fn subscript_formatting() {
        let f = AffineForm::new(vec![2, 0, -1], -1);
        assert_eq!(fmt_sub(&f, &["i", "j", "k"]), "2*i-k-1");
        assert_eq!(fmt_sub(&AffineForm::new(vec![0, 0, 0], 5), &["i", "j", "k"]), "5");
    }
}
