//! Execution spaces: the iteration domain in analysis coordinates.
//!
//! The fast CME solver wants every convex region of the iteration space to
//! be an integer *box*. For the original nest that is immediate. For a
//! tiled nest we analyse in `(b_1..b_d, u_1..u_d)` coordinates — block
//! index and intra-tile offset — where `i_t = lo_t + T_t·b_t + u_t`:
//!
//! * execution order is plain lexicographic order on `(b, u)` (identical
//!   to the program order of the tiled loops of Fig. 3(b));
//! * the up-to-`2^d` convex regions of paper §2.4 (full/partial last tile
//!   per dimension) are *pure boxes* in these coordinates;
//! * the projection back to original loop variables is one affine map,
//!   shared by all regions, so per-reference address forms remain single
//!   affine forms.

use crate::nest::LoopNest;
use crate::tiling::TileSizes;
use cme_polyhedra::{AffineForm, IntBox, Interval};
use serde::{Deserialize, Serialize};

/// One convex region: a box in analysis coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    pub vbox: IntBox,
}

/// Non-rectangular refinement of an execution space: the triangular shape
/// carved out of the hull regions by affine half-space constraints.
///
/// The hull regions (and their rank bijection) are untouched — a shaped
/// space is "hull boxes ∩ constraints", so every box-based algorithm stays
/// valid as a conservative over-approximation and exact consumers filter
/// through [`ExecSpace::contains_v`] / [`ExecSpace::refine_box`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceShape {
    /// Constraints `g(v) ≥ 0` over analysis coordinates; a point belongs
    /// to the shape iff it is in a hull region and satisfies all of them.
    pub constraints: Vec<AffineForm>,
    /// Per original dimension, the exact affine lower/upper bound over the
    /// *original* loop variables (referencing outer dimensions only);
    /// `None` for constant (hull) bounds.
    pub lo_forms: Vec<Option<AffineForm>>,
    pub hi_forms: Vec<Option<AffineForm>>,
    /// Exact point count of the shape (cached at construction).
    pub volume: u64,
}

/// How analysis coordinates relate to the original loop variables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpaceKind {
    /// `v = i` (original nest).
    Original,
    /// `v = (b_1..b_d, u_1..u_d)` with `i_t = lo_t + T_t·b_t + u_t`.
    Tiled { tiles: TileSizes },
}

/// The execution space of a (possibly tiled) nest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecSpace {
    pub kind: SpaceKind,
    /// Nest depth `d` (number of original loop variables).
    pub n_orig: usize,
    /// Analysis dimensionality: `d` (original) or `2d` (tiled).
    pub n_v: usize,
    /// Disjoint convex regions covering the space.
    pub regions: Vec<Region>,
    /// `proj[t]` maps an analysis point to original variable `t`.
    pub proj: Vec<AffineForm>,
    /// Triangular refinement; `None` for rectangular nests (whose wire
    /// bytes stay exactly as before).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub shape: Option<SpaceShape>,
    /// Original loop lower bounds and spans (cached for lifting).
    los: Vec<i64>,
    spans: Vec<i64>,
}

impl ExecSpace {
    /// The untransformed space: one box, identity projection.
    pub fn untiled(nest: &LoopNest) -> Self {
        let d = nest.depth();
        let proj: Vec<AffineForm> = (0..d).map(|t| AffineForm::var(d, t)).collect();
        let shape = Self::shape_of(nest, &proj);
        ExecSpace {
            kind: SpaceKind::Original,
            n_orig: d,
            n_v: d,
            regions: vec![Region { vbox: nest.iter_box() }],
            proj,
            shape,
            los: nest.loops.iter().map(|l| l.lo).collect(),
            spans: nest.spans(),
        }
    }

    /// Build the triangular refinement for a nest under a projection from
    /// analysis coordinates to original variables (`None` when the nest is
    /// rectangular). Each affine bound contributes one half-space
    /// constraint in analysis coordinates: `i_t − lo_t(i) ≥ 0` and
    /// `hi_t(i) − i_t ≥ 0` with `i = proj(v)`.
    fn shape_of(nest: &LoopNest, proj: &[AffineForm]) -> Option<SpaceShape> {
        if nest.is_rectangular() {
            return None;
        }
        let d = nest.depth();
        let mut constraints = Vec::new();
        let mut lo_forms = Vec::with_capacity(d);
        let mut hi_forms = Vec::with_capacity(d);
        for (t, l) in nest.loops.iter().enumerate() {
            if let Some(f) = &l.lo_aff {
                constraints.push(proj[t].sub(&f.compose(proj)));
            }
            if let Some(f) = &l.hi_aff {
                constraints.push(f.compose(proj).sub(&proj[t]));
            }
            lo_forms.push(l.lo_aff.clone());
            hi_forms.push(l.hi_aff.clone());
        }
        let volume = nest.iterations();
        Some(SpaceShape { constraints, lo_forms, hi_forms, volume })
    }

    /// The tiled space for tile vector `T` (must be valid for the nest).
    /// Regions enumerate the full/partial-last-tile choices per dimension;
    /// dimensions whose tile divides the span need no split.
    pub fn tiled(nest: &LoopNest, tiles: &TileSizes) -> Self {
        tiles.validate(nest).expect("invalid tile sizes");
        let d = nest.depth();
        let spans = nest.spans();
        // Per-dimension region choices: (b-interval, u-interval).
        let mut choices: Vec<Vec<(Interval, Interval)>> = Vec::with_capacity(d);
        for t in 0..d {
            let (span, tile) = (spans[t], tiles.0[t]);
            let blocks = (span + tile - 1) / tile;
            let rem = span - (blocks - 1) * tile; // size of last tile, in (0, tile]
            let mut c = Vec::with_capacity(2);
            if rem == tile {
                // Tile divides span: one homogeneous choice.
                c.push((Interval::new(0, blocks - 1), Interval::new(0, tile - 1)));
            } else {
                if blocks >= 2 {
                    c.push((Interval::new(0, blocks - 2), Interval::new(0, tile - 1)));
                }
                c.push((Interval::new(blocks - 1, blocks - 1), Interval::new(0, rem - 1)));
            }
            choices.push(c);
        }
        // Cartesian product of choices.
        let mut regions: Vec<Region> = Vec::new();
        let mut idx = vec![0usize; d];
        loop {
            let mut dims = vec![Interval::point(0); 2 * d];
            for t in 0..d {
                let (b_iv, u_iv) = choices[t][idx[t]];
                dims[t] = b_iv;
                dims[d + t] = u_iv;
            }
            regions.push(Region { vbox: IntBox::new(dims) });
            // Odometer.
            let mut t = d;
            loop {
                if t == 0 {
                    idx.clear();
                    break;
                }
                t -= 1;
                idx[t] += 1;
                if idx[t] < choices[t].len() {
                    break;
                }
                idx[t] = 0;
            }
            if idx.is_empty() {
                break;
            }
        }
        // Projection: i_t = lo_t + T_t·b_t + u_t.
        let proj: Vec<AffineForm> = (0..d)
            .map(|t| {
                let mut coeffs = vec![0i64; 2 * d];
                coeffs[t] = tiles.0[t];
                coeffs[d + t] = 1;
                AffineForm::new(coeffs, nest.loops[t].lo)
            })
            .collect();
        let shape = Self::shape_of(nest, &proj);
        ExecSpace {
            kind: SpaceKind::Tiled { tiles: tiles.clone() },
            n_orig: d,
            n_v: 2 * d,
            regions,
            proj,
            shape,
            los: nest.loops.iter().map(|l| l.lo).collect(),
            spans,
        }
    }

    /// Total number of *hull* points across regions — for rectangular
    /// nests the iteration count; for triangular nests an upper bound.
    /// The global rank bijection ([`Self::point_at_global_rank`]) runs
    /// over this hull count, shaped points being a filtered subset.
    pub fn volume(&self) -> u64 {
        self.regions.iter().map(|r| r.vbox.volume()).sum()
    }

    /// Exact number of iterations (must equal the nest's, tiled or not).
    pub fn shape_volume(&self) -> u64 {
        self.shape.as_ref().map_or_else(|| self.volume(), |s| s.volume)
    }

    /// Map an analysis point to original loop variables.
    pub fn to_orig(&self, v: &[i64]) -> Vec<i64> {
        self.proj.iter().map(|p| p.eval(v)).collect()
    }

    /// Rewrite an affine form over original variables into one over
    /// analysis coordinates.
    pub fn lift_form(&self, f: &AffineForm) -> AffineForm {
        debug_assert_eq!(f.n_vars(), self.n_orig);
        f.compose(&self.proj)
    }

    /// True iff the analysis point belongs to the space (any hull region,
    /// and inside the triangular shape when one is present).
    pub fn contains_v(&self, v: &[i64]) -> bool {
        self.regions.iter().any(|r| r.vbox.contains(v)) && self.in_shape(v)
    }

    /// True iff the point satisfies every shape constraint (vacuously true
    /// for rectangular spaces).
    pub fn in_shape(&self, v: &[i64]) -> bool {
        self.shape.as_ref().is_none_or(|s| s.constraints.iter().all(|g| g.eval(v) >= 0))
    }

    /// Index of the region containing the point, if any. Regions are
    /// disjoint so the answer is unique.
    pub fn region_of(&self, v: &[i64]) -> Option<usize> {
        self.regions.iter().position(|r| r.vbox.contains(v))
    }

    /// The point with global rank `rank` across regions (region-major
    /// order). A bijection `[0, volume) → points`, used for simple random
    /// sampling.
    pub fn point_at_global_rank(&self, rank: u64) -> Vec<i64> {
        let mut r = rank;
        for region in &self.regions {
            let vol = region.vbox.volume();
            if r < vol {
                return region.vbox.point_at_rank(r);
            }
            r -= vol;
        }
        panic!("rank {rank} out of range (volume {})", self.volume());
    }

    /// All constant analysis-space displacement vectors realising a given
    /// original-space displacement `r` (reuse-vector lifting). In a tiled
    /// space a displacement `r_t` along dimension `t` decomposes as
    /// `Δb_t·T_t + Δu_t` with `|Δu_t| < T_t`, giving up to two choices per
    /// dimension (same-block and adjacent-block "wrap"); the result is the
    /// cartesian product over dimensions.
    pub fn lift_displacement(&self, r: &[i64]) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        self.lift_displacement_each(r, |v| out.push(v.to_vec()));
        out
    }

    /// Visitor form of [`Self::lift_displacement`]: calls `f` with each
    /// realisation in the same order, reusing one scratch buffer — the
    /// allocation-free path for consumers that filter most realisations
    /// out (e.g. capped candidate selection).
    pub fn lift_displacement_each(&self, r: &[i64], mut f: impl FnMut(&[i64])) {
        debug_assert_eq!(r.len(), self.n_orig);
        match &self.kind {
            SpaceKind::Original => f(r),
            SpaceKind::Tiled { tiles } => {
                let d = self.n_orig;
                let mut per_dim: Vec<Vec<(i64, i64)>> = Vec::with_capacity(d);
                for t in 0..d {
                    let tile = tiles.0[t];
                    let mut opts = Vec::with_capacity(2);
                    let db0 = r[t].div_euclid(tile);
                    for db in [db0, db0 + 1] {
                        let du = r[t] - db * tile;
                        if du.abs() < tile {
                            opts.push((db, du));
                        }
                    }
                    opts.dedup();
                    per_dim.push(opts);
                }
                // Cartesian product, last dimension varying fastest (the
                // order the materialising form historically produced).
                let mut idx = vec![0usize; d];
                let mut v = vec![0i64; 2 * d];
                loop {
                    for t in 0..d {
                        let (db, du) = per_dim[t][idx[t]];
                        v[t] = db;
                        v[d + t] = du;
                    }
                    f(&v);
                    let mut t = d;
                    loop {
                        if t == 0 {
                            return;
                        }
                        t -= 1;
                        idx[t] += 1;
                        if idx[t] < per_dim[t].len() {
                            break;
                        }
                        idx[t] = 0;
                        if t == 0 {
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Per-dimension *relaxed* bounds: the widest interval each analysis
    /// coordinate can take over the whole space (ignoring the coupling
    /// between block index and intra-tile offset in partial tiles).
    pub fn relaxed_dims(&self) -> Vec<Interval> {
        match &self.kind {
            SpaceKind::Original => self.regions[0].vbox.dims.clone(),
            SpaceKind::Tiled { tiles } => {
                let d = self.n_orig;
                let mut out = Vec::with_capacity(2 * d);
                for t in 0..d {
                    let blocks = (self.spans[t] + tiles.0[t] - 1) / tiles.0[t];
                    out.push(Interval::new(0, blocks - 1));
                }
                for t in 0..d {
                    out.push(Interval::new(0, tiles.0[t].min(self.spans[t]) - 1));
                }
                out
            }
        }
    }

    /// Exact feasible range of coordinate `t` given the values of all
    /// earlier coordinates (`prefix[..t]`). For a tiled space the bound of
    /// an offset coordinate depends on its block coordinate, which always
    /// precedes it. Triangular shapes narrow the interval further (and may
    /// empty it): each affine bound of an original dimension references
    /// outer dimensions only, so it resolves exactly once the prefix is
    /// fixed — for block coordinates the hull is kept and callers backtrack
    /// on the (then possibly empty) offset interval.
    pub fn dim_interval(&self, t: usize, prefix: &[i64]) -> Interval {
        match &self.kind {
            SpaceKind::Original => {
                let mut iv = self.regions[0].vbox.dims[t];
                if let Some(s) = &self.shape {
                    if let Some(f) = &s.lo_forms[t] {
                        iv = iv.intersect(&Interval::new(eval_prefix(f, prefix), iv.hi));
                    }
                    if let Some(f) = &s.hi_forms[t] {
                        iv = iv.intersect(&Interval::new(iv.lo, eval_prefix(f, prefix)));
                    }
                }
                iv
            }
            SpaceKind::Tiled { tiles } => {
                let d = self.n_orig;
                if t < d {
                    let blocks = (self.spans[t] + tiles.0[t] - 1) / tiles.0[t];
                    Interval::new(0, blocks - 1)
                } else {
                    let q = t - d;
                    let b = prefix[q];
                    let mut iv =
                        Interval::new(0, (self.spans[q] - b * tiles.0[q]).min(tiles.0[q]) - 1);
                    if let Some(s) = &self.shape {
                        if s.lo_forms[q].is_some() || s.hi_forms[q].is_some() {
                            // Reconstruct the original outer values
                            // i_p = lo_p + T_p·b_p + u_p (p < q — all in the
                            // prefix), then translate the original-space
                            // bound into offset coordinates:
                            // u_q = i_q − lo_q − T_q·b_q.
                            let orig: Vec<i64> = (0..q)
                                .map(|p| self.los[p] + tiles.0[p] * prefix[p] + prefix[d + p])
                                .collect();
                            let base = self.los[q] + tiles.0[q] * b;
                            if let Some(f) = &s.lo_forms[q] {
                                let lo_u = eval_prefix(f, &orig) - base;
                                iv = iv.intersect(&Interval::new(lo_u, iv.hi));
                            }
                            if let Some(f) = &s.hi_forms[q] {
                                let hi_u = eval_prefix(f, &orig) - base;
                                iv = iv.intersect(&Interval::new(iv.lo, hi_u));
                            }
                        }
                    }
                    iv
                }
            }
        }
    }

    /// Restrict a box in analysis coordinates by the shape constraints
    /// (interval propagation, one pass per constraint): `None` when the
    /// box provably holds no shape point, otherwise a box at most as
    /// large. Rectangular spaces return the box unchanged; the result is
    /// always a superset of `bx ∩ shape`, so box-based solvers stay
    /// conservative, just tighter.
    pub fn refine_box(&self, bx: IntBox) -> Option<IntBox> {
        let Some(s) = &self.shape else { return Some(bx) };
        let mut bx = bx;
        for g in &s.constraints {
            // Feasibility: the max of g over the box must reach 0.
            let mut max: i128 = g.c0 as i128;
            for (c, iv) in g.coeffs.iter().zip(&bx.dims) {
                let (a, b) = ((*c as i128) * (iv.lo as i128), (*c as i128) * (iv.hi as i128));
                max += a.max(b);
            }
            if max < 0 {
                return None;
            }
            // Tighten each involved dimension: c·x ≥ −(max of the rest).
            for t in 0..bx.dims.len() {
                let c = g.coeffs[t];
                if c == 0 {
                    continue;
                }
                let iv = bx.dims[t];
                let rest = max - (c as i128) * (if c > 0 { iv.hi } else { iv.lo }) as i128;
                let tightened = if c > 0 {
                    // x ≥ ceil(−rest / c)
                    let lo = (-rest).div_euclid(c as i128)
                        + i128::from((-rest).rem_euclid(c as i128) != 0);
                    Interval::new(clamp_i64(lo).max(iv.lo), iv.hi)
                } else {
                    // x ≤ floor(rest / −c)
                    let hi = rest.div_euclid(-(c as i128));
                    Interval::new(iv.lo, clamp_i64(hi).min(iv.hi))
                };
                if tightened.is_empty() {
                    return None;
                }
                bx.dims[t] = tightened;
            }
        }
        Some(bx)
    }

    /// Visit every point in *execution order* (lexicographic on analysis
    /// coordinates). Intended for exhaustive analysis of small spaces.
    /// Triangular spaces visit exactly the shape points, in the same
    /// order.
    pub fn for_each_point(&self, mut callback: impl FnMut(&[i64])) {
        let mut f = |v: &[i64]| {
            if self.in_shape(v) {
                callback(v);
            }
        };
        match &self.kind {
            SpaceKind::Original => {
                let b = &self.regions[0].vbox;
                for p in b.iter_points() {
                    f(&p);
                }
            }
            SpaceKind::Tiled { tiles } => {
                // Iterate blocks lexicographically, then offsets with
                // block-dependent bounds — exactly the tiled loop order.
                let d = self.n_orig;
                let blocks: Vec<i64> =
                    tiles.0.iter().zip(&self.spans).map(|(&t, &s)| (s + t - 1) / t).collect();
                let bbox = IntBox::from_sizes(&blocks);
                let mut v = vec![0i64; 2 * d];
                for b in bbox.iter_points() {
                    v[..d].copy_from_slice(&b);
                    // Per-dim offset bound for this block.
                    let ubounds: Vec<i64> = (0..d)
                        .map(|t| {
                            let tile = tiles.0[t];
                            (self.spans[t] - b[t] * tile).min(tile)
                        })
                        .collect();
                    let ubox = IntBox::from_sizes(&ubounds);
                    for u in ubox.iter_points() {
                        v[d..].copy_from_slice(&u);
                        f(&v);
                    }
                }
            }
        }
    }
}

/// Evaluate an affine form whose nonzero coefficients all lie below
/// `prefix.len()` (the bound-validation invariant: a loop's bound only
/// references outer loops).
fn eval_prefix(f: &AffineForm, prefix: &[i64]) -> i64 {
    let mut acc = f.c0 as i128;
    for (c, v) in f.coeffs.iter().zip(prefix) {
        acc += (*c as i128) * (*v as i128);
    }
    i64::try_from(acc).expect("bound eval overflow")
}

fn clamp_i64(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayDecl;
    use crate::nest::{LoopDef, LoopNest};

    fn nest(spans: &[i64]) -> LoopNest {
        LoopNest {
            name: "n".into(),
            loops: spans
                .iter()
                .enumerate()
                .map(|(t, &s)| LoopDef::new(format!("i{t}"), 1, s))
                .collect(),
            arrays: vec![ArrayDecl::real4("a", &[1])],
            refs: vec![],
        }
    }

    #[test]
    fn paper_figure2_example() {
        // do i = 1,7 tiled by 3 (Fig. 2): 2 convex regions; 7 points total.
        let n = nest(&[7]);
        let s = ExecSpace::tiled(&n, &TileSizes(vec![3]));
        assert_eq!(s.regions.len(), 2);
        assert_eq!(s.volume(), 7);
        // Full region: b ∈ [0,1], u ∈ [0,2]; partial: b = 2, u ∈ [0,0].
        assert_eq!(s.regions[0].vbox, IntBox::new(vec![Interval::new(0, 1), Interval::new(0, 2)]));
        assert_eq!(s.regions[1].vbox, IntBox::new(vec![Interval::new(2, 2), Interval::new(0, 0)]));
    }

    #[test]
    fn region_count_is_2_pow_partial_dims() {
        let n = nest(&[7, 9, 8]);
        // tiles 3,4,4: dims 1,2 partial (7%3, 9%4 ≠ 0), dim 3 divides.
        let s = ExecSpace::tiled(&n, &TileSizes(vec![3, 4, 4]));
        assert_eq!(s.regions.len(), 4);
        assert_eq!(s.volume(), 7 * 9 * 8);
    }

    #[test]
    fn tile_equal_span_is_single_region_identity_order() {
        let n = nest(&[5, 5]);
        let s = ExecSpace::tiled(&n, &TileSizes(vec![5, 5]));
        assert_eq!(s.regions.len(), 1);
        assert_eq!(s.volume(), 25);
        // Execution order must match the untiled order.
        let mut tiled_order = Vec::new();
        s.for_each_point(|v| tiled_order.push(s.to_orig(v)));
        let u = ExecSpace::untiled(&n);
        let mut orig_order = Vec::new();
        u.for_each_point(|v| orig_order.push(v.to_vec()));
        assert_eq!(tiled_order, orig_order);
    }

    #[test]
    fn projection_roundtrip_and_membership() {
        let n = nest(&[7, 5]);
        let s = ExecSpace::tiled(&n, &TileSizes(vec![3, 2]));
        let mut seen = std::collections::HashSet::new();
        s.for_each_point(|v| {
            assert!(s.contains_v(v), "{v:?} must be in space");
            assert!(s.region_of(v).is_some());
            let orig = s.to_orig(v);
            assert!((1..=7).contains(&orig[0]) && (1..=5).contains(&orig[1]));
            assert!(seen.insert(orig), "original point visited twice");
        });
        assert_eq!(seen.len(), 35);
        // Points outside: u beyond partial bound.
        assert!(!s.contains_v(&[2, 0, 1, 0])); // b0=2 is last block (rem 1): u0 must be 0
    }

    #[test]
    fn execution_order_is_tiled_program_order() {
        // 1-D, U=7, T=3: order must be 1,2,3, 4,5,6, 7.
        let n = nest(&[7]);
        let s = ExecSpace::tiled(&n, &TileSizes(vec![3]));
        let mut order = Vec::new();
        s.for_each_point(|v| order.push(s.to_orig(v)[0]));
        assert_eq!(order, vec![1, 2, 3, 4, 5, 6, 7]);
        // 2-D, 4x4, T=(2,2): first tile visits (1,1),(1,2),(2,1),(2,2).
        let n2 = nest(&[4, 4]);
        let s2 = ExecSpace::tiled(&n2, &TileSizes(vec![2, 2]));
        let mut order2 = Vec::new();
        s2.for_each_point(|v| order2.push(s2.to_orig(v)));
        assert_eq!(&order2[..4], &[vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2]]);
        assert_eq!(order2.len(), 16);
    }

    #[test]
    fn global_rank_bijection() {
        let n = nest(&[7, 5]);
        let s = ExecSpace::tiled(&n, &TileSizes(vec![3, 2]));
        let vol = s.volume();
        let mut seen = std::collections::HashSet::new();
        for r in 0..vol {
            let p = s.point_at_global_rank(r);
            assert!(s.contains_v(&p));
            assert!(seen.insert(p));
        }
        assert_eq!(seen.len() as u64, vol);
    }

    #[test]
    fn lift_form_preserves_value() {
        let n = nest(&[7, 5]);
        let s = ExecSpace::tiled(&n, &TileSizes(vec![3, 2]));
        // f(i, j) = 10i + j
        let f = AffineForm::new(vec![10, 1], 0);
        let lf = s.lift_form(&f);
        s.for_each_point(|v| {
            assert_eq!(lf.eval(v), f.eval(&s.to_orig(v)));
        });
    }

    #[test]
    fn displacement_lifting_covers_all_realisations() {
        let n = nest(&[10]);
        let s = ExecSpace::tiled(&n, &TileSizes(vec![4]));
        // Displacement 1 in original space: within-block (0, 1) or wrap
        // (1, -3).
        let lifts = s.lift_displacement(&[1]);
        assert!(lifts.contains(&vec![0, 1]));
        assert!(lifts.contains(&vec![1, -3]));
        assert_eq!(lifts.len(), 2);
        // Exact-multiple displacement: only the block jump.
        let lifts4 = s.lift_displacement(&[4]);
        assert_eq!(lifts4, vec![vec![1, 0]]);
        // Verify semantics: v - lift projects to orig - r whenever both in space.
        for r in [[1], [4]] {
            for lift in s.lift_displacement(&r) {
                s.for_each_point(|v| {
                    let src: Vec<i64> = v.iter().zip(&lift).map(|(a, b)| a - b).collect();
                    if s.contains_v(&src) {
                        assert_eq!(s.to_orig(&src)[0], s.to_orig(v)[0] - r[0]);
                    }
                });
            }
        }
    }

    /// do i = 1,n / do j = 1,i (lower triangle).
    fn tri_nest(n: i64) -> LoopNest {
        LoopNest {
            name: "tri".into(),
            loops: vec![
                LoopDef::new("i", 1, n),
                LoopDef::with_affine_bounds("j", 1, n, None, Some(AffineForm::new(vec![1, 0], 0))),
            ],
            arrays: vec![ArrayDecl::real4("a", &[1])],
            refs: vec![],
        }
    }

    #[test]
    fn triangular_untiled_space_enumerates_the_shape() {
        let n = tri_nest(4);
        let s = ExecSpace::untiled(&n);
        assert_eq!(s.volume(), 16, "hull volume");
        assert_eq!(s.shape_volume(), 10, "exact shape");
        let mut pts = Vec::new();
        s.for_each_point(|v| pts.push(v.to_vec()));
        assert_eq!(pts.len(), 10);
        // Lexicographic, j ≤ i throughout.
        assert!(pts.windows(2).all(|w| cme_polyhedra::boxes::lex_cmp(&w[0], &w[1]).is_lt()));
        assert!(pts.iter().all(|p| p[1] <= p[0]));
        assert!(s.contains_v(&[3, 2]) && !s.contains_v(&[2, 3]));
        // dim_interval narrows by prefix: j ∈ [1, i].
        assert_eq!(s.dim_interval(1, &[2]), Interval::new(1, 2));
        assert_eq!(s.dim_interval(0, &[]), Interval::new(1, 4));
    }

    #[test]
    fn triangular_tiled_space_agrees_with_untiled() {
        let n = tri_nest(7);
        let s = ExecSpace::tiled(&n, &TileSizes(vec![3, 2]));
        assert_eq!(s.shape_volume(), 7 * 8 / 2);
        let mut seen = std::collections::HashSet::new();
        s.for_each_point(|v| {
            assert!(s.contains_v(v));
            let orig = s.to_orig(v);
            assert!(orig[1] <= orig[0], "tiled point left the triangle: {orig:?}");
            assert!(seen.insert(orig));
        });
        assert_eq!(seen.len() as u64, s.shape_volume());
    }

    #[test]
    fn triangular_tiled_dim_interval_matches_enumeration() {
        // Recursive enumeration via dim_interval must visit exactly the
        // shape points (the lexmax search's requirement).
        let n = tri_nest(5);
        let s = ExecSpace::tiled(&n, &TileSizes(vec![2, 2]));
        fn count(s: &ExecSpace, prefix: &mut Vec<i64>) -> u64 {
            if prefix.len() == s.n_v {
                return 1;
            }
            let iv = s.dim_interval(prefix.len(), prefix);
            let mut acc = 0;
            for v in iv.iter() {
                prefix.push(v);
                acc += count(s, prefix);
                prefix.pop();
            }
            acc
        }
        assert_eq!(count(&s, &mut Vec::new()), s.shape_volume());
    }

    #[test]
    fn refine_box_tightens_and_rejects() {
        let n = tri_nest(4);
        let s = ExecSpace::untiled(&n);
        // Box entirely above the diagonal: infeasible.
        let above = IntBox::new(vec![Interval::new(1, 2), Interval::new(3, 4)]);
        assert_eq!(s.refine_box(above), None);
        // Straddling box: j clamps to ≤ max i.
        let wide = IntBox::new(vec![Interval::new(1, 2), Interval::new(1, 4)]);
        let refined = s.refine_box(wide).unwrap();
        assert_eq!(refined.dims[1], Interval::new(1, 2));
        // Rectangular spaces pass boxes through untouched.
        let r = ExecSpace::untiled(&nest(&[4, 4]));
        let b = IntBox::new(vec![Interval::new(1, 2), Interval::new(3, 4)]);
        assert_eq!(r.refine_box(b.clone()), Some(b));
    }

    #[test]
    fn triangular_space_rank_bijection_covers_the_hull() {
        // The rank bijection stays hull-based; shape points are the
        // subset accepted by contains_v (rejection sampling's contract).
        let n = tri_nest(4);
        let s = ExecSpace::untiled(&n);
        let mut in_shape = 0;
        for r in 0..s.volume() {
            if s.contains_v(&s.point_at_global_rank(r)) {
                in_shape += 1;
            }
        }
        assert_eq!(in_shape, s.shape_volume());
    }

    #[test]
    fn untiled_space_basics() {
        let n = nest(&[4, 6]);
        let s = ExecSpace::untiled(&n);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.n_v, 2);
        assert_eq!(s.to_orig(&[2, 3]), vec![2, 3]);
        assert_eq!(s.lift_displacement(&[1, -1]), vec![vec![1, -1]]);
    }
}
