//! In-order access trace generation.
//!
//! The trace is the ground-truth view of a nest's memory behaviour: every
//! `(reference, byte address)` pair in execution order, for the original or
//! the tiled schedule. `cme-cachesim` consumes it to validate the CME
//! classifier.

use crate::layout::MemoryLayout;
use crate::nest::LoopNest;
use crate::space::ExecSpace;
use crate::tiling::TileSizes;

/// One memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Index into `nest.refs`.
    pub ref_idx: usize,
    /// Byte address.
    pub addr: i64,
}

/// Visit every access of the (optionally tiled) nest in execution order.
///
/// Addresses are produced by evaluating the per-reference affine address
/// forms at each iteration point; forms are lifted to analysis coordinates
/// once, so the inner loop is a handful of multiply-adds per reference.
pub fn for_each_access(
    nest: &LoopNest,
    layout: &MemoryLayout,
    tiles: Option<&TileSizes>,
    mut f: impl FnMut(Access),
) {
    let space = match tiles {
        None => ExecSpace::untiled(nest),
        Some(t) => ExecSpace::tiled(nest, t),
    };
    let forms: Vec<_> =
        layout.address_forms(nest).into_iter().map(|af| space.lift_form(&af)).collect();
    space.for_each_point(|v| {
        for (r, form) in forms.iter().enumerate() {
            f(Access { ref_idx: r, addr: form.eval(v) });
        }
    });
}

/// Collect the full trace into a vector (small nests only; the streaming
/// [`for_each_access`] is preferred for simulation).
pub fn collect_trace(
    nest: &LoopNest,
    layout: &MemoryLayout,
    tiles: Option<&TileSizes>,
) -> Vec<Access> {
    let mut v = Vec::with_capacity(nest.accesses() as usize);
    for_each_access(nest, layout, tiles, |a| v.push(a));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{ArrayDecl, ArrayId};
    use crate::nest::{LoopDef, LoopNest};
    use crate::refs::MemRef;
    use cme_polyhedra::AffineForm;

    /// do i = 1,2 / do j = 1,3 : read b(i,j); write a(j,i)
    fn nest() -> LoopNest {
        let i = AffineForm::new(vec![1, 0], 0);
        let j = AffineForm::new(vec![0, 1], 0);
        LoopNest {
            name: "t".into(),
            loops: vec![LoopDef::new("i", 1, 2), LoopDef::new("j", 1, 3)],
            arrays: vec![ArrayDecl::real4("a", &[3, 2]), ArrayDecl::real4("b", &[2, 3])],
            refs: vec![
                MemRef::read(ArrayId(1), vec![i.clone(), j.clone()]),
                MemRef::write(ArrayId(0), vec![j, i]),
            ],
        }
    }

    #[test]
    fn untiled_trace_order_and_addresses() {
        let n = nest();
        let l = MemoryLayout::contiguous(&n);
        let tr = collect_trace(&n, &l, None);
        assert_eq!(tr.len(), 12);
        // First iteration (1,1): b(1,1) at base_b = 64 (a is 24 bytes,
        // aligned up); a(1,1) at 0.
        assert_eq!(tr[0], Access { ref_idx: 0, addr: 64 });
        assert_eq!(tr[1], Access { ref_idx: 1, addr: 0 });
        // Second iteration (1,2): b(1,2) = 64 + 2*4 = 72 (col-major stride 2);
        // a(2,1) = 4.
        assert_eq!(tr[2], Access { ref_idx: 0, addr: 72 });
        assert_eq!(tr[3], Access { ref_idx: 1, addr: 4 });
    }

    #[test]
    fn tiled_trace_is_permutation_of_untiled() {
        let n = nest();
        let l = MemoryLayout::contiguous(&n);
        let mut a = collect_trace(&n, &l, None);
        let mut b = collect_trace(&n, &l, Some(&TileSizes(vec![2, 2])));
        assert_eq!(a.len(), b.len());
        a.sort_by_key(|x| (x.ref_idx, x.addr));
        b.sort_by_key(|x| (x.ref_idx, x.addr));
        assert_eq!(a, b, "tiling must only reorder accesses");
    }

    #[test]
    fn tiled_trace_follows_tile_order() {
        let n = nest();
        let l = MemoryLayout::contiguous(&n);
        // Tiles (2, 2): block (0,0) visits (1,1),(1,2),(2,1),(2,2); block
        // (0,1) visits (1,3),(2,3).
        let tr = collect_trace(&n, &l, Some(&TileSizes(vec![2, 2])));
        // Extract the b(i,j) reads and recompute (i, j) from addresses:
        // addr = 64 + 4·((i−1) + 2·(j−1)).
        let ij: Vec<(i64, i64)> = tr
            .iter()
            .filter(|a| a.ref_idx == 0)
            .map(|a| {
                let off = (a.addr - 64) / 4;
                (off % 2 + 1, off / 2 + 1)
            })
            .collect();
        assert_eq!(ij, vec![(1, 1), (1, 2), (2, 1), (2, 2), (1, 3), (2, 3)]);
    }
}
