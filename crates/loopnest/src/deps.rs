//! Uniform dependence analysis and rectangular-tiling legality.
//!
//! Tiling every loop and hoisting all block loops outermost (Fig. 3(b)) is
//! legal exactly when the nest is *fully permutable*: every dependence
//! distance vector must be component-wise non-negative. This module
//! extracts distance vectors between uniformly generated reference pairs
//! (the only kind our kernels produce) and decides legality; non-uniform
//! pairs involving a write are handled conservatively.

use crate::layout::MemoryLayout;
use crate::nest::LoopNest;
use cme_polyhedra::polyhedron::{Constraint, Polyhedron};
use cme_polyhedra::{AffineForm, IntBox, Interval};

/// Outcome of the legality analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TilingLegality {
    /// All dependence distances component-wise ≥ 0 (fully permutable).
    Legal,
    /// A violating dependence was found (or had to be assumed).
    Illegal { reason: String },
}

impl TilingLegality {
    pub fn is_legal(&self) -> bool {
        matches!(self, TilingLegality::Legal)
    }
}

/// Decide whether rectangular tiling (any tile sizes, block loops
/// outermost) preserves all data dependences of the nest.
///
/// For every ordered pair of references to the same array with at least
/// one write:
/// * **uniform pairs** — solve `Σ_t C_{s,t}·r_t = δ_s` for the distance
///   vector `r` (subscript coefficients are equal, constants differ);
///   tiling is illegal iff some lexicographically positive solution within
///   the iteration-span window has a negative component;
/// * **non-uniform pairs** — assumed illegal (conservative), with the
///   pair named in the reason.
pub fn rectangular_tiling_legality(nest: &LoopNest) -> TilingLegality {
    let d = nest.depth();
    let spans = nest.spans();
    for (i1, r1) in nest.refs.iter().enumerate() {
        for (i2, r2) in nest.refs.iter().enumerate() {
            if r1.array != r2.array || (!r1.is_write() && !r2.is_write()) {
                continue;
            }
            if !r1.uniform_with(r2) {
                return TilingLegality::Illegal {
                    reason: format!(
                        "non-uniform reference pair #{i1}/#{i2} on array `{}` (conservative)",
                        nest.array(r1.array).name
                    ),
                };
            }
            // Distance system: for each array dim s, C_s·r = k1_s − k2_s
            // (dependence from the r1 access at i to the r2 access at
            // i + r touching the same element).
            // Search for a violating r: lex-positive with a negative
            // component.
            let window =
                IntBox::new(spans.iter().map(|&s| Interval::new(-(s - 1), s - 1)).collect());
            for lead in 0..d {
                // Lex-positive piece: r_0..r_{lead-1} = 0, r_lead ≥ 1.
                for neg in lead + 1..d {
                    let mut p = Polyhedron::from_box(&window);
                    for (s1, s2) in r1.subscripts.iter().zip(&r2.subscripts) {
                        // Σ C_t r_t = k1 − k2  ⇔  Σ C_t r_t − (k1 − k2) = 0
                        let mut eq = AffineForm::new(s1.coeffs.clone(), 0);
                        eq.c0 = -(s1.c0 - s2.c0);
                        p.and_eq0(eq);
                    }
                    for t in 0..lead {
                        p.and_eq0(AffineForm::var(d, t));
                    }
                    p.and(Constraint::ge(AffineForm::var(d, lead), AffineForm::constant(d, 1)));
                    p.and(Constraint::le(AffineForm::var(d, neg), AffineForm::constant(d, -1)));
                    let mut cap = 200_000u64;
                    match p.is_empty_int(&window, &mut cap) {
                        Some(true) => {}
                        Some(false) => {
                            return TilingLegality::Illegal {
                                reason: format!(
                                    "dependence between refs #{i1} and #{i2} on `{}` has a \
                                     lex-positive distance with negative component {neg}",
                                    nest.array(r1.array).name
                                ),
                            };
                        }
                        None => {
                            return TilingLegality::Illegal {
                                reason: "legality search budget exhausted (conservative)".into(),
                            };
                        }
                    }
                }
            }
        }
    }
    TilingLegality::Legal
}

/// Decide whether permuting the loops by `perm` (new level `k` executes
/// old loop `perm[k]`) preserves all dependences: every dependence
/// distance that is lexicographically positive in the original order must
/// remain lexicographically positive after permutation.
pub fn permutation_legality(nest: &LoopNest, perm: &[usize]) -> TilingLegality {
    let d = nest.depth();
    assert_eq!(perm.len(), d, "permutation arity");
    {
        let mut seen = vec![false; d];
        for &p in perm {
            assert!(p < d && !seen[p], "not a permutation");
            seen[p] = true;
        }
    }
    let spans = nest.spans();
    for (i1, r1) in nest.refs.iter().enumerate() {
        for (i2, r2) in nest.refs.iter().enumerate() {
            if r1.array != r2.array || (!r1.is_write() && !r2.is_write()) {
                continue;
            }
            if !r1.uniform_with(r2) {
                return TilingLegality::Illegal {
                    reason: format!(
                        "non-uniform reference pair #{i1}/#{i2} on array `{}` (conservative)",
                        nest.array(r1.array).name
                    ),
                };
            }
            let window =
                IntBox::new(spans.iter().map(|&s| Interval::new(-(s - 1), s - 1)).collect());
            // Violation: r lex-positive originally, lex-negative after
            // permutation. Decompose both orders into leading-zero pieces.
            for lead in 0..d {
                for plead in 0..d {
                    let mut p = Polyhedron::from_box(&window);
                    for (s1, s2) in r1.subscripts.iter().zip(&r2.subscripts) {
                        let mut eq = AffineForm::new(s1.coeffs.clone(), 0);
                        eq.c0 = -(s1.c0 - s2.c0);
                        p.and_eq0(eq);
                    }
                    // Original order: r_0..r_{lead-1} = 0, r_lead ≥ 1.
                    for t in 0..lead {
                        p.and_eq0(AffineForm::var(d, t));
                    }
                    p.and(Constraint::ge(AffineForm::var(d, lead), AffineForm::constant(d, 1)));
                    // Permuted order: r_{perm[0]}..r_{perm[plead-1]} = 0,
                    // r_{perm[plead]} ≤ −1.
                    for k in 0..plead {
                        p.and_eq0(AffineForm::var(d, perm[k]));
                    }
                    p.and(Constraint::le(
                        AffineForm::var(d, perm[plead]),
                        AffineForm::constant(d, -1),
                    ));
                    let mut cap = 200_000u64;
                    match p.is_empty_int(&window, &mut cap) {
                        Some(true) => {}
                        Some(false) => {
                            return TilingLegality::Illegal {
                                reason: format!(
                                    "dependence between refs #{i1} and #{i2} on `{}` is reversed \
                                     by the permutation {perm:?}",
                                    nest.array(r1.array).name
                                ),
                            };
                        }
                        None => {
                            return TilingLegality::Illegal {
                                reason: "legality search budget exhausted (conservative)".into(),
                            };
                        }
                    }
                }
            }
        }
    }
    TilingLegality::Legal
}

/// Apply a loop permutation: new level `k` runs old loop `perm[k]`.
/// Subscript coefficients are remapped accordingly. Legality is the
/// caller's responsibility (see [`permutation_legality`]).
pub fn apply_permutation(nest: &LoopNest, perm: &[usize]) -> LoopNest {
    let d = nest.depth();
    assert_eq!(perm.len(), d);
    let mut out = nest.clone();
    out.name = format!("{}_perm{:?}", nest.name, perm);
    out.loops = perm.iter().map(|&p| nest.loops[p].clone()).collect();
    // old var p is new var k where perm[k] = p.
    let mut new_of_old = vec![0usize; d];
    for (k, &p) in perm.iter().enumerate() {
        new_of_old[p] = k;
    }
    for r in &mut out.refs {
        for s in &mut r.subscripts {
            let mut coeffs = vec![0i64; d];
            for (old, &c) in s.coeffs.iter().enumerate() {
                coeffs[new_of_old[old]] = c;
            }
            s.coeffs = coeffs;
        }
    }
    out
}

/// Sanity oracle for tests: replay the element-level touches of two
/// references and verify the reported legality on a tiny nest by brute
/// force (every pair of iterations in both schedules).
pub fn brute_force_legality(
    nest: &LoopNest,
    layout: &MemoryLayout,
    tiles: &crate::TileSizes,
) -> bool {
    use crate::trace::collect_trace;
    // A tiling is legal iff for every pair of accesses (a before b in the
    // original order) where one writes the same address the other touches,
    // the tiled order preserves a-before-b.
    let orig = collect_trace(nest, layout, None);
    let tiled = collect_trace(nest, layout, Some(tiles));
    // Map (ref_idx, addr, occurrence#) to tiled position.
    use std::collections::HashMap;
    let mut occ_counter: HashMap<(usize, i64), usize> = HashMap::new();
    let mut tiled_pos: HashMap<(usize, i64, usize), usize> = HashMap::new();
    for (pos, a) in tiled.iter().enumerate() {
        let c = occ_counter.entry((a.ref_idx, a.addr)).or_insert(0);
        tiled_pos.insert((a.ref_idx, a.addr, *c), pos);
        *c += 1;
    }
    occ_counter.clear();
    let mut orig_with_pos: Vec<(usize, usize, i64, bool)> = Vec::new(); // (tiled_pos, ref, addr, write)
    for a in &orig {
        let c = occ_counter.entry((a.ref_idx, a.addr)).or_insert(0);
        let tp = tiled_pos[&(a.ref_idx, a.addr, *c)];
        *c += 1;
        orig_with_pos.push((tp, a.ref_idx, a.addr, nest.refs[a.ref_idx].is_write()));
    }
    for (x, &(tp_a, _, addr_a, w_a)) in orig_with_pos.iter().enumerate() {
        for &(tp_b, _, addr_b, w_b) in &orig_with_pos[x + 1..] {
            if addr_a == addr_b && (w_a || w_b) && tp_a > tp_b {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{ArrayDecl, ArrayId};
    use crate::nest::{LoopDef, LoopNest};
    use crate::refs::MemRef;
    use crate::TileSizes;

    fn v(c: Vec<i64>, c0: i64) -> AffineForm {
        AffineForm::new(c, c0)
    }

    /// Matrix multiply: no loop-carried dependences except a(i,j) on itself
    /// along k (distance (0,0,1) ≥ 0) — fully permutable.
    fn mm(n: i64) -> LoopNest {
        LoopNest {
            name: "mm".into(),
            loops: vec![LoopDef::new("i", 1, n), LoopDef::new("j", 1, n), LoopDef::new("k", 1, n)],
            arrays: vec![
                ArrayDecl::real4("a", &[n, n]),
                ArrayDecl::real4("b", &[n, n]),
                ArrayDecl::real4("c", &[n, n]),
            ],
            refs: vec![
                MemRef::read(ArrayId(0), vec![v(vec![1, 0, 0], 0), v(vec![0, 1, 0], 0)]),
                MemRef::read(ArrayId(1), vec![v(vec![1, 0, 0], 0), v(vec![0, 0, 1], 0)]),
                MemRef::read(ArrayId(2), vec![v(vec![0, 0, 1], 0), v(vec![0, 1, 0], 0)]),
                MemRef::write(ArrayId(0), vec![v(vec![1, 0, 0], 0), v(vec![0, 1, 0], 0)]),
            ],
        }
    }

    /// Anti-diagonal recurrence: x(i,j) = x(i-1,j+1) — distance (1,-1):
    /// NOT fully permutable.
    fn skewed(n: i64) -> LoopNest {
        LoopNest {
            name: "skew".into(),
            loops: vec![LoopDef::new("i", 2, n), LoopDef::new("j", 1, n - 1)],
            arrays: vec![ArrayDecl::real4("x", &[n, n])],
            refs: vec![
                MemRef::read(ArrayId(0), vec![v(vec![1, 0], -1), v(vec![0, 1], 1)]),
                MemRef::write(ArrayId(0), vec![v(vec![1, 0], 0), v(vec![0, 1], 0)]),
            ],
        }
    }

    /// Forward recurrence x(i,j) = x(i,j-1): distance (0,1) ≥ 0 — legal.
    fn forward(n: i64) -> LoopNest {
        LoopNest {
            name: "fwd".into(),
            loops: vec![LoopDef::new("i", 1, n), LoopDef::new("j", 2, n)],
            arrays: vec![ArrayDecl::real4("x", &[n, n])],
            refs: vec![
                MemRef::read(ArrayId(0), vec![v(vec![1, 0], 0), v(vec![0, 1], -1)]),
                MemRef::write(ArrayId(0), vec![v(vec![1, 0], 0), v(vec![0, 1], 0)]),
            ],
        }
    }

    #[test]
    fn mm_is_fully_permutable() {
        assert!(rectangular_tiling_legality(&mm(8)).is_legal());
    }

    #[test]
    fn skewed_recurrence_rejected() {
        match rectangular_tiling_legality(&skewed(8)) {
            TilingLegality::Illegal { reason } => assert!(reason.contains("negative component")),
            TilingLegality::Legal => panic!("skewed recurrence must be illegal to tile"),
        }
    }

    #[test]
    fn forward_recurrence_allowed() {
        assert!(rectangular_tiling_legality(&forward(8)).is_legal());
    }

    #[test]
    fn permutation_legality_basics() {
        // MM: fully permutable — every permutation legal.
        let m = mm(6);
        for perm in [[0usize, 1, 2], [2, 1, 0], [1, 2, 0], [0, 2, 1]] {
            assert!(permutation_legality(&m, &perm).is_legal(), "{perm:?}");
        }
        // Forward recurrence x(i,j) = x(i,j-1) with loops (i,j): distance
        // (0,1); swapping to (j,i) makes it (1,0) — still lex-positive:
        // legal. The skewed recurrence (1,-1) reversed by the swap: illegal.
        let f = forward(6);
        assert!(permutation_legality(&f, &[1, 0]).is_legal());
        let s = skewed(6);
        assert!(!permutation_legality(&s, &[1, 0]).is_legal());
        // Identity permutation is always legal on uniform nests.
        assert!(permutation_legality(&s, &[0, 1]).is_legal());
    }

    #[test]
    fn apply_permutation_preserves_semantics() {
        // Permuting MM's loops must only reorder the trace.
        let m = mm(4);
        let layout = MemoryLayout::contiguous(&m);
        let p = apply_permutation(&m, &[2, 0, 1]);
        assert!(p.validate().is_ok());
        let layout_p = MemoryLayout::contiguous(&p);
        assert_eq!(layout.bases, layout_p.bases, "same arrays, same layout");
        use crate::trace::collect_trace;
        let mut a = collect_trace(&m, &layout, None);
        let mut b = collect_trace(&p, &layout_p, None);
        assert_eq!(a.len(), b.len());
        a.sort_by_key(|x| (x.ref_idx, x.addr));
        b.sort_by_key(|x| (x.ref_idx, x.addr));
        assert_eq!(a, b, "permutation must be a reordering of the same accesses");
        // Double permutation composes back to the identity.
        let back = apply_permutation(&p, &[1, 2, 0]);
        assert_eq!(back.refs, m.refs);
    }

    #[test]
    fn brute_force_agrees_on_small_nests() {
        for (nest, expect) in [(mm(4), true), (skewed(5), false), (forward(5), true)] {
            let layout = MemoryLayout::contiguous(&nest);
            let analytic = rectangular_tiling_legality(&nest).is_legal();
            assert_eq!(analytic, expect, "analytic verdict for {}", nest.name);
            // Brute force over a few tilings; illegal nests must exhibit a
            // violation for at least one tiling, legal nests for none.
            let mut any_violation = false;
            for tiles in [vec![2; nest.depth()], vec![3; nest.depth()], vec![1; nest.depth()]] {
                let t = TileSizes(tiles);
                if t.validate(&nest).is_err() {
                    continue;
                }
                if !brute_force_legality(&nest, &layout, &t) {
                    any_violation = true;
                }
            }
            assert_eq!(!any_violation, expect, "brute force for {}", nest.name);
        }
    }
}
