#![forbid(unsafe_code)]
//! Perfectly-nested affine loop IR.
//!
//! The paper analyses Fortran kernels through the Polaris compiler and the
//! Ictineo library; Cache Miss Equations only consume the information this
//! crate represents directly:
//!
//! * array declarations (extents, element size, column-/row-major layout),
//! * a perfect loop nest with constant rectangular bounds,
//! * an ordered list of memory references with affine subscripts,
//! * a memory layout assigning base addresses (plus inter-/intra-array
//!   padding — the padding transformation is a pure layout change),
//! * the execution space: either the original rectangular nest or its tiled
//!   version, represented as a disjoint union of integer boxes in
//!   *(block, intra-tile-offset)* coordinates (the multiple convex regions
//!   of paper §2.4),
//! * uniform dependence analysis and rectangular-tiling legality,
//! * an in-order access trace generator feeding the `cme-cachesim` oracle.

pub mod array;
pub mod builder;
pub mod deps;
pub mod display;
pub mod error;
pub mod layout;
pub mod nest;
pub mod refs;
pub mod space;
pub mod tiling;
pub mod trace;

pub use array::{ArrayDecl, ArrayId, Layout};
pub use builder::NestBuilder;
pub use error::NestError;
pub use layout::MemoryLayout;
pub use nest::{LoopDef, LoopNest};
pub use refs::{AccessKind, MemRef};
pub use space::{ExecSpace, Region};
pub use tiling::TileSizes;
