//! Property tests for the loop-nest IR: tiled execution spaces must be
//! exact partitions, traces must be permutations, and layouts must be
//! collision-free.

use cme_loopnest::builder::{sub, NestBuilder};
use cme_loopnest::{ExecSpace, LoopNest, MemoryLayout, TileSizes};
use proptest::prelude::*;

fn nest_with_spans(spans: &[i64]) -> LoopNest {
    let mut nb = NestBuilder::new("prop");
    let vars: Vec<_> =
        spans.iter().enumerate().map(|(t, &s)| nb.add_loop(format!("v{t}"), 1, s)).collect();
    // One array per dimension pattern to give the trace something to do.
    let extents: Vec<i64> = spans.to_vec();
    let a = nb.array("a", &extents);
    let subs: Vec<_> = vars.iter().map(|&v| sub(v)).collect();
    nb.read(a, &subs);
    nb.write(a, &subs);
    nb.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tiled spaces partition the iteration space exactly: volumes add up,
    /// every point lies in exactly one region, and execution order visits
    /// every original point exactly once.
    #[test]
    fn tiled_space_is_exact_partition(
        (spans, tiles) in prop::collection::vec(1i64..=9, 1..=3).prop_flat_map(|spans| {
            let tiles = spans.iter().map(|&s| 1i64..=s).collect::<Vec<_>>();
            (Just(spans), tiles)
        })
    ) {
        let nest = nest_with_spans(&spans);
        let t = TileSizes(tiles);
        let space = ExecSpace::tiled(&nest, &t);
        prop_assert_eq!(space.volume(), nest.iterations());
        // Regions are disjoint boxes.
        let mut count = 0u64;
        let mut seen = std::collections::HashSet::new();
        space.for_each_point(|v| {
            count += 1;
            let hits = space.regions.iter().filter(|r| r.vbox.contains(v)).count();
            assert_eq!(hits, 1, "point {v:?} in {hits} regions");
            assert!(seen.insert(space.to_orig(v)), "original point revisited");
        });
        prop_assert_eq!(count, nest.iterations());
        prop_assert!(space.regions.len() <= 1 << spans.len(), "≤ 2^d regions (§2.4)");
    }

    /// The tiled trace is a permutation of the untiled trace; accesses are
    /// preserved exactly.
    #[test]
    fn tiled_trace_is_permutation(
        (spans, tiles) in prop::collection::vec(1i64..=7, 2..=3).prop_flat_map(|spans| {
            let tiles = spans.iter().map(|&s| 1i64..=s).collect::<Vec<_>>();
            (Just(spans), tiles)
        })
    ) {
        let nest = nest_with_spans(&spans);
        let layout = MemoryLayout::contiguous(&nest);
        let mut orig = cme_loopnest::trace::collect_trace(&nest, &layout, None);
        let mut tiled = cme_loopnest::trace::collect_trace(&nest, &layout, Some(&TileSizes(tiles)));
        prop_assert_eq!(orig.len(), tiled.len());
        orig.sort_by_key(|a| (a.ref_idx, a.addr));
        tiled.sort_by_key(|a| (a.ref_idx, a.addr));
        prop_assert_eq!(orig, tiled);
    }

    /// Random triangular nests trace exactly the predicted number of
    /// accesses: `iterations()` (the shape-exact count, checked against a
    /// brute-force enumeration) times the reference count, untiled and
    /// tiled — and the tiled trace is a permutation of the untiled one.
    #[test]
    fn triangular_trace_counts_match_prediction(
        (spans, tri_raw, tiles) in prop::collection::vec(1i64..=8, 2..=3).prop_flat_map(|spans| {
            let d = spans.len();
            let tiles = spans.iter().map(|&s| 1i64..=s).collect::<Vec<_>>();
            (Just(spans), prop::collection::vec((any::<bool>(), 0usize..3), d..=d), tiles)
        })
    ) {
        // tri[t] = Some(p): loop t runs 1..=x_p for an outer p < t.
        let tri: Vec<Option<usize>> = tri_raw
            .iter()
            .enumerate()
            .map(|(t, &(on, p))| if t > 0 && on { Some(p % t) } else { None })
            .collect();
        let mut hulls: Vec<i64> = Vec::new();
        for (t, &s) in spans.iter().enumerate() {
            let h = match tri[t] { Some(p) => hulls[p], None => s };
            hulls.push(h);
        }
        let mut nb = NestBuilder::new("tri_prop");
        let mut vars = Vec::new();
        for (t, &h) in hulls.iter().enumerate() {
            let v = match tri[t] {
                Some(p) => nb.add_loop_bounds(
                    format!("v{t}"),
                    cme_loopnest::builder::sub_const(1),
                    sub(vars[p]),
                ),
                None => nb.add_loop(format!("v{t}"), 1, h),
            };
            vars.push(v);
        }
        let a = nb.array("a", &hulls);
        let subs: Vec<_> = vars.iter().map(|&v| sub(v)).collect();
        nb.read(a, &subs);
        nb.write(a, &subs);
        let nest = nb.finish().unwrap();

        // Brute-force oracle for the exact point count.
        let d = spans.len();
        let mut expected = 0u64;
        let mut vals = vec![1i64; d];
        let mut t = 0usize;
        loop {
            let hi = |t: usize, vals: &[i64]| match tri[t] {
                Some(p) => vals[p],
                None => spans[t],
            };
            if t == d {
                expected += 1;
                t -= 1;
                vals[t] += 1;
            } else if vals[t] > hi(t, &vals) {
                if t == 0 { break; }
                vals[t] = 1;
                t -= 1;
                vals[t] += 1;
            } else {
                t += 1;
                if t < d { vals[t] = 1; }
            }
        }
        prop_assert_eq!(nest.iterations(), expected);

        let layout = MemoryLayout::contiguous(&nest);
        let mut orig = cme_loopnest::trace::collect_trace(&nest, &layout, None);
        prop_assert_eq!(orig.len() as u64, expected * nest.refs.len() as u64);
        prop_assert_eq!(nest.accesses(), orig.len() as u64);
        // Tile sizes may not exceed the (hull) span of their dimension.
        let tiles: Vec<i64> = tiles.iter().zip(&hulls).map(|(&t, &h)| t.min(h)).collect();
        let mut tiled =
            cme_loopnest::trace::collect_trace(&nest, &layout, Some(&TileSizes(tiles)));
        prop_assert_eq!(orig.len(), tiled.len());
        orig.sort_by_key(|x| (x.ref_idx, x.addr));
        tiled.sort_by_key(|x| (x.ref_idx, x.addr));
        prop_assert_eq!(orig, tiled);
    }

    /// Layouts never overlap arrays, and padding only ever moves arrays
    /// apart (monotone bases, growing footprint).
    #[test]
    fn layouts_are_collision_free(
        (extents, inter, intra) in (1usize..=4).prop_flat_map(|n_arrays| (
            prop::collection::vec((1i64..=12, 1i64..=12), n_arrays),
            prop::collection::vec(0i64..=64, n_arrays),
            prop::collection::vec(0i64..=5, n_arrays),
        ))
    ) {
        let mut nb = NestBuilder::new("layout");
        let i = nb.add_loop("i", 1, 1);
        let _ = i;
        let ids: Vec<_> = extents
            .iter()
            .enumerate()
            .map(|(k, &(a, b))| nb.array(format!("a{k}"), &[a, b]))
            .collect();
        // Touch the first array so the nest validates.
        nb.read(ids[0], &[sub(i), sub(i)]);
        let nest = nb.finish().unwrap();
        let intra_full: Vec<Vec<i64>> = intra.iter().map(|&p| vec![p, 0]).collect();
        let layout = MemoryLayout::with_padding(&nest, &inter, &intra_full);
        // Arrays occupy disjoint, increasing byte ranges.
        let mut prev_end = 0i64;
        for (k, arr) in nest.arrays.iter().enumerate() {
            prop_assert!(layout.bases[k] >= prev_end, "array {} overlaps predecessor", k);
            let size: i64 = layout.padded_extents[k].iter().product::<i64>() * arr.elem_size;
            prev_end = layout.bases[k] + size;
        }
        prop_assert!(layout.footprint(&nest) >= prev_end);
        // The unpadded layout is never larger.
        let plain = MemoryLayout::contiguous(&nest);
        prop_assert!(plain.footprint(&nest) <= layout.footprint(&nest));
    }

    /// Displacement lifting is consistent: for any point and any lift of a
    /// displacement, subtracting the lift lands on the displaced original
    /// point whenever the result is in the space.
    #[test]
    fn displacement_lifting_consistent(
        (spans, tiles, disp) in prop::collection::vec(2i64..=8, 1..=3).prop_flat_map(|spans| {
            let tiles = spans.iter().map(|&s| 1i64..=s).collect::<Vec<_>>();
            let disp = spans.iter().map(|&s| -(s-1)..=(s-1)).collect::<Vec<_>>();
            (Just(spans), tiles, disp)
        })
    ) {
        let nest = nest_with_spans(&spans);
        let space = ExecSpace::tiled(&nest, &TileSizes(tiles));
        for lift in space.lift_displacement(&disp) {
            space.for_each_point(|v| {
                let src: Vec<i64> = v.iter().zip(&lift).map(|(a, b)| a - b).collect();
                if space.contains_v(&src) {
                    let o = space.to_orig(v);
                    let so = space.to_orig(&src);
                    for t in 0..spans.len() {
                        assert_eq!(so[t], o[t] - disp[t]);
                    }
                }
            });
        }
    }
}
