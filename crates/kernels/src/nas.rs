//! NAS kernels: ADD, BTRIX, VPENTA1, VPENTA2 (Table 1).
//!
//! These are the paper's conflict-dominated kernels: tiling alone leaves a
//! high replacement miss ratio and padding is required (Table 3). The
//! reconstructions pick array sizes whose footprints are multiples of the
//! 8 KB cache size, so that corresponding elements of different arrays
//! alias perfectly in a direct-mapped cache — the behaviour the paper
//! reports for the originals.

use cme_loopnest::builder::{sub, NestBuilder};
use cme_loopnest::LoopNest;

/// Default problem size for ADD (`u(5,n,n,n)` is 5 MB at n = 64, and
/// `5·64³·4 = 640·8192` bytes, so `u` and `rhs` alias exactly).
pub const ADD_N: i64 = 64;
/// Default problem size for BTRIX (64³·4 = 128·8192: `s` and `a` alias).
pub const BTRIX_N: i64 = 64;
/// Default problem size for VPENTA (128²·4 = 8·8192: all arrays alias).
pub const VPENTA_N: i64 = 128;

/// NAS "addition of update to a matrix" (4-deep):
/// `do k / do j / do i / do m : u(m,i,j,k) = u(m,i,j,k) + rhs(m,i,j,k)`.
///
/// Pure streaming: no temporal reuse, only spatial. With aligned bases the
/// `u`/`rhs` pairs ping-pong in a direct-mapped cache and destroy the
/// spatial reuse, which padding restores.
pub fn add(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("ADD_{n}"));
    let k = nb.add_loop("k", 1, n);
    let j = nb.add_loop("j", 1, n);
    let i = nb.add_loop("i", 1, n);
    let m = nb.add_loop("m", 1, 5);
    let u = nb.array("u", &[5, n, n, n]);
    let rhs = nb.array("rhs", &[5, n, n, n]);
    nb.read(u, &[sub(m), sub(i), sub(j), sub(k)]);
    nb.read(rhs, &[sub(m), sub(i), sub(j), sub(k)]);
    nb.write(u, &[sub(m), sub(i), sub(j), sub(k)]);
    nb.finish().expect("add is a valid nest")
}

/// NAS BTRIX, backward block sweep (3-deep). **Reconstruction**: the
/// backward dependence is expressed with a reversed affine subscript
/// `z = n − kk`, keeping unit loop steps:
/// `do kk / do j / do i : s(i,j,n−kk) = s(i,j,n−kk) − a(i,j,n−kk)·s(i,j,n−kk+1)`.
///
/// Combines capacity misses (plane reuse across the `kk` sweep) with
/// conflicts (`s`/`a` alias when `n³·4` is a multiple of the cache size).
pub fn btrix(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("BTRIX_{n}"));
    let kk = nb.add_loop("kk", 1, n - 1);
    let j = nb.add_loop("j", 1, n);
    let i = nb.add_loop("i", 1, n);
    let s = nb.array("s", &[n, n, n]);
    let a = nb.array("a", &[n, n, n]);
    // z = n − kk ∈ [1, n−1]; z + 1 = n − kk + 1 ∈ [2, n].
    let z = sub(kk).times(-1).plus(n);
    let z1 = sub(kk).times(-1).plus(n + 1);
    nb.read(s, &[sub(i), sub(j), z1]);
    nb.read(a, &[sub(i), sub(j), z.clone()]);
    nb.read(s, &[sub(i), sub(j), z.clone()]);
    nb.write(s, &[sub(i), sub(j), z]);
    nb.finish().expect("btrix is a valid nest")
}

/// NAS VPENTA ("invert 3 pentadiagonals simultaneously"), loop 1
/// (2-deep): an eight-array element-wise sweep,
/// `do j / do i : y(i,j) = f(i,j) − a(i,j)·b(i,j) − c(i,j)·d(i,j);`
/// `x(i,j) = e(i,j)·y(i,j)` — eight identically-shaped arrays that alias
/// pairwise in a direct-mapped cache.
pub fn vpenta1(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("VPENTA1_{n}"));
    let j = nb.add_loop("j", 1, n);
    let i = nb.add_loop("i", 1, n);
    let names = ["a", "b", "c", "d", "e", "f"];
    let arrays: Vec<_> = names.iter().map(|nm| nb.array(*nm, &[n, n])).collect();
    let x = nb.array("x", &[n, n]);
    let y = nb.array("y", &[n, n]);
    for arr in &arrays {
        nb.read(*arr, &[sub(i), sub(j)]);
    }
    nb.write(y, &[sub(i), sub(j)]);
    nb.write(x, &[sub(i), sub(j)]);
    nb.finish().expect("vpenta1 is a valid nest")
}

/// NAS VPENTA, loop 2 (2-deep): the forward-elimination recurrence,
/// `do j / do i : x(i,j) = y(i,j) − c(i,j)·x(i,j−1)`.
pub fn vpenta2(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("VPENTA2_{n}"));
    let j = nb.add_loop("j", 2, n);
    let i = nb.add_loop("i", 1, n);
    let x = nb.array("x", &[n, n]);
    let y = nb.array("y", &[n, n]);
    let c = nb.array("c", &[n, n]);
    nb.read(y, &[sub(i), sub(j)]);
    nb.read(c, &[sub(i), sub(j)]);
    nb.read(x, &[sub(i), sub(j).minus(1)]);
    nb.write(x, &[sub(i), sub(j)]);
    nb.finish().expect("vpenta2 is a valid nest")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::deps::rectangular_tiling_legality;
    use cme_loopnest::MemoryLayout;

    #[test]
    fn structures() {
        assert_eq!(add(8).depth(), 4);
        assert_eq!(btrix(8).depth(), 3);
        assert_eq!(vpenta1(8).depth(), 2);
        assert_eq!(vpenta1(8).refs.len(), 8);
        assert_eq!(vpenta2(8).depth(), 2);
    }

    #[test]
    fn all_tileable() {
        for nest in [add(8), btrix(8), vpenta1(8), vpenta2(8)] {
            assert!(rectangular_tiling_legality(&nest).is_legal(), "{}", nest.name);
        }
    }

    #[test]
    fn default_sizes_alias_in_8k_cache() {
        // The whole point of these defaults: bases congruent mod 8192.
        let a = add(ADD_N);
        let l = MemoryLayout::contiguous(&a);
        assert_eq!((l.bases[1] - l.bases[0]) % 8192, 0, "ADD u/rhs alias");
        let b = btrix(BTRIX_N);
        let lb = MemoryLayout::contiguous(&b);
        assert_eq!((lb.bases[1] - lb.bases[0]) % 8192, 0, "BTRIX s/a alias");
        let v = vpenta1(VPENTA_N);
        let lv = MemoryLayout::contiguous(&v);
        for w in 1..v.arrays.len() {
            assert_eq!((lv.bases[w] - lv.bases[0]) % 8192, 0, "VPENTA arrays alias");
        }
    }

    #[test]
    fn btrix_reversed_subscript_in_bounds() {
        let n = btrix(16);
        assert!(n.validate().is_ok());
    }
}
