//! The numbers the paper reports, as data.
//!
//! Every experiment binary prints its measured values next to these, and
//! `EXPERIMENTS.md` records both. Values are percentages exactly as they
//! appear in the paper's tables and conclusions.

/// One row of Table 2 (8 KB direct-mapped, 32 B lines): miss ratios before
/// and after tiling.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    pub kernel: &'static str,
    pub size: i64,
    pub no_tiling_total: f64,
    pub no_tiling_repl: f64,
    pub tiling_total: f64,
    pub tiling_repl: f64,
}

/// Table 2 as printed in the paper.
pub const TABLE2: &[Table2Row] = &[
    Table2Row {
        kernel: "T2D",
        size: 2000,
        no_tiling_total: 63.3,
        no_tiling_repl: 36.4,
        tiling_total: 27.7,
        tiling_repl: 0.9,
    },
    Table2Row {
        kernel: "T3DJIK",
        size: 200,
        no_tiling_total: 63.4,
        no_tiling_repl: 36.7,
        tiling_total: 30.2,
        tiling_repl: 3.6,
    },
    Table2Row {
        kernel: "T3DIKJ",
        size: 200,
        no_tiling_total: 34.6,
        no_tiling_repl: 7.0,
        tiling_total: 27.9,
        tiling_repl: 0.3,
    },
    Table2Row {
        kernel: "JACOBI3D",
        size: 200,
        no_tiling_total: 25.6,
        no_tiling_repl: 7.2,
        tiling_total: 19.8,
        tiling_repl: 1.3,
    },
];

/// One row of Table 3: replacement miss ratios for the conflict-dominated
/// kernels — original, after padding, after padding + tiling.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    pub kernel: &'static str,
    /// Size the paper names in the row label (None = kernel default).
    pub size: Option<i64>,
    pub original: f64,
    pub padding: f64,
    pub padding_tiling: f64,
}

/// Table 3, 8 KB cache.
pub const TABLE3_8K: &[Table3Row] = &[
    Table3Row { kernel: "ADD", size: None, original: 60.2, padding: 59.8, padding_tiling: 0.5 },
    Table3Row { kernel: "BTRIX", size: None, original: 50.1, padding: 0.2, padding_tiling: 0.2 },
    Table3Row { kernel: "VPENTA1", size: None, original: 78.3, padding: 52.4, padding_tiling: 0.0 },
    Table3Row { kernel: "VPENTA2", size: None, original: 86.0, padding: 11.9, padding_tiling: 0.0 },
    Table3Row {
        kernel: "ADI",
        size: Some(1000),
        original: 26.2,
        padding: 12.3,
        padding_tiling: 4.1,
    },
    Table3Row {
        kernel: "ADI",
        size: Some(2000),
        original: 25.7,
        padding: 12.4,
        padding_tiling: 3.4,
    },
];

/// Table 3, 32 KB cache.
pub const TABLE3_32K: &[Table3Row] = &[
    Table3Row { kernel: "ADD", size: None, original: 60.2, padding: 59.8, padding_tiling: 0.0 },
    Table3Row { kernel: "BTRIX", size: None, original: 34.1, padding: 0.0, padding_tiling: 0.0 },
    Table3Row { kernel: "VPENTA1", size: None, original: 78.1, padding: 32.9, padding_tiling: 0.0 },
    Table3Row { kernel: "VPENTA2", size: None, original: 86.0, padding: 11.3, padding_tiling: 0.0 },
];

/// Table 4: percentage of kernels (excluding Table 3 kernels) whose
/// post-tiling replacement miss ratio falls below each threshold.
#[derive(Debug, Clone, Copy)]
pub struct Table4Row {
    pub cache_kb: i64,
    pub below_1pct: f64,
    pub below_2pct: f64,
    pub below_5pct: f64,
}

/// Table 4 as printed.
pub const TABLE4: &[Table4Row] = &[
    Table4Row { cache_kb: 8, below_1pct: 56.4, below_2pct: 79.5, below_5pct: 100.0 },
    Table4Row { cache_kb: 32, below_1pct: 90.2, below_2pct: 97.6, below_5pct: 100.0 },
];

/// Headline claims from §1 and §6.
pub mod headline {
    /// "a decrease of the miss ratio that can be as significant as a
    /// factor of 7 for the matrix multiply kernel" (§1).
    pub const MM_MISS_RATIO_FACTOR: f64 = 7.0;
    /// "reduce the replacement miss ratio of the 3D matrix transposition
    /// (N=100) from 36.7% to 0.6%" (§6).
    pub const T3DJIK_BEFORE: f64 = 36.7;
    pub const T3DJIK_AFTER: f64 = 0.6;
    /// "the replacement miss ratio of the Dpssb kernel from 55.5% to
    /// 1.25%" (§6).
    pub const DPSSB_BEFORE: f64 = 55.5;
    pub const DPSSB_AFTER: f64 = 1.25;
}

/// GA parameters of §3.3 — kept as named constants so the optimiser's
/// defaults provably match the paper.
pub mod ga_params {
    pub const POPULATION: usize = 30;
    pub const CROSSOVER_PROB: f64 = 0.9;
    pub const MUTATION_PROB: f64 = 0.001;
    pub const MIN_GENERATIONS: u32 = 15;
    pub const MAX_GENERATIONS: u32 = 25;
    /// Convergence: best within 2 % of the population average.
    pub const CONVERGENCE_MARGIN: f64 = 0.02;
}

/// Sampling parameters of §2.3.
pub mod sampling_params {
    /// Confidence-interval width 0.1 ⇒ half-width 0.05.
    pub const CI_HALF_WIDTH: f64 = 0.05;
    /// The paper's "90 % confidence" constant (the one-sided 90 % normal
    /// quantile; this is the value that reproduces their 164 points).
    pub const Z: f64 = 1.28;
    /// "only 164 points of the iteration space must be explored".
    pub const PAPER_SAMPLE_SIZE: u64 = 164;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_complete() {
        assert_eq!(TABLE2.len(), 4);
        assert_eq!(TABLE3_8K.len(), 6);
        assert_eq!(TABLE3_32K.len(), 4);
        assert_eq!(TABLE4.len(), 2);
    }

    #[test]
    fn sample_size_formula_reproduces_164() {
        // n = ceil(z²·p(1−p)/h²) with p = 0.5.
        let n = (sampling_params::Z * sampling_params::Z * 0.25
            / (sampling_params::CI_HALF_WIDTH * sampling_params::CI_HALF_WIDTH))
            .ceil() as u64;
        assert_eq!(n, sampling_params::PAPER_SAMPLE_SIZE);
    }
}
