//! Stencil / sweep kernels: JACOBI3D and ADI (Table 1).

use cme_loopnest::builder::{sub, NestBuilder};
use cme_loopnest::LoopNest;

/// 3-D Jacobi relaxation (partial differential equation solver, Table 1):
/// 7-point stencil over the interior,
/// `a(i,j,k) = f(b(i,j,k), b(i±1,j,k), b(i,j±1,k), b(i,j,k±1))`.
///
/// Loop order `k, j, i` (innermost contiguous for column-major arrays).
pub fn jacobi3d(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("JACOBI3D_{n}"));
    let k = nb.add_loop("k", 2, n - 1);
    let j = nb.add_loop("j", 2, n - 1);
    let i = nb.add_loop("i", 2, n - 1);
    let a = nb.array("a", &[n, n, n]);
    let b = nb.array("b", &[n, n, n]);
    nb.read(b, &[sub(i), sub(j), sub(k)]);
    nb.read(b, &[sub(i).minus(1), sub(j), sub(k)]);
    nb.read(b, &[sub(i).plus(1), sub(j), sub(k)]);
    nb.read(b, &[sub(i), sub(j).minus(1), sub(k)]);
    nb.read(b, &[sub(i), sub(j).plus(1), sub(k)]);
    nb.read(b, &[sub(i), sub(j), sub(k).minus(1)]);
    nb.read(b, &[sub(i), sub(j), sub(k).plus(1)]);
    nb.write(a, &[sub(i), sub(j), sub(k)]);
    nb.finish().expect("jacobi3d is a valid nest")
}

/// 2-D ADI (alternating direction implicit) integration, forward column
/// sweep (Table 1 lists a 2-deep ADI kernel from the Livermore loops):
/// `do j / do i : x(i,j) = x(i,j-1)·a(i,j) + b(i,j)`.
///
/// Carries a `(1, 0)` dependence in `(j, i)` loop coordinates — legal to
/// tile rectangularly.
pub fn adi(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("ADI_{n}"));
    let j = nb.add_loop("j", 2, n);
    let i = nb.add_loop("i", 1, n);
    let x = nb.array("x", &[n, n]);
    let a = nb.array("a", &[n, n]);
    let b = nb.array("b", &[n, n]);
    nb.read(x, &[sub(i), sub(j).minus(1)]);
    nb.read(a, &[sub(i), sub(j)]);
    nb.read(b, &[sub(i), sub(j)]);
    nb.write(x, &[sub(i), sub(j)]);
    nb.finish().expect("adi is a valid nest")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::deps::rectangular_tiling_legality;

    #[test]
    fn jacobi_structure() {
        let n = jacobi3d(20);
        assert_eq!(n.depth(), 3);
        assert_eq!(n.refs.len(), 8);
        assert_eq!(n.iterations(), 18 * 18 * 18);
        assert!(rectangular_tiling_legality(&n).is_legal());
    }

    #[test]
    fn adi_structure_and_legality() {
        let n = adi(100);
        assert_eq!(n.depth(), 2);
        assert_eq!(n.refs.len(), 4);
        // Recurrence along j with distance (1, 0): still fully permutable.
        assert!(rectangular_tiling_legality(&n).is_legal());
    }
}
