//! Dense linear-algebra kernels: MM (matrix multiply, Fig. 1) and MATMUL
//! (matrix-by-vector, Table 1).

use cme_loopnest::builder::{sub, NestBuilder};
use cme_loopnest::LoopNest;

/// Matrix multiplication, the paper's motivating kernel (Fig. 1):
/// `do i / do j / do k : a(i,j) = a(i,j) + b(i,k)·c(k,j)`.
pub fn mm(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("MM_{n}"));
    let i = nb.add_loop("i", 1, n);
    let j = nb.add_loop("j", 1, n);
    let k = nb.add_loop("k", 1, n);
    let a = nb.array("a", &[n, n]);
    let b = nb.array("b", &[n, n]);
    let c = nb.array("c", &[n, n]);
    nb.read(a, &[sub(i), sub(j)]);
    nb.read(b, &[sub(i), sub(k)]);
    nb.read(c, &[sub(k), sub(j)]);
    nb.write(a, &[sub(i), sub(j)]);
    nb.finish().expect("mm is a valid nest")
}

/// Matrix-by-vector multiplication as a 3-deep nest (Table 1 lists MATMUL
/// as a 3-loop matrix·vector kernel). **Reconstruction**: we use a batched
/// mat-vec — `n` right-hand sides streamed through the same matrix:
/// `do t / do i / do j : y(i,t) = y(i,t) + a(i,j)·x(j,t)`.
/// The matrix `a` is re-swept for every `t`, producing the capacity misses
/// tiling is meant to remove.
pub fn matmul(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("MATMUL_{n}"));
    let t = nb.add_loop("t", 1, n);
    let i = nb.add_loop("i", 1, n);
    let j = nb.add_loop("j", 1, n);
    let y = nb.array("y", &[n, n]);
    let a = nb.array("a", &[n, n]);
    let x = nb.array("x", &[n, n]);
    nb.read(y, &[sub(i), sub(t)]);
    nb.read(a, &[sub(i), sub(j)]);
    nb.read(x, &[sub(j), sub(t)]);
    nb.write(y, &[sub(i), sub(t)]);
    nb.finish().expect("matmul is a valid nest")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::deps::rectangular_tiling_legality;

    #[test]
    fn mm_matches_fig1() {
        let n = mm(100);
        assert_eq!(n.depth(), 3);
        assert_eq!(n.refs.len(), 4);
        assert_eq!(n.iterations(), 1_000_000);
        assert!(rectangular_tiling_legality(&n).is_legal());
    }

    #[test]
    fn matmul_is_tileable() {
        let n = matmul(50);
        assert_eq!(n.depth(), 3);
        assert!(rectangular_tiling_legality(&n).is_legal());
    }
}
