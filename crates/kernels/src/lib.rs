#![forbid(unsafe_code)]
//! The benchmark kernels of Abella et al. (ICPPW'02), Table 1.
//!
//! The original evaluation used Fortran kernels from NAS, BIHAR and the
//! Livermore loops plus common dense kernels. We do not have those exact
//! sources; each kernel here is a *documented reconstruction* with the
//! nest depth and reference pattern the paper describes (transpositions,
//! stencils, multi-array sweeps, strided FFT passes), built on the
//! `cme-loopnest` IR. Array sizes for the fixed-size NAS/BIHAR kernels are
//! chosen so that arrays alias in an 8 KB direct-mapped cache, matching
//! the conflict-dominated behaviour the paper reports for them.
//!
//! See `DESIGN.md` §3 for the substitution rationale and the per-kernel
//! notes in each module.

pub mod bihar;
pub mod linalg;
pub mod nas;
pub mod paper;
pub mod spec;
pub mod stencils;
pub mod transposes;
pub mod triangular;

pub use spec::{all_kernels, figure_configs, kernel_by_name, KernelConfig, KernelSpec};
