//! Matrix transposition kernels: T2D, T3DJIK, T3DIKJ (Table 1).
//!
//! Transpositions are the canonical capacity-miss generators: one operand
//! is traversed along the storage order, the other across it, so one of
//! the two loses all spatial locality once the matrix exceeds the cache.

use cme_loopnest::builder::{sub, NestBuilder};
use cme_loopnest::LoopNest;

/// 2-D matrix transposition (paper Fig. 3(a)):
/// `do i / do j : a(j,i) = b(i,j)`.
pub fn t2d(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("T2D_{n}"));
    let i = nb.add_loop("i", 1, n);
    let j = nb.add_loop("j", 1, n);
    let a = nb.array("a", &[n, n]);
    let b = nb.array("b", &[n, n]);
    nb.read(b, &[sub(i), sub(j)]);
    nb.write(a, &[sub(j), sub(i)]);
    nb.finish().expect("t2d is a valid nest")
}

/// Shifted in-place 2-D transposition: `do i / do j : a(i, j+n) = a(j, i)`
/// over one `a[n][2n]` array — the source square lives in columns `1..n`,
/// the transposed copy in columns `n+1..2n`.
///
/// The read `a(j, i)` and write `a(i, j+n)` are *not* uniformly
/// generated, so the uniform-only legality checker rejects the kernel
/// outright; real dependence analysis (Banerjee bounds) proves the two
/// column bands disjoint, leaving the nest dependence-free and fully
/// permutable.
pub fn tshift(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("TSHIFT_{n}"));
    let i = nb.add_loop("i", 1, n);
    let j = nb.add_loop("j", 1, n);
    let a = nb.array("a", &[n, 2 * n]);
    nb.read(a, &[sub(j), sub(i)]);
    nb.write(a, &[sub(i), sub(j).plus(n)]);
    nb.finish().expect("tshift is a valid nest")
}

/// 3-D matrix transposition, JIK loop order (Table 1):
/// `do j / do i / do k : a(k,j,i) = b(j,i,k)`.
pub fn t3djik(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("T3DJIK_{n}"));
    let j = nb.add_loop("j", 1, n);
    let i = nb.add_loop("i", 1, n);
    let k = nb.add_loop("k", 1, n);
    let a = nb.array("a", &[n, n, n]);
    let b = nb.array("b", &[n, n, n]);
    nb.read(b, &[sub(j), sub(i), sub(k)]);
    nb.write(a, &[sub(k), sub(j), sub(i)]);
    nb.finish().expect("t3djik is a valid nest")
}

/// 3-D matrix transposition, IKJ loop order (Table 1):
/// `do i / do k / do j : a(k,j,i) = b(i,k,j)`.
pub fn t3dikj(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("T3DIKJ_{n}"));
    let i = nb.add_loop("i", 1, n);
    let k = nb.add_loop("k", 1, n);
    let j = nb.add_loop("j", 1, n);
    let a = nb.array("a", &[n, n, n]);
    let b = nb.array("b", &[n, n, n]);
    nb.read(b, &[sub(i), sub(k), sub(j)]);
    nb.write(a, &[sub(k), sub(j), sub(i)]);
    nb.finish().expect("t3dikj is a valid nest")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::deps::rectangular_tiling_legality;

    #[test]
    fn structure() {
        let n = t2d(16);
        assert_eq!(n.depth(), 2);
        assert_eq!(n.refs.len(), 2);
        assert_eq!(n.iterations(), 256);
        assert_eq!(t3djik(8).depth(), 3);
        assert_eq!(t3dikj(8).depth(), 3);
    }

    #[test]
    fn transposes_are_tileable() {
        for nest in [t2d(12), t3djik(6), t3dikj(6)] {
            assert!(rectangular_tiling_legality(&nest).is_legal(), "{}", nest.name);
        }
    }

    #[test]
    fn tshift_is_beyond_the_uniform_checker() {
        let nest = tshift(12);
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.refs.len(), 2);
        assert_eq!(nest.arrays.len(), 1, "in-place: one array");
        // The uniform-only legality pass cannot relate a(j,i) to
        // a(i,j+n) and must conservatively reject the pair; cme-analysis
        // proves the column bands disjoint (see that crate's tests).
        match cme_loopnest::deps::rectangular_tiling_legality(&nest) {
            cme_loopnest::deps::TilingLegality::Illegal { reason } => {
                assert!(reason.contains("non-uniform"), "{reason}");
            }
            cme_loopnest::deps::TilingLegality::Legal => {
                panic!("uniform checker unexpectedly handles non-uniform pairs")
            }
        }
    }

    #[test]
    fn t3d_variants_differ_in_loop_order() {
        let a = t3djik(8);
        let b = t3dikj(8);
        assert_eq!(a.loops[0].name, "j");
        assert_eq!(b.loops[0].name, "i");
        // The reads are identity traversals in both (positional loop
        // variables), but the transposed writes differ.
        assert_ne!(a.refs[1].subscripts, b.refs[1].subscripts);
    }
}
