//! Kernel registry: Table 1 of the paper, with the figure problem sizes.

use crate::{bihar, linalg, nas, stencils, transposes, triangular};
use cme_loopnest::LoopNest;

/// A kernel entry of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct KernelSpec {
    /// Table 1 kernel name (e.g. "MM").
    pub name: &'static str,
    /// Source program (Table 1 column 2; "-" for generic kernels).
    pub program: &'static str,
    /// Table 1 description.
    pub description: &'static str,
    /// Nest depth (Table 1 "nested loops").
    pub depth: usize,
    /// Problem sizes used in Figs. 8/9 (empty slice ⇒ fixed-size kernel,
    /// run at `default_size`).
    pub sizes: &'static [i64],
    /// Size used when the figures give no explicit size.
    pub default_size: i64,
    /// Constructor.
    pub build: fn(i64) -> LoopNest,
}

impl KernelSpec {
    /// Build at the default size.
    pub fn build_default(&self) -> LoopNest {
        (self.build)(self.default_size)
    }

    /// All `(display name, size)` configurations this kernel contributes
    /// to Figs. 8/9.
    pub fn configs(&self) -> Vec<KernelConfig> {
        if self.sizes.is_empty() {
            vec![KernelConfig {
                spec: *self,
                size: self.default_size,
                sized_name: self.name.to_string(),
            }]
        } else {
            self.sizes
                .iter()
                .map(|&s| KernelConfig {
                    spec: *self,
                    size: s,
                    sized_name: format!("{}_{s}", self.name),
                })
                .collect()
        }
    }
}

/// One concrete (kernel, problem size) point of the evaluation.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    pub spec: KernelSpec,
    pub size: i64,
    /// Figure label, e.g. "MM_500" or "ADD".
    pub sized_name: String,
}

impl KernelConfig {
    pub fn build(&self) -> LoopNest {
        (self.spec.build)(self.size)
    }
}

/// The complete kernel registry: the 17 kernels of Table 1 plus TSHIFT
/// (a shifted in-place transpose whose reference pair is non-uniform —
/// the stress case for the dependence analysis) and the three triangular
/// kernels TRMM, TRSOLVE and TTRANS (trapezoidal iteration spaces — the
/// stress cases for affine loop bounds). None of the ride-alongs appear
/// in the figures.
pub fn all_kernels() -> Vec<KernelSpec> {
    vec![
        KernelSpec {
            name: "T2D",
            program: "-",
            description: "2D matrix transposition",
            depth: 2,
            sizes: &[100, 500, 2000],
            default_size: 500,
            build: transposes::t2d,
        },
        KernelSpec {
            name: "TSHIFT",
            program: "-",
            description: "shifted in-place 2D transposition a(i,j+n) = a(j,i)",
            depth: 2,
            sizes: &[],
            default_size: 256,
            build: transposes::tshift,
        },
        KernelSpec {
            name: "T3DJIK",
            program: "-",
            description: "3D matrix transposition a(k,j,i) = b(j,i,k)",
            depth: 3,
            sizes: &[20, 100, 200],
            default_size: 100,
            build: transposes::t3djik,
        },
        KernelSpec {
            name: "T3DIKJ",
            program: "-",
            description: "3D matrix transposition a(k,j,i) = b(i,k,j)",
            depth: 3,
            sizes: &[20, 100, 200],
            default_size: 100,
            build: transposes::t3dikj,
        },
        KernelSpec {
            name: "JACOBI3D",
            program: "-",
            description: "partial differential equations solver",
            depth: 3,
            sizes: &[20, 100, 200],
            default_size: 100,
            build: stencils::jacobi3d,
        },
        KernelSpec {
            name: "MATMUL",
            program: "-",
            description: "matrix by vector multiplication",
            depth: 3,
            sizes: &[100, 500, 2000],
            default_size: 500,
            build: linalg::matmul,
        },
        KernelSpec {
            name: "MM",
            program: "LIVERMORE",
            description: "matrix multiplication",
            depth: 3,
            sizes: &[100, 500, 2000],
            default_size: 500,
            build: linalg::mm,
        },
        KernelSpec {
            name: "ADI",
            program: "LIVERMORE",
            description: "2D ADI integration",
            depth: 2,
            sizes: &[100, 500, 2000],
            default_size: 500,
            build: stencils::adi,
        },
        KernelSpec {
            name: "ADD",
            program: "NAS",
            description: "addition of update to a matrix",
            depth: 4,
            sizes: &[],
            default_size: nas::ADD_N,
            build: nas::add,
        },
        KernelSpec {
            name: "BTRIX",
            program: "NAS",
            description: "block tri-diagonal solver, backward block sweep",
            depth: 3,
            sizes: &[],
            default_size: nas::BTRIX_N,
            build: nas::btrix,
        },
        KernelSpec {
            name: "VPENTA1",
            program: "NAS",
            description: "invert 3 pentadiagonals simultaneously, loop 1",
            depth: 2,
            sizes: &[],
            default_size: nas::VPENTA_N,
            build: nas::vpenta1,
        },
        KernelSpec {
            name: "VPENTA2",
            program: "NAS",
            description: "invert 3 pentadiagonals simultaneously, loop 2",
            depth: 2,
            sizes: &[],
            default_size: nas::VPENTA_N,
            build: nas::vpenta2,
        },
        KernelSpec {
            name: "DPSSB",
            program: "BIHAR",
            description:
                "unnormalised inverse of a forward transform of a complex periodic sequence",
            depth: 3,
            sizes: &[],
            default_size: bihar::BIHAR_N,
            build: bihar::dpssb,
        },
        KernelSpec {
            name: "DPSSF",
            program: "BIHAR",
            description: "forward transform of a complex periodic sequence",
            depth: 3,
            sizes: &[],
            default_size: bihar::BIHAR_N,
            build: bihar::dpssf,
        },
        KernelSpec {
            name: "DRADBG1",
            program: "BIHAR",
            description: "backward transform of a real coefficient array, loop 1",
            depth: 3,
            sizes: &[],
            default_size: bihar::BIHAR_N,
            build: bihar::dradbg1,
        },
        KernelSpec {
            name: "DRADBG2",
            program: "BIHAR",
            description: "backward transform of a real coefficient array, loop 2",
            depth: 3,
            sizes: &[],
            default_size: bihar::BIHAR_N,
            build: bihar::dradbg2,
        },
        KernelSpec {
            name: "DRADFG1",
            program: "BIHAR",
            description: "forward transform of a real periodic sequence, loop 1",
            depth: 3,
            sizes: &[],
            default_size: bihar::BIHAR_N,
            build: bihar::dradfg1,
        },
        KernelSpec {
            name: "DRADFG2",
            program: "BIHAR",
            description: "forward transform of a real periodic sequence, loop 2",
            depth: 3,
            sizes: &[],
            default_size: bihar::BIHAR_N,
            build: bihar::dradfg2,
        },
        KernelSpec {
            name: "TRMM",
            program: "-",
            description: "triangular matrix multiplication c += a*b, a lower-triangular",
            depth: 3,
            sizes: &[],
            default_size: 64,
            build: triangular::trmm,
        },
        KernelSpec {
            name: "TRSOLVE",
            program: "-",
            description: "forward substitution on a lower-triangular system",
            depth: 2,
            sizes: &[],
            default_size: 64,
            build: triangular::trsolve,
        },
        KernelSpec {
            name: "TTRANS",
            program: "-",
            description: "upper-triangle transposition a(j,i) = b(i,j), j >= i",
            depth: 2,
            sizes: &[],
            default_size: 64,
            build: triangular::ttrans,
        },
    ]
}

/// Look up a kernel by Table 1 name (case-insensitive).
pub fn kernel_by_name(name: &str) -> Option<KernelSpec> {
    all_kernels().into_iter().find(|k| k.name.eq_ignore_ascii_case(name))
}

/// The kernel/size configurations on the x-axis of Figs. 8 and 9, in the
/// paper's order. (The figures omit DPSSF, DRADBG2 and DRADFG2 and, for
/// VPENTA, show only VPENTA2 — we follow the figure.)
pub fn figure_configs() -> Vec<KernelConfig> {
    let fig_names = [
        "T2D", "T3DJIK", "T3DIKJ", "JACOBI3D", "MATMUL", "MM", "ADI", "ADD", "BTRIX", "VPENTA2",
        "DPSSB", "DRADBG1", "DRADFG1",
    ];
    let mut out = Vec::new();
    for name in fig_names {
        let spec = kernel_by_name(name).expect("figure kernel in registry");
        out.extend(spec.configs());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1() {
        let ks = all_kernels();
        assert_eq!(
            ks.len(),
            21,
            "Table 1 lists 17 kernels; TSHIFT and the triangular trio ride along"
        );
        for k in &ks {
            let nest = (k.build)(k.sizes.first().copied().unwrap_or(k.default_size).clamp(8, 20));
            assert_eq!(nest.depth(), k.depth, "{}: depth must match Table 1", k.name);
            assert!(nest.validate().is_ok(), "{}", k.name);
        }
    }

    #[test]
    fn every_size_builds() {
        for k in all_kernels() {
            for cfg in k.configs() {
                // Cap huge sizes in tests: building is cheap but validate
                // everything the figures actually use up to 500.
                if cfg.size <= 500 {
                    let nest = cfg.build();
                    assert!(nest.validate().is_ok(), "{}", cfg.sized_name);
                }
            }
        }
    }

    #[test]
    fn figure_axis_has_27_configs() {
        let cfgs = figure_configs();
        assert_eq!(cfgs.len(), 27);
        assert_eq!(cfgs[0].sized_name, "T2D_100");
        assert!(cfgs.iter().any(|c| c.sized_name == "MM_2000"));
        assert!(cfgs.iter().any(|c| c.sized_name == "DRADFG1"));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(kernel_by_name("mm").is_some());
        assert!(kernel_by_name("Vpenta2").is_some());
        assert!(kernel_by_name("nope").is_none());
    }
}
