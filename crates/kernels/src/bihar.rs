//! BIHAR (biharmonic PDE solver) FFT kernels: DPSSB, DPSSF, DRADBG1/2,
//! DRADFG1/2 (Table 1).
//!
//! The originals are FFTPACK-style transform passes. **Reconstruction**:
//! each kernel is a 3-deep pass with the characteristic FFT access shapes —
//! the sequence index `i` varies *slowest* (the transform walks the `j`/`k`
//! transform dimensions innermost), the output is transposed in the two
//! transform dimensions (`ch(i,k,j)` vs `cc(i,j,k)`), and the radix-g
//! passes add stride-2 and reversed affine subscripts. Consequently the
//! innermost accesses stride across columns while each fetched line
//! (8 consecutive `i` elements) is only reused one full outer iteration
//! later — far beyond an 8 KB cache. That is precisely the capacity-miss
//! behaviour the paper reports for these kernels, and what tiling the `i`
//! dimension repairs.

use cme_loopnest::builder::{sub, sub_const, NestBuilder};
use cme_loopnest::LoopNest;

/// Default problem size for the BIHAR kernels.
pub const BIHAR_N: i64 = 48;

/// DPSSB — unnormalised inverse (backward) transform of a complex periodic
/// sequence: `do i / do j / do k :
/// ch(i,k,j) = cc(i,j,k) − cc(i,n+1−j,k)` (transposed output plus a
/// reversed read).
pub fn dpssb(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("DPSSB_{n}"));
    let i = nb.add_loop("i", 1, n);
    let j = nb.add_loop("j", 1, n);
    let k = nb.add_loop("k", 1, n);
    let cc = nb.array("cc", &[n, n, n]);
    let ch = nb.array("ch", &[n, n, n]);
    nb.read(cc, &[sub(i), sub(j), sub(k)]);
    nb.read(cc, &[sub(i), sub_const(n + 1).plus_var(j, -1), sub(k)]);
    nb.write(ch, &[sub(i), sub(k), sub(j)]);
    nb.finish().expect("dpssb is a valid nest")
}

/// DPSSF — forward transform of a complex periodic sequence:
/// `do i / do k / do j : ch(i,k,j) = cc(i,j,k) + cc(i,j,n+1−k)`.
pub fn dpssf(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("DPSSF_{n}"));
    let i = nb.add_loop("i", 1, n);
    let k = nb.add_loop("k", 1, n);
    let j = nb.add_loop("j", 1, n);
    let cc = nb.array("cc", &[n, n, n]);
    let ch = nb.array("ch", &[n, n, n]);
    nb.read(cc, &[sub(i), sub(j), sub(k)]);
    nb.read(cc, &[sub(i), sub(j), sub_const(n + 1).plus_var(k, -1)]);
    nb.write(ch, &[sub(i), sub(k), sub(j)]);
    nb.finish().expect("dpssf is a valid nest")
}

/// DRADBG1 — backward transform of a real coefficient array, loop 1:
/// stride-2 reads of the paired coefficients,
/// `do i / do j / do k : ch(i,k,j) = cc(i,2j−1,k) + cc(i,2j,k)`
/// with `j ∈ [1, n/2]`.
pub fn dradbg1(n: i64) -> LoopNest {
    assert!(n % 2 == 0, "DRADBG needs an even size");
    let mut nb = NestBuilder::new(format!("DRADBG1_{n}"));
    let i = nb.add_loop("i", 1, n);
    let j = nb.add_loop("j", 1, n / 2);
    let k = nb.add_loop("k", 1, n);
    let cc = nb.array("cc", &[n, n, n]);
    let ch = nb.array("ch", &[n, n, n / 2]);
    nb.read(cc, &[sub(i), sub(j).times(2).minus(1), sub(k)]);
    nb.read(cc, &[sub(i), sub(j).times(2), sub(k)]);
    nb.write(ch, &[sub(i), sub(k), sub(j)]);
    nb.finish().expect("dradbg1 is a valid nest")
}

/// DRADBG2 — backward transform, loop 2: interchanged `k`/`j` bands and
/// the difference of the pair,
/// `do i / do k / do j : ch2(i,k,j) = cc(i,2j−1,k) − cc(i,2j,k)`.
pub fn dradbg2(n: i64) -> LoopNest {
    assert!(n % 2 == 0, "DRADBG needs an even size");
    let mut nb = NestBuilder::new(format!("DRADBG2_{n}"));
    let i = nb.add_loop("i", 1, n);
    let k = nb.add_loop("k", 1, n);
    let j = nb.add_loop("j", 1, n / 2);
    let cc = nb.array("cc", &[n, n, n]);
    let ch2 = nb.array("ch2", &[n, n, n / 2]);
    nb.read(cc, &[sub(i), sub(j).times(2).minus(1), sub(k)]);
    nb.read(cc, &[sub(i), sub(j).times(2), sub(k)]);
    nb.write(ch2, &[sub(i), sub(k), sub(j)]);
    nb.finish().expect("dradbg2 is a valid nest")
}

/// DRADFG1 — forward transform of a real periodic sequence, loop 1:
/// stride-2 *writes*,
/// `do i / do j / do k : cc(i,2j−1,k) = ch(i,k,j); cc(i,2j,k) = ch(i,k,n/2+1−j)`.
pub fn dradfg1(n: i64) -> LoopNest {
    assert!(n % 2 == 0, "DRADFG needs an even size");
    let mut nb = NestBuilder::new(format!("DRADFG1_{n}"));
    let i = nb.add_loop("i", 1, n);
    let j = nb.add_loop("j", 1, n / 2);
    let k = nb.add_loop("k", 1, n);
    let cc = nb.array("cc", &[n, n, n]);
    let ch = nb.array("ch", &[n, n, n / 2]);
    nb.read(ch, &[sub(i), sub(k), sub(j)]);
    nb.read(ch, &[sub(i), sub(k), sub_const(n / 2 + 1).plus_var(j, -1)]);
    nb.write(cc, &[sub(i), sub(j).times(2).minus(1), sub(k)]);
    nb.write(cc, &[sub(i), sub(j).times(2), sub(k)]);
    nb.finish().expect("dradfg1 is a valid nest")
}

/// DRADFG2 — forward transform, loop 2: interchanged bands,
/// `do i / do k / do j : cc(i,2j−1,k) = ch(i,k,j) + ch(i,k,n/2+1−j); ...`.
pub fn dradfg2(n: i64) -> LoopNest {
    assert!(n % 2 == 0, "DRADFG needs an even size");
    let mut nb = NestBuilder::new(format!("DRADFG2_{n}"));
    let i = nb.add_loop("i", 1, n);
    let k = nb.add_loop("k", 1, n);
    let j = nb.add_loop("j", 1, n / 2);
    let cc = nb.array("cc", &[n, n, n]);
    let ch = nb.array("ch", &[n, n, n / 2]);
    nb.read(ch, &[sub(i), sub(k), sub(j)]);
    nb.read(ch, &[sub(i), sub(k), sub_const(n / 2 + 1).plus_var(j, -1)]);
    nb.write(cc, &[sub(i), sub(j).times(2).minus(1), sub(k)]);
    nb.write(cc, &[sub(i), sub(j).times(2), sub(k)]);
    nb.finish().expect("dradfg2 is a valid nest")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::deps::rectangular_tiling_legality;

    #[test]
    fn structures_and_legality() {
        for nest in [dpssb(8), dpssf(8), dradbg1(8), dradbg2(8), dradfg1(8), dradfg2(8)] {
            assert_eq!(nest.depth(), 3, "{}", nest.name);
            assert!(nest.validate().is_ok(), "{}", nest.name);
            assert!(rectangular_tiling_legality(&nest).is_legal(), "{}", nest.name);
        }
    }

    #[test]
    fn sequence_index_is_outermost() {
        // The reconstruction's key property: `i` (the contiguous array
        // dimension) varies slowest, so untiled innermost accesses stride.
        for nest in [dpssb(8), dpssf(8), dradbg1(8), dradfg1(8)] {
            assert_eq!(nest.loops[0].name, "i", "{}", nest.name);
        }
    }

    #[test]
    fn strided_subscripts_cover_both_halves() {
        let n = dradbg1(8);
        // cc(i, 2j−1, k) and cc(i, 2j, k) for j in 1..=4 cover dims 1..=8.
        let s1 = &n.refs[0].subscripts[1];
        let s2 = &n.refs[1].subscripts[1];
        assert_eq!(s1.eval(&[1, 1, 1]), 1);
        assert_eq!(s1.eval(&[1, 4, 1]), 7);
        assert_eq!(s2.eval(&[1, 4, 1]), 8);
    }

    #[test]
    fn reversed_subscript_stays_in_bounds() {
        let n = dpssb(8);
        let rev = &n.refs[1].subscripts[1];
        assert_eq!(rev.eval(&[1, 1, 1]), 8); // j = 1 -> n
        assert_eq!(rev.eval(&[1, 8, 1]), 1); // j = n -> 1
    }
}
