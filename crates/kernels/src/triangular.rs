//! Triangular-space kernels: TRMM, TRSOLVE, TTRANS.
//!
//! These are not Table 1 entries — the paper's kernels are all
//! rectangular — but they exercise the affine-bound iteration spaces end
//! to end: trapezoidal enumeration, shape-exact reuse analysis, and the
//! capability gates of the strategies that only handle boxes. They ride
//! along in the registry so the API, frontend and golden suites can name
//! them like any other kernel.

use cme_loopnest::builder::{sub, sub_const, NestBuilder};
use cme_loopnest::LoopNest;

/// Triangular matrix multiply (lower-triangular `a`):
/// `do i / do j / do k = 1, i : c(i,j) += a(i,k) * b(k,j)`.
///
/// The `c` pair is uniformly generated exactly as in MM, so the nest is
/// tileable despite the triangular `k` bound — the stress case for the
/// tile sweep over a trapezoidal space.
pub fn trmm(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("TRMM_{n}"));
    let i = nb.add_loop("i", 1, n);
    let j = nb.add_loop("j", 1, n);
    let k = nb.add_loop_bounds("k", sub_const(1), sub(i));
    let a = nb.array("a", &[n, n]);
    let b = nb.array("b", &[n, n]);
    let c = nb.array("c", &[n, n]);
    nb.read(c, &[sub(i), sub(j)]);
    nb.read(a, &[sub(i), sub(k)]);
    nb.read(b, &[sub(k), sub(j)]);
    nb.write(c, &[sub(i), sub(j)]);
    nb.finish().expect("trmm is a valid nest")
}

/// Forward substitution on a lower-triangular system:
/// `do i / do j = 1, i : b(i) -= l(i,j) * b(j)`.
///
/// The `b(i)` write against the `b(j)` read is a *non-uniform* pair, so
/// the uniform-only legality checker conservatively refuses to tile it —
/// the triangular counterpart of TSHIFT's role for the dependence tests.
pub fn trsolve(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("TRSOLVE_{n}"));
    let i = nb.add_loop("i", 1, n);
    let j = nb.add_loop_bounds("j", sub_const(1), sub(i));
    let l = nb.array("l", &[n, n]);
    let b = nb.array("b", &[n]);
    nb.read(l, &[sub(i), sub(j)]);
    nb.read(b, &[sub(j)]);
    nb.read(b, &[sub(i)]);
    nb.write(b, &[sub(i)]);
    nb.finish().expect("trsolve is a valid nest")
}

/// Upper-triangle transposition:
/// `do i / do j = i, n : a(j,i) = b(i,j)`.
///
/// The one registry kernel with an affine *lower* bound; dependence-free
/// (distinct arrays), so every transform family stays available apart
/// from the box-only ones.
pub fn ttrans(n: i64) -> LoopNest {
    let mut nb = NestBuilder::new(format!("TTRANS_{n}"));
    let i = nb.add_loop("i", 1, n);
    let j = nb.add_loop_bounds("j", sub(i), sub_const(n));
    let a = nb.array("a", &[n, n]);
    let b = nb.array("b", &[n, n]);
    nb.read(b, &[sub(i), sub(j)]);
    nb.write(a, &[sub(j), sub(i)]);
    nb.finish().expect("ttrans is a valid nest")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::deps::{rectangular_tiling_legality, TilingLegality};

    #[test]
    fn structure() {
        let t = trmm(8);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.refs.len(), 4);
        assert!(!t.is_rectangular());
        // Σ_i Σ_j Σ_{k≤i} 1 = n²(n+1)/2.
        assert_eq!(t.iterations(), 8 * 8 * 9 / 2);

        let s = trsolve(8);
        assert_eq!(s.depth(), 2);
        assert!(!s.is_rectangular());
        assert_eq!(s.iterations(), 36);

        let tt = ttrans(8);
        assert_eq!(tt.depth(), 2);
        assert!(!tt.is_rectangular());
        assert_eq!(tt.iterations(), 36);
    }

    #[test]
    fn trmm_and_ttrans_are_tileable() {
        for nest in [trmm(10), ttrans(10)] {
            assert!(rectangular_tiling_legality(&nest).is_legal(), "{}", nest.name);
        }
    }

    #[test]
    fn trsolve_is_beyond_the_uniform_checker() {
        match rectangular_tiling_legality(&trsolve(10)) {
            TilingLegality::Illegal { reason } => {
                assert!(reason.contains("non-uniform"), "{reason}");
            }
            TilingLegality::Legal => {
                panic!("uniform checker unexpectedly handles non-uniform pairs")
            }
        }
    }
}
