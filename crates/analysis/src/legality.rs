//! Transform legality decided from direction vectors.
//!
//! * **Rectangular tiling** (tile every loop, hoist all block loops
//!   outermost, Fig. 3(b) of the paper) is legal exactly when the nest is
//!   *fully permutable*: no loop-carried direction vector contains a `>`
//!   component.
//! * A **loop permutation** is legal when every loop-carried direction
//!   vector, reordered by the permutation, stays lexicographically
//!   positive (loop-independent dependences are preserved by any
//!   permutation of a perfect nest).
//!
//! These replace the uniform-only checks in `cme_loopnest::deps`, which
//! conservatively declared every non-uniform affine pair illegal; the
//! verdict type ([`TilingLegality`]) is shared so call sites keep their
//! shape. Reason strings follow the repo's ref-indexed wording
//! convention: ``ref N (`array`): …``.

use crate::dependence::{analyze, render_dirs, DependenceAnalysis, Dir};
use cme_loopnest::deps::TilingLegality;
use cme_loopnest::LoopNest;
use serde::{Deserialize, Serialize};

/// A dependence that rules a transform out: the offending pair and its
/// direction vector (in original loop order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Source reference index.
    pub src: usize,
    /// Destination reference index.
    pub dst: usize,
    /// The loop-carried direction vector that the transform would break.
    pub dirs: Vec<Dir>,
}

/// The first dependence (in pair order) that makes rectangular tiling
/// illegal: a carried direction vector with a `>` component.
pub fn tiling_violation(analysis: &DependenceAnalysis) -> Option<Violation> {
    for pair in &analysis.pairs {
        for dirs in &pair.carried {
            if dirs.contains(&Dir::Gt) {
                return Some(Violation { src: pair.src, dst: pair.dst, dirs: dirs.clone() });
            }
        }
    }
    None
}

/// The first dependence reversed by `perm` (new level `k` executes old
/// loop `perm[k]`): a carried direction vector whose reordering is
/// lexicographically negative.
pub fn permutation_violation(analysis: &DependenceAnalysis, perm: &[usize]) -> Option<Violation> {
    for pair in &analysis.pairs {
        for dirs in &pair.carried {
            let reordered: Vec<Dir> = perm.iter().map(|&p| dirs[p]).collect();
            let lex_positive =
                reordered.iter().find(|&&s| s != Dir::Eq).is_some_and(|&first| first == Dir::Lt);
            if !lex_positive {
                return Some(Violation { src: pair.src, dst: pair.dst, dirs: dirs.clone() });
            }
        }
    }
    None
}

/// Decide whether rectangular tiling (any tile sizes, block loops
/// outermost) preserves all data dependences of the nest — the
/// direction-vector replacement for the uniform-only
/// `cme_loopnest::deps::rectangular_tiling_legality`.
pub fn rectangular_tiling_legality(nest: &LoopNest) -> TilingLegality {
    let analysis = analyze(nest);
    match tiling_violation(&analysis) {
        None => TilingLegality::Legal,
        Some(v) => TilingLegality::Illegal { reason: tiling_reason(nest, &v) },
    }
}

/// Decide whether permuting the loops by `perm` preserves all
/// dependences — the direction-vector replacement for the uniform-only
/// `cme_loopnest::deps::permutation_legality`.
pub fn permutation_legality(nest: &LoopNest, perm: &[usize]) -> TilingLegality {
    let d = nest.depth();
    assert_eq!(perm.len(), d, "permutation arity");
    {
        let mut seen = vec![false; d];
        for &p in perm {
            assert!(p < d && !seen[p], "not a permutation");
            seen[p] = true;
        }
    }
    let analysis = analyze(nest);
    match permutation_violation(&analysis, perm) {
        None => TilingLegality::Legal,
        Some(v) => TilingLegality::Illegal { reason: permutation_reason(nest, &v, perm) },
    }
}

/// Ref-indexed reason for an illegal rectangular tiling.
pub fn tiling_reason(nest: &LoopNest, v: &Violation) -> String {
    let array = &nest.array(nest.refs[v.src].array).name;
    format!(
        "ref {} (`{array}`): dependence from ref {} (`{array}`) has direction vector {}; \
         a `>` component forbids rectangular tiling",
        v.dst,
        v.src,
        render_dirs(&v.dirs)
    )
}

/// Ref-indexed reason for an illegal permutation.
pub fn permutation_reason(nest: &LoopNest, v: &Violation, perm: &[usize]) -> String {
    let array = &nest.array(nest.refs[v.src].array).name;
    format!(
        "ref {} (`{array}`): dependence from ref {} (`{array}`) with direction vector {} \
         is reversed by permutation {perm:?}",
        v.dst,
        v.src,
        render_dirs(&v.dirs)
    )
}

/// A compact, serialisable legality digest for outcomes and lint reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LegalitySummary {
    /// True iff rectangular tiling (block loops outermost) is legal.
    pub rectangular_tiling: bool,
    /// Number of loop-carried direction vectors across all pairs.
    pub carried_dependences: u64,
    /// Number of same-iteration (loop-independent) dependences.
    pub loop_independent_dependences: u64,
    /// True iff some verdict relied on an exhausted search budget
    /// (conservatively assumed dependent).
    pub budget_exhausted: bool,
}

/// Digest an already-computed analysis.
pub fn summarize(analysis: &DependenceAnalysis) -> LegalitySummary {
    LegalitySummary {
        rectangular_tiling: tiling_violation(analysis).is_none(),
        carried_dependences: analysis.carried_count(),
        loop_independent_dependences: analysis.loop_independent_count(),
        budget_exhausted: analysis.budget_exhausted,
    }
}

/// Analyze `nest` and digest the result in one call.
pub fn legality_summary(nest: &LoopNest) -> LegalitySummary {
    summarize(&analyze(nest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::array::{ArrayDecl, ArrayId};
    use cme_loopnest::nest::LoopDef;
    use cme_loopnest::refs::MemRef;
    use cme_polyhedra::AffineForm;

    fn form(c: Vec<i64>, c0: i64) -> AffineForm {
        AffineForm::new(c, c0)
    }

    /// x(i,j) = x(i-1,j+1): carried (<, >) — tiling illegal.
    fn skewed(n: i64) -> LoopNest {
        LoopNest {
            name: "skew".into(),
            loops: vec![LoopDef::new("i", 2, n), LoopDef::new("j", 1, n - 1)],
            arrays: vec![ArrayDecl::real4("x", &[n, n])],
            refs: vec![
                MemRef::read(ArrayId(0), vec![form(vec![1, 0], -1), form(vec![0, 1], 1)]),
                MemRef::write(ArrayId(0), vec![form(vec![1, 0], 0), form(vec![0, 1], 0)]),
            ],
        }
    }

    #[test]
    fn skewed_tiling_illegal_with_ref_indexed_reason() {
        match rectangular_tiling_legality(&skewed(8)) {
            TilingLegality::Illegal { reason } => {
                // Pin the ref-indexed wording convention (PR-5 style).
                assert_eq!(
                    reason,
                    "ref 0 (`x`): dependence from ref 1 (`x`) has direction vector (<, >); \
                     a `>` component forbids rectangular tiling"
                );
            }
            TilingLegality::Legal => panic!("skewed recurrence must be illegal to tile"),
        }
    }

    #[test]
    fn skewed_interchange_illegal_with_ref_indexed_reason() {
        assert!(permutation_legality(&skewed(8), &[0, 1]).is_legal());
        match permutation_legality(&skewed(8), &[1, 0]) {
            TilingLegality::Illegal { reason } => {
                assert_eq!(
                    reason,
                    "ref 0 (`x`): dependence from ref 1 (`x`) with direction vector (<, >) \
                     is reversed by permutation [1, 0]"
                );
            }
            TilingLegality::Legal => panic!("swapping a (<, >) dependence must be illegal"),
        }
    }

    #[test]
    fn summary_counts() {
        let s = legality_summary(&skewed(8));
        assert!(!s.rectangular_tiling);
        assert_eq!(s.carried_dependences, 1);
        assert_eq!(s.loop_independent_dependences, 0);
        assert!(!s.budget_exhausted);
    }
}
