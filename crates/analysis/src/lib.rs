//! `cme-analysis` — static dependence analysis and kernel lints for
//! affine loop nests.
//!
//! The suite's original legality checker (`cme_loopnest::deps`) only
//! understood *uniformly generated* reference pairs and conservatively
//! declared every non-uniform affine pair illegal, which cost transpose-
//! like kernels their entire interchange/tiling search space. This crate
//! supplies the real machinery:
//!
//! * [`dependence`] — classic exact/approximate dependence tests (GCD
//!   test, Banerjee bounds with direction constraints, an exact integer
//!   fallback) producing per-level **direction vectors** for general
//!   affine reference pairs;
//! * [`legality`] — rectangular-tiling and per-permutation interchange
//!   legality decided from direction vectors, plus a serialisable
//!   [`LegalitySummary`] digest;
//! * [`mod@lint`] — structured [`Diagnostic`]s over a nest (illegal
//!   transforms, dead/write-only arrays, no-reuse references, footprint
//!   vs cache, loop-shape sanity);
//! * [`oracle`] — a brute-force dependence oracle that enumerates every
//!   iteration pair on shrunk spaces, used to differential-test the
//!   static verdicts across the whole kernel registry.
//!
//! ```
//! use cme_analysis::{analyze, rectangular_tiling_legality, Dir};
//! use cme_kernels::kernel_by_name;
//!
//! // MM is fully permutable: its only carried dependence is the
//! // accumulator along k, direction (=, =, <).
//! let mm = (kernel_by_name("MM").unwrap().build)(12);
//! assert!(rectangular_tiling_legality(&mm).is_legal());
//! let deps = analyze(&mm);
//! assert!(deps
//!     .pairs
//!     .iter()
//!     .flat_map(|p| &p.carried)
//!     .all(|d| d == &[Dir::Eq, Dir::Eq, Dir::Lt]));
//! ```

#![forbid(unsafe_code)]

pub mod dependence;
pub mod legality;
pub mod lint;
pub mod oracle;

pub use dependence::{analyze, render_dirs, DependenceAnalysis, Dir, PairDeps};
pub use legality::{
    legality_summary, permutation_legality, permutation_violation, rectangular_tiling_legality,
    summarize, tiling_violation, LegalitySummary, Violation,
};
pub use lint::{lint, lint_report, Diagnostic, LintReport, Severity};
pub use oracle::oracle_analyze;
