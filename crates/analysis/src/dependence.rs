//! Classic dependence tests for general affine reference pairs.
//!
//! For an ordered pair of references `(src, dst)` to one array, a
//! dependence exists from the `src` access at iteration `i` to the `dst`
//! access at iteration `j` when both touch the same array element and
//! `i` executes before `j` (either `i` lexicographically precedes `j`, or
//! `i = j` and `src` precedes `dst` in the loop body). The per-level
//! **direction vector** `σ` records, for each loop `k`, whether
//! `i_k < j_k` (`<`), `i_k = j_k` (`=`) or `i_k > j_k` (`>`).
//!
//! Directions are enumerated hierarchically (Burke/Cytron): starting from
//! the unrefined pattern `(*, …, *)`, each level is split into `<`/`=`/`>`
//! and infeasible subtrees are pruned. A pattern is tested with, in order:
//!
//! 1. the **GCD test** per subscript dimension (a linear Diophantine
//!    divisibility check, merging `i_k = j_k` under `=` directions);
//! 2. **Banerjee bounds** with direction constraints — the subscript
//!    difference is bounded over the constrained `(i_k, j_k)` region by
//!    evaluating at the region's vertices (exact for affine forms);
//! 3. an **exact integer test** on the full 2·depth-variable polyhedron
//!    (subscript equalities + direction inequalities) at leaf patterns,
//!    so recorded direction vectors are exact, not approximate.
//!
//! When the exact test's node budget is exhausted the pattern is assumed
//! feasible (sound: we may over-report, never under-report dependences)
//! and the analysis is flagged.

use cme_loopnest::LoopNest;
use cme_polyhedra::polyhedron::{Constraint, Polyhedron};
use cme_polyhedra::{AffineForm, IntBox, Interval};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Node budget for one exact integer feasibility query (the same order of
/// magnitude as the budget the former uniform-only checker used).
pub const NODE_BUDGET: u64 = 200_000;

/// One component of a direction vector: how the source iteration relates
/// to the destination iteration at one loop level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// `i_k < j_k`: the source iteration is earlier in this loop.
    Lt,
    /// `i_k = j_k`.
    Eq,
    /// `i_k > j_k`: the source iteration is later in this loop.
    Gt,
}

impl Dir {
    /// The conventional one-character rendering: `<`, `=` or `>`.
    pub fn symbol(self) -> &'static str {
        match self {
            Dir::Lt => "<",
            Dir::Eq => "=",
            Dir::Gt => ">",
        }
    }
}

/// Render a direction vector the way the literature writes it: `(<, =, >)`.
pub fn render_dirs(dirs: &[Dir]) -> String {
    let parts: Vec<&str> = dirs.iter().map(|d| d.symbol()).collect();
    format!("({})", parts.join(", "))
}

/// All dependences between one ordered reference pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairDeps {
    /// Source reference index (the earlier access) into `nest.refs`.
    pub src: usize,
    /// Destination reference index (the later access).
    pub dst: usize,
    /// Lexicographically positive direction vectors of loop-carried
    /// dependences, sorted (`Lt < Eq < Gt` componentwise).
    pub carried: Vec<Vec<Dir>>,
    /// True iff a same-iteration (all-`=`) dependence exists; only
    /// recorded when `src` precedes `dst` in the loop body.
    pub loop_independent: bool,
    /// True iff some direction vector of this pair was *assumed* (exact
    /// test budget exhausted) rather than proven.
    pub budget_exhausted: bool,
}

/// The dependence structure of a whole nest.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DependenceAnalysis {
    /// Pairs with at least one dependence, sorted by `(src, dst)`.
    pub pairs: Vec<PairDeps>,
    /// True iff any pair's verdict relied on an exhausted search budget.
    pub budget_exhausted: bool,
}

impl DependenceAnalysis {
    /// Total number of loop-carried direction vectors across all pairs.
    pub fn carried_count(&self) -> u64 {
        self.pairs.iter().map(|p| p.carried.len() as u64).sum()
    }

    /// Total number of loop-independent dependences.
    pub fn loop_independent_count(&self) -> u64 {
        self.pairs.iter().filter(|p| p.loop_independent).count() as u64
    }
}

/// How sharp a feasibility answer is needed.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Precision {
    /// Approximate tests only (pruning interior refinement nodes).
    Approximate,
    /// Approximate tests plus the exact integer test (leaf patterns).
    Exact,
}

/// Compute the dependence structure of `nest`: for every ordered pair of
/// references to the same array with at least one write, the exact set of
/// loop-carried direction vectors plus the loop-independent bit.
///
/// Read-read pairs are skipped (they are reuse, not dependence), and the
/// all-`=` pattern of a reference with itself is the same access, not a
/// dependence.
pub fn analyze(nest: &LoopNest) -> DependenceAnalysis {
    let mut out = DependenceAnalysis::default();
    for (src, r1) in nest.refs.iter().enumerate() {
        for (dst, r2) in nest.refs.iter().enumerate() {
            if r1.array != r2.array || (!r1.is_write() && !r2.is_write()) {
                continue;
            }
            let mut carried = BTreeSet::new();
            let mut loop_independent = false;
            let mut budget_exhausted = false;
            let mut pattern: Vec<Option<Dir>> = vec![None; nest.depth()];
            refine(
                nest,
                (src, dst),
                &mut pattern,
                0,
                &mut carried,
                &mut loop_independent,
                &mut budget_exhausted,
            );
            out.budget_exhausted |= budget_exhausted;
            if carried.is_empty() && !loop_independent {
                continue;
            }
            out.pairs.push(PairDeps {
                src,
                dst,
                carried: carried.into_iter().collect(),
                loop_independent,
                budget_exhausted,
            });
        }
    }
    out
}

/// Hierarchical direction refinement. Only lexicographically non-negative
/// patterns are visited: while the prefix is all-`=`, the `>` branch is
/// skipped (a lex-negative vector for `(src, dst)` is a lex-positive one
/// for `(dst, src)` and is found when that pair is processed).
fn refine(
    nest: &LoopNest,
    pair: (usize, usize),
    pattern: &mut Vec<Option<Dir>>,
    pos: usize,
    carried: &mut BTreeSet<Vec<Dir>>,
    loop_independent: &mut bool,
    budget_exhausted: &mut bool,
) {
    let d = pattern.len();
    if pos == d {
        if !feasible(nest, pair, pattern, Precision::Exact, budget_exhausted) {
            return;
        }
        let dirs: Vec<Dir> = pattern.iter().map(|o| o.unwrap_or(Dir::Eq)).collect();
        if dirs.iter().all(|&s| s == Dir::Eq) {
            // Same iteration: a dependence only when the source access
            // executes first within the body.
            if pair.0 < pair.1 {
                *loop_independent = true;
            }
        } else {
            carried.insert(dirs);
        }
        return;
    }
    if !feasible(nest, pair, pattern, Precision::Approximate, budget_exhausted) {
        return;
    }
    let prefix_all_eq = pattern[..pos].iter().all(|&s| s == Some(Dir::Eq));
    for dir in [Dir::Lt, Dir::Eq, Dir::Gt] {
        if dir == Dir::Gt && prefix_all_eq {
            continue; // would begin a lex-negative vector
        }
        pattern[pos] = Some(dir);
        refine(nest, pair, pattern, pos + 1, carried, loop_independent, budget_exhausted);
    }
    pattern[pos] = None;
}

/// Can the pattern be satisfied by some iteration pair `(i, j)` touching
/// the same element? `Approximate` may answer `true` spuriously (it only
/// prunes); `Exact` is decisive unless the node budget runs out, in which
/// case it answers `true` and sets the flag (conservative).
fn feasible(
    nest: &LoopNest,
    (src, dst): (usize, usize),
    pattern: &[Option<Dir>],
    precision: Precision,
    budget_exhausted: &mut bool,
) -> bool {
    let r1 = &nest.refs[src];
    let r2 = &nest.refs[dst];
    for (s1, s2) in r1.subscripts.iter().zip(&r2.subscripts) {
        if !gcd_test(s1, s2, pattern) {
            return false;
        }
        if !banerjee_test(nest, s1, s2, pattern) {
            return false;
        }
    }
    // A `<` or `>` direction needs at least two iterations at that level.
    for (l, p) in pattern.iter().enumerate() {
        if matches!(p, Some(Dir::Lt) | Some(Dir::Gt)) && nest.loops[l].span() < 2 {
            return false;
        }
    }
    if precision == Precision::Approximate {
        return true;
    }
    match exact_test(nest, (src, dst), pattern) {
        Some(empty) => !empty,
        None => {
            *budget_exhausted = true;
            true
        }
    }
}

/// GCD test on one subscript dimension: the Diophantine equation
/// `Σ c1_k·i_k − Σ c2_k·j_k = k2 − k1` has integer solutions only if
/// `gcd(coefficients)` divides the right-hand side. Under an `=`
/// direction, `i_k` and `j_k` merge into one variable with coefficient
/// `c1_k − c2_k`.
fn gcd_test(s1: &AffineForm, s2: &AffineForm, pattern: &[Option<Dir>]) -> bool {
    let rhs = s2.c0 - s1.c0;
    let mut g: i64 = 0;
    for (k, (&c1, &c2)) in s1.coeffs.iter().zip(&s2.coeffs).enumerate() {
        if pattern[k] == Some(Dir::Eq) {
            g = gcd(g, c1 - c2);
        } else {
            g = gcd(g, c1);
            g = gcd(g, c2);
        }
    }
    if g == 0 {
        rhs == 0
    } else {
        rhs % g == 0
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Banerjee bounds with direction constraints on one subscript dimension:
/// bound `s1(i) − s2(j)` over the region the pattern admits and test
/// whether the interval straddles zero. Per level the contribution
/// `c1_k·i_k − c2_k·j_k` is linear over a convex `(i_k, j_k)` region —
/// a segment (`=`), triangle (`<`/`>`) or box (`*`) — so its extrema sit
/// at the region's vertices.
fn banerjee_test(
    nest: &LoopNest,
    s1: &AffineForm,
    s2: &AffineForm,
    pattern: &[Option<Dir>],
) -> bool {
    let mut lo: i128 = (s1.c0 - s2.c0) as i128;
    let mut hi = lo;
    for (k, (&c1, &c2)) in s1.coeffs.iter().zip(&s2.coeffs).enumerate() {
        let (a, b) = (c1 as i128, -(c2 as i128));
        let (l, h) = (nest.loops[k].lo as i128, nest.loops[k].hi as i128);
        let minmax = |verts: &[(i128, i128)]| {
            verts
                .iter()
                .map(|&(i, j)| a * i + b * j)
                .fold((i128::MAX, i128::MIN), |(mn, mx), v| (mn.min(v), mx.max(v)))
        };
        let (vmin, vmax) = match pattern[k] {
            Some(Dir::Eq) => minmax(&[(l, l), (h, h)]),
            Some(Dir::Lt) => {
                if h <= l {
                    return false; // no pair with i_k < j_k
                }
                minmax(&[(l, l + 1), (l, h), (h - 1, h)])
            }
            Some(Dir::Gt) => {
                if h <= l {
                    return false;
                }
                minmax(&[(l + 1, l), (h, l), (h, h - 1)])
            }
            None => minmax(&[(l, l), (l, h), (h, l), (h, h)]),
        };
        lo += vmin;
        hi += vmax;
    }
    lo <= 0 && 0 <= hi
}

/// Exact integer feasibility of the pattern: build the polyhedron over
/// `(i_0..i_{d-1}, j_0..j_{d-1})` — loop bounds twice, subscript
/// equalities `s1(i) = s2(j)`, direction inequalities — and ask for an
/// integer point. `Some(empty)` is decisive, `None` means budget out.
fn exact_test(
    nest: &LoopNest,
    (src, dst): (usize, usize),
    pattern: &[Option<Dir>],
) -> Option<bool> {
    let d = nest.depth();
    let n = 2 * d;
    let window = IntBox::new(
        nest.loops.iter().chain(nest.loops.iter()).map(|l| Interval::new(l.lo, l.hi)).collect(),
    );
    let mut p = Polyhedron::from_box(&window);
    let (r1, r2) = (&nest.refs[src], &nest.refs[dst]);
    for (s1, s2) in r1.subscripts.iter().zip(&r2.subscripts) {
        let mut coeffs = vec![0i64; n];
        coeffs[..d].copy_from_slice(&s1.coeffs);
        for (k, &c2) in s2.coeffs.iter().enumerate() {
            coeffs[d + k] = -c2;
        }
        p.and_eq0(AffineForm::new(coeffs, s1.c0 - s2.c0));
    }
    for (k, pat) in pattern.iter().enumerate() {
        let mut diff = vec![0i64; n]; // j_k − i_k
        diff[d + k] = 1;
        diff[k] = -1;
        match pat {
            Some(Dir::Eq) => {
                p.and_eq0(AffineForm::new(diff, 0));
            }
            Some(Dir::Lt) => {
                p.and(Constraint::ge0(AffineForm::new(diff, -1)));
            }
            Some(Dir::Gt) => {
                p.and(Constraint::ge0(AffineForm::new(diff.iter().map(|c| -c).collect(), -1)));
            }
            None => {}
        }
    }
    let mut cap = NODE_BUDGET;
    p.is_empty_int(&window, &mut cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::array::{ArrayDecl, ArrayId};
    use cme_loopnest::nest::LoopDef;
    use cme_loopnest::refs::MemRef;

    fn form(c: Vec<i64>, c0: i64) -> AffineForm {
        AffineForm::new(c, c0)
    }

    /// x(i,j) = x(i-1,j+1): flow dependence with distance (1,-1), i.e.
    /// direction vector (<, >).
    fn skewed(n: i64) -> LoopNest {
        LoopNest {
            name: "skew".into(),
            loops: vec![LoopDef::new("i", 2, n), LoopDef::new("j", 1, n - 1)],
            arrays: vec![ArrayDecl::real4("x", &[n, n])],
            refs: vec![
                MemRef::read(ArrayId(0), vec![form(vec![1, 0], -1), form(vec![0, 1], 1)]),
                MemRef::write(ArrayId(0), vec![form(vec![1, 0], 0), form(vec![0, 1], 0)]),
            ],
        }
    }

    #[test]
    fn skewed_recurrence_directions() {
        let a = analyze(&skewed(8));
        assert!(!a.budget_exhausted);
        // Flow: write x(i,j) at (i,j) is read as x(i'-1, j'+1) at
        // (i+1, j-1) — source earlier in i, later in j: (<, >).
        let flow = a.pairs.iter().find(|p| (p.src, p.dst) == (1, 0)).expect("write→read pair");
        assert_eq!(flow.carried, vec![vec![Dir::Lt, Dir::Gt]]);
        assert!(!flow.loop_independent);
        // The read→write direction is lex-negative (the write touching
        // the read's element is always an *earlier* iteration), so the
        // (0, 1) pair carries nothing and is not recorded; same-iteration
        // overlap is impossible (i-1 = i has no solution).
        assert_eq!(a.pairs.len(), 1, "{:?}", a.pairs);
    }

    /// x(i,j) = x(i,j-1): distance (0,1) — direction (=, <).
    #[test]
    fn forward_recurrence_directions() {
        let n = 8;
        let nest = LoopNest {
            name: "fwd".into(),
            loops: vec![LoopDef::new("i", 1, n), LoopDef::new("j", 2, n)],
            arrays: vec![ArrayDecl::real4("x", &[n, n])],
            refs: vec![
                MemRef::read(ArrayId(0), vec![form(vec![1, 0], 0), form(vec![0, 1], -1)]),
                MemRef::write(ArrayId(0), vec![form(vec![1, 0], 0), form(vec![0, 1], 0)]),
            ],
        };
        let a = analyze(&nest);
        let flow = a.pairs.iter().find(|p| (p.src, p.dst) == (1, 0)).expect("write→read pair");
        assert_eq!(flow.carried, vec![vec![Dir::Eq, Dir::Lt]]);
    }

    /// A non-uniform pair with provably disjoint footprints: the GCD test
    /// alone kills `2i = 2j' + 1`.
    #[test]
    fn gcd_test_separates_odd_even() {
        let n = 8;
        let nest = LoopNest {
            name: "oddeven".into(),
            loops: vec![LoopDef::new("i", 1, n)],
            arrays: vec![ArrayDecl::real4("x", &[2 * n + 2])],
            refs: vec![
                MemRef::read(ArrayId(0), vec![form(vec![2], 1)]),
                MemRef::write(ArrayId(0), vec![form(vec![2], 0)]),
            ],
        };
        let a = analyze(&nest);
        assert!(a.pairs.is_empty(), "{:?}", a.pairs);
    }

    /// Banerjee bounds separate shifted windows: x(i) vs x(i+n) never
    /// overlap within one window of n iterations.
    #[test]
    fn banerjee_separates_shifted_windows() {
        let n = 8;
        let nest = LoopNest {
            name: "shifted".into(),
            loops: vec![LoopDef::new("i", 1, n)],
            arrays: vec![ArrayDecl::real4("x", &[2 * n])],
            refs: vec![
                MemRef::read(ArrayId(0), vec![form(vec![1], 0)]),
                MemRef::write(ArrayId(0), vec![form(vec![1], n)]),
            ],
        };
        let a = analyze(&nest);
        assert!(a.pairs.is_empty(), "{:?}", a.pairs);
    }

    #[test]
    fn same_iteration_same_access_is_not_a_dependence() {
        // A lone write x(i): the (0,0) write-write pair has no carried
        // direction and all-`=` is the access itself.
        let n = 6;
        let nest = LoopNest {
            name: "lone".into(),
            loops: vec![LoopDef::new("i", 1, n)],
            arrays: vec![ArrayDecl::real4("x", &[n])],
            refs: vec![MemRef::write(ArrayId(0), vec![form(vec![1], 0)])],
        };
        let a = analyze(&nest);
        assert!(a.pairs.is_empty(), "{:?}", a.pairs);
    }

    #[test]
    fn render_is_the_literature_form() {
        assert_eq!(render_dirs(&[Dir::Lt, Dir::Eq, Dir::Gt]), "(<, =, >)");
    }
}
