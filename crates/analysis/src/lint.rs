//! Structured kernel diagnostics ("lints") over a loop nest.
//!
//! Each finding is a [`Diagnostic`] with a stable machine-readable `code`,
//! a severity, a human message following the repo's ref-indexed wording
//! convention, and an optional reference index / source position (the
//! position is attached by callers that parsed the nest from source via
//! `cme-frontend`, which knows where each reference sits).
//!
//! Codes emitted today:
//!
//! | code                      | severity | meaning |
//! |---------------------------|----------|---------|
//! | `illegal-tiling`          | warning  | a carried dependence forbids rectangular tiling |
//! | `analysis-budget`         | warning  | a dependence was assumed, not proven (budget out) |
//! | `dead-array`              | warning  | array declared but never referenced |
//! | `write-only-array`        | info     | array written but never read inside the nest |
//! | `no-reuse`                | warning  | a reference has neither temporal nor spatial reuse in the innermost loop |
//! | `footprint-exceeds-cache` | info     | total array footprint exceeds the innermost cache level |
//! | `degenerate-loop`         | warning  | a loop runs exactly one iteration |

use crate::dependence::analyze;
use crate::legality::{summarize, tiling_reason, tiling_violation, LegalitySummary};
use cme_core::CacheHierarchy;
use cme_loopnest::{Layout, LoopNest, MemoryLayout};
use serde::{Deserialize, Serialize};

/// How serious a finding is. `Warning` findings deserve action; `Info`
/// findings are expected in many correct kernels but worth knowing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: normal in many correct kernels.
    Info,
    /// Likely a mistake or a real performance hazard.
    Warning,
}

impl Severity {
    /// Lower-case rendering for terminal output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
        }
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable machine-readable code (see the module table).
    pub code: String,
    /// Finding severity.
    pub severity: Severity,
    /// Human-readable message (ref-indexed wording where applicable).
    pub message: String,
    /// The reference this finding is about, if any.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub ref_index: Option<usize>,
    /// 1-based source line, when the nest came from `cme-frontend` source.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub line: Option<usize>,
    /// 1-based source column, when the nest came from frontend source.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub col: Option<usize>,
}

impl Diagnostic {
    fn new(code: &str, severity: Severity, message: String) -> Self {
        Diagnostic { code: code.into(), severity, message, ref_index: None, line: None, col: None }
    }

    fn on_ref(mut self, ref_index: usize) -> Self {
        self.ref_index = Some(ref_index);
        self
    }

    /// Attach a source position (used by frontend-aware callers).
    pub fn at(mut self, line: usize, col: usize) -> Self {
        self.line = Some(line);
        self.col = Some(col);
        self
    }
}

/// A full lint pass: the legality digest plus every diagnostic, computed
/// from one dependence analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// Transform-legality digest of the nest.
    pub legality: LegalitySummary,
    /// Findings in deterministic order: legality first, then per-array,
    /// per-reference, footprint, loop-shape.
    pub diagnostics: Vec<Diagnostic>,
}

/// Run every lint over `nest` against `cache` (the hierarchy's innermost
/// level anchors the footprint check).
pub fn lint_report(nest: &LoopNest, cache: &CacheHierarchy) -> LintReport {
    let analysis = analyze(nest);
    let legality = summarize(&analysis);
    let mut diags = Vec::new();

    if let Some(v) = tiling_violation(&analysis) {
        diags.push(
            Diagnostic::new("illegal-tiling", Severity::Warning, tiling_reason(nest, &v))
                .on_ref(v.dst),
        );
    }
    if analysis.budget_exhausted {
        diags.push(Diagnostic::new(
            "analysis-budget",
            Severity::Warning,
            "dependence-test budget exhausted; some dependences were assumed, not proven \
             (legality verdicts stay sound but may be over-conservative)"
                .into(),
        ));
    }

    // Array liveness.
    for (id, array) in nest.arrays.iter().enumerate() {
        let mut read = false;
        let mut written = false;
        for r in &nest.refs {
            if r.array.0 == id {
                if r.is_write() {
                    written = true;
                } else {
                    read = true;
                }
            }
        }
        if !read && !written {
            diags.push(Diagnostic::new(
                "dead-array",
                Severity::Warning,
                format!("array `{}` is declared but never referenced", array.name),
            ));
        } else if written && !read {
            diags.push(Diagnostic::new(
                "write-only-array",
                Severity::Info,
                format!(
                    "array `{}` is written but never read inside the nest (fine if it is \
                     the nest's output)",
                    array.name
                ),
            ));
        }
    }

    // Innermost-loop reuse: a reference has temporal reuse when no
    // subscript moves with the innermost loop, and spatial reuse when the
    // innermost loop moves only the array's fastest-varying dimension.
    if nest.depth() > 0 {
        let inner = nest.depth() - 1;
        for (ri, r) in nest.refs.iter().enumerate() {
            let array = nest.array(r.array);
            let fastest = match array.layout {
                Layout::ColumnMajor => 0,
                Layout::RowMajor => array.rank().saturating_sub(1),
            };
            let moving: Vec<usize> = r
                .subscripts
                .iter()
                .enumerate()
                .filter(|(_, s)| s.coeffs[inner] != 0)
                .map(|(dim, _)| dim)
                .collect();
            let temporal = moving.is_empty();
            let spatial = !moving.is_empty() && moving.iter().all(|&dim| dim == fastest);
            if !temporal && !spatial {
                diags.push(
                    Diagnostic::new(
                        "no-reuse",
                        Severity::Warning,
                        format!(
                            "ref {ri} (`{}`): no temporal or spatial reuse in the innermost \
                             loop `{}` — every iteration touches a new cache line",
                            array.name, nest.loops[inner].name
                        ),
                    )
                    .on_ref(ri),
                );
            }
        }
    }

    // Footprint vs the innermost cache level.
    let layout = MemoryLayout::contiguous(nest);
    let footprint = layout.footprint(nest);
    let l1 = cache.l1();
    if footprint > l1.size {
        diags.push(Diagnostic::new(
            "footprint-exceeds-cache",
            Severity::Info,
            format!(
                "total array footprint {footprint} B exceeds the {} B innermost cache level; \
                 expect capacity misses without tiling",
                l1.size
            ),
        ));
    }

    // Loop-shape sanity (validation already rejects empty loops).
    for l in &nest.loops {
        if l.span() == 1 {
            diags.push(Diagnostic::new(
                "degenerate-loop",
                Severity::Warning,
                format!("loop `{}` runs exactly one iteration ({}..={})", l.name, l.lo, l.hi),
            ));
        }
    }

    LintReport { legality, diagnostics: diags }
}

/// Convenience wrapper returning just the diagnostics.
pub fn lint(nest: &LoopNest, cache: &CacheHierarchy) -> Vec<Diagnostic> {
    lint_report(nest, cache).diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_core::CacheSpec;
    use cme_loopnest::array::{ArrayDecl, ArrayId};
    use cme_loopnest::nest::LoopDef;
    use cme_loopnest::refs::MemRef;
    use cme_polyhedra::AffineForm;

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    /// A deliberately messy nest: transposed read (no innermost reuse),
    /// a dead array, a write-only output, a one-iteration loop, and a
    /// footprint far beyond a 256 B cache.
    fn messy(n: i64) -> LoopNest {
        LoopNest {
            name: "messy".into(),
            loops: vec![LoopDef::new("i", 1, n), LoopDef::new("k", 3, 3), LoopDef::new("j", 1, n)],
            arrays: vec![
                ArrayDecl::real4("a", &[n, n]),
                ArrayDecl::real4("b", &[n, n]),
                ArrayDecl::real4("unused", &[n]),
            ],
            refs: vec![
                MemRef::read(
                    ArrayId(1),
                    vec![AffineForm::new(vec![1, 0, 0], 0), AffineForm::new(vec![0, 0, 1], 0)],
                ),
                MemRef::write(
                    ArrayId(0),
                    vec![AffineForm::new(vec![0, 0, 1], 0), AffineForm::new(vec![1, 0, 0], 0)],
                ),
            ],
        }
    }

    #[test]
    fn messy_nest_trips_the_expected_lints() {
        let nest = messy(32);
        assert!(nest.validate().is_ok());
        let report = lint_report(&nest, &CacheSpec::direct_mapped(256, 16).into());
        let cs = codes(&report.diagnostics);
        assert!(cs.contains(&"dead-array"), "{cs:?}");
        assert!(cs.contains(&"write-only-array"), "{cs:?}");
        assert!(cs.contains(&"no-reuse"), "{cs:?}");
        assert!(cs.contains(&"footprint-exceeds-cache"), "{cs:?}");
        assert!(cs.contains(&"degenerate-loop"), "{cs:?}");
        assert!(!cs.contains(&"illegal-tiling"), "{cs:?}");
        assert!(report.legality.rectangular_tiling);
        // Column-major a(j, i): innermost loop j moves the fastest dim —
        // spatial reuse, so only the b read is flagged.
        let no_reuse: Vec<_> = report.diagnostics.iter().filter(|d| d.code == "no-reuse").collect();
        assert_eq!(no_reuse.len(), 1);
        assert_eq!(no_reuse[0].ref_index, Some(0));
        assert!(no_reuse[0].message.starts_with("ref 0 (`b`): "), "{}", no_reuse[0].message);
    }

    #[test]
    fn clean_kernel_is_quiet() {
        // MM-style nest in a big cache: every array read or read+written,
        // all loops real, footprint fits.
        let n = 8;
        let sub = |c: Vec<i64>| AffineForm::new(c, 0);
        let nest = LoopNest {
            name: "mm".into(),
            loops: vec![LoopDef::new("i", 1, n), LoopDef::new("j", 1, n), LoopDef::new("k", 1, n)],
            arrays: vec![ArrayDecl::real4("a", &[n, n]), ArrayDecl::real4("b", &[n, n])],
            refs: vec![
                MemRef::read(ArrayId(0), vec![sub(vec![1, 0, 0]), sub(vec![0, 1, 0])]),
                MemRef::read(ArrayId(1), vec![sub(vec![0, 0, 1]), sub(vec![0, 1, 0])]),
                MemRef::write(ArrayId(0), vec![sub(vec![1, 0, 0]), sub(vec![0, 1, 0])]),
            ],
        };
        let diags = lint(&nest, &CacheSpec::paper_8k().into());
        // a(i,j) has temporal reuse along k; b(k,j) moves its fastest
        // (column-major first) dimension: spatial reuse. Nothing to say.
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn severity_labels_are_lowercase() {
        assert_eq!(Severity::Info.label(), "info");
        assert_eq!(Severity::Warning.label(), "warning");
    }
}
