//! Brute-force dependence oracle: enumerate every iteration pair.
//!
//! On a shrunk iteration space this computes the *exact* dependence
//! structure by replaying the nest: for each ordered reference pair it
//! buckets iterations by the array element they touch and records the
//! componentwise direction of every (earlier, later) iteration pair on a
//! shared element. The static tests in [`crate::dependence`] are
//! differential-tested against this oracle across the whole kernel
//! registry, and proptests assert the static verdicts are never
//! *unsoundly* permissive (see `tests/` in this crate).

use crate::dependence::{DependenceAnalysis, Dir, PairDeps};
use cme_loopnest::LoopNest;
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};

/// Exact dependence structure by exhaustive enumeration. Intended for
/// shrunk nests: cost is `O(iterations²)` per reference pair in the worst
/// case (element bucketing makes the common case near-linear).
pub fn oracle_analyze(nest: &LoopNest) -> DependenceAnalysis {
    let points: Vec<Vec<i64>> = nest.iter_box().iter_points().collect();
    let mut out = DependenceAnalysis::default();
    for (src, r1) in nest.refs.iter().enumerate() {
        for (dst, r2) in nest.refs.iter().enumerate() {
            if r1.array != r2.array || (!r1.is_write() && !r2.is_write()) {
                continue;
            }
            // Bucket the source access's element coordinates.
            let mut by_element: HashMap<Vec<i64>, Vec<usize>> = HashMap::new();
            for (idx, p) in points.iter().enumerate() {
                let coords: Vec<i64> = r1.subscripts.iter().map(|s| s.eval(p)).collect();
                by_element.entry(coords).or_default().push(idx);
            }
            let mut carried = BTreeSet::new();
            let mut loop_independent = false;
            for (j_idx, pj) in points.iter().enumerate() {
                let coords: Vec<i64> = r2.subscripts.iter().map(|s| s.eval(pj)).collect();
                let Some(bucket) = by_element.get(&coords) else { continue };
                for &i_idx in bucket {
                    match i_idx.cmp(&j_idx) {
                        // Iteration points enumerate in lexicographic
                        // order, so index order is execution order.
                        Ordering::Less => {
                            let pi = &points[i_idx];
                            let dirs: Vec<Dir> = pi
                                .iter()
                                .zip(pj)
                                .map(|(a, b)| match a.cmp(b) {
                                    Ordering::Less => Dir::Lt,
                                    Ordering::Equal => Dir::Eq,
                                    Ordering::Greater => Dir::Gt,
                                })
                                .collect();
                            carried.insert(dirs);
                        }
                        Ordering::Equal => {
                            if src < dst {
                                loop_independent = true;
                            }
                        }
                        Ordering::Greater => {} // belongs to the (dst, src) pair
                    }
                }
            }
            if carried.is_empty() && !loop_independent {
                continue;
            }
            out.pairs.push(PairDeps {
                src,
                dst,
                carried: carried.into_iter().collect(),
                loop_independent,
                budget_exhausted: false,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependence::analyze;
    use cme_loopnest::array::{ArrayDecl, ArrayId};
    use cme_loopnest::nest::{LoopDef, LoopNest};
    use cme_loopnest::refs::MemRef;
    use cme_polyhedra::AffineForm;

    #[test]
    fn oracle_matches_static_on_a_skewed_recurrence() {
        let n = 7;
        let nest = LoopNest {
            name: "skew".into(),
            loops: vec![LoopDef::new("i", 2, n), LoopDef::new("j", 1, n - 1)],
            arrays: vec![ArrayDecl::real4("x", &[n, n])],
            refs: vec![
                MemRef::read(
                    ArrayId(0),
                    vec![AffineForm::new(vec![1, 0], -1), AffineForm::new(vec![0, 1], 1)],
                ),
                MemRef::write(
                    ArrayId(0),
                    vec![AffineForm::new(vec![1, 0], 0), AffineForm::new(vec![0, 1], 0)],
                ),
            ],
        };
        assert_eq!(oracle_analyze(&nest), analyze(&nest));
    }
}
