//! Differential suite: the static dependence tests (GCD → Banerjee →
//! exact polyhedron) against the brute-force enumeration oracle, across
//! the *entire* kernel registry at shrunk problem sizes.
//!
//! This is the load-bearing correctness argument for the analysis crate:
//! on every registry nest the static pipeline must reproduce the exact
//! dependence structure — same pairs, same direction vectors, same
//! loop-independent flags — without ever falling back to its budget
//! escape hatch. Legality verdicts (rectangular tiling and every loop
//! permutation) must then agree as a corollary.

use cme_analysis::{
    analyze, oracle_analyze, permutation_violation, tiling_violation, DependenceAnalysis,
};

/// Shrunk problem size: big enough to exercise boundary behaviour
/// (stencil halos, skewed recurrences), small enough that exhaustive
/// enumeration stays instant.
const SHRUNK: i64 = 8;

fn permutations(d: usize) -> Vec<Vec<usize>> {
    if d == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for p in permutations(d - 1) {
        for pos in 0..=p.len() {
            let mut q = p.clone();
            q.insert(pos, d - 1);
            out.push(q);
        }
    }
    out
}

fn pretty(a: &DependenceAnalysis) -> String {
    let mut s = String::new();
    for p in &a.pairs {
        s.push_str(&format!(
            "  {} -> {} carried {:?} loop_independent {}\n",
            p.src, p.dst, p.carried, p.loop_independent
        ));
    }
    s
}

#[test]
fn static_analysis_matches_the_oracle_on_every_registry_kernel() {
    for spec in cme_kernels::all_kernels() {
        let nest = (spec.build)(SHRUNK);
        let fast = analyze(&nest);
        let slow = oracle_analyze(&nest);
        assert!(
            !fast.budget_exhausted,
            "{}: analysis fell back to the budget escape hatch at a shrunk size",
            spec.name
        );
        assert_eq!(
            fast,
            slow,
            "{}: static analysis disagrees with the enumeration oracle\nstatic:\n{}oracle:\n{}",
            spec.name,
            pretty(&fast),
            pretty(&slow)
        );
    }
}

#[test]
fn legality_verdicts_agree_for_tiling_and_every_permutation() {
    for spec in cme_kernels::all_kernels() {
        let nest = (spec.build)(SHRUNK);
        let fast = analyze(&nest);
        let slow = oracle_analyze(&nest);
        assert_eq!(
            tiling_violation(&fast).is_none(),
            tiling_violation(&slow).is_none(),
            "{}: rectangular-tiling verdict differs",
            spec.name
        );
        for perm in permutations(nest.depth()) {
            assert_eq!(
                permutation_violation(&fast, &perm).is_none(),
                permutation_violation(&slow, &perm).is_none(),
                "{}: permutation {:?} verdict differs",
                spec.name,
                perm
            );
        }
    }
}

/// Spot-check that the differential suite is not vacuous: the registry
/// must contain kernels with carried dependences (ADI), loop-independent
/// dependences (MM), and a dependence-free non-uniform pair (TSHIFT).
#[test]
fn registry_covers_the_interesting_dependence_shapes() {
    let shape = |name: &str| {
        let spec = cme_kernels::kernel_by_name(name).unwrap();
        let a = oracle_analyze(&(spec.build)(SHRUNK));
        (a.carried_count(), a.loop_independent_count())
    };
    let (adi_carried, _) = shape("ADI");
    assert!(adi_carried > 0, "ADI should carry dependences");
    let (_, mm_indep) = shape("MM");
    assert!(mm_indep > 0, "MM should have loop-independent dependences");
    assert_eq!(shape("TSHIFT"), (0, 0), "TSHIFT's non-uniform pair is dependence-free");
}
