//! Soundness property tests: the static dependence tests may be
//! *conservative* (report dependences that cannot occur) but must never
//! be *permissive* (miss a dependence the oracle can exhibit). A missed
//! dependence would let the optimiser emit an illegal transform, so this
//! is the property the whole legality layer rests on.
//!
//! Nests are random depth-2 towers with two references (one write) on a
//! shared array and arbitrary small affine subscripts — deliberately
//! including the non-uniform, rank-deficient and constant-subscript
//! shapes the registry kernels do not cover.

use cme_analysis::{analyze, oracle_analyze, permutation_violation, tiling_violation};
use cme_loopnest::array::{ArrayDecl, ArrayId};
use cme_loopnest::nest::{LoopDef, LoopNest};
use cme_loopnest::refs::MemRef;
use cme_polyhedra::AffineForm;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandNest {
    spans: Vec<i64>,
    subs1: Vec<(i64, i64, i64)>,
    subs2: Vec<(i64, i64, i64)>,
    both_write: bool,
}

fn rand_nest() -> impl Strategy<Value = RandNest> {
    let sub = || (-2i64..=2, -2i64..=2, -3i64..=3);
    (1usize..=2).prop_flat_map(move |rank| {
        (
            prop::collection::vec(2i64..=5, 2usize),
            prop::collection::vec(sub(), rank),
            prop::collection::vec(sub(), rank),
            any::<bool>(),
        )
            .prop_map(|(spans, subs1, subs2, both_write)| RandNest {
                spans,
                subs1,
                subs2,
                both_write,
            })
    })
}

fn build(r: &RandNest) -> LoopNest {
    let form = |&(ci, cj, c0): &(i64, i64, i64)| AffineForm::new(vec![ci, cj], c0);
    // Extents are irrelevant to the dependence analysis (subscript values
    // are compared, not bounds-checked); keep them generous.
    let extent = 64;
    let rank = r.subs1.len();
    let mk = |subs: &[(i64, i64, i64)], write: bool| {
        let forms = subs.iter().map(form).collect();
        if write {
            MemRef::write(ArrayId(0), forms)
        } else {
            MemRef::read(ArrayId(0), forms)
        }
    };
    LoopNest {
        name: "rand".into(),
        loops: vec![LoopDef::new("i", 1, r.spans[0]), LoopDef::new("j", 1, r.spans[1])],
        arrays: vec![ArrayDecl::real4("x", &vec![extent; rank])],
        refs: vec![mk(&r.subs1, r.both_write), mk(&r.subs2, true)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every dependence the oracle exhibits must appear in the static
    /// result: same (src, dst) pair, every direction vector, and the
    /// loop-independent flag.
    #[test]
    fn static_result_covers_the_oracle(r in rand_nest()) {
        let nest = build(&r);
        let fast = analyze(&nest);
        let slow = oracle_analyze(&nest);
        for sp in &slow.pairs {
            let fp = fast
                .pairs
                .iter()
                .find(|p| p.src == sp.src && p.dst == sp.dst)
                .unwrap_or_else(|| panic!("oracle pair {} -> {} missing from static result", sp.src, sp.dst));
            for dirs in &sp.carried {
                prop_assert!(
                    fp.carried.contains(dirs),
                    "direction vector {dirs:?} exhibited by the oracle but not reported statically"
                );
            }
            prop_assert!(
                fp.loop_independent || !sp.loop_independent,
                "loop-independent dependence missed statically"
            );
        }
    }

    /// Legality corollary: a transform the static layer calls legal must
    /// be legal under exhaustive enumeration. (The converse may fail —
    /// conservatism is allowed.)
    #[test]
    fn static_legality_is_never_permissive(r in rand_nest()) {
        let nest = build(&r);
        let fast = analyze(&nest);
        let slow = oracle_analyze(&nest);
        if tiling_violation(&fast).is_none() {
            prop_assert!(
                tiling_violation(&slow).is_none(),
                "static layer allows rectangular tiling the oracle forbids"
            );
        }
        for perm in [[0usize, 1], [1, 0]] {
            if permutation_violation(&fast, &perm).is_none() {
                prop_assert!(
                    permutation_violation(&slow, &perm).is_none(),
                    "static layer allows permutation {perm:?} the oracle forbids"
                );
            }
        }
    }
}
