//! Direction vectors for the classic kernels, pinned by hand.
//!
//! These are the textbook results: MM's reduction is carried by the
//! innermost loop only (fully permutable, freely tileable), ADI's sweep
//! carries a dependence at the outer level, the out-of-place stencils and
//! transposes have no dependences at all, and TSHIFT — the non-uniform
//! pair the old uniform-distance checker rejected outright — is proven
//! dependence-free.

use cme_analysis::{analyze, rectangular_tiling_legality, render_dirs, Dir};
use cme_loopnest::deps::TilingLegality;

fn build(name: &str, n: i64) -> cme_loopnest::LoopNest {
    (cme_kernels::kernel_by_name(name).unwrap().build)(n)
}

#[test]
fn mm_reduction_is_carried_only_by_the_innermost_loop() {
    let a = analyze(&build("MM", 8));
    assert!(!a.pairs.is_empty(), "MM has the a[i][j] reduction pair");
    for p in &a.pairs {
        for dirs in &p.carried {
            assert_eq!(
                dirs,
                &vec![Dir::Eq, Dir::Eq, Dir::Lt],
                "MM carried direction must be (=, =, <), got ({})",
                render_dirs(dirs)
            );
        }
    }
    // (=, =, <) stays lex-positive under any permutation: fully tileable.
    assert!(rectangular_tiling_legality(&build("MM", 8)).is_legal());
}

#[test]
fn adi_sweep_is_carried_at_the_outer_level() {
    let a = analyze(&build("ADI", 8));
    let carried: Vec<&Vec<Dir>> = a.pairs.iter().flat_map(|p| p.carried.iter()).collect();
    assert!(
        carried.iter().any(|d| d.as_slice() == [Dir::Lt, Dir::Eq]),
        "ADI's x(i-1) recurrence should be carried at level 0 with (<, =), got {:?}",
        carried.iter().map(|d| render_dirs(d)).collect::<Vec<_>>()
    );
    // (<, =) survives rectangular tiling (no `>` component) …
    assert!(rectangular_tiling_legality(&build("ADI", 8)).is_legal());
}

#[test]
fn out_of_place_kernels_have_no_dependences() {
    for name in ["JACOBI3D", "T2D"] {
        let a = analyze(&build(name, 8));
        assert!(
            a.pairs.is_empty(),
            "{name} reads and writes distinct arrays; expected no dependence pairs, got {}",
            a.pairs.len()
        );
    }
}

#[test]
fn tshift_non_uniform_pair_is_proven_dependence_free() {
    let nest = build("TSHIFT", 8);
    // The read a(j, i) and write a(x, y+n) touch the same array with a
    // non-uniform subscript pair — exactly what the old distance-vector
    // checker refused to reason about.
    assert!(matches!(
        cme_loopnest::deps::rectangular_tiling_legality(&nest),
        TilingLegality::Illegal { .. }
    ));
    // The Banerjee/exact pipeline proves the column bands disjoint.
    let a = analyze(&nest);
    assert!(a.pairs.is_empty(), "TSHIFT bands are disjoint: no dependences");
    assert!(rectangular_tiling_legality(&nest).is_legal());
}
