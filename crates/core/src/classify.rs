//! Per-point miss classification — the §2.2 traversal method.

use crate::interference::InterferenceEngine;
use crate::lexmax::lexmax_at_level;
use crate::model::NestAnalysis;
use cme_polyhedra::boxes::lex_cmp;
use cme_polyhedra::Interval;

/// Outcome for one (iteration point, reference) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    Hit,
    /// Compulsory miss: no same-line source access precedes this one.
    Cold,
    /// Replacement miss: the line was touched before but interference
    /// evicted it (capacity or conflict).
    Replacement,
}

/// Classify reference `ref_a` at analysis point `v0`.
///
/// Finds the most recent preceding access to the same memory line —
/// within the current iteration by direct scan over earlier body
/// references (any array), across iterations by the exact lexmax search
/// over uniformly generated references — then decides hit vs. replacement
/// with a single interference query (older sources see a superset of the
/// interference, so the most recent one is decisive). No source ⇒ cold.
pub fn classify_point(
    an: &NestAnalysis,
    engine: &mut InterferenceEngine,
    v0: &[i64],
    ref_a: usize,
) -> Classification {
    let addr0 = an.addr[ref_a].eval(v0);
    let l0 = engine.cache.line_of(addr0);
    // Intra-iteration sources: most recent earlier body position first.
    for pos in (0..ref_a).rev() {
        if engine.cache.line_of(an.addr[pos].eval(v0)) == l0 {
            return finish(an, engine, v0, pos, v0, ref_a, l0);
        }
    }
    // Cross-iteration sources: deepest divergence level = most recent.
    let window = Interval::new(l0 * engine.cache.line, (l0 + 1) * engine.cache.line - 1);
    for s in (0..v0.len()).rev() {
        let mut best: Option<(Vec<i64>, usize)> = None;
        for &b in &an.uniform_sources[ref_a] {
            let Some(j) = lexmax_at_level(&an.space, &an.addr[b], &an.suffix[b], v0, window, s)
            else {
                continue;
            };
            let better = match &best {
                None => true,
                Some((bj, bpos)) => match lex_cmp(&j, bj) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Equal => b > *bpos,
                    std::cmp::Ordering::Less => false,
                },
            };
            if better {
                best = Some((j, b));
            }
        }
        if let Some((j, pos)) = best {
            return finish(an, engine, &j, pos, v0, ref_a, l0);
        }
    }
    Classification::Cold
}

#[allow(clippy::too_many_arguments)]
fn finish(
    an: &NestAnalysis,
    engine: &mut InterferenceEngine,
    v_src: &[i64],
    src_pos: usize,
    v_cur: &[i64],
    cur_pos: usize,
    l0: i64,
) -> Classification {
    if engine.blocks_reuse(&an.space, &an.addr, v_src, src_pos, v_cur, cur_pos, l0) {
        Classification::Replacement
    } else {
        Classification::Hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CmeModel;
    use crate::CacheSpec;
    use cme_loopnest::builder::{sub, NestBuilder};
    use cme_loopnest::MemoryLayout;

    /// Streaming read of x(i): first element of each line is cold, the
    /// rest hit (no interference anywhere).
    #[test]
    fn streaming_classification() {
        let mut nb = NestBuilder::new("stream");
        let i = nb.add_loop("i", 1, 64);
        let x = nb.array("x", &[64]);
        nb.read(x, &[sub(i)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        let model = CmeModel::new(CacheSpec::direct_mapped(256, 32));
        let an = model.analyze(&nest, &layout, None);
        let mut eng = an.engine();
        let mut cold = 0;
        let mut hit = 0;
        for i in 1..=64i64 {
            match classify_point(&an, &mut eng, &[i], 0) {
                Classification::Cold => cold += 1,
                Classification::Hit => hit += 1,
                Classification::Replacement => panic!("streaming cannot replace"),
            }
        }
        assert_eq!(cold, 8); // 64 elements × 4 B / 32 B lines
        assert_eq!(hit, 56);
    }

    /// Two aliased arrays ping-ponging in a direct-mapped cache.
    #[test]
    fn pingpong_classification() {
        let mut nb = NestBuilder::new("pingpong");
        let i = nb.add_loop("i", 1, 16);
        let x = nb.array("x", &[16]);
        let y = nb.array("y", &[16]);
        nb.read(x, &[sub(i)]);
        nb.read(y, &[sub(i)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        // 64-byte cache, 8-byte lines: x and y are 64 bytes apart — alias.
        let model = CmeModel::new(CacheSpec::direct_mapped(64, 8));
        let an = model.analyze(&nest, &layout, None);
        let mut eng = an.engine();
        let mut repl = 0;
        for i in 1..=16i64 {
            for r in 0..2 {
                if classify_point(&an, &mut eng, &[i], r) == Classification::Replacement {
                    repl += 1;
                }
            }
        }
        // Elements per line = 2: within each line, after the two cold
        // touches the remaining x/y accesses all replace.
        assert!(repl >= 16, "ping-pong must produce many replacement misses, got {repl}");
    }
}
