//! Simple-random-sampling configuration (paper §2.3).
//!
//! The miss count of a reference over the iteration space is modelled as a
//! binomial: each sampled point is an independent Bernoulli trial. The
//! sample size for a confidence interval of half-width `h` at normal
//! quantile `z` (worst case `p = ½`) is `n = ⌈z²·p(1−p)/h²⌉`. With the
//! paper's parameters — width 0.1 (h = 0.05) and its "90 % confidence"
//! quantile `z = 1.28` — this gives exactly the paper's **164 points**.
//! (Note: 1.28 is the *one-sided* 90 % quantile; a two-sided 90 % interval
//! would use 1.645 and 271 points. We reproduce the paper's constant and
//! expose `z` so both conventions are available.)

use serde::{Deserialize, Serialize};

/// Sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Normal quantile (paper: 1.28).
    pub z: f64,
    /// Confidence-interval half-width (paper: 0.05).
    pub half_width: f64,
    /// Optional explicit sample size overriding the formula.
    pub override_n: Option<u64>,
}

impl SamplingConfig {
    /// The paper's configuration: 164 sampled points.
    pub fn paper() -> Self {
        SamplingConfig { z: 1.28, half_width: 0.05, override_n: None }
    }

    /// A two-sided 90 % interval (z = 1.645, 271 points).
    pub fn two_sided_90() -> Self {
        SamplingConfig { z: 1.645, half_width: 0.05, override_n: None }
    }

    /// Fixed sample size.
    pub fn fixed(n: u64) -> Self {
        SamplingConfig { z: 1.28, half_width: 0.05, override_n: Some(n) }
    }

    /// Number of iteration points to sample.
    pub fn sample_size(&self) -> u64 {
        if let Some(n) = self.override_n {
            return n;
        }
        (self.z * self.z * 0.25 / (self.half_width * self.half_width)).ceil() as u64
    }

    /// Half-width of the CI around an observed proportion `p` with this
    /// configuration's quantile.
    pub fn ci_half_width(&self, p: f64, n: u64) -> f64 {
        if n == 0 {
            return 0.5;
        }
        self.z * (p * (1.0 - p) / n as f64).sqrt()
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sample_size_is_164() {
        assert_eq!(SamplingConfig::paper().sample_size(), 164);
    }

    #[test]
    fn two_sided_is_larger() {
        assert_eq!(SamplingConfig::two_sided_90().sample_size(), 271);
    }

    #[test]
    fn override_wins() {
        assert_eq!(SamplingConfig::fixed(500).sample_size(), 500);
    }

    #[test]
    fn ci_width_shrinks_with_n() {
        let c = SamplingConfig::paper();
        assert!(c.ci_half_width(0.5, 164) > c.ci_half_width(0.5, 1000));
        // At the design point, the half-width is at most the target.
        assert!(c.ci_half_width(0.5, 164) <= 0.05 + 1e-9);
        assert!(c.ci_half_width(0.1, 164) < 0.05);
    }
}
