//! Simple-random-sampling configuration (paper §2.3).
//!
//! The miss count of a reference over the iteration space is modelled as a
//! binomial: each sampled point is an independent Bernoulli trial. The
//! sample size for a confidence interval of half-width `h` at normal
//! quantile `z` (worst case `p = ½`) is `n = ⌈z²·p(1−p)/h²⌉`. With the
//! paper's parameters — width 0.1 (h = 0.05) and its "90 % confidence"
//! quantile `z = 1.28` — this gives exactly the paper's **164 points**.
//! (Note: 1.28 is the *one-sided* 90 % quantile; a two-sided 90 % interval
//! would use 1.645 and 271 points. We reproduce the paper's constant and
//! expose `z` so both conventions are available.)

use serde::{Deserialize, Serialize};

/// Early-abandon sequential sampling (an *approximation knob*, off by
/// default): while sampling a search candidate, stop as soon as the
/// candidate's CI lower bound on replacement misses already exceeds the
/// incumbent's CI upper bound — the candidate cannot win, so the
/// remaining points are wasted work. Results stay deterministic (the
/// sampled point sequence and the check schedule are fixed by the seed)
/// but differ from full sampling, which is why the default path never
/// abandons.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlyAbandonConfig {
    /// Re-check the abandon criterion every this many sampled points.
    pub check_every: u64,
}

impl Default for EarlyAbandonConfig {
    fn default() -> Self {
        EarlyAbandonConfig { check_every: 32 }
    }
}

/// Sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Normal quantile (paper: 1.28).
    pub z: f64,
    /// Confidence-interval half-width (paper: 0.05).
    pub half_width: f64,
    /// Optional explicit sample size overriding the formula.
    pub override_n: Option<u64>,
    /// Early-abandon sequential sampling: present = enabled. Only search
    /// objectives consult it (reported before/after estimates always
    /// sample fully); absent in JSON deserialises to `None`.
    pub early_abandon: Option<EarlyAbandonConfig>,
}

impl SamplingConfig {
    /// The paper's configuration: 164 sampled points.
    pub fn paper() -> Self {
        SamplingConfig { z: 1.28, half_width: 0.05, override_n: None, early_abandon: None }
    }

    /// A two-sided 90 % interval (z = 1.645, 271 points).
    pub fn two_sided_90() -> Self {
        SamplingConfig { z: 1.645, half_width: 0.05, override_n: None, early_abandon: None }
    }

    /// Fixed sample size.
    pub fn fixed(n: u64) -> Self {
        SamplingConfig { z: 1.28, half_width: 0.05, override_n: Some(n), early_abandon: None }
    }

    /// This configuration with early abandonment enabled.
    pub fn with_early_abandon(mut self, cfg: EarlyAbandonConfig) -> Self {
        self.early_abandon = Some(cfg);
        self
    }

    /// Number of iteration points to sample.
    pub fn sample_size(&self) -> u64 {
        if let Some(n) = self.override_n {
            return n;
        }
        (self.z * self.z * 0.25 / (self.half_width * self.half_width)).ceil() as u64
    }

    /// Half-width of the CI around an observed proportion `p` with this
    /// configuration's quantile.
    pub fn ci_half_width(&self, p: f64, n: u64) -> f64 {
        if n == 0 {
            return 0.5;
        }
        self.z * (p * (1.0 - p) / n as f64).sqrt()
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sample_size_is_164() {
        assert_eq!(SamplingConfig::paper().sample_size(), 164);
    }

    #[test]
    fn two_sided_is_larger() {
        assert_eq!(SamplingConfig::two_sided_90().sample_size(), 271);
    }

    #[test]
    fn override_wins() {
        assert_eq!(SamplingConfig::fixed(500).sample_size(), 500);
    }

    #[test]
    fn old_json_without_early_abandon_still_parses() {
        // The pre-knob wire format (no `early_abandon` key) must keep
        // deserialising — the vendored serde derive maps absent Option
        // fields to `None`.
        let cfg: SamplingConfig =
            serde_json::from_str(r#"{"z":1.28,"half_width":0.05,"override_n":null}"#).unwrap();
        assert_eq!(cfg, SamplingConfig::paper());
        let round: SamplingConfig = serde_json::from_str(
            &serde_json::to_string(&cfg.with_early_abandon(EarlyAbandonConfig { check_every: 20 }))
                .unwrap(),
        )
        .unwrap();
        assert_eq!(round.early_abandon, Some(EarlyAbandonConfig { check_every: 20 }));
    }

    #[test]
    fn ci_width_shrinks_with_n() {
        let c = SamplingConfig::paper();
        assert!(c.ci_half_width(0.5, 164) > c.ci_half_width(0.5, 1000));
        // At the design point, the half-width is at most the target.
        assert!(c.ci_half_width(0.5, 164) <= 0.05 + 1e-9);
        assert!(c.ci_half_width(0.1, 164) < 0.05);
    }
}
