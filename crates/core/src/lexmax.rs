//! Exact most-recent same-line predecessor search.
//!
//! For a subject access at point `v0` touching line `l0`, and a candidate
//! source reference `B` (uniformly generated with the subject), find the
//! lexicographically greatest iteration `j ≺ v0` with
//! `addr_B(j) ∈ [l0·ls, (l0+1)·ls)` — i.e. the most recent access of `B`
//! to the same memory line.
//!
//! Constant reuse *vectors* cannot express this in general (the most
//! recent source may differ per point when trailing loop variables do not
//! affect the address, or affect it by less than a line), so the
//! classifier searches directly: for each divergence level `s` (deepest
//! first — longer common prefix ⇒ more recent), greedily maximise the
//! remaining coordinates subject to the line window, using relaxed suffix
//! ranges for feasibility pruning and a small back-tracking probe budget
//! for integrality gaps. A found source is verified concretely; probe
//! exhaustion degrades *conservatively* (a farther or missing source can
//! only turn hits into predicted misses, never the reverse).

use cme_loopnest::ExecSpace;
use cme_polyhedra::dioph::{div_ceil, div_floor};
use cme_polyhedra::{AffineForm, Interval};

/// Precomputed relaxed suffix ranges of an address form over a space:
/// `suffix_lo[t]..suffix_hi[t]` bounds `Σ_{r ≥ t} c_r·x_r` over the
/// relaxed per-dimension intervals.
#[derive(Debug, Clone)]
pub struct SuffixRanges {
    pub lo: Vec<i64>,
    pub hi: Vec<i64>,
}

impl SuffixRanges {
    pub fn of(form: &AffineForm, relaxed: &[Interval]) -> Self {
        let m = form.coeffs.len();
        let mut lo = vec![0i64; m + 1];
        let mut hi = vec![0i64; m + 1];
        for t in (0..m).rev() {
            let c = form.coeffs[t];
            let iv = relaxed[t];
            let (a, b) = (c * iv.lo, c * iv.hi);
            lo[t] = lo[t + 1] + a.min(b);
            hi[t] = hi[t + 1] + a.max(b);
        }
        SuffixRanges { lo, hi }
    }
}

/// Probe budget per (source reference, divergence level).
const PROBES: u32 = 4096;

/// Search the most recent `j ≺ v0` with `form(j) ∈ window`, diverging
/// from `v0` exactly at coordinate `s`. Returns the full coordinate
/// vector, or `None`.
pub fn lexmax_at_level(
    space: &ExecSpace,
    form: &AffineForm,
    suffix: &SuffixRanges,
    v0: &[i64],
    window: Interval,
    s: usize,
) -> Option<Vec<i64>> {
    let _m = v0.len();
    let mut j = v0.to_vec();
    // Target for Σ_{t ≥ s} c_t j_t.
    let mut target = window.shift(-form.c0);
    for t in 0..s {
        target = target.shift(-form.coeffs[t] * v0[t]);
    }
    let mut probes = PROBES;
    if resolve(space, form, suffix, &mut j, s, target, Some(v0[s] - 1), &mut probes) {
        debug_assert!(space.contains_v(&j), "resolved source must lie in the space");
        debug_assert!(window.contains(form.eval(&j)), "resolved source must hit the window");
        Some(j)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    space: &ExecSpace,
    form: &AffineForm,
    suffix: &SuffixRanges,
    j: &mut Vec<i64>,
    t: usize,
    target: Interval,
    clamp_hi: Option<i64>,
    probes: &mut u32,
) -> bool {
    let m = form.coeffs.len();
    if t == m {
        return target.contains(0);
    }
    let bounds = space.dim_interval(t, &j[..t]);
    let hi = clamp_hi.map_or(bounds.hi, |h| h.min(bounds.hi));
    if hi < bounds.lo {
        return false;
    }
    let c = form.coeffs[t];
    // Feasibility from the relaxed suffix: c·x ∈ target − suffix(t+1).
    let (mut xlo, mut xhi) = (bounds.lo, hi);
    if c != 0 {
        let flo = target.lo - suffix.hi[t + 1];
        let fhi = target.hi - suffix.lo[t + 1];
        let (a, b) = if c > 0 {
            (div_ceil(flo, c), div_floor(fhi, c))
        } else {
            (div_ceil(fhi, c), div_floor(flo, c))
        };
        xlo = xlo.max(a);
        xhi = xhi.min(b);
    }
    let mut x = xhi;
    while x >= xlo {
        if *probes == 0 {
            return false;
        }
        *probes -= 1;
        j[t] = x;
        if resolve(space, form, suffix, j, t + 1, target.shift(-c * x), None, probes) {
            return true;
        }
        x -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::builder::{sub, NestBuilder};
    use cme_loopnest::{MemoryLayout, TileSizes};

    /// Brute-force oracle: scan all points before v0 in execution order.
    fn brute_lexmax(
        space: &ExecSpace,
        form: &AffineForm,
        v0: &[i64],
        window: Interval,
    ) -> Option<Vec<i64>> {
        let mut best: Option<Vec<i64>> = None;
        space.for_each_point(|p| {
            if cme_polyhedra::boxes::lex_cmp(p, v0) == std::cmp::Ordering::Less
                && window.contains(form.eval(p))
            {
                best = Some(p.to_vec());
            }
        });
        best
    }

    fn search_all_levels(
        space: &ExecSpace,
        form: &AffineForm,
        v0: &[i64],
        window: Interval,
    ) -> Option<Vec<i64>> {
        let suffix = SuffixRanges::of(form, &space.relaxed_dims());
        for s in (0..v0.len()).rev() {
            if let Some(j) = lexmax_at_level(space, form, &suffix, v0, window, s) {
                return Some(j);
            }
        }
        None
    }

    #[test]
    fn matches_brute_force_untiled() {
        // y(i,t)-style form over a 7x7x7 space: coeffs (28, 4, 0).
        let mut nb = NestBuilder::new("n");
        let _t = nb.add_loop("t", 1, 7);
        let _i = nb.add_loop("i", 1, 7);
        let _j = nb.add_loop("j", 1, 7);
        let x = nb.array("x", &[7, 7]);
        nb.read(x, &[sub(_i), sub(_t)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        let space = ExecSpace::untiled(&nest);
        let form = space.lift_form(&layout.address_form(&nest, 0));
        for v0 in [[2, 1, 1], [1, 6, 7], [3, 4, 2], [7, 7, 7], [1, 1, 1]] {
            for line in [0i64, 1, 3, 6] {
                let w = Interval::new(line * 16, line * 16 + 15);
                let got = search_all_levels(&space, &form, &v0, w);
                let want = brute_lexmax(&space, &form, &v0, w);
                assert_eq!(got, want, "v0 {v0:?} line {line}");
            }
        }
    }

    #[test]
    fn matches_brute_force_tiled() {
        let mut nb = NestBuilder::new("n");
        let _i = nb.add_loop("i", 1, 9);
        let _j = nb.add_loop("j", 1, 7);
        let a = nb.array("a", &[9, 7]);
        nb.read(a, &[sub(_i), sub(_j)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        let space = ExecSpace::tiled(&nest, &TileSizes(vec![4, 3]));
        let form = space.lift_form(&layout.address_form(&nest, 0));
        let windows: Vec<Interval> = (0..8).map(|l| Interval::new(l * 32, l * 32 + 31)).collect();
        let mut checked = 0;
        space.clone().for_each_point(|v0| {
            for w in &windows {
                let got = search_all_levels(&space, &form, v0, *w);
                let want = brute_lexmax(&space, &form, v0, *w);
                assert_eq!(got, want, "v0 {v0:?} w {w}");
                checked += 1;
            }
        });
        assert!(checked > 100);
    }

    #[test]
    fn matches_brute_force_triangular() {
        // do i = 1,9 / do j = 1,i : a(i,j) — the search must stay inside
        // the triangle, untiled and tiled.
        use cme_loopnest::builder::sub_const;
        let build = || {
            let mut nb = NestBuilder::new("tri");
            let i = nb.add_loop("i", 1, 9);
            let j = nb.add_loop_bounds("j", sub_const(1), sub(i));
            let a = nb.array("a", &[9, 9]);
            nb.read(a, &[sub(i), sub(j)]);
            nb.finish().unwrap()
        };
        let nest = build();
        let layout = MemoryLayout::contiguous(&nest);
        for space in [ExecSpace::untiled(&nest), ExecSpace::tiled(&nest, &TileSizes(vec![4, 3]))] {
            let form = space.lift_form(&layout.address_form(&nest, 0));
            let windows: Vec<Interval> =
                (0..8).map(|l| Interval::new(l * 32, l * 32 + 31)).collect();
            let mut checked = 0;
            space.clone().for_each_point(|v0| {
                for w in &windows {
                    let got = search_all_levels(&space, &form, v0, *w);
                    let want = brute_lexmax(&space, &form, v0, *w);
                    assert_eq!(got, want, "v0 {v0:?} w {w}");
                    checked += 1;
                }
            });
            assert!(checked > 100);
        }
    }

    #[test]
    fn no_predecessor_at_origin() {
        let mut nb = NestBuilder::new("n");
        let _i = nb.add_loop("i", 1, 5);
        let a = nb.array("a", &[5]);
        nb.read(a, &[sub(_i)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        let space = ExecSpace::untiled(&nest);
        let form = space.lift_form(&layout.address_form(&nest, 0));
        assert_eq!(search_all_levels(&space, &form, &[1], Interval::new(0, 31)), None);
    }
}
