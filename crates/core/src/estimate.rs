//! Exhaustive and sampled miss estimation.

use crate::classify::{classify_point, Classification};
use crate::model::NestAnalysis;
use crate::sampling::SamplingConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Exact per-reference counts (exhaustive analysis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counts {
    pub points: u64,
    pub cold: u64,
    pub replacement: u64,
}

impl Counts {
    pub fn hits(&self) -> u64 {
        self.points - self.cold - self.replacement
    }

    pub fn misses(&self) -> u64 {
        self.cold + self.replacement
    }

    fn add(&mut self, c: Classification) {
        self.points += 1;
        match c {
            Classification::Hit => {}
            Classification::Cold => self.cold += 1,
            Classification::Replacement => self.replacement += 1,
        }
    }

    fn merge(&mut self, o: &Counts) {
        self.points += o.points;
        self.cold += o.cold;
        self.replacement += o.replacement;
    }
}

/// Aggregated solver statistics for one analysis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    pub queries: u64,
    pub fallbacks: u64,
    pub nodes: u64,
    pub assoc_fallbacks: u64,
}

/// Fold per-reference exact counts into one total — the one place the
/// aggregation lives, shared by the top-level report and its per-level
/// slices so the two can never diverge.
fn totals_of(per_ref: &[Counts]) -> Counts {
    let mut t = Counts::default();
    for c in per_ref {
        t.merge(c);
    }
    t
}

/// Mean of a per-reference statistic (all references weighted equally —
/// each executes once per iteration); 0 for an empty reference list.
/// Shared by [`MissEstimate`] and [`LevelEstimate`] so the top-level
/// figures and the per-level breakdown always use the same formula.
fn mean_over(per_ref: &[RefEstimate], f: impl Fn(&RefEstimate) -> f64) -> f64 {
    if per_ref.is_empty() {
        return 0.0;
    }
    per_ref.iter().map(f).sum::<f64>() / per_ref.len() as f64
}

/// Estimated absolute replacement misses of a reference list over a
/// space of `volume` iterations (paper §3.1's `f`).
fn replacement_misses_of(per_ref: &[RefEstimate], volume: u64) -> f64 {
    mean_over(per_ref, |r| r.p_repl) * (volume as f64) * per_ref.len() as f64
}

/// Per-level slice of an exhaustive hierarchy analysis: the exact counts
/// of one cache level, tagged with its geometry and miss latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelReport {
    pub cache: crate::CacheSpec,
    pub miss_latency: f64,
    pub per_ref: Vec<Counts>,
    pub solver: SolverStats,
}

impl LevelReport {
    pub fn totals(&self) -> Counts {
        totals_of(&self.per_ref)
    }
}

/// Result of an exhaustive (every-point) analysis.
///
/// The top-level fields always describe the innermost (L1) cache level;
/// `levels` carries the full per-level breakdown when the analysis ran
/// over a non-legacy [`crate::CacheHierarchy`] (and is absent — also from
/// the serialised form — for the legacy single-level model, keeping the
/// pre-hierarchy wire format byte-identical).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissReport {
    pub per_ref: Vec<Counts>,
    pub solver: SolverStats,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub levels: Option<Vec<LevelReport>>,
}

impl MissReport {
    pub fn totals(&self) -> Counts {
        totals_of(&self.per_ref)
    }

    pub fn miss_ratio(&self) -> f64 {
        let t = self.totals();
        if t.points == 0 {
            0.0
        } else {
            t.misses() as f64 / t.points as f64
        }
    }

    pub fn replacement_ratio(&self) -> f64 {
        let t = self.totals();
        if t.points == 0 {
            0.0
        } else {
            t.replacement as f64 / t.points as f64
        }
    }

    /// Latency-weighted replacement cost: Σ per level of replacement
    /// misses × miss latency. Without a per-level breakdown this is the
    /// legacy replacement-miss count (one cost unit per miss).
    pub fn weighted_cost(&self) -> f64 {
        match &self.levels {
            None => self.totals().replacement as f64,
            Some(levels) => {
                levels.iter().map(|l| l.totals().replacement as f64 * l.miss_latency).sum()
            }
        }
    }
}

/// Per-reference sampled estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefEstimate {
    /// Estimated probability that an access of this reference is a cold
    /// miss / replacement miss.
    pub p_cold: f64,
    pub p_repl: f64,
    /// CI half-width for the miss probabilities.
    pub half_width: f64,
}

/// Per-level slice of a sampled hierarchy estimate: the per-reference
/// probabilities of one cache level, tagged with its geometry and miss
/// latency. Every level of one estimate classifies the *same* sampled
/// iteration points, so slices are directly comparable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelEstimate {
    pub cache: crate::CacheSpec,
    pub miss_latency: f64,
    pub per_ref: Vec<RefEstimate>,
    pub solver: SolverStats,
}

impl LevelEstimate {
    /// This level's total miss ratio estimate.
    pub fn miss_ratio(&self) -> f64 {
        mean_over(&self.per_ref, |r| r.p_cold + r.p_repl)
    }

    /// This level's replacement miss ratio estimate.
    pub fn replacement_ratio(&self) -> f64 {
        mean_over(&self.per_ref, |r| r.p_repl)
    }

    /// This level's estimated absolute replacement misses over a space of
    /// `volume` iterations.
    pub fn replacement_misses(&self, volume: u64) -> f64 {
        replacement_misses_of(&self.per_ref, volume)
    }
}

/// Result of a sampled analysis (paper §2.3).
///
/// The top-level fields always describe the innermost (L1) cache level;
/// `levels` carries the full per-level breakdown when the estimate was
/// computed over a non-legacy [`crate::CacheHierarchy`] (and is absent —
/// also from the serialised form — for the legacy single-level model,
/// keeping the pre-hierarchy wire format byte-identical).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissEstimate {
    /// Points sampled (equals the space volume when `exact`).
    pub n_samples: u64,
    /// Iteration-space volume.
    pub volume: u64,
    /// True when the space was smaller than the requested sample and the
    /// analysis is exhaustive.
    pub exact: bool,
    pub per_ref: Vec<RefEstimate>,
    pub solver: SolverStats,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub levels: Option<Vec<LevelEstimate>>,
}

impl MissEstimate {
    /// Overall miss ratio estimate (all references weighted equally — each
    /// executes once per iteration).
    pub fn miss_ratio(&self) -> f64 {
        mean_over(&self.per_ref, |r| r.p_cold + r.p_repl)
    }

    /// Overall replacement miss ratio estimate — the paper's metric.
    pub fn replacement_ratio(&self) -> f64 {
        mean_over(&self.per_ref, |r| r.p_repl)
    }

    /// Overall cold (compulsory) miss ratio estimate.
    pub fn cold_ratio(&self) -> f64 {
        mean_over(&self.per_ref, |r| r.p_cold)
    }

    /// Estimated absolute number of replacement misses — the GA's
    /// objective function value (`f` of paper §3.1) for the legacy
    /// single-level model. Always the innermost level's count; for the
    /// hierarchy-aware objective use [`Self::weighted_cost`].
    pub fn replacement_misses(&self) -> f64 {
        replacement_misses_of(&self.per_ref, self.volume)
    }

    /// The latency-weighted objective: Σ per level of estimated
    /// replacement misses × miss latency. Without a per-level breakdown
    /// (legacy single-level model) this is exactly
    /// [`Self::replacement_misses`] — bit-for-bit, which is what keeps
    /// hierarchy-aware searches byte-identical on legacy requests.
    pub fn weighted_cost(&self) -> f64 {
        match &self.levels {
            None => self.replacement_misses(),
            Some(levels) => {
                levels.iter().map(|l| l.replacement_misses(self.volume) * l.miss_latency).sum()
            }
        }
    }

    /// Conservative CI half-width for the overall replacement ratio
    /// (average of the per-reference half-widths; references are analysed
    /// at the same sampled iterations, so this ignores cross-reference
    /// correlation — documented in DESIGN.md).
    pub fn replacement_ci_half_width(&self) -> f64 {
        if self.per_ref.is_empty() {
            return 0.0;
        }
        self.per_ref.iter().map(|r| r.half_width).sum::<f64>() / self.per_ref.len() as f64
    }
}

/// Sampled estimate that may stop early against an incumbent (early-
/// abandon sequential sampling — the `SamplingConfig::early_abandon`
/// knob). `incumbent_misses` is the best replacement-miss count seen so
/// far by the surrounding search.
///
/// The sampled point set is the same as [`sampled`]'s for the same seed,
/// but points are classified *sequentially in sorted rank order*, and
/// every `check_every` points the candidate's CI lower bound on
/// replacement misses is compared against the incumbent's CI upper bound:
/// once the candidate provably (at the configured confidence) cannot beat
/// the incumbent, the remaining points are abandoned and the partial
/// estimate is returned (`n_samples` records how many points were
/// actually classified). Deterministic: the rank sequence and check
/// schedule depend only on the seed and configuration.
///
/// With the knob disabled or no incumbent available this is exactly
/// [`sampled`].
pub fn sampled_vs_incumbent(
    an: &NestAnalysis,
    cfg: &SamplingConfig,
    seed: u64,
    incumbent_misses: Option<f64>,
) -> MissEstimate {
    let (Some(abandon), Some(incumbent)) = (cfg.early_abandon, incumbent_misses) else {
        return sampled(an, cfg, seed);
    };
    let volume = an.space.shape_volume();
    let want = cfg.sample_size();
    if volume <= want || !incumbent.is_finite() {
        return sampled(an, cfg, seed);
    }
    let n_refs = an.addr.len();
    if n_refs == 0 {
        return sampled(an, cfg, seed);
    }
    // Same rank set as `sampled`, in sorted order so the sequential
    // prefix is independent of the draw-set's iteration order.
    let mut ranks = draw_space_ranks(&an.space, want, seed);
    ranks.sort_unstable();
    // The incumbent's CI upper bound, reconstructed from its point
    // estimate at the full sample size (misses → ratio → +half-width).
    let scale = (volume as f64) * n_refs as f64;
    let r_inc = (incumbent / scale).clamp(0.0, 1.0);
    let upper = (r_inc + cfg.ci_half_width(r_inc, want)) * scale;
    let check_every = abandon.check_every.max(1);
    let mut engine = an.engine();
    let mut per_ref = vec![Counts::default(); n_refs];
    let mut repl_total = 0u64;
    let mut done = 0u64;
    for &rank in &ranks {
        let v = an.space.point_at_global_rank(rank);
        for r in 0..n_refs {
            let c = classify_point(an, &mut engine, &v, r);
            per_ref[r].add(c);
            if c == Classification::Replacement {
                repl_total += 1;
            }
        }
        done += 1;
        if done.is_multiple_of(check_every) && done < want {
            let p = repl_total as f64 / (done * n_refs as u64) as f64;
            let lower = (p - cfg.ci_half_width(p, done)) * scale;
            if lower > upper {
                break; // provably cannot beat the incumbent
            }
        }
    }
    let per_ref = per_ref
        .iter()
        .map(|c| {
            let p_cold = c.cold as f64 / done as f64;
            let p_repl = c.replacement as f64 / done as f64;
            RefEstimate { p_cold, p_repl, half_width: cfg.ci_half_width(p_cold + p_repl, done) }
        })
        .collect();
    MissEstimate {
        n_samples: done,
        volume,
        exact: false,
        per_ref,
        solver: an.stats_of(&engine),
        levels: None,
    }
}

/// Draw `want` distinct point ranks in `[0, volume)` — the shared sample
/// set of [`sampled`] and [`sampled_vs_incumbent`] for a given seed.
fn draw_ranks(volume: u64, want: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ranks = std::collections::HashSet::with_capacity(want as usize);
    while (ranks.len() as u64) < want {
        ranks.insert(rng.gen_range(0..volume));
    }
    ranks.into_iter().collect()
}

/// Rejection-sampling counterpart of [`draw_ranks`] for triangular
/// spaces: draw distinct *hull* ranks, keep the ones whose point lies in
/// the shape, until `want` are accepted. Callers guarantee the shape
/// holds more than `want` points (otherwise the exhaustive path runs), so
/// the loop terminates. Deterministic for a fixed seed.
fn draw_shape_ranks(space: &cme_loopnest::ExecSpace, want: u64, seed: u64) -> Vec<u64> {
    let volume = space.volume();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tried = std::collections::HashSet::with_capacity(2 * want as usize);
    let mut accepted = Vec::with_capacity(want as usize);
    while (accepted.len() as u64) < want {
        let r = rng.gen_range(0..volume);
        if tried.insert(r) && space.contains_v(&space.point_at_global_rank(r)) {
            accepted.push(r);
        }
    }
    accepted
}

/// The sample-rank set for a (possibly triangular) space: plain distinct
/// ranks on rectangular spaces (byte-identical to the historical
/// behaviour), rejection sampling against the shape otherwise.
fn draw_space_ranks(space: &cme_loopnest::ExecSpace, want: u64, seed: u64) -> Vec<u64> {
    if space.shape.is_some() {
        draw_shape_ranks(space, want, seed)
    } else {
        draw_ranks(space.volume(), want, seed)
    }
}

/// Exhaustively classify every (point, reference) pair.
pub fn exhaustive(an: &NestAnalysis) -> MissReport {
    let n_refs = an.addr.len();
    let mut per_ref = vec![Counts::default(); n_refs];
    let mut engine = an.engine();
    an.space.for_each_point(|v| {
        for r in 0..n_refs {
            per_ref[r].add(classify_point(an, &mut engine, v, r));
        }
    });
    MissReport { per_ref, solver: an.stats_of(&engine), levels: None }
}

/// Sampled estimate with the given configuration and RNG seed.
///
/// Sampling is simple random sampling *without replacement* over the
/// global point ranks; classification of the sampled points is
/// Rayon-parallel (deterministic: the sample set depends only on the
/// seed, and counts are integer sums).
pub fn sampled(an: &NestAnalysis, cfg: &SamplingConfig, seed: u64) -> MissEstimate {
    // Exact iteration count: hull volume for rectangular spaces, the
    // triangular shape's count otherwise (the hull rank bijection is
    // still what the sampler draws from — see `draw_space_ranks`).
    let volume = an.space.shape_volume();
    let want = cfg.sample_size();
    if volume <= want {
        let rep = exhaustive(an);
        let per_ref = rep
            .per_ref
            .iter()
            .map(|c| RefEstimate {
                p_cold: if c.points == 0 { 0.0 } else { c.cold as f64 / c.points as f64 },
                p_repl: if c.points == 0 { 0.0 } else { c.replacement as f64 / c.points as f64 },
                half_width: 0.0,
            })
            .collect();
        return MissEstimate {
            n_samples: volume,
            volume,
            exact: true,
            per_ref,
            solver: rep.solver,
            levels: None,
        };
    }
    let ranks = draw_space_ranks(&an.space, want, seed);
    let n_refs = an.addr.len();
    let (counts, solver) = ranks
        .par_chunks(16.max(ranks.len() / 64))
        .map(|chunk| {
            let mut engine = an.engine();
            let mut per_ref = vec![Counts::default(); n_refs];
            for &rank in chunk {
                let v = an.space.point_at_global_rank(rank);
                for r in 0..n_refs {
                    per_ref[r].add(classify_point(an, &mut engine, &v, r));
                }
            }
            (per_ref, an.stats_of(&engine))
        })
        .reduce(
            || (vec![Counts::default(); n_refs], SolverStats::default()),
            |(mut a, mut sa), (b, sb)| {
                for (x, y) in a.iter_mut().zip(&b) {
                    x.merge(y);
                }
                sa.queries += sb.queries;
                sa.fallbacks += sb.fallbacks;
                sa.nodes += sb.nodes;
                sa.assoc_fallbacks += sb.assoc_fallbacks;
                (a, sa)
            },
        );
    let n = want;
    let per_ref = counts
        .iter()
        .map(|c| {
            let p_cold = c.cold as f64 / n as f64;
            let p_repl = c.replacement as f64 / n as f64;
            RefEstimate { p_cold, p_repl, half_width: cfg.ci_half_width(p_cold + p_repl, n) }
        })
        .collect();
    MissEstimate { n_samples: n, volume, exact: false, per_ref, solver, levels: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CmeModel;
    use crate::CacheSpec;
    use cme_loopnest::builder::{sub, NestBuilder};
    use cme_loopnest::MemoryLayout;

    fn stream_nest(n: i64) -> (cme_loopnest::LoopNest, MemoryLayout) {
        let mut nb = NestBuilder::new("stream");
        let i = nb.add_loop("i", 1, n);
        let x = nb.array("x", &[n]);
        nb.read(x, &[sub(i)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        (nest, layout)
    }

    #[test]
    fn exhaustive_stream_counts() {
        let (nest, layout) = stream_nest(64);
        let model = CmeModel::new(CacheSpec::direct_mapped(256, 32));
        let an = model.analyze(&nest, &layout, None);
        let rep = exhaustive(&an);
        assert_eq!(rep.per_ref[0].points, 64);
        assert_eq!(rep.per_ref[0].cold, 8);
        assert_eq!(rep.per_ref[0].replacement, 0);
        assert!((rep.miss_ratio() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn small_space_estimate_is_exact() {
        let (nest, layout) = stream_nest(64);
        let model = CmeModel::new(CacheSpec::direct_mapped(256, 32));
        let an = model.analyze(&nest, &layout, None);
        let est = sampled(&an, &SamplingConfig::paper(), 1);
        assert!(est.exact);
        assert!((est.miss_ratio() - 0.125).abs() < 1e-12);
        assert_eq!(est.n_samples, 64);
    }

    #[test]
    fn sampled_estimate_close_to_exhaustive() {
        let (nest, layout) = stream_nest(4096);
        let model = CmeModel::new(CacheSpec::direct_mapped(256, 32));
        let an = model.analyze(&nest, &layout, None);
        let exact = exhaustive(&an).miss_ratio();
        let est = sampled(&an, &SamplingConfig::paper(), 42);
        assert!(!est.exact);
        assert_eq!(est.n_samples, 164);
        assert!(
            (est.miss_ratio() - exact).abs() < 0.1,
            "estimate {} vs exact {exact}",
            est.miss_ratio()
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (nest, layout) = stream_nest(4096);
        let model = CmeModel::new(CacheSpec::direct_mapped(256, 32));
        let an = model.analyze(&nest, &layout, None);
        let a = sampled(&an, &SamplingConfig::paper(), 7);
        let b = sampled(&an, &SamplingConfig::paper(), 7);
        assert_eq!(a.miss_ratio(), b.miss_ratio());
        let c = sampled(&an, &SamplingConfig::paper(), 8);
        // Different seed may (and here does) sample different points;
        // ratios may coincide for a stream, so just check determinism ran.
        assert_eq!(c.n_samples, 164);
    }
}
