//! The lattice miss estimator: closed-form counting instead of per-point
//! sampling.
//!
//! Where the sampled backend (§2.3) classifies a few hundred random
//! iteration points per candidate, this backend classifies whole
//! *populations* at once, in the spirit of the cache-associativity-lattice
//! characterisation of conflict misses (Adjiashvili & Haus — see
//! PAPERS.md): the iteration space is carved into sets of points that
//! provably share a classification, and each set is counted in closed
//! form. Per reference:
//!
//! 1. **Reuse geometry (exact).** The recency-ordered reuse candidates
//!    (`crate::reuse`) are walked most-recent first, maintaining the set
//!    of still-unclaimed points as a disjoint box list. Candidate `r`
//!    claims `remaining ∩ (space + r)` — every claimed point provably has
//!    that candidate as its most recent same-line source. Points no
//!    candidate claims have no in-space source: **cold**, exactly.
//! 2. **Line alignment (exact).** A spatial candidate only reuses the
//!    lines whose intra-line offset keeps source and current access on
//!    one line: an interval condition on `addr(v) mod line`. The offset
//!    axis is partitioned into alignment classes, and each class's
//!    population inside a box is counted exactly by the residue-histogram
//!    convolution of [`cme_polyhedra::modcount`] — never by enumeration.
//! 3. **Interference (stratified).** Whether a claimed population's reuse
//!    survives in cache is decided by the same exact interference solver
//!    the classifier uses ([`crate::interference`]), evaluated once per
//!    homogeneity stratum instead of once per point: claimed boxes are
//!    split until their address span is below the cache way size (the
//!    period of the set-mapping), then one solver verdict classifies the
//!    whole stratum as hit or replacement.
//!
//! Steps 1–2 are exact lattice-point counting; step 3 trades per-point
//! precision for a per-candidate cost that is *independent of the
//! iteration count* — the differential suite (`tests/lattice_vs_sim.rs`)
//! pins its accuracy against the exact cache simulator. The result
//! carries `half_width = 0`: there is no sampling noise to bound, and
//! repeated runs are bit-identical.

use crate::engine::EvalEngine;
use crate::estimate::{MissEstimate, RefEstimate};
use crate::estimator::Estimator;
use crate::interference::InterferenceEngine;
use crate::model::NestAnalysis;
use crate::reuse::ReuseCandidate;
use cme_loopnest::{MemoryLayout, TileSizes};
use cme_polyhedra::modcount::residue_counts;
use cme_polyhedra::{AffineForm, IntBox, Interval};
use std::collections::HashMap;
use std::rc::Rc;

/// Interference solver verdicts per reference per level, by space volume:
/// small spaces afford fine strata (differential accuracy), huge search
/// spaces keep the flat floor so one candidate evaluation stays well
/// under the sampled backend's per-candidate cost.
fn probe_budget(volume: u64) -> usize {
    if volume <= 1 << 16 {
        768
    } else if volume <= 1 << 24 {
        256
    } else {
        32
    }
}

/// Reuse-candidate depth per reference, by space volume. Small spaces use
/// the full shared lift (differential accuracy); large spaces lift only
/// the most-recent prefix via bounded selection — the sampled backend
/// never pays the full lift on its hot path, so the lattice must not
/// either. Points whose only reuse is deeper than the cap count as cold
/// (conservative, like every other truncation in the model).
fn candidate_cap(volume: u64) -> Option<usize> {
    if volume <= 1 << 16 {
        None
    } else if volume <= 1 << 24 {
        Some(48)
    } else {
        Some(16)
    }
}

/// Above this volume, offsets a partially-aligned claiming candidate
/// leaves behind are counted cold instead of falling through to older
/// candidates. For forward-walking spatial chains (the common shape) the
/// leftover offsets are the genuine per-line cold fraction, and any deep
/// cross-loop reuse they might still have is interference-blocked at this
/// scale anyway — while keeping them live fragments the ladder badly.
const DROP_PASS_VOLUME: u64 = 1 << 24;

/// Leaves one claimed box may split into while probe budget remains.
const MAX_LEAVES_PER_CELL: usize = 32;

/// Disjoint-box-list cap: beyond this the remaining population is
/// conservatively classified cold (misses can only be overestimated —
/// the same direction as every other approximation in the CME model).
const MAX_REMAINING_BOXES: usize = 2048;

/// The lattice scoring backend over a shared [`EvalEngine`].
pub struct LatticeEstimator<'e> {
    engine: &'e EvalEngine,
}

impl<'e> LatticeEstimator<'e> {
    pub fn new(engine: &'e EvalEngine) -> Self {
        LatticeEstimator { engine }
    }

    /// Estimate under an optional layout/tiling — deterministic, no
    /// sampling seed. The hierarchy decoration mirrors
    /// [`EvalEngine::estimate_canonical`]: every level is re-counted
    /// against its own geometry.
    pub fn estimate(
        &self,
        layout: Option<&MemoryLayout>,
        tiles: Option<&TileSizes>,
    ) -> MissEstimate {
        let effective = tiles.filter(|t| !t.is_trivial(self.engine.nest()));
        let an = match layout {
            None => self.engine.analysis(effective),
            Some(l) => self.engine.analysis_for_layout(l, effective),
        };
        let l1 = estimate_analysis(&an);
        self.engine.decorate(l1, |k| {
            let level_an = match layout {
                None => self.engine.outer_analysis(k, effective),
                Some(l) => self.engine.outer_analysis_for_layout(k, l, effective),
            };
            estimate_analysis(&level_an)
        })
    }
}

impl Estimator for LatticeEstimator<'_> {
    fn name(&self) -> &'static str {
        "lattice"
    }

    fn engine(&self) -> &EvalEngine {
        self.engine
    }

    fn estimate_canonical(&self, tiles: Option<&TileSizes>) -> MissEstimate {
        self.estimate(None, tiles)
    }

    fn estimate_transformed(
        &self,
        layout: Option<&MemoryLayout>,
        tiles: Option<&TileSizes>,
        _sample_seed: u64,
        _incumbent: Option<f64>,
    ) -> MissEstimate {
        self.estimate(layout, tiles)
    }

    fn cost(&self, values: &[i64], _incumbent: Option<f64>) -> f64 {
        let tiles = TileSizes(values.to_vec());
        let effective = (!tiles.is_trivial(self.engine.nest())).then_some(&tiles);
        self.estimate(None, effective).weighted_cost()
    }
}

/// Single-level lattice estimate of one assembled analysis.
pub(crate) fn estimate_analysis(an: &NestAnalysis) -> MissEstimate {
    let volume = an.space.volume();
    let mut iface = an.engine();
    let capped;
    let cands: &[Vec<ReuseCandidate>] = match candidate_cap(volume) {
        None => an.candidates(),
        Some(cap) => {
            capped = crate::reuse::lift_base_capped(&an.base, &an.space, cap);
            &capped
        }
    };
    let per_ref = (0..an.addr.len())
        .map(|a| {
            if volume == 0 {
                return RefEstimate { p_cold: 0.0, p_repl: 0.0, half_width: 0.0 };
            }
            let (cold, repl) = classify_ref(an, &mut iface, a, &cands[a]);
            RefEstimate {
                p_cold: cold as f64 / volume as f64,
                p_repl: repl as f64 / volume as f64,
                half_width: 0.0,
            }
        })
        .collect();
    MissEstimate {
        n_samples: volume,
        volume,
        exact: true,
        per_ref,
        solver: an.stats_of(&iface),
        levels: None,
    }
}

/// A reuse candidate with its alignment class: the interval of intra-line
/// offsets `addr(v) mod line` for which source and current access share a
/// line.
struct AlignedCand {
    rv: Vec<i64>,
    src: usize,
    align: Interval,
}

/// Exact (cold, replacement) population counts for one reference.
fn classify_ref(
    an: &NestAnalysis,
    iface: &mut InterferenceEngine,
    a: usize,
    ref_cands: &[ReuseCandidate],
) -> (u64, u64) {
    let line = an.cache.line;
    let addr_a = &an.addr[a];
    let cands: Vec<AlignedCand> = ref_cands
        .iter()
        .filter_map(|c| {
            // addr_src(v - rv) = addr_a(v) + κ; same line ⇔ the intra-line
            // offset u = addr_a(v) mod line satisfies 0 ≤ u + κ < line.
            let kappa = an.addr[c.src_ref].c0 - addr_a.c0 - addr_a.displacement(&c.rv);
            let align = Interval::new((-kappa).max(0), (line - 1 - kappa).min(line - 1));
            (!align.is_empty()).then(|| AlignedCand { rv: c.rv.clone(), src: c.src_ref, align })
        })
        .collect();

    // Homogeneity target for interference strata: the set-mapping period
    // would be the way size, but verdicts genuinely change at finer
    // granularity; go as fine as the budget allows, never below a line.
    let span_target = (an.cache.size / an.cache.assoc / 16).max(line);
    let budget = probe_budget(an.space.volume());
    let drop_pass = an.space.volume() > DROP_PASS_VOLUME;
    // Shifted source regions per candidate.
    let shifted: Vec<Vec<IntBox>> = cands
        .iter()
        .map(|c| {
            an.space.regions.iter().map(|r| r.vbox.shift(&c.rv)).filter(|b| !b.is_empty()).collect()
        })
        .collect();
    let mut cold = 0u64;
    let mut repl = 0u64;
    // Interference verdicts are per (candidate, stratum box) — offset
    // classes share them, so mask splits never re-query the solver.
    let mut verdicts: HashMap<(usize, IntBox), bool> = HashMap::new();
    let mut probes = 0usize;
    // One ladder pass over (box × offset-mask) items: a point with
    // intra-line offset u is claimed by the first (most recent) candidate
    // whose shifted region contains it AND whose alignment interval
    // contains u. Boxes split geometrically; masks split lazily, only
    // when a partially-aligned candidate actually claims a cell — the
    // common full-line (temporal) candidates never fork a mask.
    let full_mask: Rc<Vec<bool>> = Rc::new(vec![true; line as usize]);
    let mut items: Vec<(IntBox, Rc<Vec<bool>>)> =
        an.space.regions.iter().map(|r| (r.vbox.clone(), full_mask.clone())).collect();
    'cands: for (k, c) in cands.iter().enumerate() {
        if items.is_empty() {
            break;
        }
        for sh in &shifted[k] {
            // Points whose source iteration v - rv falls in the shifted
            // region; cheap reject before any box churn.
            if !items.iter().any(|(bx, _)| bx.overlaps(sh)) {
                continue;
            }
            let mut next = Vec::with_capacity(items.len());
            for (bx, mask) in &items {
                if !bx.overlaps(sh) {
                    next.push((bx.clone(), mask.clone()));
                    continue;
                }
                let cell = bx.intersect(sh);
                next.extend(bx.subtract(sh).into_iter().map(|p| (p, mask.clone())));
                if let Some(claimed) = mask_and(mask, &c.align) {
                    repl += cell_replacements(
                        an,
                        iface,
                        a,
                        k,
                        c,
                        &cell,
                        &claimed,
                        span_target,
                        budget,
                        &mut verdicts,
                        &mut probes,
                    );
                }
                // Offsets outside the alignment interval fall through to
                // less recent candidates (or straight to cold at large
                // volume — see DROP_PASS_VOLUME).
                if let Some(pass) = mask_minus(mask, &c.align) {
                    if drop_pass {
                        cold += count_allowed(addr_a, &cell, line, &pass);
                    } else {
                        next.push((cell, pass));
                    }
                }
            }
            items = next;
            if items.len() > MAX_REMAINING_BOXES {
                // Geometry got too fragmented: drop the rest of the
                // candidate walk and call the leftovers cold.
                break 'cands;
            }
        }
    }
    for (bx, mask) in &items {
        cold += count_allowed(addr_a, bx, line, mask);
    }
    (cold, repl)
}

/// `mask ∩ align`, or `None` when empty. A full-cover interval returns a
/// shared handle (no allocation).
fn mask_and(mask: &Rc<Vec<bool>>, align: &Interval) -> Option<Rc<Vec<bool>>> {
    let line = mask.len() as i64;
    if align.lo <= 0 && align.hi >= line - 1 {
        return Some(mask.clone());
    }
    let out: Vec<bool> = (0..line).map(|u| mask[u as usize] && align.contains(u)).collect();
    out.iter().any(|&ok| ok).then(|| Rc::new(out))
}

/// `mask \ align`, or `None` when empty.
fn mask_minus(mask: &Rc<Vec<bool>>, align: &Interval) -> Option<Rc<Vec<bool>>> {
    let line = mask.len() as i64;
    if align.lo <= 0 && align.hi >= line - 1 {
        return None;
    }
    let out: Vec<bool> = (0..line).map(|u| mask[u as usize] && !align.contains(u)).collect();
    out.iter().any(|&ok| ok).then(|| Rc::new(out))
}

/// Population of a box restricted to the allowed intra-line offsets.
fn count_allowed(addr: &AffineForm, bx: &IntBox, line: i64, allowed: &[bool]) -> u64 {
    if allowed.iter().all(|&ok| ok) {
        return bx.volume();
    }
    residue_counts(addr, bx, line).iter().zip(allowed).filter_map(|(&n, &ok)| ok.then_some(n)).sum()
}

/// Replacement-miss population of one claimed cell: split into strata of
/// address span below the way size, one interference verdict per stratum.
#[allow(clippy::too_many_arguments)]
fn cell_replacements(
    an: &NestAnalysis,
    iface: &mut InterferenceEngine,
    a: usize,
    cand_idx: usize,
    cand: &AlignedCand,
    cell: &IntBox,
    allowed: &[bool],
    span_target: i64,
    budget: usize,
    verdicts: &mut HashMap<(usize, IntBox), bool>,
    probes: &mut usize,
) -> u64 {
    let addr_a = &an.addr[a];
    // Apportion the remaining budget: later cells still get strata, and
    // an exhausted budget degrades to one verdict per cell.
    let max_leaves =
        if *probes >= budget { 1 } else { ((budget - *probes) / 4).clamp(1, MAX_LEAVES_PER_CELL) };
    let mut repl = 0;
    for stratum in probe_strata(cell, addr_a, span_target, max_leaves) {
        let n = count_allowed(addr_a, &stratum, an.cache.line, allowed);
        if n == 0 {
            continue;
        }
        let blocked = match verdicts.get(&(cand_idx, stratum.clone())) {
            Some(&b) => b,
            None => {
                let v_cur = midpoint(&stratum);
                let v_src: Vec<i64> = v_cur.iter().zip(&cand.rv).map(|(v, r)| v - r).collect();
                let l0 = an.cache.line_of(addr_a.eval(&v_cur));
                let b = iface.blocks_reuse(&an.space, &an.addr, &v_src, cand.src, &v_cur, a, l0);
                *probes += 1;
                verdicts.insert((cand_idx, stratum.clone()), b);
                b
            }
        };
        if blocked {
            repl += n;
        }
    }
    repl
}

/// Split a box into at most `max_leaves` sub-boxes, halving the dimension
/// contributing most address span until every leaf's span is below the
/// homogeneity target (the scale on which interference verdicts can
/// change).
fn probe_strata(
    bx: &IntBox,
    addr: &AffineForm,
    span_target: i64,
    max_leaves: usize,
) -> Vec<IntBox> {
    let mut out = vec![bx.clone()];
    while out.len() < max_leaves {
        // Widest leaf by address span, if still above the homogeneity scale.
        let split = out
            .iter()
            .enumerate()
            .map(|(i, b)| (i, addr.range_over(b).len()))
            .max_by_key(|&(_, span)| span)
            .filter(|&(_, span)| span > span_target as u64);
        let Some((i, _)) = split else { break };
        let b = &out[i];
        let Some(dim) = widest_dim(b, addr) else { break };
        let iv = b.dims[dim];
        let mid = iv.lo + (iv.hi - iv.lo) / 2;
        let mut lo_half = b.clone();
        lo_half.dims[dim] = Interval::new(iv.lo, mid);
        let mut hi_half = b.clone();
        hi_half.dims[dim] = Interval::new(mid + 1, iv.hi);
        out[i] = lo_half;
        out.push(hi_half);
    }
    out
}

/// The splittable dimension contributing the most address span.
fn widest_dim(bx: &IntBox, addr: &AffineForm) -> Option<usize> {
    bx.dims
        .iter()
        .zip(&addr.coeffs)
        .enumerate()
        .filter(|(_, (iv, _))| iv.len() > 1)
        .max_by_key(|(_, (iv, &c))| c.unsigned_abs().saturating_mul(iv.len() - 1))
        .map(|(t, _)| t)
}

/// The component-wise middle point of a box.
fn midpoint(bx: &IntBox) -> Vec<i64> {
    bx.dims.iter().map(|iv| iv.lo + (iv.hi - iv.lo) / 2).collect()
}
