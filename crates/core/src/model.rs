//! Top-level CME analysis API.

use crate::classify::{classify_point, Classification};
use crate::estimate::{exhaustive, sampled, MissEstimate, MissReport, SolverStats};
use crate::interference::InterferenceEngine;
use crate::lexmax::SuffixRanges;
use crate::reuse::{candidates_with_line, ReuseCandidate};
use crate::sampling::SamplingConfig;
use crate::CacheSpec;
use cme_loopnest::{ExecSpace, LoopNest, MemoryLayout, TileSizes};
use cme_polyhedra::AffineForm;

/// The Cache Miss Equations model: cache parameters + solver settings.
///
/// ```
/// use cme_core::{CacheSpec, CmeModel};
/// use cme_loopnest::builder::{sub, NestBuilder};
/// use cme_loopnest::MemoryLayout;
///
/// // do i = 1,64 : read x(i) — REAL*4, 32-byte lines: 1 cold miss per
/// // 8 elements, nothing else.
/// let mut nb = NestBuilder::new("stream");
/// let i = nb.add_loop("i", 1, 64);
/// let x = nb.array("x", &[64]);
/// nb.read(x, &[sub(i)]);
/// let nest = nb.finish().unwrap();
/// let layout = MemoryLayout::contiguous(&nest);
///
/// let model = CmeModel::new(CacheSpec::paper_8k());
/// let report = model.analyze(&nest, &layout, None).exhaustive();
/// assert_eq!(report.per_ref[0].cold, 8);
/// assert_eq!(report.per_ref[0].replacement, 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CmeModel {
    pub cache: CacheSpec,
    /// Branch-node budget per interval-hit query (fallbacks are counted
    /// and conservative).
    pub solver_nodes: u64,
}

impl CmeModel {
    pub fn new(cache: CacheSpec) -> Self {
        CmeModel { cache, solver_nodes: 20_000 }
    }

    /// One-shot sampled estimate of a (possibly tiled) nest under a
    /// layout. The sampling seed is derived deterministically from `seed`
    /// and the tile vector, so identical inputs give bit-identical
    /// estimates — the contract the `cme-api` layer builds on. A trivial
    /// tiling (every tile spanning its loop) analyses the original nest.
    pub fn estimate_nest(
        &self,
        nest: &LoopNest,
        layout: &MemoryLayout,
        tiles: Option<&TileSizes>,
        sampling: &crate::SamplingConfig,
        seed: u64,
    ) -> crate::MissEstimate {
        let effective = tiles.filter(|t| !t.is_trivial(nest));
        let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
        if let Some(t) = effective {
            for &v in &t.0 {
                h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(v as u64);
            }
        }
        self.analyze(nest, layout, effective).estimate(sampling, h)
    }

    /// Build the analysis for a nest under a layout, optionally tiled.
    /// This precomputes the execution space (with its convex regions), the
    /// lifted address forms, the uniform source groups with their suffix
    /// ranges (for the most-recent-source search) and the explicit reuse
    /// candidates (for the equation objects) — the parameterised equation
    /// system of §3.1.
    pub fn analyze(
        &self,
        nest: &LoopNest,
        layout: &MemoryLayout,
        tiles: Option<&TileSizes>,
    ) -> NestAnalysis {
        let space = match tiles {
            None => ExecSpace::untiled(nest),
            Some(t) => ExecSpace::tiled(nest, t),
        };
        let addr: Vec<AffineForm> =
            layout.address_forms(nest).iter().map(|f| space.lift_form(f)).collect();
        let candidates = candidates_with_line(nest, layout, &space, self.cache.line);
        let relaxed = space.relaxed_dims();
        let suffix = addr.iter().map(|f| SuffixRanges::of(f, &relaxed)).collect();
        let uniform_sources = (0..nest.refs.len())
            .map(|a| {
                (0..nest.refs.len())
                    .filter(|&b| {
                        nest.refs[a].array == nest.refs[b].array && addr[a].coeffs == addr[b].coeffs
                    })
                    .collect()
            })
            .collect();
        NestAnalysis {
            cache: self.cache,
            solver_nodes: self.solver_nodes,
            space,
            addr,
            candidates,
            uniform_sources,
            suffix,
        }
    }
}

/// A nest prepared for classification/estimation.
#[derive(Debug, Clone)]
pub struct NestAnalysis {
    pub cache: CacheSpec,
    pub solver_nodes: u64,
    pub space: ExecSpace,
    /// Per-reference byte-address forms over analysis coordinates.
    pub addr: Vec<AffineForm>,
    /// Per-reference explicit reuse candidates (equation objects; the fast
    /// classifier uses the lexmax search instead).
    pub candidates: Vec<Vec<ReuseCandidate>>,
    /// Per-reference list of uniformly generated source references
    /// (same array, equal address coefficients — includes the reference
    /// itself).
    pub uniform_sources: Vec<Vec<usize>>,
    /// Per-reference relaxed suffix ranges of the address form.
    pub suffix: Vec<SuffixRanges>,
}

impl NestAnalysis {
    /// A fresh per-thread interference engine.
    pub fn engine(&self) -> InterferenceEngine {
        InterferenceEngine::new(self.cache, self.solver_nodes)
    }

    pub(crate) fn stats_of(&self, e: &InterferenceEngine) -> SolverStats {
        SolverStats {
            queries: e.budget.queries,
            fallbacks: e.budget.fallbacks,
            nodes: e.budget.nodes_used,
            assoc_fallbacks: e.assoc_fallbacks,
        }
    }

    /// Classify one (analysis point, reference) pair.
    pub fn classify(&self, v: &[i64], ref_idx: usize) -> Classification {
        let mut engine = self.engine();
        classify_point(self, &mut engine, v, ref_idx)
    }

    /// Exhaustive analysis of every point (small spaces / validation).
    pub fn exhaustive(&self) -> MissReport {
        exhaustive(self)
    }

    /// Sampled estimate (paper §2.3).
    pub fn estimate(&self, cfg: &SamplingConfig, seed: u64) -> MissEstimate {
        sampled(self, cfg, seed)
    }

    /// Convenience: sampled estimate with the paper's 164-point setup.
    pub fn estimate_paper(&self, seed: u64) -> MissEstimate {
        sampled(self, &SamplingConfig::paper(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::builder::{sub, NestBuilder};

    #[test]
    fn analyze_builds_consistent_dimensions() {
        let mut nb = NestBuilder::new("t2d");
        let i = nb.add_loop("i", 1, 12);
        let j = nb.add_loop("j", 1, 12);
        let a = nb.array("a", &[12, 12]);
        let b = nb.array("b", &[12, 12]);
        nb.read(b, &[sub(i), sub(j)]);
        nb.write(a, &[sub(j), sub(i)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        let model = CmeModel::new(CacheSpec::direct_mapped(128, 16));
        let untiled = model.analyze(&nest, &layout, None);
        assert_eq!(untiled.addr.len(), 2);
        assert_eq!(untiled.addr[0].n_vars(), 2);
        assert_eq!(untiled.uniform_sources[0], vec![0]);
        assert_eq!(untiled.uniform_sources[1], vec![1]);
        let tiled = model.analyze(&nest, &layout, Some(&TileSizes(vec![5, 5])));
        assert_eq!(tiled.addr[0].n_vars(), 4);
        assert_eq!(tiled.space.volume(), 144);
        assert_eq!(tiled.space.regions.len(), 4);
        assert_eq!(tiled.suffix[0].lo.len(), 5);
    }
}
