//! Top-level CME analysis API.

use crate::classify::{classify_point, Classification};
use crate::estimate::{exhaustive, sampled, MissEstimate, MissReport, SolverStats};
use crate::interference::InterferenceEngine;
use crate::lexmax::SuffixRanges;
use crate::reuse::ReuseCandidate;
use crate::sampling::SamplingConfig;
use crate::CacheSpec;
use cme_loopnest::{ExecSpace, LoopNest, MemoryLayout, TileSizes};
use cme_polyhedra::AffineForm;

/// The Cache Miss Equations model: cache parameters + solver settings.
///
/// ```
/// use cme_core::{CacheSpec, CmeModel};
/// use cme_loopnest::builder::{sub, NestBuilder};
/// use cme_loopnest::MemoryLayout;
///
/// // do i = 1,64 : read x(i) — REAL*4, 32-byte lines: 1 cold miss per
/// // 8 elements, nothing else.
/// let mut nb = NestBuilder::new("stream");
/// let i = nb.add_loop("i", 1, 64);
/// let x = nb.array("x", &[64]);
/// nb.read(x, &[sub(i)]);
/// let nest = nb.finish().unwrap();
/// let layout = MemoryLayout::contiguous(&nest);
///
/// let model = CmeModel::new(CacheSpec::paper_8k());
/// let report = model.analyze(&nest, &layout, None).exhaustive();
/// assert_eq!(report.per_ref[0].cold, 8);
/// assert_eq!(report.per_ref[0].replacement, 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CmeModel {
    pub cache: CacheSpec,
    /// Branch-node budget per interval-hit query (fallbacks are counted
    /// and conservative).
    pub solver_nodes: u64,
}

impl CmeModel {
    pub fn new(cache: CacheSpec) -> Self {
        CmeModel { cache, solver_nodes: 20_000 }
    }

    /// One-shot sampled estimate of a (possibly tiled) nest under a
    /// layout. The sampling seed is derived deterministically from `seed`
    /// and the tile vector, so identical inputs give bit-identical
    /// estimates — the contract the `cme-api` layer builds on. A trivial
    /// tiling (every tile spanning its loop) analyses the original nest.
    pub fn estimate_nest(
        &self,
        nest: &LoopNest,
        layout: &MemoryLayout,
        tiles: Option<&TileSizes>,
        sampling: &crate::SamplingConfig,
        seed: u64,
    ) -> crate::MissEstimate {
        let effective = tiles.filter(|t| !t.is_trivial(nest));
        let mut h = seed ^ crate::engine::SEED_SPLIT;
        if let Some(t) = effective {
            h = crate::engine::fold_seed(h, &t.0);
        }
        self.analyze(nest, layout, effective).estimate(sampling, h)
    }

    /// Build the analysis for a nest under a layout, optionally tiled.
    /// This precomputes the execution space (with its convex regions), the
    /// lifted address forms, the uniform source groups with their suffix
    /// ranges (for the most-recent-source search) and the explicit reuse
    /// candidates (for the equation objects) — the parameterised equation
    /// system of §3.1.
    pub fn analyze(
        &self,
        nest: &LoopNest,
        layout: &MemoryLayout,
        tiles: Option<&TileSizes>,
    ) -> NestAnalysis {
        // Delegates to the evaluation engine's assembly step with a
        // freshly built candidate base — the engine's cached path and
        // this from-scratch path share one implementation, so they
        // cannot drift apart.
        let base = crate::reuse::candidate_base(nest, layout, self.cache.line);
        crate::engine::assemble(*self, nest, layout, tiles, std::sync::Arc::new(base))
    }
}

/// A nest prepared for classification/estimation.
#[derive(Debug, Clone)]
pub struct NestAnalysis {
    pub cache: CacheSpec,
    pub solver_nodes: u64,
    pub space: ExecSpace,
    /// Per-reference byte-address forms over analysis coordinates.
    pub addr: Vec<AffineForm>,
    /// Tile-independent candidate base (shared with the evaluation
    /// engine); lifted lazily into [`Self::candidates`].
    pub(crate) base: std::sync::Arc<crate::reuse::CandidateBase>,
    /// Lazily lifted explicit reuse candidates — only the equation-object
    /// path ([`crate::equations::CmeEquations`]) reads them; the fast
    /// classifier uses the lexmax search instead, so the search hot path
    /// never pays for the lift.
    pub(crate) lifted: std::sync::OnceLock<Vec<Vec<ReuseCandidate>>>,
    /// Per-reference list of uniformly generated source references
    /// (same array, equal address coefficients — includes the reference
    /// itself).
    pub uniform_sources: Vec<Vec<usize>>,
    /// Per-reference relaxed suffix ranges of the address form.
    pub suffix: Vec<SuffixRanges>,
}

impl NestAnalysis {
    /// Per-reference explicit reuse candidates (equation objects),
    /// recency-sorted — lifted from the candidate base on first use.
    pub fn candidates(&self) -> &[Vec<ReuseCandidate>] {
        self.lifted.get_or_init(|| crate::reuse::lift_base(&self.base, &self.space))
    }
    /// A fresh per-thread interference engine.
    pub fn engine(&self) -> InterferenceEngine {
        InterferenceEngine::new(self.cache, self.solver_nodes)
    }

    pub(crate) fn stats_of(&self, e: &InterferenceEngine) -> SolverStats {
        SolverStats {
            queries: e.budget.queries,
            fallbacks: e.budget.fallbacks,
            nodes: e.budget.nodes_used,
            assoc_fallbacks: e.assoc_fallbacks,
        }
    }

    /// Classify one (analysis point, reference) pair.
    pub fn classify(&self, v: &[i64], ref_idx: usize) -> Classification {
        let mut engine = self.engine();
        classify_point(self, &mut engine, v, ref_idx)
    }

    /// Exhaustive analysis of every point (small spaces / validation).
    pub fn exhaustive(&self) -> MissReport {
        exhaustive(self)
    }

    /// Sampled estimate (paper §2.3).
    pub fn estimate(&self, cfg: &SamplingConfig, seed: u64) -> MissEstimate {
        sampled(self, cfg, seed)
    }

    /// Convenience: sampled estimate with the paper's 164-point setup.
    pub fn estimate_paper(&self, seed: u64) -> MissEstimate {
        sampled(self, &SamplingConfig::paper(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::builder::{sub, NestBuilder};

    #[test]
    fn analyze_builds_consistent_dimensions() {
        let mut nb = NestBuilder::new("t2d");
        let i = nb.add_loop("i", 1, 12);
        let j = nb.add_loop("j", 1, 12);
        let a = nb.array("a", &[12, 12]);
        let b = nb.array("b", &[12, 12]);
        nb.read(b, &[sub(i), sub(j)]);
        nb.write(a, &[sub(j), sub(i)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        let model = CmeModel::new(CacheSpec::direct_mapped(128, 16));
        let untiled = model.analyze(&nest, &layout, None);
        assert_eq!(untiled.addr.len(), 2);
        assert_eq!(untiled.addr[0].n_vars(), 2);
        assert_eq!(untiled.uniform_sources[0], vec![0]);
        assert_eq!(untiled.uniform_sources[1], vec![1]);
        let tiled = model.analyze(&nest, &layout, Some(&TileSizes(vec![5, 5])));
        assert_eq!(tiled.addr[0].n_vars(), 4);
        assert_eq!(tiled.space.volume(), 144);
        assert_eq!(tiled.space.regions.len(), 4);
        assert_eq!(tiled.suffix[0].lo.len(), 5);
    }
}
