//! The estimator seam: one trait abstracting *nest + hierarchy +
//! transform → [`MissEstimate`]*.
//!
//! Every search in the suite scores candidate transforms through this
//! trait, so the scoring backend is a per-request choice rather than a
//! compile-time fact:
//!
//! * [`EvalEngine`] — the paper's sampled CME classifier (§2.3): random
//!   iteration points, per-point classification, confidence intervals.
//!   The default, and the backend all golden outputs are pinned to.
//! * [`crate::lattice::LatticeEstimator`] — closed-form lattice counting:
//!   exact reuse-population counts with no per-point sampling (see the
//!   module docs for the exact/approximate split).
//!
//! Both backends are deterministic for a fixed engine and transform; the
//! sampled backend additionally folds transform values into its sampling
//! seed (so distinct candidates sample distinct points), which exact
//! backends simply ignore.

use crate::engine::EvalEngine;
use crate::estimate::MissEstimate;
use cme_loopnest::{MemoryLayout, TileSizes};

/// A scoring backend: estimates miss behaviour of the engine's nest under
/// an optional layout/tiling transform.
pub trait Estimator: Sync {
    /// Stable backend identifier — the wire value of the request's
    /// `estimator` field (`"cme"`, `"lattice"`).
    fn name(&self) -> &'static str;

    /// The shared evaluation engine (nest, layout, hierarchy, per-kernel
    /// analysis) this estimator scores against.
    fn engine(&self) -> &EvalEngine;

    /// Canonical estimate of the base layout under an optional tiling —
    /// the published `before`/`after` numbers of an outcome.
    fn estimate_canonical(&self, tiles: Option<&TileSizes>) -> MissEstimate;

    /// Search-time estimate under an explicit layout and/or tiling.
    /// `sample_seed` is the sampling backend's per-candidate seed (exact
    /// backends ignore it); `incumbent` is a weighted-cost upper bound
    /// enabling early abandonment where the backend supports it.
    fn estimate_transformed(
        &self,
        layout: Option<&MemoryLayout>,
        tiles: Option<&TileSizes>,
        sample_seed: u64,
        incumbent: Option<f64>,
    ) -> MissEstimate;

    /// Scalar GA cost of raw tile chromosome values (trivial tilings fold
    /// to the untransformed nest).
    fn cost(&self, values: &[i64], incumbent: Option<f64>) -> f64;
}

/// References delegate, so `&EvalEngine` (or any borrowed backend) can be
/// boxed as a `dyn Estimator` without a wrapper type.
impl<T: Estimator + ?Sized> Estimator for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn engine(&self) -> &EvalEngine {
        (**self).engine()
    }

    fn estimate_canonical(&self, tiles: Option<&TileSizes>) -> MissEstimate {
        (**self).estimate_canonical(tiles)
    }

    fn estimate_transformed(
        &self,
        layout: Option<&MemoryLayout>,
        tiles: Option<&TileSizes>,
        sample_seed: u64,
        incumbent: Option<f64>,
    ) -> MissEstimate {
        (**self).estimate_transformed(layout, tiles, sample_seed, incumbent)
    }

    fn cost(&self, values: &[i64], incumbent: Option<f64>) -> f64 {
        (**self).cost(values, incumbent)
    }
}

/// Value-level backend selector — the engine-side counterpart of the wire
/// `estimator` field. Layers that hold an [`EvalEngine`] (the tile
/// optimiser, the API strategies) carry a kind and [`build`](Self::build)
/// the borrowing backend at search time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorKind {
    /// The sampled CME classifier ([`EvalEngine`] itself).
    #[default]
    Cme,
    /// Closed-form lattice counting
    /// ([`crate::lattice::LatticeEstimator`]).
    Lattice,
}

impl EstimatorKind {
    /// Build the backend over a shared engine.
    pub fn build<'e>(self, engine: &'e EvalEngine) -> Box<dyn Estimator + 'e> {
        match self {
            EstimatorKind::Cme => Box::new(engine),
            EstimatorKind::Lattice => Box::new(crate::lattice::LatticeEstimator::new(engine)),
        }
    }
}

/// The sampled CME classifier is the first (and default) backend: the
/// trait methods are exactly the engine's inherent entry points.
impl Estimator for EvalEngine {
    fn name(&self) -> &'static str {
        "cme"
    }

    fn engine(&self) -> &EvalEngine {
        self
    }

    fn estimate_canonical(&self, tiles: Option<&TileSizes>) -> MissEstimate {
        EvalEngine::estimate_canonical(self, tiles)
    }

    fn estimate_transformed(
        &self,
        layout: Option<&MemoryLayout>,
        tiles: Option<&TileSizes>,
        sample_seed: u64,
        incumbent: Option<f64>,
    ) -> MissEstimate {
        EvalEngine::estimate_seeded(self, layout, tiles, sample_seed, incumbent)
    }

    fn cost(&self, values: &[i64], incumbent: Option<f64>) -> f64 {
        EvalEngine::cost(self, values, incumbent)
    }
}
