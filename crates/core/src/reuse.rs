//! Candidate reuse-vector generation (paper §2.1; Wolf–Lam reuse).
//!
//! A reuse vector `r` says: the data touched by reference `A` at iteration
//! `v` may already be in cache because reference `B` (possibly `A` itself)
//! touched the *same memory line* at iteration `v − r`. Candidates are
//! generated per uniformly-generated reference pair in the **original**
//! iteration space:
//!
//! * **self/group temporal** — solutions of `c·r = δ` (`c` = shared affine
//!   address coefficients, `δ` = constant address difference),
//! * **self/group spatial** — solutions of `c·r ∈ (δ − ls, δ + ls)` (same
//!   line up to the line offset; the exact same-line test happens at
//!   classification time),
//! * supports of ≤ 2 loop variables (all Table 1 kernels need at most 2;
//!   wider supports would only add further-away candidates, whose omission
//!   is conservative),
//! * the intra-iteration candidate `r = 0` for body-earlier references.
//!
//! Candidates are then **lifted** to the analysis space: in a tiled space
//! an original displacement decomposes into (block, offset) moves with up
//! to two realisations per dimension (same-block, and the tile-boundary
//! *wrap* `Δb = ±1, Δu = r ∓ T`), all still constant vectors — exactly
//! what CMEs need (§2.4).

use cme_loopnest::{ExecSpace, LoopNest, MemoryLayout};
use cme_polyhedra::boxes::lex_cmp;
use cme_polyhedra::dioph::{div_ceil, div_floor, solve_2var};
use cme_polyhedra::{AffineForm, Interval};
use std::cmp::Ordering;
use std::sync::Arc;

/// A candidate reuse: reference `src_ref` at `v − rv` may hold the line
/// touched by the subject reference at `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseCandidate {
    /// Displacement in analysis (v-space) coordinates; lexicographically
    /// positive, or zero for intra-iteration reuse.
    pub rv: Vec<i64>,
    /// Source reference index.
    pub src_ref: usize,
}

/// Cap on candidates kept per subject reference (closest first). Dropping
/// far candidates can only misclassify far reuse as cold — never turns a
/// miss into a hit.
pub const MAX_CANDIDATES_PER_REF: usize = 128;

/// Cap on solutions enumerated per 2-variable Diophantine window.
const MAX_2VAR_SOLUTIONS: usize = 12;

/// Generate candidate original-space displacements for reuse of subject
/// reference with address form `addr_a` from source with `addr_b`
/// (uniform: equal coefficients), line size `ls`, loop spans `spans`.
///
/// This is the expensive, **tile-independent** half of candidate
/// generation (Diophantine window enumeration); its result depends only
/// on `(addr_a.coeffs, addr_b.c0 − addr_a.c0, ls, spans)` — the key the
/// evaluation engine caches it under across search candidates.
pub fn original_displacements(
    addr_a: &AffineForm,
    addr_b: &AffineForm,
    ls: i64,
    spans: &[i64],
) -> Vec<Vec<i64>> {
    debug_assert_eq!(addr_a.coeffs, addr_b.coeffs);
    let d = spans.len();
    let c = &addr_a.coeffs;
    let delta = addr_b.c0 - addr_a.c0;
    // Same-line window for c·r: (δ − ls, δ + ls).
    let window = Interval::new(delta - ls + 1, delta + ls - 1);
    let mut out: Vec<Vec<i64>> = Vec::new();
    let mut push = |r: Vec<i64>| {
        if !out.contains(&r) {
            out.push(r);
        }
    };
    // Zero displacement (same iteration, group reuse).
    if window.contains(0) {
        push(vec![0; d]);
    }
    // Single-variable supports.
    for t in 0..d {
        let span = spans[t];
        if c[t] == 0 {
            // Temporal along t: any step works; the nearest (±1) suffices
            // (if v−e_t is outside the space, so is every larger step).
            if window.contains(0) {
                push((0..d).map(|u| i64::from(u == t)).collect());
            }
            continue;
        }
        // c_t·k ∈ window ⇒ k ∈ [⌈w.lo/c_t⌉, ⌊w.hi/c_t⌋] (sign-aware).
        let (klo, khi) = if c[t] > 0 {
            (div_ceil(window.lo, c[t]), div_floor(window.hi, c[t]))
        } else {
            (div_ceil(window.hi, c[t]), div_floor(window.lo, c[t]))
        };
        for k in klo.max(-(span - 1))..=khi.min(span - 1) {
            if k == 0 {
                continue; // already covered by the zero candidate
            }
            let mut r = vec![0i64; d];
            r[t] = k;
            push(r);
        }
    }
    // Two-variable supports: c_t·r_t + c_u·r_u = w for each w in the
    // window (only multiples of gcd(c_t, c_u) are solvable).
    for t in 0..d {
        for u in t + 1..d {
            if c[t] == 0 && c[u] == 0 {
                continue;
            }
            let g = cme_polyhedra::dioph::gcd(c[t], c[u]).max(1);
            let mut w = div_ceil(window.lo, g) * g;
            while w <= window.hi {
                let xr = Interval::new(-(spans[t] - 1), spans[t] - 1);
                let yr = Interval::new(-(spans[u] - 1), spans[u] - 1);
                for (rt, ru) in solve_2var(c[t], c[u], w, xr, yr, MAX_2VAR_SOLUTIONS) {
                    if rt == 0 || ru == 0 {
                        continue; // single-variable candidates already added
                    }
                    let mut r = vec![0i64; d];
                    r[t] = rt;
                    r[u] = ru;
                    push(r);
                }
                w += g;
            }
        }
    }
    out
}

/// The tile-independent candidate base of a nest under a layout: per
/// subject reference, the uniform source pairs with their original-space
/// displacement sets. Lift it into any execution space with
/// [`lift_base`]; the `Arc`s let the evaluation engine share one
/// displacement set across many candidates and layouts.
pub type CandidateBase = Vec<Vec<(usize, Arc<Vec<Vec<i64>>>)>>;

/// Build the candidate base with a caller-supplied displacement source —
/// the seam where the evaluation engine injects its cross-candidate
/// displacement cache. `displacements(a, b)` must return
/// [`original_displacements`]`(&addr[a], &addr[b], line, spans)`.
pub fn candidate_base_with(
    nest: &LoopNest,
    addr: &[AffineForm],
    mut displacements: impl FnMut(usize, usize) -> Arc<Vec<Vec<i64>>>,
) -> CandidateBase {
    (0..nest.refs.len())
        .map(|a| {
            (0..nest.refs.len())
                // Uniform pairs only (same array, equal subscript/address
                // coefficients); non-uniform same-array reuse is
                // conservatively ignored, as in the original CME framework.
                .filter(|&b| {
                    nest.refs[a].array == nest.refs[b].array && addr[a].coeffs == addr[b].coeffs
                })
                .map(|b| (b, displacements(a, b)))
                .collect()
        })
        .collect()
}

/// Build the candidate base from scratch (no cross-candidate cache).
pub fn candidate_base(nest: &LoopNest, layout: &MemoryLayout, line: i64) -> CandidateBase {
    let spans = nest.spans();
    let addr = layout.address_forms(nest);
    candidate_base_with(nest, &addr, |a, b| {
        Arc::new(original_displacements(&addr[a], &addr[b], line, &spans))
    })
}

/// Lift a candidate base into an execution space: displacements decompose
/// into (block, offset) realisations, then are recency-sorted, deduped
/// and truncated. This is the cheap per-candidate half of generation.
pub fn lift_base(base: &CandidateBase, space: &ExecSpace) -> Vec<Vec<ReuseCandidate>> {
    base.iter()
        .enumerate()
        .map(|(a, pairs)| {
            let mut cands: Vec<ReuseCandidate> = Vec::new();
            for (b, displacements) in pairs {
                for r in displacements.iter() {
                    for rv in space.lift_displacement(r) {
                        match lex_cmp(&rv, &vec![0; rv.len()]) {
                            Ordering::Greater => {
                                cands.push(ReuseCandidate { rv, src_ref: *b });
                            }
                            Ordering::Equal => {
                                // Intra-iteration reuse: source must
                                // execute earlier in the body.
                                if *b < a {
                                    cands.push(ReuseCandidate { rv, src_ref: *b });
                                }
                            }
                            Ordering::Less => {}
                        }
                    }
                }
            }
            // Recency order: lexicographically smaller displacement =
            // closer source; ties broken by later body position (more
            // recent).
            cands.sort_by(|x, y| lex_cmp(&x.rv, &y.rv).then(y.src_ref.cmp(&x.src_ref)));
            cands.dedup();
            cands.truncate(MAX_CANDIDATES_PER_REF);
            cands
        })
        .collect()
}

/// Lift only the `cap` most-recent candidates per reference — the
/// bounded-selection variant of [`lift_base`] for consumers that walk
/// candidates most-recent-first and can conservatively treat the tail as
/// absent (the lattice estimator at large iteration volumes). Selection
/// streams realisations through the allocation-free visitor and keeps a
/// worst-tracking heap of size `cap`, so the cost is bounded by the
/// selection, not the full materialisation. The result is a prefix of
/// [`lift_base`]'s output (up to duplicates consuming heap slots, which
/// can only shorten it — never reorder it).
pub fn lift_base_capped(
    base: &CandidateBase,
    space: &ExecSpace,
    cap: usize,
) -> Vec<Vec<ReuseCandidate>> {
    use std::collections::BinaryHeap;

    /// Max-heap wrapper: the greatest element is the *least recent*
    /// candidate (largest displacement, earliest body position).
    struct ByRecency(ReuseCandidate);
    impl PartialEq for ByRecency {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for ByRecency {}
    impl PartialOrd for ByRecency {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for ByRecency {
        fn cmp(&self, other: &Self) -> Ordering {
            lex_cmp(&self.0.rv, &other.0.rv).then(other.0.src_ref.cmp(&self.0.src_ref))
        }
    }

    base.iter()
        .enumerate()
        .map(|(a, pairs)| {
            let mut heap: BinaryHeap<ByRecency> = BinaryHeap::with_capacity(cap + 1);
            for (b, displacements) in pairs {
                for r in displacements.iter() {
                    space.lift_displacement_each(r, |rv| {
                        // Sign of rv in lex order, without allocating a
                        // zero vector: first non-zero component decides.
                        match rv.iter().find(|&&x| x != 0) {
                            None if *b >= a => return,
                            Some(&x) if x < 0 => return,
                            _ => {}
                        }
                        if heap.len() == cap {
                            // Compare against the current worst without
                            // allocating; identical or less recent → skip.
                            let worst = &heap.peek().unwrap().0;
                            let ord = lex_cmp(rv, &worst.rv).then(worst.src_ref.cmp(b));
                            if ord != Ordering::Less {
                                return;
                            }
                            heap.pop();
                        }
                        heap.push(ByRecency(ReuseCandidate { rv: rv.to_vec(), src_ref: *b }));
                    });
                }
            }
            let mut cands: Vec<ReuseCandidate> =
                heap.into_sorted_vec().into_iter().map(|w| w.0).collect();
            cands.dedup();
            cands
        })
        .collect()
}

/// Generate the recency-sorted candidate list for every reference of a
/// nest under a layout, lifted into the given execution space, for the
/// given cache line size. Equivalent to lifting [`candidate_base`] —
/// which is exactly how it is implemented, so the from-scratch and
/// engine-cached paths cannot drift apart.
pub fn candidates_with_line(
    nest: &LoopNest,
    layout: &MemoryLayout,
    space: &ExecSpace,
    line: i64,
) -> Vec<Vec<ReuseCandidate>> {
    lift_base(&candidate_base(nest, layout, line), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::builder::{sub, NestBuilder};
    use cme_loopnest::TileSizes;

    /// MM kernel at n=8.
    fn mm_nest() -> LoopNest {
        let mut nb = NestBuilder::new("mm");
        let i = nb.add_loop("i", 1, 8);
        let j = nb.add_loop("j", 1, 8);
        let k = nb.add_loop("k", 1, 8);
        let a = nb.array("a", &[8, 8]);
        let b = nb.array("b", &[8, 8]);
        let c = nb.array("c", &[8, 8]);
        nb.read(a, &[sub(i), sub(j)]);
        nb.read(b, &[sub(i), sub(k)]);
        nb.read(c, &[sub(k), sub(j)]);
        nb.write(a, &[sub(i), sub(j)]);
        nb.finish().unwrap()
    }

    #[test]
    fn mm_has_expected_reuse_vectors() {
        let nest = mm_nest();
        let layout = MemoryLayout::contiguous(&nest);
        let space = ExecSpace::untiled(&nest);
        let cands = candidates_with_line(&nest, &layout, &space, 32);
        // a(i,j) (ref 0): self-temporal along k = (0,0,1); group with the
        // write (ref 3) at r = 0.
        assert!(cands[0].iter().any(|c| c.rv == vec![0, 0, 1]), "a(i,j) temporal along k");
        // c(k,j) (ref 2): temporal along i = (1,0,0) — the outer-loop reuse.
        assert!(
            cands[2].iter().any(|c| c.rv == vec![1, 0, 0] && c.src_ref == 2),
            "c(k,j) temporal along i"
        );
        // b(i,k) (ref 1): temporal along j = (0,1,0); spatial along i
        // (stride 4 < line 32). At n = 8 the k-stride is exactly one line
        // (8·4 = 32 bytes), so there is *no* spatial reuse along k.
        assert!(cands[1].iter().any(|c| c.rv == vec![0, 1, 0]), "b(i,k) temporal along j");
        assert!(cands[1].iter().any(|c| c.rv == vec![1, 0, 0]), "b(i,k) spatial along i");
        assert!(
            !cands[1].iter().any(|c| c.rv == vec![0, 0, 1]),
            "no same-line reuse along k at n=8"
        );
        // The write a(i,j) (ref 3) can reuse the read a(i,j) (ref 0)
        // within the same iteration.
        assert!(
            cands[3].iter().any(|c| c.rv == vec![0, 0, 0] && c.src_ref == 0),
            "intra-iteration group reuse"
        );
        // And the read cannot claim reuse from the (later) write at r = 0.
        assert!(!cands[0].iter().any(|c| c.rv == vec![0, 0, 0] && c.src_ref == 3));
    }

    #[test]
    fn candidates_sorted_by_recency() {
        let nest = mm_nest();
        let layout = MemoryLayout::contiguous(&nest);
        let space = ExecSpace::untiled(&nest);
        let cands = candidates_with_line(&nest, &layout, &space, 32);
        for per_ref in &cands {
            for w in per_ref.windows(2) {
                assert_ne!(lex_cmp(&w[0].rv, &w[1].rv), Ordering::Greater, "must be ascending");
            }
        }
    }

    /// Bounded selection must return an exact prefix of the full
    /// recency-sorted lift, for every cap, in tiled and untiled spaces.
    #[test]
    fn capped_lift_is_a_prefix_of_the_full_lift() {
        let nest = mm_nest();
        let layout = MemoryLayout::contiguous(&nest);
        for space in [ExecSpace::untiled(&nest), ExecSpace::tiled(&nest, &TileSizes(vec![3, 4, 5]))]
        {
            let base = candidate_base(&nest, &layout, 32);
            let full = lift_base(&base, &space);
            for cap in [1, 2, 3, 7, 16, 64, MAX_CANDIDATES_PER_REF] {
                let capped = lift_base_capped(&base, &space, cap);
                for (a, (got, want)) in capped.iter().zip(&full).enumerate() {
                    assert!(got.len() <= cap, "ref {a}: cap {cap} exceeded");
                    assert_eq!(
                        got.as_slice(),
                        &want[..got.len()],
                        "ref {a} cap {cap}: capped lift must be a prefix of the full lift"
                    );
                    // Duplicate heap slots may shorten the result, but the
                    // most recent candidate always survives selection.
                    if !want.is_empty() {
                        assert!(!got.is_empty(), "ref {a} cap {cap}: lost every candidate");
                    }
                }
            }
        }
    }

    #[test]
    fn tiled_lifting_adds_wrap_candidates() {
        let nest = mm_nest();
        let layout = MemoryLayout::contiguous(&nest);
        let space = ExecSpace::tiled(&nest, &TileSizes(vec![4, 4, 4]));
        let cands = candidates_with_line(&nest, &layout, &space, 32);
        // a(i,j) temporal along k lifts to (0,0,0, 0,0,1) and the wrap
        // (0,0,1, 0,0,-3).
        assert!(cands[0].iter().any(|c| c.rv == vec![0, 0, 0, 0, 0, 1]));
        assert!(cands[0].iter().any(|c| c.rv == vec![0, 0, 1, 0, 0, -3]));
    }

    #[test]
    fn spatial_multiples_within_line() {
        // Single loop over x(i): stride 4, line 32 ⇒ same-line displacements
        // up to |k| ≤ 7.
        let mut nb = NestBuilder::new("stream");
        let i = nb.add_loop("i", 1, 64);
        let x = nb.array("x", &[64]);
        nb.read(x, &[sub(i)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        let space = ExecSpace::untiled(&nest);
        let cands = candidates_with_line(&nest, &layout, &space, 32);
        for k in 1..=7 {
            assert!(cands[0].iter().any(|c| c.rv == vec![k]), "missing spatial multiple {k}");
        }
        assert!(
            !cands[0].iter().any(|c| c.rv == vec![8]),
            "8 elements apart is never the same line"
        );
    }

    #[test]
    fn group_reuse_between_offset_references() {
        // x(i) and x(i+2): reading x(i+2) then x(i) two iterations later
        // touches the same element: displacement 2 for the x(i) reference.
        let mut nb = NestBuilder::new("pair");
        let i = nb.add_loop("i", 1, 32);
        let x = nb.array("x", &[40]);
        nb.read(x, &[sub(i).plus(2)]);
        nb.read(x, &[sub(i)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        let space = ExecSpace::untiled(&nest);
        let cands = candidates_with_line(&nest, &layout, &space, 4); // 1 element per line
                                                                     // Temporal group reuse of ref 1 (x(i)) from ref 0 (x(i+2)) at r=2.
        assert!(cands[1].iter().any(|c| c.rv == vec![2] && c.src_ref == 0));
        // Intra-iteration: ref 1 from ref 0 at r = 0 is only same-line when
        // lines are wider; with 4-byte lines it is not generated... but the
        // candidate list may include r=0 from the window check only if
        // |δ| < ls. Here δ = 8 ≥ 4: must be absent.
        assert!(!cands[1].iter().any(|c| c.rv == vec![0]));
    }
}
