//! Multi-level cache hierarchies and the latency-weighted cost model.
//!
//! The paper's CMEs model a single cache level; real targets have at
//! least L1+L2, and a tiling that is near-optimal for L1 alone can be
//! badly suboptimal once L2 miss cost dominates. A [`CacheHierarchy`] is
//! an ordered list of [`CacheLevel`]s — innermost (L1) first — each a
//! [`CacheSpec`] geometry plus a **miss latency**: the cost, in arbitrary
//! time units, of fetching a line into that level from the next level out
//! (memory, for the last level). The analysis runs the CMEs per level
//! (each level classifies the full access stream independently — the
//! standard per-level CME extension) and the search objective becomes
//!
//! ```text
//! weighted cost = Σ_level  replacement_misses(level) × miss_latency(level)
//! ```
//!
//! mirroring how *Latency Based Tiling* turns miss counts into a
//! hardware-meaningful objective. Cold (compulsory) misses are excluded,
//! as in the paper's single-level objective: tiling cannot change them.
//!
//! **Backward compatibility.** A one-level hierarchy at the legacy miss
//! latency ([`LEGACY_MISS_LATENCY`] = 1.0) is *the* single-cache model:
//! its weighted cost is byte-identical to the legacy replacement-miss
//! count, it serialises as the bare `{"size", "line", "assoc"}` object
//! the pre-hierarchy wire format used, and a bare cache object
//! deserialises back to it — so every existing request, outcome, golden
//! snapshot and cache key is unchanged.

use crate::CacheSpec;
use serde::{DeError, Deserialize, Serialize, Value};

/// Miss latency assigned to a bare single-level cache: one cost unit per
/// replacement miss, making the weighted cost equal the legacy
/// replacement-miss objective.
pub const LEGACY_MISS_LATENCY: f64 = 1.0;

/// One level of a cache hierarchy: a geometry plus the cost of a miss at
/// this level (the fetch from the next level out).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevel {
    pub spec: CacheSpec,
    /// Cost of one miss at this level, in arbitrary time units.
    pub miss_latency: f64,
}

impl CacheLevel {
    pub fn new(spec: CacheSpec, miss_latency: f64) -> Self {
        CacheLevel { spec, miss_latency }
    }
}

/// An ordered, non-empty list of cache levels, innermost (L1) first.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheHierarchy {
    /// Invariant: non-empty (every constructor and the deserialiser
    /// enforce it).
    levels: Vec<CacheLevel>,
}

impl CacheHierarchy {
    /// A single-level hierarchy at the legacy miss latency — the exact
    /// semantic (and wire) equivalent of a bare [`CacheSpec`].
    pub fn single(spec: CacheSpec) -> Self {
        CacheHierarchy { levels: vec![CacheLevel::new(spec, LEGACY_MISS_LATENCY)] }
    }

    /// Build from explicit levels (innermost first). Errors on an empty
    /// list — a hierarchy always has at least L1.
    pub fn new(levels: Vec<CacheLevel>) -> Result<Self, String> {
        if levels.is_empty() {
            return Err("cache hierarchy needs at least one level".into());
        }
        Ok(CacheHierarchy { levels })
    }

    /// A two-level hierarchy.
    pub fn two_level(
        l1: CacheSpec,
        l1_miss_latency: f64,
        l2: CacheSpec,
        l2_miss_latency: f64,
    ) -> Self {
        CacheHierarchy {
            levels: vec![
                CacheLevel::new(l1, l1_miss_latency),
                CacheLevel::new(l2, l2_miss_latency),
            ],
        }
    }

    /// A representative two-level default: the paper's 8 KB direct-mapped
    /// L1 (32 B lines) backed by a 64 KB 4-way L2 with the same line
    /// size. Latencies follow the usual order-of-magnitude split — an L1
    /// miss that hits L2 costs 10 units, an L2 miss costs 80.
    pub fn l1l2_default() -> Self {
        CacheHierarchy::two_level(
            CacheSpec::paper_8k(),
            10.0,
            CacheSpec { size: 64 * 1024, line: 32, assoc: 4 },
            80.0,
        )
    }

    /// The levels, innermost first (always at least one).
    pub fn levels(&self) -> &[CacheLevel] {
        &self.levels
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The innermost (L1) geometry — what legacy single-cache consumers
    /// (baseline heuristics, padding decode, geometry printing) use.
    pub fn l1(&self) -> CacheSpec {
        self.levels[0].spec
    }

    /// True when this hierarchy is semantically the legacy single cache:
    /// one level at [`LEGACY_MISS_LATENCY`]. Legacy hierarchies produce
    /// estimates without a per-level breakdown and serialise as the bare
    /// cache object.
    pub fn is_legacy(&self) -> bool {
        self.levels.len() == 1 && self.levels[0].miss_latency == LEGACY_MISS_LATENCY
    }

    /// Validate every level: the geometry rules the single-cache model
    /// has always enforced, plus finite positive latencies.
    pub fn validate(&self) -> Result<(), String> {
        for (k, level) in self.levels.iter().enumerate() {
            let c = &level.spec;
            if c.size <= 0 || c.line <= 0 || c.assoc <= 0 {
                return Err(format!("level {k}: cache geometry must be positive, got {c:?}"));
            }
            if c.size % (c.line * c.assoc) != 0 {
                return Err(format!(
                    "level {k}: cache size {} is not a multiple of line × assoc = {}",
                    c.size,
                    c.line * c.assoc
                ));
            }
            if !(level.miss_latency.is_finite() && level.miss_latency > 0.0) {
                return Err(format!(
                    "level {k}: miss latency must be finite and positive, got {}",
                    level.miss_latency
                ));
            }
        }
        Ok(())
    }
}

impl From<CacheSpec> for CacheHierarchy {
    fn from(spec: CacheSpec) -> Self {
        CacheHierarchy::single(spec)
    }
}

// Hand-written serde: the wire format is the back-compat contract.
//
// * legacy single level  ⇄  bare `{"size": …, "line": …, "assoc": …}`
// * anything else        ⇄  `{"levels": [{size, line, assoc, miss_latency}, …]}`
//
// `miss_latency` may be omitted per level (defaults to the legacy 1.0).

impl Serialize for CacheLevel {
    fn to_value(&self) -> Value {
        let mut fields = match self.spec.to_value() {
            Value::Object(fields) => fields,
            _ => unreachable!("CacheSpec serialises as an object"),
        };
        fields.push(("miss_latency".to_string(), self.miss_latency.to_value()));
        Value::Object(fields)
    }
}

impl Deserialize for CacheLevel {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let spec = CacheSpec::from_value(v)?;
        let obj = v.as_object().ok_or_else(|| DeError::expected("object for CacheLevel", v))?;
        let miss_latency = match serde::get_field(obj, "miss_latency") {
            Some(lat) => f64::from_value(lat)?,
            None => LEGACY_MISS_LATENCY,
        };
        Ok(CacheLevel { spec, miss_latency })
    }
}

impl Serialize for CacheHierarchy {
    fn to_value(&self) -> Value {
        if self.is_legacy() {
            return self.levels[0].spec.to_value();
        }
        let levels = self.levels.iter().map(Serialize::to_value).collect();
        Value::Object(vec![("levels".to_string(), Value::Array(levels))])
    }
}

impl Deserialize for CacheHierarchy {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::expected("object for CacheHierarchy", v))?;
        match serde::get_field(obj, "levels") {
            None => Ok(CacheHierarchy::single(CacheSpec::from_value(v)?)),
            Some(levels) => {
                let arr = levels
                    .as_array()
                    .ok_or_else(|| DeError::expected("array for CacheHierarchy levels", levels))?;
                let levels =
                    arr.iter().map(CacheLevel::from_value).collect::<Result<Vec<_>, _>>()?;
                CacheHierarchy::new(levels).map_err(DeError::custom)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_cache_object_parses_as_legacy_single_level() {
        let h: CacheHierarchy =
            serde_json::from_str(r#"{"size": 1024, "line": 32, "assoc": 1}"#).unwrap();
        assert!(h.is_legacy());
        assert_eq!(h.l1(), CacheSpec::direct_mapped(1024, 32));
        assert_eq!(h.levels()[0].miss_latency, LEGACY_MISS_LATENCY);
    }

    #[test]
    fn legacy_single_level_serialises_as_bare_cache_object() {
        let h = CacheHierarchy::single(CacheSpec::paper_8k());
        let json = serde_json::to_string(&h).unwrap();
        assert_eq!(json, serde_json::to_string(&CacheSpec::paper_8k()).unwrap());
        let back: CacheHierarchy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn multi_level_round_trips_through_levels_form() {
        let h = CacheHierarchy::l1l2_default();
        let json = serde_json::to_string(&h).unwrap();
        assert!(json.contains("\"levels\""), "{json}");
        assert!(json.contains("\"miss_latency\""), "{json}");
        let back: CacheHierarchy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn single_level_with_custom_latency_keeps_the_levels_form() {
        // Latency ≠ 1.0 is semantic information: it must survive the wire
        // even for one level.
        let h = CacheHierarchy::new(vec![CacheLevel::new(CacheSpec::paper_8k(), 25.0)]).unwrap();
        assert!(!h.is_legacy());
        let back: CacheHierarchy =
            serde_json::from_str(&serde_json::to_string(&h).unwrap()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn level_without_latency_defaults_to_legacy() {
        let h: CacheHierarchy = serde_json::from_str(
            r#"{"levels": [{"size": 1024, "line": 32, "assoc": 1},
                           {"size": 8192, "line": 32, "assoc": 2, "miss_latency": 50.0}]}"#,
        )
        .unwrap();
        assert_eq!(h.depth(), 2);
        assert_eq!(h.levels()[0].miss_latency, LEGACY_MISS_LATENCY);
        assert_eq!(h.levels()[1].miss_latency, 50.0);
    }

    #[test]
    fn empty_levels_are_rejected_at_parse_time() {
        assert!(serde_json::from_str::<CacheHierarchy>(r#"{"levels": []}"#).is_err());
    }

    #[test]
    fn validate_checks_every_level() {
        let mut h = CacheHierarchy::l1l2_default();
        assert!(h.validate().is_ok());
        h.levels[1].spec.size = 100; // not a multiple of line × assoc
        assert!(h.validate().is_err());
        let bad_latency =
            CacheHierarchy::new(vec![CacheLevel::new(CacheSpec::paper_8k(), 0.0)]).unwrap();
        assert!(bad_latency.validate().is_err());
    }
}
