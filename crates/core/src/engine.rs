//! The shared evaluation engine — the search hot path's per-request
//! state.
//!
//! A GA run evaluates hundreds of candidate transforms of **one** nest.
//! Building a [`NestAnalysis`] from scratch per candidate spends most of
//! its time in [`crate::reuse::original_displacements`] — Diophantine
//! window enumeration that is completely independent of the candidate's
//! tile sizes and, for same-array reference pairs, independent of its
//! padding too. The engine computes that work once per request and lets
//! every candidate borrow it:
//!
//! * the **candidate base** (uniform pairs + original-space displacement
//!   sets) for the request's base layout is built eagerly; per candidate
//!   only the cheap lift/sort/truncate step runs,
//! * a displacement cache keyed by `(address coefficients, base-address
//!   delta)` serves padding searches, where candidate layouts differ but
//!   most pairs (all self-pairs and same-array pairs) keep their key,
//! * the untiled analysis is cached whole — trivial tile vectors and
//!   baseline estimates reuse it directly.
//!
//! Results are **byte-identical** to the from-scratch path: the engine
//! assembles analyses from the same `reuse::candidate_base` /
//! `reuse::lift_base` primitives [`CmeModel::analyze`] itself uses, and
//! reproduces [`CmeModel::estimate_nest`]'s seed derivation exactly.
//! Optional approximation (early-abandon sampling, see
//! [`SamplingConfig::early_abandon`]) only engages through the
//! incumbent-aware [`EvalEngine::cost`] path used by search objectives.

use crate::estimate::{sampled_vs_incumbent, MissEstimate};
use crate::lexmax::SuffixRanges;
use crate::model::{CmeModel, NestAnalysis};
use crate::reuse::{candidate_base_with, original_displacements, CandidateBase};
use crate::sampling::SamplingConfig;
use cme_loopnest::{ExecSpace, LoopNest, MemoryLayout, TileSizes};
use cme_polyhedra::AffineForm;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Seed-mixing constants shared with [`CmeModel::estimate_nest`] and the
/// search objectives: every candidate derives its sampling seed as
/// `(base ^ SEED_SPLIT)` folded over its decision values with
/// `h·SEED_FOLD + v`.
pub const SEED_SPLIT: u64 = 0x9E37_79B9_7F4A_7C15;
pub const SEED_FOLD: u64 = 0x100_0000_01B3;

/// Fold decision values into a base seed (the canonical derivation used
/// across the suite — identical inputs give identical sampling seeds, so
/// memoised costs are reproducible).
pub fn fold_seed(mut h: u64, values: &[i64]) -> u64 {
    for &v in values {
        h = h.wrapping_mul(SEED_FOLD).wrapping_add(v as u64);
    }
    h
}

/// Shared evaluation state for one optimisation request: one nest, one
/// base layout, one cache model, one sampling configuration, one seed.
/// `Sync` — rayon-parallel GA evaluation borrows it from every worker.
pub struct EvalEngine {
    model: CmeModel,
    sampling: SamplingConfig,
    seed: u64,
    nest: LoopNest,
    layout: MemoryLayout,
    spans: Vec<i64>,
    /// Candidate base for the base layout (tile-independent).
    base: Arc<CandidateBase>,
    /// Untiled analysis of the base layout, shared by trivial-tile
    /// candidates and baseline estimates.
    untiled: Arc<NestAnalysis>,
    /// Cross-layout displacement cache: `(subject coefficients, source c0
    /// − subject c0) → displacement set`. Line size and spans are fixed
    /// per engine, so the key is complete.
    displacements: Mutex<HashMap<(Vec<i64>, i64), Arc<Vec<Vec<i64>>>>>,
}

impl EvalEngine {
    /// Build the engine, precomputing everything candidate-independent.
    pub fn new(
        model: CmeModel,
        nest: &LoopNest,
        layout: &MemoryLayout,
        sampling: SamplingConfig,
        seed: u64,
    ) -> Self {
        let spans = nest.spans();
        let displacements = Mutex::new(HashMap::new());
        let addr = layout.address_forms(nest);
        let base = Arc::new(candidate_base_with(nest, &addr, |a, b| {
            cached_displacements(&displacements, &addr[a], &addr[b], model.cache.line, &spans)
        }));
        let untiled = Arc::new(assemble(model, nest, layout, None, Arc::clone(&base)));
        EvalEngine {
            model,
            sampling,
            seed,
            nest: nest.clone(),
            layout: layout.clone(),
            spans,
            base,
            untiled,
            displacements,
        }
    }

    pub fn model(&self) -> CmeModel {
        self.model
    }

    pub fn sampling(&self) -> &SamplingConfig {
        &self.sampling
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// The shared untiled analysis of the base layout.
    pub fn untiled_analysis(&self) -> &NestAnalysis {
        &self.untiled
    }

    /// Analysis of the base layout under an optional tiling, assembled
    /// from the shared candidate base. Byte-identical to
    /// [`CmeModel::analyze`] with the same arguments.
    pub fn analysis(&self, tiles: Option<&TileSizes>) -> NestAnalysis {
        match tiles.filter(|t| !t.is_trivial(&self.nest)) {
            None => (*self.untiled).clone(),
            Some(t) => {
                assemble(self.model, &self.nest, &self.layout, Some(t), Arc::clone(&self.base))
            }
        }
    }

    /// Analysis of an arbitrary layout (padding candidates), served by the
    /// cross-layout displacement cache.
    pub fn analysis_for_layout(
        &self,
        layout: &MemoryLayout,
        tiles: Option<&TileSizes>,
    ) -> NestAnalysis {
        if *layout == self.layout {
            return self.analysis(tiles);
        }
        let addr = layout.address_forms(&self.nest);
        let base = Arc::new(candidate_base_with(&self.nest, &addr, |a, b| {
            cached_displacements(
                &self.displacements,
                &addr[a],
                &addr[b],
                self.model.cache.line,
                &self.spans,
            )
        }));
        let effective = tiles.filter(|t| !t.is_trivial(&self.nest));
        assemble(self.model, &self.nest, layout, effective, base)
    }

    /// Canonical estimate — the drop-in replacement for
    /// [`CmeModel::estimate_nest`] on the engine's nest and base layout:
    /// same seed derivation (fold only when the tiling is effective),
    /// same sampling, byte-identical result.
    pub fn estimate_canonical(&self, tiles: Option<&TileSizes>) -> MissEstimate {
        let effective = tiles.filter(|t| !t.is_trivial(&self.nest));
        let mut h = self.seed ^ SEED_SPLIT;
        if let Some(t) = effective {
            h = fold_seed(h, &t.0);
        }
        self.analysis(effective).estimate(&self.sampling, h)
    }

    /// Estimate under an explicit layout and sampling seed — the
    /// lower-level entry for objectives with their own seed conventions
    /// (padding folds raw GA values, joint search folds tile values).
    /// `incumbent` enables early abandonment when the sampling
    /// configuration allows it.
    pub fn estimate_seeded(
        &self,
        layout: Option<&MemoryLayout>,
        tiles: Option<&TileSizes>,
        sample_seed: u64,
        incumbent: Option<f64>,
    ) -> MissEstimate {
        let an = match layout {
            None => self.analysis(tiles),
            Some(l) => self.analysis_for_layout(l, tiles),
        };
        sampled_vs_incumbent(&an, &self.sampling, sample_seed, incumbent)
    }

    /// The §3.1 objective value for a candidate tile vector on the base
    /// layout: estimated replacement misses, with the tiling-objective
    /// seed convention (fold the raw values, trivial or not). `incumbent`
    /// enables early abandonment when configured.
    pub fn cost(&self, values: &[i64], incumbent: Option<f64>) -> f64 {
        let tiles = TileSizes(values.to_vec());
        let effective = (!tiles.is_trivial(&self.nest)).then_some(&tiles);
        let seed = fold_seed(self.seed ^ SEED_SPLIT, values);
        self.estimate_seeded(None, effective, seed, incumbent).replacement_misses()
    }
}

/// Cache lookup with the Diophantine enumeration kept *outside* the
/// lock: rayon workers evaluating padding candidates in parallel must not
/// serialize on a miss. Two workers racing on the same key compute the
/// same (deterministic) value; the first insert wins and both return it.
fn cached_displacements(
    cache: &Mutex<HashMap<(Vec<i64>, i64), Arc<Vec<Vec<i64>>>>>,
    addr_a: &AffineForm,
    addr_b: &AffineForm,
    line: i64,
    spans: &[i64],
) -> Arc<Vec<Vec<i64>>> {
    let key = (addr_a.coeffs.clone(), addr_b.c0 - addr_a.c0);
    if let Some(hit) = cache.lock().get(&key) {
        return Arc::clone(hit);
    }
    let fresh = Arc::new(original_displacements(addr_a, addr_b, line, spans));
    Arc::clone(cache.lock().entry(key).or_insert(fresh))
}

/// Assemble a [`NestAnalysis`] from a prebuilt candidate base. This is
/// *the* analysis constructor: [`CmeModel::analyze`] delegates here with
/// a fresh base, the engine with its shared/cached one. The explicit
/// equation-object candidates are lifted lazily (see
/// [`NestAnalysis::candidates`]) — the classifier never reads them.
pub(crate) fn assemble(
    model: CmeModel,
    nest: &LoopNest,
    layout: &MemoryLayout,
    tiles: Option<&TileSizes>,
    base: Arc<CandidateBase>,
) -> NestAnalysis {
    let space = match tiles {
        None => ExecSpace::untiled(nest),
        Some(t) => ExecSpace::tiled(nest, t),
    };
    let addr: Vec<AffineForm> =
        layout.address_forms(nest).iter().map(|f| space.lift_form(f)).collect();
    let relaxed = space.relaxed_dims();
    let suffix = addr.iter().map(|f| SuffixRanges::of(f, &relaxed)).collect();
    let uniform_sources = (0..nest.refs.len())
        .map(|a| {
            (0..nest.refs.len())
                .filter(|&b| {
                    nest.refs[a].array == nest.refs[b].array && addr[a].coeffs == addr[b].coeffs
                })
                .collect()
        })
        .collect();
    NestAnalysis {
        cache: model.cache,
        solver_nodes: model.solver_nodes,
        space,
        addr,
        base,
        lifted: std::sync::OnceLock::new(),
        uniform_sources,
        suffix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheSpec;
    use cme_loopnest::builder::{sub, NestBuilder};

    fn mm(n: i64) -> LoopNest {
        let mut nb = NestBuilder::new(format!("mm_{n}"));
        let i = nb.add_loop("i", 1, n);
        let j = nb.add_loop("j", 1, n);
        let k = nb.add_loop("k", 1, n);
        let a = nb.array("a", &[n, n]);
        let b = nb.array("b", &[n, n]);
        let c = nb.array("c", &[n, n]);
        nb.read(a, &[sub(i), sub(j)]);
        nb.read(b, &[sub(i), sub(k)]);
        nb.read(c, &[sub(k), sub(j)]);
        nb.write(a, &[sub(i), sub(j)]);
        nb.finish().unwrap()
    }

    #[test]
    fn engine_estimates_match_model_byte_for_byte() {
        let nest = mm(20);
        let layout = MemoryLayout::contiguous(&nest);
        let model = CmeModel::new(CacheSpec::direct_mapped(1024, 32));
        let cfg = SamplingConfig::paper();
        let engine = EvalEngine::new(model, &nest, &layout, cfg, 0xCE11);
        for tiles in [None, Some(TileSizes(vec![5, 7, 3])), Some(TileSizes(vec![20, 20, 20]))] {
            let from_scratch = model.estimate_nest(&nest, &layout, tiles.as_ref(), &cfg, 0xCE11);
            let engined = engine.estimate_canonical(tiles.as_ref());
            assert_eq!(from_scratch, engined, "tiles {tiles:?}");
        }
    }

    #[test]
    fn engine_cost_matches_from_scratch_objective_seeding() {
        let nest = mm(16);
        let layout = MemoryLayout::contiguous(&nest);
        let model = CmeModel::new(CacheSpec::direct_mapped(512, 32));
        let cfg = SamplingConfig::paper();
        let engine = EvalEngine::new(model, &nest, &layout, cfg, 42);
        for values in [vec![4i64, 4, 4], vec![16, 16, 16], vec![1, 16, 2]] {
            let tiles = TileSizes(values.clone());
            let effective = (!tiles.is_trivial(&nest)).then_some(&tiles);
            let an = model.analyze(&nest, &layout, effective);
            let seed = fold_seed(42 ^ SEED_SPLIT, &values);
            let want = an.estimate(&cfg, seed).replacement_misses();
            assert_eq!(engine.cost(&values, None), want, "values {values:?}");
        }
    }

    #[test]
    fn engine_handles_foreign_layouts_via_displacement_cache() {
        let nest = mm(12);
        let base = MemoryLayout::contiguous(&nest);
        let model = CmeModel::new(CacheSpec::direct_mapped(512, 32));
        let cfg = SamplingConfig::paper();
        let engine = EvalEngine::new(model, &nest, &base, cfg, 7);
        // A padded layout: displace arrays by whole lines.
        let padded = MemoryLayout::with_padding(&nest, &[0, 32, 64], &vec![vec![0i64; 2]; 3]);
        let want = model.analyze(&nest, &padded, None).estimate(&cfg, 99);
        let got = engine.estimate_seeded(Some(&padded), None, 99, None);
        assert_eq!(want, got);
        // And tiled on the padded layout.
        let t = TileSizes(vec![3, 12, 5]);
        let want = model.analyze(&nest, &padded, Some(&t)).estimate(&cfg, 99);
        let got = engine.estimate_seeded(Some(&padded), Some(&t), 99, None);
        assert_eq!(want, got);
    }

    #[test]
    fn early_abandon_stops_hopeless_candidates_deterministically() {
        let nest = mm(20);
        let layout = MemoryLayout::contiguous(&nest);
        let model = CmeModel::new(CacheSpec::direct_mapped(512, 32));
        let cfg = SamplingConfig::paper()
            .with_early_abandon(crate::sampling::EarlyAbandonConfig { check_every: 16 });
        let engine = EvalEngine::new(model, &nest, &layout, cfg, 3);
        // The untransformed nest thrashes; give an incumbent of zero
        // misses so any thrashing candidate is provably worse early.
        let full = engine.estimate_seeded(None, None, 11, None);
        assert!(full.replacement_misses() > 0.0);
        let partial = engine.estimate_seeded(None, None, 11, Some(0.0));
        assert!(
            partial.n_samples < full.n_samples,
            "hopeless candidate must abandon ({} vs {})",
            partial.n_samples,
            full.n_samples
        );
        // Deterministic: same inputs, same partial result.
        assert_eq!(partial, engine.estimate_seeded(None, None, 11, Some(0.0)));
        // And a *good* incumbent never triggers on a good candidate: with
        // no incumbent the estimate equals the plain sampled path.
        assert_eq!(full, engine.estimate_seeded(None, None, 11, None));
    }
}
