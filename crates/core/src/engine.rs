//! The shared evaluation engine — the search hot path's per-request
//! state.
//!
//! A GA run evaluates hundreds of candidate transforms of **one** nest.
//! Building a [`NestAnalysis`] from scratch per candidate spends most of
//! its time in [`crate::reuse::original_displacements`] — Diophantine
//! window enumeration that is completely independent of the candidate's
//! tile sizes and, for same-array reference pairs, independent of its
//! padding too. The engine computes that work once per request and lets
//! every candidate borrow it:
//!
//! * the **candidate base** (uniform pairs + original-space displacement
//!   sets) for the request's base layout is built eagerly; per candidate
//!   only the cheap lift/sort/truncate step runs,
//! * a displacement cache keyed by `(address coefficients, base-address
//!   delta)` serves padding searches, where candidate layouts differ but
//!   most pairs (all self-pairs and same-array pairs) keep their key,
//! * the untiled analysis is cached whole — trivial tile vectors and
//!   baseline estimates reuse it directly.
//!
//! Results are **byte-identical** to the from-scratch path: the engine
//! assembles analyses from the same `reuse::candidate_base` /
//! `reuse::lift_base` primitives [`CmeModel::analyze`] itself uses, and
//! reproduces [`CmeModel::estimate_nest`]'s seed derivation exactly.
//! Optional approximation (early-abandon sampling, see
//! [`SamplingConfig::early_abandon`]) only engages through the
//! incumbent-aware [`EvalEngine::cost`] path used by search objectives.

use crate::estimate::{
    exhaustive, sampled, sampled_vs_incumbent, LevelEstimate, LevelReport, MissEstimate, MissReport,
};
use crate::hierarchy::CacheHierarchy;
use crate::lexmax::SuffixRanges;
use crate::model::{CmeModel, NestAnalysis};
use crate::reuse::{candidate_base_with, original_displacements, CandidateBase};
use crate::sampling::SamplingConfig;
use cme_loopnest::{ExecSpace, LoopNest, MemoryLayout, TileSizes};
use cme_polyhedra::AffineForm;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Complete key of one displacement-set computation, as shared *across*
/// requests. [`crate::reuse::original_displacements`] is a pure function
/// of the subject's coefficients, the base-address delta, the line size
/// and the loop spans — nothing else — so two engines built for different
/// requests may exchange values under this key without observable effect.
/// (The engine's own per-request memo drops `spans`, which are fixed for
/// one engine; a process-wide store must keep them.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DisplacementKey {
    /// Subject address coefficients (identical for both refs of a
    /// uniform pair).
    pub coeffs: Vec<i64>,
    /// Source `c0` minus subject `c0`.
    pub delta: i64,
    /// Cache line size in bytes.
    pub line: i64,
    /// Inclusive loop spans of the original iteration space.
    pub spans: Vec<i64>,
}

/// A process-wide store of displacement sets that outlives any one
/// [`EvalEngine`]. The engine consults its per-request memo first and
/// only falls through here, so a provider sees each distinct key at most
/// once per request.
///
/// Contract: `get_or_compute` returns the stored value on a hit and
/// exactly `compute()`'s value on a miss (which it may retain). Values
/// are pure functions of the key, so any cache policy (bounded shards,
/// eviction, no-op) yields byte-identical analyses — pinned by the
/// determinism tests.
pub trait DisplacementProvider: Send + Sync {
    fn get_or_compute(
        &self,
        key: &DisplacementKey,
        compute: &mut dyn FnMut() -> Vec<Vec<i64>>,
    ) -> Arc<Vec<Vec<i64>>>;
}

/// A cloneable, `Debug`-able handle to a [`DisplacementProvider`] — the
/// form carried through request/problem structs that derive `Debug`.
#[derive(Clone)]
pub struct SharedDisplacements(pub Arc<dyn DisplacementProvider>);

impl SharedDisplacements {
    pub fn new(provider: Arc<dyn DisplacementProvider>) -> Self {
        SharedDisplacements(provider)
    }

    pub fn provider(&self) -> Arc<dyn DisplacementProvider> {
        Arc::clone(&self.0)
    }
}

impl std::fmt::Debug for SharedDisplacements {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedDisplacements(..)")
    }
}

/// Seed-mixing constants shared with [`CmeModel::estimate_nest`] and the
/// search objectives: every candidate derives its sampling seed as
/// `(base ^ SEED_SPLIT)` folded over its decision values with
/// `h·SEED_FOLD + v`.
pub const SEED_SPLIT: u64 = 0x9E37_79B9_7F4A_7C15;
pub const SEED_FOLD: u64 = 0x100_0000_01B3;

/// Fold decision values into a base seed (the canonical derivation used
/// across the suite — identical inputs give identical sampling seeds, so
/// memoised costs are reproducible).
pub fn fold_seed(mut h: u64, values: &[i64]) -> u64 {
    for &v in values {
        h = h.wrapping_mul(SEED_FOLD).wrapping_add(v as u64);
    }
    h
}

/// Precomputed per-level state for one outer cache level (L2, L3, …):
/// its model, candidate base and untiled analysis. The innermost level
/// lives directly in [`EvalEngine`] so the legacy single-level paths are
/// untouched.
struct OuterLevel {
    model: CmeModel,
    miss_latency: f64,
    base: Arc<CandidateBase>,
    untiled: Arc<NestAnalysis>,
}

/// Shared evaluation state for one optimisation request: one nest, one
/// base layout, one cache hierarchy, one sampling configuration, one
/// seed. `Sync` — rayon-parallel GA evaluation borrows it from every
/// worker.
///
/// For a multi-level hierarchy the tile-independent Diophantine half of
/// reuse-candidate generation is shared across levels: displacement sets
/// depend only on the address forms, the loop spans and the **line
/// size**, so levels with equal lines share one [`CandidateBase`]
/// outright, and the cross-layout displacement cache is keyed by line so
/// padding candidates share entries across levels too.
pub struct EvalEngine {
    /// Innermost (L1) model — the one every legacy path uses.
    model: CmeModel,
    hierarchy: CacheHierarchy,
    /// Levels beyond L1 (empty for the legacy single-level engine).
    outer: Vec<OuterLevel>,
    sampling: SamplingConfig,
    seed: u64,
    nest: LoopNest,
    layout: MemoryLayout,
    spans: Vec<i64>,
    /// Candidate base for the base layout (tile-independent), L1 line.
    base: Arc<CandidateBase>,
    /// Untiled L1 analysis of the base layout, shared by trivial-tile
    /// candidates and baseline estimates.
    untiled: Arc<NestAnalysis>,
    /// Cross-layout displacement cache: `(subject coefficients, source c0
    /// − subject c0, line size) → displacement set`. Spans are fixed per
    /// engine, so the key is complete — and shared across cache levels.
    displacements: Mutex<HashMap<(Vec<i64>, i64, i64), Arc<Vec<Vec<i64>>>>>,
    /// Optional process-wide displacement store, consulted on local-memo
    /// misses (the runtime layer wires the serve-wide sharded cache in
    /// here). `None` ⇒ fully self-contained per-request behaviour.
    provider: Option<Arc<dyn DisplacementProvider>>,
}

impl EvalEngine {
    /// Build a legacy single-level engine, precomputing everything
    /// candidate-independent. Byte-identical to the pre-hierarchy engine.
    pub fn new(
        model: CmeModel,
        nest: &LoopNest,
        layout: &MemoryLayout,
        sampling: SamplingConfig,
        seed: u64,
    ) -> Self {
        Self::build(model, CacheHierarchy::single(model.cache), nest, layout, sampling, seed)
    }

    /// Build a hierarchy-aware engine. With a legacy one-level hierarchy
    /// this is exactly [`Self::new`] with `CmeModel::new(h.l1())`.
    pub fn new_hierarchy(
        hierarchy: &CacheHierarchy,
        nest: &LoopNest,
        layout: &MemoryLayout,
        sampling: SamplingConfig,
        seed: u64,
    ) -> Self {
        Self::new_hierarchy_shared(hierarchy, nest, layout, sampling, seed, None)
    }

    /// As [`Self::new_hierarchy`], with an optional process-wide
    /// displacement store consulted on local-memo misses. With
    /// `provider: None` this is exactly `new_hierarchy`; with a provider
    /// the results are byte-identical and only the work is shared.
    pub fn new_hierarchy_shared(
        hierarchy: &CacheHierarchy,
        nest: &LoopNest,
        layout: &MemoryLayout,
        sampling: SamplingConfig,
        seed: u64,
        provider: Option<Arc<dyn DisplacementProvider>>,
    ) -> Self {
        Self::build_shared(
            CmeModel::new(hierarchy.l1()),
            hierarchy.clone(),
            nest,
            layout,
            sampling,
            seed,
            provider,
        )
    }

    fn build(
        model: CmeModel,
        hierarchy: CacheHierarchy,
        nest: &LoopNest,
        layout: &MemoryLayout,
        sampling: SamplingConfig,
        seed: u64,
    ) -> Self {
        Self::build_shared(model, hierarchy, nest, layout, sampling, seed, None)
    }

    fn build_shared(
        model: CmeModel,
        hierarchy: CacheHierarchy,
        nest: &LoopNest,
        layout: &MemoryLayout,
        sampling: SamplingConfig,
        seed: u64,
        provider: Option<Arc<dyn DisplacementProvider>>,
    ) -> Self {
        let spans = nest.spans();
        let displacements = Mutex::new(HashMap::new());
        let addr = layout.address_forms(nest);
        let base = Arc::new(candidate_base_with(nest, &addr, |a, b| {
            cached_displacements(
                &displacements,
                provider.as_deref(),
                &addr[a],
                &addr[b],
                model.cache.line,
                &spans,
            )
        }));
        let untiled = Arc::new(assemble(model, nest, layout, None, Arc::clone(&base)));
        let outer = hierarchy.levels()[1..]
            .iter()
            .map(|level| {
                let level_model = CmeModel::new(level.spec);
                // The Diophantine half depends on the line size only:
                // same line ⇒ share L1's base outright.
                let level_base = if level.spec.line == model.cache.line {
                    Arc::clone(&base)
                } else {
                    Arc::new(candidate_base_with(nest, &addr, |a, b| {
                        cached_displacements(
                            &displacements,
                            provider.as_deref(),
                            &addr[a],
                            &addr[b],
                            level.spec.line,
                            &spans,
                        )
                    }))
                };
                let level_untiled =
                    Arc::new(assemble(level_model, nest, layout, None, Arc::clone(&level_base)));
                OuterLevel {
                    model: level_model,
                    miss_latency: level.miss_latency,
                    base: level_base,
                    untiled: level_untiled,
                }
            })
            .collect();
        EvalEngine {
            model,
            hierarchy,
            outer,
            sampling,
            seed,
            nest: nest.clone(),
            layout: layout.clone(),
            spans,
            base,
            untiled,
            displacements,
            provider,
        }
    }

    /// The cache hierarchy this engine evaluates against.
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// True when estimates carry no per-level breakdown: one level at the
    /// legacy miss latency, i.e. the pre-hierarchy model.
    fn is_legacy(&self) -> bool {
        self.outer.is_empty() && self.hierarchy.is_legacy()
    }

    pub fn model(&self) -> CmeModel {
        self.model
    }

    pub fn sampling(&self) -> &SamplingConfig {
        &self.sampling
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// The shared untiled analysis of the base layout.
    pub fn untiled_analysis(&self) -> &NestAnalysis {
        &self.untiled
    }

    /// Analysis of the base layout under an optional tiling, assembled
    /// from the shared candidate base. Byte-identical to
    /// [`CmeModel::analyze`] with the same arguments.
    pub fn analysis(&self, tiles: Option<&TileSizes>) -> NestAnalysis {
        match tiles.filter(|t| !t.is_trivial(&self.nest)) {
            None => (*self.untiled).clone(),
            Some(t) => {
                assemble(self.model, &self.nest, &self.layout, Some(t), Arc::clone(&self.base))
            }
        }
    }

    /// Analysis of an arbitrary layout (padding candidates), served by the
    /// cross-layout displacement cache.
    pub fn analysis_for_layout(
        &self,
        layout: &MemoryLayout,
        tiles: Option<&TileSizes>,
    ) -> NestAnalysis {
        if *layout == self.layout {
            return self.analysis(tiles);
        }
        self.foreign_layout_analysis(self.model, layout, tiles)
    }

    /// As [`Self::analysis_for_layout`] for an arbitrary level's model —
    /// all levels draw displacement sets from the shared line-keyed cache.
    fn foreign_layout_analysis(
        &self,
        model: CmeModel,
        layout: &MemoryLayout,
        tiles: Option<&TileSizes>,
    ) -> NestAnalysis {
        let addr = layout.address_forms(&self.nest);
        let base = Arc::new(candidate_base_with(&self.nest, &addr, |a, b| {
            cached_displacements(
                &self.displacements,
                self.provider.as_deref(),
                &addr[a],
                &addr[b],
                model.cache.line,
                &self.spans,
            )
        }));
        let effective = tiles.filter(|t| !t.is_trivial(&self.nest));
        assemble(model, &self.nest, layout, effective, base)
    }

    /// Analysis at outer level `k` (0 = L2) of the base layout under an
    /// optional tiling, assembled from that level's shared candidate base.
    pub(crate) fn outer_analysis(&self, k: usize, tiles: Option<&TileSizes>) -> NestAnalysis {
        let level = &self.outer[k];
        match tiles.filter(|t| !t.is_trivial(&self.nest)) {
            None => (*level.untiled).clone(),
            Some(t) => {
                assemble(level.model, &self.nest, &self.layout, Some(t), Arc::clone(&level.base))
            }
        }
    }

    /// Analysis at outer level `k` under an explicit layout (padding
    /// candidates at outer levels).
    pub(crate) fn outer_analysis_for_layout(
        &self,
        k: usize,
        layout: &MemoryLayout,
        tiles: Option<&TileSizes>,
    ) -> NestAnalysis {
        if *layout == self.layout {
            return self.outer_analysis(k, tiles);
        }
        self.foreign_layout_analysis(self.outer[k].model, layout, tiles)
    }

    /// Attach the per-level breakdown to an L1 estimate. `level_est`
    /// produces the outer level estimates (index 0 = L2). No-op for the
    /// legacy single-level engine — the estimate stays breakdown-free and
    /// byte-identical to the pre-hierarchy form.
    pub(crate) fn decorate(
        &self,
        l1: MissEstimate,
        mut level_est: impl FnMut(usize) -> MissEstimate,
    ) -> MissEstimate {
        if self.is_legacy() {
            return l1;
        }
        let mut levels = Vec::with_capacity(1 + self.outer.len());
        levels.push(LevelEstimate {
            cache: self.model.cache,
            miss_latency: self.hierarchy.levels()[0].miss_latency,
            per_ref: l1.per_ref.clone(),
            solver: l1.solver,
        });
        for (k, level) in self.outer.iter().enumerate() {
            let est = level_est(k);
            levels.push(LevelEstimate {
                cache: level.model.cache,
                miss_latency: level.miss_latency,
                per_ref: est.per_ref,
                solver: est.solver,
            });
        }
        MissEstimate { levels: Some(levels), ..l1 }
    }

    /// Canonical estimate — the drop-in replacement for
    /// [`CmeModel::estimate_nest`] on the engine's nest and base layout:
    /// same seed derivation (fold only when the tiling is effective),
    /// same sampling, byte-identical result on the legacy single-level
    /// model. On a non-legacy hierarchy the estimate additionally carries
    /// the per-level breakdown, every level classifying the same sampled
    /// points (same derived seed).
    pub fn estimate_canonical(&self, tiles: Option<&TileSizes>) -> MissEstimate {
        let effective = tiles.filter(|t| !t.is_trivial(&self.nest));
        let mut h = self.seed ^ SEED_SPLIT;
        if let Some(t) = effective {
            h = fold_seed(h, &t.0);
        }
        let l1 = self.analysis(effective).estimate(&self.sampling, h);
        self.decorate(l1, |k| sampled(&self.outer_analysis(k, effective), &self.sampling, h))
    }

    /// Estimate under an explicit layout and sampling seed — the
    /// lower-level entry for objectives with their own seed conventions
    /// (padding folds raw GA values, joint search folds tile values).
    /// `incumbent` — a [`MissEstimate::weighted_cost`] upper bound —
    /// enables early abandonment when the sampling configuration allows
    /// it. Single-level engines abandon against the incumbent rescaled to
    /// replacement misses; multi-level engines sample every level fully
    /// (a per-level partial sample would skew the weighted sum).
    pub fn estimate_seeded(
        &self,
        layout: Option<&MemoryLayout>,
        tiles: Option<&TileSizes>,
        sample_seed: u64,
        incumbent: Option<f64>,
    ) -> MissEstimate {
        let an = match layout {
            None => self.analysis(tiles),
            Some(l) => self.analysis_for_layout(l, tiles),
        };
        // The abandon test compares L1 replacement-miss counts, so a
        // weighted-cost incumbent must be divided back by the (single)
        // level's latency. Legacy latency is 1.0 — an exact no-op.
        let l1_incumbent = if self.outer.is_empty() {
            incumbent.map(|c| c / self.hierarchy.levels()[0].miss_latency)
        } else {
            None
        };
        let l1 = sampled_vs_incumbent(&an, &self.sampling, sample_seed, l1_incumbent);
        self.decorate(l1, |k| {
            let level_an = match layout {
                None => self.outer_analysis(k, tiles),
                Some(l) => self.outer_analysis_for_layout(k, l, tiles),
            };
            sampled(&level_an, &self.sampling, sample_seed)
        })
    }

    /// Exhaustive (every-point) classification of the base layout under
    /// an optional tiling, per level — the hierarchy-aware counterpart of
    /// `analysis(tiles).exhaustive()`, which it equals byte-for-byte on
    /// the legacy single-level model.
    pub fn exhaustive_report(&self, tiles: Option<&TileSizes>) -> MissReport {
        let l1 = exhaustive(&self.analysis(tiles));
        if self.is_legacy() {
            return l1;
        }
        let mut levels = Vec::with_capacity(1 + self.outer.len());
        levels.push(LevelReport {
            cache: self.model.cache,
            miss_latency: self.hierarchy.levels()[0].miss_latency,
            per_ref: l1.per_ref.clone(),
            solver: l1.solver,
        });
        for (k, level) in self.outer.iter().enumerate() {
            let rep = exhaustive(&self.outer_analysis(k, tiles));
            levels.push(LevelReport {
                cache: level.model.cache,
                miss_latency: level.miss_latency,
                per_ref: rep.per_ref,
                solver: rep.solver,
            });
        }
        MissReport { levels: Some(levels), ..l1 }
    }

    /// The search objective value for a candidate tile vector on the base
    /// layout: the latency-weighted replacement cost (§3.1's `f` on the
    /// legacy single level), with the tiling-objective seed convention
    /// (fold the raw values, trivial or not). `incumbent` enables early
    /// abandonment when configured.
    pub fn cost(&self, values: &[i64], incumbent: Option<f64>) -> f64 {
        let tiles = TileSizes(values.to_vec());
        let effective = (!tiles.is_trivial(&self.nest)).then_some(&tiles);
        let seed = fold_seed(self.seed ^ SEED_SPLIT, values);
        self.estimate_seeded(None, effective, seed, incumbent).weighted_cost()
    }
}

/// Cache lookup with the Diophantine enumeration kept *outside* the
/// lock: rayon workers evaluating padding candidates in parallel must not
/// serialize on a miss. Two workers racing on the same key compute the
/// same (deterministic) value; the first insert wins and both return it.
/// A local miss falls through to the optional process-wide provider
/// (which pays the enumeration at most once per distinct key across
/// requests); either way the resolved Arc lands in the local memo so the
/// provider is hit once per key per engine.
fn cached_displacements(
    cache: &Mutex<HashMap<(Vec<i64>, i64, i64), Arc<Vec<Vec<i64>>>>>,
    provider: Option<&dyn DisplacementProvider>,
    addr_a: &AffineForm,
    addr_b: &AffineForm,
    line: i64,
    spans: &[i64],
) -> Arc<Vec<Vec<i64>>> {
    let key = (addr_a.coeffs.clone(), addr_b.c0 - addr_a.c0, line);
    if let Some(hit) = cache.lock().get(&key) {
        return Arc::clone(hit);
    }
    let fresh = match provider {
        Some(p) => {
            let global = DisplacementKey {
                coeffs: key.0.clone(),
                delta: key.1,
                line,
                spans: spans.to_vec(),
            };
            p.get_or_compute(&global, &mut || original_displacements(addr_a, addr_b, line, spans))
        }
        None => Arc::new(original_displacements(addr_a, addr_b, line, spans)),
    };
    Arc::clone(cache.lock().entry(key).or_insert(fresh))
}

/// Assemble a [`NestAnalysis`] from a prebuilt candidate base. This is
/// *the* analysis constructor: [`CmeModel::analyze`] delegates here with
/// a fresh base, the engine with its shared/cached one. The explicit
/// equation-object candidates are lifted lazily (see
/// [`NestAnalysis::candidates`]) — the classifier never reads them.
pub(crate) fn assemble(
    model: CmeModel,
    nest: &LoopNest,
    layout: &MemoryLayout,
    tiles: Option<&TileSizes>,
    base: Arc<CandidateBase>,
) -> NestAnalysis {
    let space = match tiles {
        None => ExecSpace::untiled(nest),
        Some(t) => ExecSpace::tiled(nest, t),
    };
    let addr: Vec<AffineForm> =
        layout.address_forms(nest).iter().map(|f| space.lift_form(f)).collect();
    let relaxed = space.relaxed_dims();
    let suffix = addr.iter().map(|f| SuffixRanges::of(f, &relaxed)).collect();
    let uniform_sources = (0..nest.refs.len())
        .map(|a| {
            (0..nest.refs.len())
                .filter(|&b| {
                    nest.refs[a].array == nest.refs[b].array && addr[a].coeffs == addr[b].coeffs
                })
                .collect()
        })
        .collect();
    NestAnalysis {
        cache: model.cache,
        solver_nodes: model.solver_nodes,
        space,
        addr,
        base,
        lifted: std::sync::OnceLock::new(),
        uniform_sources,
        suffix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheSpec;
    use cme_loopnest::builder::{sub, NestBuilder};

    fn mm(n: i64) -> LoopNest {
        let mut nb = NestBuilder::new(format!("mm_{n}"));
        let i = nb.add_loop("i", 1, n);
        let j = nb.add_loop("j", 1, n);
        let k = nb.add_loop("k", 1, n);
        let a = nb.array("a", &[n, n]);
        let b = nb.array("b", &[n, n]);
        let c = nb.array("c", &[n, n]);
        nb.read(a, &[sub(i), sub(j)]);
        nb.read(b, &[sub(i), sub(k)]);
        nb.read(c, &[sub(k), sub(j)]);
        nb.write(a, &[sub(i), sub(j)]);
        nb.finish().unwrap()
    }

    #[test]
    fn engine_estimates_match_model_byte_for_byte() {
        let nest = mm(20);
        let layout = MemoryLayout::contiguous(&nest);
        let model = CmeModel::new(CacheSpec::direct_mapped(1024, 32));
        let cfg = SamplingConfig::paper();
        let engine = EvalEngine::new(model, &nest, &layout, cfg, 0xCE11);
        for tiles in [None, Some(TileSizes(vec![5, 7, 3])), Some(TileSizes(vec![20, 20, 20]))] {
            let from_scratch = model.estimate_nest(&nest, &layout, tiles.as_ref(), &cfg, 0xCE11);
            let engined = engine.estimate_canonical(tiles.as_ref());
            assert_eq!(from_scratch, engined, "tiles {tiles:?}");
        }
    }

    #[test]
    fn engine_cost_matches_from_scratch_objective_seeding() {
        let nest = mm(16);
        let layout = MemoryLayout::contiguous(&nest);
        let model = CmeModel::new(CacheSpec::direct_mapped(512, 32));
        let cfg = SamplingConfig::paper();
        let engine = EvalEngine::new(model, &nest, &layout, cfg, 42);
        for values in [vec![4i64, 4, 4], vec![16, 16, 16], vec![1, 16, 2]] {
            let tiles = TileSizes(values.clone());
            let effective = (!tiles.is_trivial(&nest)).then_some(&tiles);
            let an = model.analyze(&nest, &layout, effective);
            let seed = fold_seed(42 ^ SEED_SPLIT, &values);
            let want = an.estimate(&cfg, seed).replacement_misses();
            assert_eq!(engine.cost(&values, None), want, "values {values:?}");
        }
    }

    #[test]
    fn engine_handles_foreign_layouts_via_displacement_cache() {
        let nest = mm(12);
        let base = MemoryLayout::contiguous(&nest);
        let model = CmeModel::new(CacheSpec::direct_mapped(512, 32));
        let cfg = SamplingConfig::paper();
        let engine = EvalEngine::new(model, &nest, &base, cfg, 7);
        // A padded layout: displace arrays by whole lines.
        let padded = MemoryLayout::with_padding(&nest, &[0, 32, 64], &vec![vec![0i64; 2]; 3]);
        let want = model.analyze(&nest, &padded, None).estimate(&cfg, 99);
        let got = engine.estimate_seeded(Some(&padded), None, 99, None);
        assert_eq!(want, got);
        // And tiled on the padded layout.
        let t = TileSizes(vec![3, 12, 5]);
        let want = model.analyze(&nest, &padded, Some(&t)).estimate(&cfg, 99);
        let got = engine.estimate_seeded(Some(&padded), Some(&t), 99, None);
        assert_eq!(want, got);
    }

    #[test]
    fn legacy_hierarchy_engine_is_byte_identical_to_single_level() {
        let nest = mm(16);
        let layout = MemoryLayout::contiguous(&nest);
        let spec = CacheSpec::direct_mapped(1024, 32);
        let cfg = SamplingConfig::paper();
        let single = EvalEngine::new(CmeModel::new(spec), &nest, &layout, cfg, 9);
        let hier =
            EvalEngine::new_hierarchy(&crate::CacheHierarchy::single(spec), &nest, &layout, cfg, 9);
        for tiles in [None, Some(TileSizes(vec![4, 8, 4]))] {
            let a = single.estimate_canonical(tiles.as_ref());
            let b = hier.estimate_canonical(tiles.as_ref());
            assert_eq!(a, b);
            assert!(b.levels.is_none(), "legacy estimates carry no breakdown");
        }
        for values in [vec![4i64, 4, 4], vec![16, 16, 16]] {
            assert_eq!(
                single.cost(&values, None).to_bits(),
                hier.cost(&values, None).to_bits(),
                "weighted cost must equal the legacy objective bit-for-bit"
            );
        }
    }

    #[test]
    fn hierarchy_estimates_decompose_per_level() {
        let nest = mm(16);
        let layout = MemoryLayout::contiguous(&nest);
        let l1 = CacheSpec::direct_mapped(512, 32);
        let l2 = CacheSpec { size: 4096, line: 32, assoc: 2 };
        let hier = crate::CacheHierarchy::two_level(l1, 10.0, l2, 80.0);
        let cfg = SamplingConfig::paper();
        let engine = EvalEngine::new_hierarchy(&hier, &nest, &layout, cfg, 9);
        let est = engine.estimate_canonical(None);
        let levels = est.levels.as_ref().expect("multi-level estimates carry the breakdown");
        assert_eq!(levels.len(), 2);
        // Level 0 of the breakdown *is* the top-level estimate.
        assert_eq!(levels[0].per_ref, est.per_ref);
        assert_eq!(levels[0].cache, l1);
        assert_eq!(levels[1].cache, l2);
        // Each level's slice equals the level analysed on its own (same
        // derived seed ⇒ same sampled points).
        for (k, spec) in [l1, l2].into_iter().enumerate() {
            let solo = EvalEngine::new(CmeModel::new(spec), &nest, &layout, cfg, 9)
                .estimate_canonical(None);
            assert_eq!(levels[k].per_ref, solo.per_ref, "level {k}");
        }
        // And the weighted cost is the latency-weighted sum.
        let want = levels[0].replacement_misses(est.volume) * 10.0
            + levels[1].replacement_misses(est.volume) * 80.0;
        assert_eq!(est.weighted_cost().to_bits(), want.to_bits());
    }

    #[test]
    fn single_level_custom_latency_scales_the_objective() {
        let nest = mm(16);
        let layout = MemoryLayout::contiguous(&nest);
        let spec = CacheSpec::direct_mapped(512, 32);
        let cfg = SamplingConfig::paper();
        let legacy = EvalEngine::new(CmeModel::new(spec), &nest, &layout, cfg, 9);
        let scaled = EvalEngine::new_hierarchy(
            &crate::CacheHierarchy::new(vec![crate::CacheLevel::new(spec, 4.0)]).unwrap(),
            &nest,
            &layout,
            cfg,
            9,
        );
        let values = vec![4i64, 4, 4];
        assert_eq!(
            scaled.cost(&values, None).to_bits(),
            (legacy.cost(&values, None) * 4.0).to_bits()
        );
    }

    #[test]
    fn early_abandon_stops_hopeless_candidates_deterministically() {
        let nest = mm(20);
        let layout = MemoryLayout::contiguous(&nest);
        let model = CmeModel::new(CacheSpec::direct_mapped(512, 32));
        let cfg = SamplingConfig::paper()
            .with_early_abandon(crate::sampling::EarlyAbandonConfig { check_every: 16 });
        let engine = EvalEngine::new(model, &nest, &layout, cfg, 3);
        // The untransformed nest thrashes; give an incumbent of zero
        // misses so any thrashing candidate is provably worse early.
        let full = engine.estimate_seeded(None, None, 11, None);
        assert!(full.replacement_misses() > 0.0);
        let partial = engine.estimate_seeded(None, None, 11, Some(0.0));
        assert!(
            partial.n_samples < full.n_samples,
            "hopeless candidate must abandon ({} vs {})",
            partial.n_samples,
            full.n_samples
        );
        // Deterministic: same inputs, same partial result.
        assert_eq!(partial, engine.estimate_seeded(None, None, 11, Some(0.0)));
        // And a *good* incumbent never triggers on a good candidate: with
        // no incumbent the estimate equals the plain sampled path.
        assert_eq!(full, engine.estimate_seeded(None, None, 11, None));
    }
}
