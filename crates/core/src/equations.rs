//! Explicit Cache Miss Equation objects (paper §2.1, §2.4).
//!
//! The fast classifier never materialises equation systems; this module
//! does, for three purposes:
//!
//! 1. **Inspection/documentation** — the equations are the paper's central
//!    artefact; users can enumerate them and see the §2.4 growth: the
//!    number of compulsory equations scales with the number of convex
//!    regions `n`, replacement equations with `n²` (region pairs).
//! 2. **An explicit solver baseline** — [`classify_explicit`] substitutes
//!    an iteration point into the equations (paper §2.2) and decides
//!    emptiness of each resulting polyhedron with the generic
//!    [`Polyhedron`] machinery. It must agree with the fast classifier;
//!    tests enforce this, and the solver benchmarks quantify the speed
//!    difference (the paper's §2.3 claim).
//! 3. **Point counting** — tiny spaces can count equation solutions
//!    exactly.

use crate::classify::Classification;
use crate::model::NestAnalysis;
use crate::reuse::ReuseCandidate;
use cme_polyhedra::boxes::lex_cmp;
use cme_polyhedra::dioph::{div_ceil, div_floor};
use cme_polyhedra::lex::between_open;
use cme_polyhedra::polyhedron::{Constraint, Polyhedron};
use cme_polyhedra::{AffineForm, Interval};

/// A compulsory equation: along reuse candidate `cand`, points of region
/// `region` whose source falls outside the iteration space are potential
/// cold misses.
#[derive(Debug, Clone)]
pub struct CompulsoryEq {
    pub subject: usize,
    pub cand: ReuseCandidate,
    pub region: usize,
}

/// A replacement equation: for reuse candidate `cand` with the current
/// point in `cur_region`, interference by reference `interferer` executing
/// in region `j_region` on the reused set. The region *pair*
/// `(cur_region, j_region)` is what gives the paper's n² growth (§2.4).
#[derive(Debug, Clone)]
pub struct ReplacementEq {
    pub subject: usize,
    pub cand: ReuseCandidate,
    pub cur_region: usize,
    pub j_region: usize,
    pub interferer: usize,
}

/// The explicit equation system of one analysed nest.
#[derive(Debug, Clone)]
pub struct CmeEquations {
    pub compulsory: Vec<CompulsoryEq>,
    pub replacement: Vec<ReplacementEq>,
}

impl CmeEquations {
    /// Generate the full system for an analysis.
    pub fn generate(an: &NestAnalysis) -> Self {
        let n_regions = an.space.regions.len();
        let n_refs = an.addr.len();
        let mut compulsory = Vec::new();
        let mut replacement = Vec::new();
        for subject in 0..n_refs {
            for cand in &an.candidates()[subject] {
                for region in 0..n_regions {
                    compulsory.push(CompulsoryEq { subject, cand: cand.clone(), region });
                    for j_region in 0..n_regions {
                        for interferer in 0..n_refs {
                            replacement.push(ReplacementEq {
                                subject,
                                cand: cand.clone(),
                                cur_region: region,
                                j_region,
                                interferer,
                            });
                        }
                    }
                }
            }
        }
        CmeEquations { compulsory, replacement }
    }
}

impl ReplacementEq {
    /// Substitute a concrete current point (paper §2.2) and produce the
    /// resulting polyhedra over `(j_1..j_m, n)` — one per lexicographic
    /// piece of the reuse interval × region × side of the excluded reused
    /// line. The equation "holds" at `v0` iff any polyhedron contains an
    /// integer point.
    pub fn instantiate(&self, an: &NestAnalysis, v0: &[i64]) -> Vec<Polyhedron> {
        let m = an.space.n_v;
        let src: Vec<i64> = v0.iter().zip(&self.cand.rv).map(|(a, b)| a - b).collect();
        if !an.space.regions[self.cur_region].vbox.contains(v0) || !an.space.contains_v(&src) {
            return Vec::new();
        }
        let cache = an.cache;
        let addr0 = an.addr[self.subject].eval(v0);
        let l0 = cache.line_of(addr0);
        // Source must touch the same line for the equation to be active.
        if cache.line_of(an.addr[self.cand.src_ref].eval(&src)) != l0 {
            return Vec::new();
        }
        let s0 = cache.set_of_line(l0);
        let n0 = l0.div_euclid(cache.sets());
        let way = cache.sets() * cache.line;
        let window = Interval::new(s0 * cache.line, s0 * cache.line + cache.line - 1);
        let mut out = Vec::new();
        let form = &an.addr[self.interferer];
        for piece in between_open(&src, v0) {
            // The interfering iterations of *this* equation are those in
            // `j_region`; interference in other regions is covered by the
            // sibling equations of the (cur_region, j_region) family.
            let Some(bx) = piece.clip_to_box(&an.space.regions[self.j_region].vbox) else {
                continue;
            };
            if bx.is_empty() {
                continue;
            }
            let range = form.range_over(&bx);
            let n_min = div_ceil(range.lo - window.hi, way);
            let n_max = div_floor(range.hi - window.lo, way);
            for n_iv in [Interval::new(n_min, n0 - 1), Interval::new(n0 + 1, n_max)] {
                if n_iv.is_empty() {
                    continue;
                }
                // Variables: j_1..j_m, n.
                let mut p = Polyhedron::universe(m + 1);
                for (t, iv) in bx.dims.iter().enumerate() {
                    let x = AffineForm::var(m + 1, t);
                    p.and(Constraint::ge(x.clone(), AffineForm::constant(m + 1, iv.lo)));
                    p.and(Constraint::le(x, AffineForm::constant(m + 1, iv.hi)));
                }
                let nv = AffineForm::var(m + 1, m);
                p.and(Constraint::ge(nv.clone(), AffineForm::constant(m + 1, n_iv.lo)));
                p.and(Constraint::le(nv, AffineForm::constant(m + 1, n_iv.hi)));
                // window.lo ≤ addr(j) − n·way ≤ window.hi
                let mut coeffs = form.coeffs.clone();
                coeffs.push(-way);
                let af = AffineForm::new(coeffs, form.c0);
                p.and(Constraint::ge(af.clone(), AffineForm::constant(m + 1, window.lo)));
                p.and(Constraint::le(af, AffineForm::constant(m + 1, window.hi)));
                out.push(p);
            }
        }
        out
    }
}

/// Classify a point using the explicit polyhedron machinery end to end —
/// the slow, paper-literal path. The reuse source is located with the
/// same exact lexmax search as the fast classifier; the interference test
/// then builds the replacement polyhedra concretely and decides emptiness
/// with the generic [`Polyhedron`] solver (direct-mapped caches).
pub fn classify_explicit(
    an: &NestAnalysis,
    _eqs: &CmeEquations,
    v0: &[i64],
    subject: usize,
) -> Classification {
    assert_eq!(an.cache.assoc, 1, "the explicit path models direct-mapped caches");
    let cache = an.cache;
    let addr0 = an.addr[subject].eval(v0);
    let l0 = cache.line_of(addr0);
    // Intra-iteration sources.
    for pos in (0..subject).rev() {
        if cache.line_of(an.addr[pos].eval(v0)) == l0 {
            return explicit_verdict(an, v0, pos, v0, subject, l0);
        }
    }
    // Cross-iteration sources via the shared lexmax search.
    let window = Interval::new(l0 * cache.line, (l0 + 1) * cache.line - 1);
    for s in (0..v0.len()).rev() {
        let mut best: Option<(Vec<i64>, usize)> = None;
        for &b in &an.uniform_sources[subject] {
            let Some(j) = crate::lexmax::lexmax_at_level(
                &an.space,
                &an.addr[b],
                &an.suffix[b],
                v0,
                window,
                s,
            ) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some((bj, bpos)) => match lex_cmp(&j, bj) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Equal => b > *bpos,
                    std::cmp::Ordering::Less => false,
                },
            };
            if better {
                best = Some((j, b));
            }
        }
        if let Some((j, pos)) = best {
            return explicit_verdict(an, &j, pos, v0, subject, l0);
        }
    }
    Classification::Cold
}

fn explicit_verdict(
    an: &NestAnalysis,
    src: &[i64],
    src_pos: usize,
    v0: &[i64],
    cur_pos: usize,
    l0: i64,
) -> Classification {
    let blocked = endpoint_conflict(an, src, src_pos, v0, cur_pos, l0)
        || explicit_between_conflict(an, src, v0, l0);
    if blocked {
        Classification::Replacement
    } else {
        Classification::Hit
    }
}

/// Build the replacement polyhedra for the interval (src, v0) and test
/// integer emptiness generically.
fn explicit_between_conflict(an: &NestAnalysis, src: &[i64], v0: &[i64], l0: i64) -> bool {
    let cache = an.cache;
    let s0 = cache.set_of_line(l0);
    let n0 = l0.div_euclid(cache.sets());
    let way = cache.sets() * cache.line;
    let window = Interval::new(s0 * cache.line, s0 * cache.line + cache.line - 1);
    let m = an.space.n_v;
    for piece in between_open(src, v0) {
        for region in &an.space.regions {
            let Some(bx) = piece.clip_to_box(&region.vbox) else { continue };
            if bx.is_empty() {
                continue;
            }
            for form in &an.addr {
                let range = form.range_over(&bx);
                let n_min = div_ceil(range.lo - window.hi, way);
                let n_max = div_floor(range.hi - window.lo, way);
                for n_iv in [Interval::new(n_min, n0 - 1), Interval::new(n0 + 1, n_max)] {
                    if n_iv.is_empty() {
                        continue;
                    }
                    let mut p = Polyhedron::universe(m + 1);
                    for (t, iv) in bx.dims.iter().enumerate() {
                        let x = AffineForm::var(m + 1, t);
                        p.and(Constraint::ge(x.clone(), AffineForm::constant(m + 1, iv.lo)));
                        p.and(Constraint::le(x, AffineForm::constant(m + 1, iv.hi)));
                    }
                    let nv = AffineForm::var(m + 1, m);
                    p.and(Constraint::ge(nv.clone(), AffineForm::constant(m + 1, n_iv.lo)));
                    p.and(Constraint::le(nv, AffineForm::constant(m + 1, n_iv.hi)));
                    let mut coeffs = form.coeffs.clone();
                    coeffs.push(-way);
                    let af = AffineForm::new(coeffs, form.c0);
                    p.and(Constraint::ge(af.clone(), AffineForm::constant(m + 1, window.lo)));
                    p.and(Constraint::le(af, AffineForm::constant(m + 1, window.hi)));
                    let mut cap = 200_000u64;
                    let hull = bounding_box(&p);
                    if !p.is_empty_int(&hull, &mut cap).unwrap_or(false) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn endpoint_conflict(
    an: &NestAnalysis,
    src: &[i64],
    src_pos: usize,
    v0: &[i64],
    cur_pos: usize,
    l0: i64,
) -> bool {
    let cache = an.cache;
    let s0 = cache.set_of_line(l0);
    let same = lex_cmp(src, v0) == std::cmp::Ordering::Equal;
    let check = |v: &[i64], r: usize| {
        let a = an.addr[r].eval(v);
        let l = cache.line_of(a);
        l != l0 && cache.set_of_line(l) == s0
    };
    if same {
        (src_pos + 1..cur_pos).any(|r| check(v0, r))
    } else {
        (src_pos + 1..an.addr.len()).any(|r| check(src, r)) || (0..cur_pos).any(|r| check(v0, r))
    }
}

fn bounding_box(p: &Polyhedron) -> cme_polyhedra::IntBox {
    // Conservative start box; constraints tighten it during propagation.
    cme_polyhedra::IntBox::new(vec![Interval::new(-(1 << 40), 1 << 40); p.n_vars])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CmeModel;
    use crate::CacheSpec;
    use cme_loopnest::builder::{sub, NestBuilder};
    use cme_loopnest::{MemoryLayout, TileSizes};

    fn t2d(n: i64) -> (cme_loopnest::LoopNest, MemoryLayout) {
        let mut nb = NestBuilder::new("t2d");
        let i = nb.add_loop("i", 1, n);
        let j = nb.add_loop("j", 1, n);
        let a = nb.array("a", &[n, n]);
        let b = nb.array("b", &[n, n]);
        nb.read(b, &[sub(i), sub(j)]);
        nb.write(a, &[sub(j), sub(i)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        (nest, layout)
    }

    #[test]
    fn region_scaling_of_equation_counts() {
        let (nest, layout) = t2d(10);
        let model = CmeModel::new(CacheSpec::direct_mapped(128, 16));
        // Tiling both dims with non-dividing tiles: 4 regions.
        let an1 = model.analyze(&nest, &layout, None);
        let an4 = model.analyze(&nest, &layout, Some(&TileSizes(vec![3, 3])));
        let e1 = CmeEquations::generate(&an1);
        let e4 = CmeEquations::generate(&an4);
        assert_eq!(an1.space.regions.len(), 1);
        assert_eq!(an4.space.regions.len(), 4);
        // Per subject & candidate: compulsory ∝ n, replacement ∝ n²·refs.
        // Candidate counts differ between spaces, so compare the ratio per
        // candidate instance instead.
        let cands1: usize = an1.candidates().iter().map(Vec::len).sum();
        let cands4: usize = an4.candidates().iter().map(Vec::len).sum();
        assert_eq!(e1.compulsory.len(), cands1);
        assert_eq!(e4.compulsory.len(), cands4 * 4);
        assert_eq!(e1.replacement.len(), cands1 * 2);
        assert_eq!(e4.replacement.len(), cands4 * 16 * 2);
    }

    #[test]
    fn explicit_classifier_agrees_with_fast_path() {
        let (nest, layout) = t2d(8);
        let model = CmeModel::new(CacheSpec::direct_mapped(128, 16));
        for tiles in [None, Some(TileSizes(vec![3, 3])), Some(TileSizes(vec![4, 2]))] {
            let an = model.analyze(&nest, &layout, tiles.as_ref());
            let eqs = CmeEquations::generate(&an);
            an.space.clone().for_each_point(|v| {
                for r in 0..an.addr.len() {
                    let fast = an.classify(v, r);
                    let slow = classify_explicit(&an, &eqs, v, r);
                    assert_eq!(fast, slow, "point {v:?} ref {r} tiles {tiles:?}");
                }
            });
        }
    }
}
