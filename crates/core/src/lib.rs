#![forbid(unsafe_code)]
//! Cache Miss Equations (CMEs) — the paper's locality analysis (§2).
//!
//! Given a (possibly tiled) loop nest, a memory layout and a cache
//! geometry, this crate classifies every iteration point of every
//! reference as **hit**, **cold miss** (compulsory) or **replacement
//! miss** (capacity + conflict), and estimates miss ratios either
//! exhaustively or by simple random sampling (§2.3).
//!
//! The implementation follows the paper's *iteration-space traversal*
//! formulation (§2.2): each sampled point is tested independently. Per
//! point and reference the classifier
//!
//! 1. walks a precomputed, recency-ordered set of candidate **reuse
//!    vectors** (Wolf–Lam style: self-temporal, self-spatial,
//!    group-temporal/spatial — generated in the original iteration space
//!    and lifted to the tiled `(block, offset)` space with tile-boundary
//!    wrap variants),
//! 2. finds the most recent in-space source access touching the same
//!    memory line (no source ⇒ *cold*; this is the compulsory-equation
//!    test),
//! 3. decides whether any interfering access between the source and the
//!    current point maps to the same cache set with a different line —
//!    the replacement-equation test, answered exactly by the
//!    `cme-polyhedra` interval-hit solver with the cache wrap-around
//!    variable as one extra box dimension. For a k-way LRU cache the
//!    number of *distinct* conflicting lines is counted (§2.2: "k
//!    distinct contentions").
//!
//! Monotonicity (an older source sees a superset of the interference of a
//! more recent one) means a single interference query per point decides
//! the classification — the key to the solver's speed.
//!
//! The explicit equation systems themselves (polyhedra over iteration
//! variables and the cache wrap variable) are also materialised in
//! [`equations`] for inspection and the §2.4 region-count properties.

pub mod classify;
pub mod engine;
pub mod equations;
pub mod estimate;
pub mod estimator;
pub mod hierarchy;
pub mod interference;
pub mod lattice;
pub mod lexmax;
pub mod model;
pub mod reuse;
pub mod sampling;

pub use classify::Classification;
pub use engine::{DisplacementKey, DisplacementProvider, EvalEngine, SharedDisplacements};
pub use estimate::{Counts, LevelEstimate, LevelReport, MissEstimate, MissReport};
pub use estimator::{Estimator, EstimatorKind};
pub use hierarchy::{CacheHierarchy, CacheLevel, LEGACY_MISS_LATENCY};
pub use lattice::LatticeEstimator;
pub use model::{CmeModel, NestAnalysis};
pub use sampling::{EarlyAbandonConfig, SamplingConfig};

/// Cache geometry parameters used by the analysis. Mirrors
/// `cme_cachesim::CacheGeometry` without depending on the simulator crate
/// (the simulator is the *oracle*, not a dependency of the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct CacheSpec {
    /// Capacity in bytes.
    pub size: i64,
    /// Line size in bytes.
    pub line: i64,
    /// Ways per set (1 = direct-mapped).
    pub assoc: i64,
}

impl CacheSpec {
    pub const fn direct_mapped(size: i64, line: i64) -> Self {
        CacheSpec { size, line, assoc: 1 }
    }

    /// The paper's 8 KB direct-mapped / 32 B line configuration.
    pub const fn paper_8k() -> Self {
        CacheSpec::direct_mapped(8 * 1024, 32)
    }

    /// The paper's 32 KB direct-mapped / 32 B line configuration.
    pub const fn paper_32k() -> Self {
        CacheSpec::direct_mapped(32 * 1024, 32)
    }

    pub fn sets(&self) -> i64 {
        self.size / (self.line * self.assoc)
    }

    pub fn line_of(&self, addr: i64) -> i64 {
        addr.div_euclid(self.line)
    }

    pub fn set_of_line(&self, line: i64) -> i64 {
        line.rem_euclid(self.sets())
    }
}
