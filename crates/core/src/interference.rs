//! Replacement-equation solving: does anything evict the reused line?
//!
//! Given a reuse source occurrence `(v_src, ref B)` and the current
//! occurrence `(v_cur, ref A)` touching line `l0` of set `s0`, the reuse is
//! *blocked* when the accesses strictly between them bring at least
//! `assoc` distinct other lines into set `s0` (paper §2.2; for a
//! direct-mapped cache: any single one).
//!
//! The interval decomposes into (a) trailing references of the source
//! iteration, (b) leading references of the current iteration, and (c) the
//! lexicographically-between iterations — a union of boxes per convex
//! region (paper §2.4). On each box, "reference C touches set `s0`" is
//! `∃ j, n : addr_C(j) − n·M ∈ [s0·ls, s0·ls + ls − 1]` with `M` = way
//! size (cache size / associativity) — the paper's replacement polyhedron,
//! answered exactly by the `formhit` solver with `n` as an extra box
//! variable. The reused line itself (`n = n0`) is excluded by splitting
//! the `n` range.

use crate::CacheSpec;
use cme_loopnest::ExecSpace;
use cme_polyhedra::dioph::{div_ceil, div_floor};
use cme_polyhedra::formhit::{interval_hit, Budget};
use cme_polyhedra::lex::between_open;
use cme_polyhedra::{AffineForm, IntBox, Interval};

/// Per-thread interference engine: owns the solver budget and statistics.
pub struct InterferenceEngine {
    pub cache: CacheSpec,
    pub budget: Budget,
    /// Cap on wrap-variable values enumerated for distinct-line counting
    /// (set-associative analysis). Exceeding it conservatively declares
    /// the reuse blocked.
    pub line_enum_cap: i64,
    /// Conservative outcomes taken due to the enumeration cap.
    pub assoc_fallbacks: u64,
}

impl InterferenceEngine {
    pub fn new(cache: CacheSpec, solver_nodes: u64) -> Self {
        InterferenceEngine {
            cache,
            budget: Budget::new(solver_nodes),
            line_enum_cap: 4096,
            assoc_fallbacks: 0,
        }
    }

    /// Decide whether the reuse of line `l0` from occurrence
    /// `(v_src, src_pos)` to `(v_cur, cur_pos)` is blocked by interference.
    ///
    /// `addr` are the per-reference address forms over analysis
    /// coordinates; `space` supplies the convex regions.
    pub fn blocks_reuse(
        &mut self,
        space: &ExecSpace,
        addr: &[AffineForm],
        v_src: &[i64],
        src_pos: usize,
        v_cur: &[i64],
        cur_pos: usize,
        l0: i64,
    ) -> bool {
        let s0 = self.cache.set_of_line(l0);
        let assoc = self.cache.assoc;
        // Distinct conflicting lines seen so far (assoc is small).
        let mut lines: Vec<i64> = Vec::with_capacity(assoc as usize);
        let note_line = |lines: &mut Vec<i64>, l: i64| -> bool {
            if !lines.contains(&l) {
                lines.push(l);
            }
            lines.len() as i64 >= assoc
        };

        // (a) + (b): endpoint iterations, checked by direct evaluation.
        let same_iter = v_src == v_cur;
        let endpoints: &[(&[i64], std::ops::Range<usize>)] = &if same_iter {
            [(v_src, src_pos + 1..cur_pos), (v_cur, 0..0)]
        } else {
            [(v_src, src_pos + 1..addr.len()), (v_cur, 0..cur_pos)]
        };
        for (v, range) in endpoints {
            for r in range.clone() {
                let a = addr[r].eval(v);
                let l = self.cache.line_of(a);
                if l != l0 && self.cache.set_of_line(l) == s0 && note_line(&mut lines, l) {
                    return true;
                }
            }
        }
        if same_iter {
            return false;
        }

        // (c): strictly-between iterations.
        let m = self.cache.sets() * self.cache.line; // way size
        let window =
            Interval::new(s0 * self.cache.line, s0 * self.cache.line + self.cache.line - 1);
        let n0 = l0.div_euclid(self.cache.sets());
        let pieces = between_open(v_src, v_cur);
        for piece in &pieces {
            for region in &space.regions {
                let Some(bx) = piece.clip_to_box(&region.vbox) else {
                    continue;
                };
                if bx.is_empty() {
                    continue;
                }
                // Triangular spaces: drop or tighten pieces against the
                // shape constraints (no-op on rectangular spaces). The
                // residual over-approximation only errs towards blocked
                // reuse — conservative, never optimistic.
                let Some(bx) = space.refine_box(bx) else {
                    continue;
                };
                for form in addr {
                    let range = form.range_over(&bx);
                    // n values for which some address in range can fall in
                    // the window: addr − n·m ∈ window.
                    let n_min = div_ceil(range.lo - window.hi, m);
                    let n_max = div_floor(range.hi - window.lo, m);
                    if n_min > n_max {
                        continue;
                    }
                    if assoc == 1 {
                        // Direct-mapped: existence of any conflicting line.
                        for n_iv in [
                            Interval::new(n_min, (n0 - 1).min(n_max)),
                            Interval::new((n0 + 1).max(n_min), n_max),
                        ] {
                            if n_iv.is_empty() {
                                continue;
                            }
                            if self.piece_hits(form, &bx, n_iv, m, window) {
                                return true;
                            }
                        }
                    } else {
                        // k-way: count distinct lines (distinct n).
                        if n_max - n_min + 1 > self.line_enum_cap {
                            self.assoc_fallbacks += 1;
                            return true;
                        }
                        for n in n_min..=n_max {
                            if n == n0 {
                                continue;
                            }
                            let l = n * self.cache.sets() + s0;
                            if lines.contains(&l) {
                                continue;
                            }
                            if self.piece_hits(form, &bx, Interval::point(n), m, window)
                                && note_line(&mut lines, l)
                            {
                                return true;
                            }
                        }
                    }
                }
            }
        }
        false
    }

    /// `∃ j ∈ bx, n ∈ n_iv : form(j) − n·m ∈ window` via the interval-hit
    /// solver with `n` as an extra variable.
    fn piece_hits(
        &mut self,
        form: &AffineForm,
        bx: &IntBox,
        n_iv: Interval,
        m: i64,
        window: Interval,
    ) -> bool {
        let mut coeffs = form.coeffs.clone();
        coeffs.push(-m);
        let ext_form = AffineForm::new(coeffs, form.c0);
        let mut dims = bx.dims.clone();
        dims.push(n_iv);
        let ext_box = IntBox::new(dims);
        interval_hit(&ext_form, &ext_box, window, &mut self.budget).as_conservative_bool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_loopnest::builder::{sub, NestBuilder};
    use cme_loopnest::{ExecSpace, MemoryLayout};

    /// Two arrays that alias in a 64-byte direct-mapped cache with 8-byte
    /// lines: x and y are 64 bytes apart.
    fn aliased_pair() -> (cme_loopnest::LoopNest, MemoryLayout, ExecSpace) {
        let mut nb = NestBuilder::new("alias");
        let i = nb.add_loop("i", 1, 16);
        let x = nb.array("x", &[16]);
        let y = nb.array("y", &[16]);
        nb.read(x, &[sub(i)]);
        nb.read(y, &[sub(i)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        let space = ExecSpace::untiled(&nest);
        (nest, layout, space)
    }

    #[test]
    fn endpoint_conflict_detected() {
        let (nest, layout, space) = aliased_pair();
        let cache = CacheSpec::direct_mapped(64, 8);
        let addr: Vec<AffineForm> =
            layout.address_forms(&nest).iter().map(|f| space.lift_form(f)).collect();
        let mut eng = InterferenceEngine::new(cache, 10_000);
        // x(i) at iteration 2 reusing x(i−1)'s line from iteration 1:
        // x(1) is addr 0 (line 0), x(2) is addr 4 (line 0). Interfering
        // y(1) at addr 64 → line 8 → set 0: conflict.
        let l0 = cache.line_of(addr[0].eval(&[2]));
        assert_eq!(l0, 0);
        assert!(eng.blocks_reuse(&space, &addr, &[1], 0, &[2], 0, l0));
    }

    #[test]
    fn no_conflict_without_aliasing() {
        // Same nest, but a cache big enough that x and y never conflict.
        let (nest, layout, space) = aliased_pair();
        let cache = CacheSpec::direct_mapped(1024, 8);
        let addr: Vec<AffineForm> =
            layout.address_forms(&nest).iter().map(|f| space.lift_form(f)).collect();
        let mut eng = InterferenceEngine::new(cache, 10_000);
        let l0 = cache.line_of(addr[0].eval(&[2]));
        assert!(!eng.blocks_reuse(&space, &addr, &[1], 0, &[2], 0, l0));
    }

    #[test]
    fn two_way_cache_tolerates_single_conflict() {
        let (nest, layout, space) = aliased_pair();
        // 128-byte 2-way cache, 8-byte lines: 8 sets, way size 64. x(i)
        // and y(i) alias (64 apart) but 2 ways hold both.
        let cache = CacheSpec { size: 128, line: 8, assoc: 2 };
        let addr: Vec<AffineForm> =
            layout.address_forms(&nest).iter().map(|f| space.lift_form(f)).collect();
        let mut eng = InterferenceEngine::new(cache, 10_000);
        let l0 = cache.line_of(addr[0].eval(&[2]));
        assert!(
            !eng.blocks_reuse(&space, &addr, &[1], 0, &[2], 0, l0),
            "one intervening line must not evict in a 2-way cache"
        );
    }

    #[test]
    fn same_line_access_is_not_interference() {
        // Single array streamed: x(i) then x(i) again via a second ref.
        let mut nb = NestBuilder::new("dup");
        let i = nb.add_loop("i", 1, 8);
        let x = nb.array("x", &[8]);
        nb.read(x, &[sub(i)]);
        nb.read(x, &[sub(i)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        let space = ExecSpace::untiled(&nest);
        let cache = CacheSpec::direct_mapped(64, 8);
        let addr: Vec<AffineForm> =
            layout.address_forms(&nest).iter().map(|f| space.lift_form(f)).collect();
        let mut eng = InterferenceEngine::new(cache, 10_000);
        // Reuse of x(3) (ref 0) from x(2)... same line when both in line 1
        // (addresses 8..15 = elements 3,4).
        let l0 = cache.line_of(addr[0].eval(&[4]));
        assert_eq!(l0, cache.line_of(addr[0].eval(&[3])));
        assert!(!eng.blocks_reuse(&space, &addr, &[3], 0, &[4], 0, l0));
    }
}
