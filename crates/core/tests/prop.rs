//! Property test: on randomly generated uniform-reference nests, CME
//! classification must equal the exact cache simulator — per reference,
//! cold and replacement counts, untiled and tiled, direct-mapped and
//! 2-way.

use cme_cachesim::{simulate_nest, CacheGeometry};
use cme_core::{CacheSpec, CmeModel};
use cme_loopnest::builder::{sub, NestBuilder, SubExpr};
use cme_loopnest::{LoopNest, MemoryLayout, TileSizes};
use proptest::prelude::*;

/// Parameters of one random nest.
#[derive(Debug, Clone)]
struct NestPlan {
    spans: Vec<i64>,
    /// Per array: subscript pattern = permutation of loop vars (one per
    /// array dim) with constant offsets per ref.
    arrays: Vec<Vec<usize>>,
    /// Refs: (array, per-dim extra offset 0..=1, write?).
    refs: Vec<(usize, Vec<i64>, bool)>,
    tiles: Vec<i64>,
}

fn build(plan: &NestPlan) -> Option<(LoopNest, TileSizes)> {
    let mut nb = NestBuilder::new("prop");
    let vars: Vec<_> =
        plan.spans.iter().enumerate().map(|(t, &s)| nb.add_loop(format!("v{t}"), 1, s)).collect();
    let arr_ids: Vec<_> = plan
        .arrays
        .iter()
        .enumerate()
        .map(|(k, dims)| {
            // Extent: span of the chosen var + max offset (1).
            let extents: Vec<i64> = dims.iter().map(|&v| plan.spans[v] + 1).collect();
            nb.array(format!("a{k}"), &extents)
        })
        .collect();
    for (arr, offs, write) in &plan.refs {
        let dims = &plan.arrays[*arr];
        let subs: Vec<SubExpr> =
            dims.iter().zip(offs).map(|(&v, &o)| sub(vars[v]).plus(o)).collect();
        if *write {
            nb.write(arr_ids[*arr], &subs);
        } else {
            nb.read(arr_ids[*arr], &subs);
        }
    }
    let nest = nb.finish().ok()?;
    let tiles = TileSizes(plan.tiles.clone());
    tiles.validate(&nest).ok()?;
    Some((nest, tiles))
}

fn arb_plan() -> impl Strategy<Value = NestPlan> {
    (2usize..=3)
        .prop_flat_map(|depth| {
            let spans = prop::collection::vec(3i64..=7, depth);
            let arrays = prop::collection::vec(
                prop::collection::vec(0usize..depth, 1..=depth.min(2)),
                1..=2,
            );
            (spans, arrays)
        })
        .prop_flat_map(|(spans, arrays)| {
            let n_arrays = arrays.len();
            let depth = spans.len();
            let arrays2 = arrays.clone();
            let refs = prop::collection::vec(
                (0usize..n_arrays, prop::collection::vec(0i64..=1, depth), prop::bool::ANY),
                1..=3,
            )
            .prop_map(move |raw| {
                raw.into_iter()
                    .map(|(a, offs, w)| {
                        let rank = arrays2[a].len();
                        (a, offs[..rank].to_vec(), w)
                    })
                    .collect::<Vec<_>>()
            });
            let tiles = spans.iter().map(|&s| 1i64..=s).collect::<Vec<_>>();
            (Just(spans), Just(arrays), refs, tiles)
        })
        .prop_map(|(spans, arrays, refs, tiles)| NestPlan { spans, arrays, refs, tiles })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cme_equals_simulator_on_random_nests(plan in arb_plan()) {
        let Some((nest, tiles)) = build(&plan) else {
            return Ok(()); // e.g. out-of-bounds subscripts after offsets
        };
        let layout = MemoryLayout::contiguous(&nest);
        for (size, line, assoc) in [(128i64, 16i64, 1i64), (256, 32, 1), (128, 16, 2)] {
            for t in [None, Some(&tiles)] {
                let model = CmeModel::new(CacheSpec { size, line, assoc });
                let an = model.analyze(&nest, &layout, t);
                let cme = an.exhaustive();
                let sim = simulate_nest(&nest, &layout, t, CacheGeometry { size, line, assoc });
                prop_assert_eq!(cme.solver.fallbacks, 0);
                for (r, (c, s)) in cme.per_ref.iter().zip(&sim.per_ref).enumerate() {
                    prop_assert_eq!(
                        (c.cold, c.replacement),
                        (s.cold, s.replacement),
                        "plan {:?} cache ({},{},{}) tiles {:?} ref {}",
                        &plan, size, line, assoc, t, r
                    );
                }
            }
        }
    }
}
