//! Ground-truth validation: the CME classifier must reproduce the exact
//! cache simulator on uniform-reference kernels — per reference, cold and
//! replacement counts, for direct-mapped and set-associative caches,
//! untiled and tiled.
//!
//! This is the strongest property of the whole model: the paper's
//! evaluation trusts CMEs (validated in prior literature); here the
//! equivalence is machine-checked.

use cme_cachesim::{simulate_nest, CacheGeometry};
use cme_core::{CacheSpec, CmeModel};
use cme_kernels::{linalg, stencils, transposes};
use cme_loopnest::builder::{sub, NestBuilder};
use cme_loopnest::{LoopNest, MemoryLayout, TileSizes};

fn check(
    nest: &LoopNest,
    layout: &MemoryLayout,
    tiles: Option<&TileSizes>,
    size: i64,
    line: i64,
    assoc: i64,
) {
    let spec = CacheSpec { size, line, assoc };
    let geo = CacheGeometry { size, line, assoc };
    let model = CmeModel::new(spec);
    let an = model.analyze(nest, layout, tiles);
    let cme = an.exhaustive();
    let sim = simulate_nest(nest, layout, tiles, geo);
    assert_eq!(
        cme.solver.fallbacks, 0,
        "{}: solver fell back; validation requires exact answers",
        nest.name
    );
    for (r, (c, s)) in cme.per_ref.iter().zip(&sim.per_ref).enumerate() {
        assert_eq!(c.points, s.accesses, "{} ref {r}: access counts", nest.name);
        assert_eq!(
            (c.cold, c.replacement),
            (s.cold, s.replacement),
            "{} ref {r} (cache {size}B/{line}B/{assoc}-way, tiles {tiles:?}): CME vs simulator",
            nest.name
        );
    }
}

fn check_all_caches(nest: &LoopNest, tiles: Option<&TileSizes>) {
    let layout = MemoryLayout::contiguous(nest);
    for (size, line) in [(128, 16), (256, 32), (512, 32)] {
        for assoc in [1, 2] {
            check(nest, &layout, tiles, size, line, assoc);
        }
    }
}

#[test]
fn t2d_untiled_matches_simulator() {
    check_all_caches(&transposes::t2d(12), None);
}

#[test]
fn t2d_tiled_matches_simulator() {
    let nest = transposes::t2d(12);
    for tiles in [vec![4, 4], vec![3, 5], vec![5, 12], vec![1, 12], vec![12, 12]] {
        check_all_caches(&nest, Some(&TileSizes(tiles)));
    }
}

#[test]
fn t3d_small_matches_simulator() {
    check_all_caches(&transposes::t3djik(6), None);
    check_all_caches(&transposes::t3djik(6), Some(&TileSizes(vec![2, 3, 6])));
    check_all_caches(&transposes::t3dikj(6), None);
    check_all_caches(&transposes::t3dikj(6), Some(&TileSizes(vec![4, 2, 2])));
}

#[test]
fn mm_matches_simulator() {
    let nest = linalg::mm(8);
    check_all_caches(&nest, None);
    for tiles in [vec![2, 2, 8], vec![3, 3, 3], vec![8, 1, 4]] {
        check_all_caches(&nest, Some(&TileSizes(tiles)));
    }
}

#[test]
fn jacobi_matches_simulator() {
    let nest = stencils::jacobi3d(8);
    check_all_caches(&nest, None);
    check_all_caches(&nest, Some(&TileSizes(vec![3, 2, 4])));
}

#[test]
fn adi_matches_simulator() {
    let nest = stencils::adi(12);
    check_all_caches(&nest, None);
    check_all_caches(&nest, Some(&TileSizes(vec![4, 5])));
}

#[test]
fn matmul_matches_simulator() {
    let nest = linalg::matmul(7);
    check_all_caches(&nest, None);
    check_all_caches(&nest, Some(&TileSizes(vec![3, 3, 3])));
}

#[test]
fn padded_layouts_match_simulator() {
    // Padding changes bases and strides; the model must track both.
    let nest = transposes::t2d(12);
    let inter = vec![16, 48];
    let intra = vec![vec![3, 0], vec![0, 2]];
    let layout = MemoryLayout::with_padding(&nest, &inter, &intra);
    for assoc in [1, 2] {
        check(&nest, &layout, None, 256, 32, assoc);
        check(&nest, &layout, Some(&TileSizes(vec![5, 3])), 256, 32, assoc);
    }
}

#[test]
fn four_way_associative_matches() {
    let nest = linalg::mm(6);
    let layout = MemoryLayout::contiguous(&nest);
    check(&nest, &layout, None, 256, 32, 4);
    check(&nest, &layout, Some(&TileSizes(vec![2, 3, 4])), 256, 32, 4);
}

/// A strided/reversed-subscript kernel in the style of the BIHAR passes.
#[test]
fn strided_and_reversed_match_simulator() {
    let mut nb = NestBuilder::new("strided");
    let j = nb.add_loop("j", 1, 6);
    let k = nb.add_loop("k", 1, 8);
    let cc = nb.array("cc", &[12, 8]);
    let ch = nb.array("ch", &[8, 6]);
    nb.read(cc, &[sub(j).times(2).minus(1), sub(k)]);
    nb.read(cc, &[sub(j).times(2), sub(k)]);
    nb.write(ch, &[sub(k), sub(j)]);
    let nest = nb.finish().unwrap();
    check_all_caches(&nest, None);
    check_all_caches(&nest, Some(&TileSizes(vec![2, 3])));
}

/// Aliased-array ping-pong: the conflict-miss stress case.
#[test]
fn aliased_arrays_match_simulator() {
    let mut nb = NestBuilder::new("alias");
    let i = nb.add_loop("i", 1, 32);
    let j = nb.add_loop("j", 1, 8);
    let x = nb.array("x", &[32, 8]);
    let y = nb.array("y", &[32, 8]);
    nb.read(x, &[sub(i), sub(j)]);
    nb.read(y, &[sub(i), sub(j)]);
    nb.write(y, &[sub(i), sub(j)]);
    let nest = nb.finish().unwrap();
    // 1 KB cache: x and y (1 KB each) alias exactly.
    let layout = MemoryLayout::contiguous(&nest);
    for assoc in [1, 2] {
        check(&nest, &layout, None, 1024, 32, assoc);
        check(&nest, &layout, Some(&TileSizes(vec![8, 8])), 1024, 32, assoc);
    }
}
