//! Property tests for the sampling configuration: the paper's constants,
//! monotonicity of the sample-size formula and of the CI half-width —
//! the invariants the early-abandon rule leans on.

use cme_core::SamplingConfig;
use proptest::prelude::*;

/// Build a config with a half-width of `h_milli`/1000 and quantile
/// `z_centi`/100 (integer strategies sidestep float generation).
fn cfg(z_centi: u32, h_milli: u32) -> SamplingConfig {
    SamplingConfig {
        z: z_centi as f64 / 100.0,
        half_width: h_milli as f64 / 1000.0,
        ..SamplingConfig::paper()
    }
}

#[test]
fn paper_constants() {
    // 164 points for the paper's one-sided 90% setup, 271 two-sided.
    assert_eq!(SamplingConfig::paper().sample_size(), 164);
    assert_eq!(SamplingConfig::two_sided_90().sample_size(), 271);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A tighter interval (smaller half-width) never needs fewer points.
    #[test]
    fn sample_size_monotone_in_half_width(
        z in 50u32..300,
        h1 in 10u32..200,
        h2 in 10u32..200,
    ) {
        let (lo, hi) = (h1.min(h2), h1.max(h2));
        prop_assert!(cfg(z, lo).sample_size() >= cfg(z, hi).sample_size());
    }

    /// A higher confidence quantile never needs fewer points.
    #[test]
    fn sample_size_monotone_in_z(
        z1 in 50u32..300,
        z2 in 50u32..300,
        h in 10u32..200,
    ) {
        let (lo, hi) = (z1.min(z2), z1.max(z2));
        prop_assert!(cfg(hi, h).sample_size() >= cfg(lo, h).sample_size());
    }

    /// The formula delivers its design guarantee: at the computed sample
    /// size, the worst-case (p = ½) CI half-width is within the target.
    #[test]
    fn design_point_half_width_is_met(z in 50u32..300, h in 10u32..200) {
        let c = cfg(z, h);
        let n = c.sample_size();
        prop_assert!(c.ci_half_width(0.5, n) <= c.half_width + 1e-9);
    }

    /// The CI half-width shrinks (weakly) as the sample grows and peaks
    /// at p = ½ — the two facts that make the early-abandon lower bound
    /// conservative.
    #[test]
    fn ci_half_width_monotone_in_n_and_peaked_at_half(
        z in 50u32..300,
        p_milli in 0u32..=1000,
        n1 in 1u64..5000,
        n2 in 1u64..5000,
    ) {
        let c = cfg(z, 50);
        let p = p_milli as f64 / 1000.0;
        let (lo, hi) = (n1.min(n2), n1.max(n2));
        prop_assert!(c.ci_half_width(p, lo) >= c.ci_half_width(p, hi) - 1e-12);
        prop_assert!(c.ci_half_width(p, lo) <= c.ci_half_width(0.5, lo) + 1e-12);
    }

    /// An explicit override always wins over the formula.
    #[test]
    fn override_n_wins(z in 50u32..300, h in 10u32..200, n in 1u64..100_000) {
        let mut c = cfg(z, h);
        c.override_n = Some(n);
        prop_assert_eq!(c.sample_size(), n);
    }
}
