//! In-flight coalescing (singleflight): identical canonical request keys
//! arriving concurrently share one computation.
//!
//! The first caller for a key becomes the **leader** and runs the
//! computation; callers arriving while it runs become **followers** and
//! block on the leader's published result (a clone). When the leader
//! finishes, the flight is retired — later arrivals for the same key
//! start a fresh flight (by then the outcome cache answers them anyway).
//!
//! Error and panic propagation: an `Err` result is published to
//! followers exactly like an `Ok` (the value type is typically a
//! `Result`). A leader *panic* is caught by a drop guard that marks the
//! flight failed, wakes every follower (they observe
//! [`FlightResult::LeaderFailed`] and answer 500) and lets the unwind
//! continue in the leader's thread.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

enum SlotState<T> {
    Pending,
    Done(T),
    Failed,
}

struct Slot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

impl<T: Clone> Slot<T> {
    fn publish(&self, state: SlotState<T>) {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner) = state;
        self.cv.notify_all();
    }

    fn wait(&self) -> FlightResult<T> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*state {
                SlotState::Pending => {
                    state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
                SlotState::Done(value) => return FlightResult::Joined(value.clone()),
                SlotState::Failed => return FlightResult::LeaderFailed,
            }
        }
    }
}

/// How a [`Singleflight::run`] call was resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightResult<T> {
    /// This caller was the leader: it ran the computation.
    Led(T),
    /// This caller joined an in-flight leader and received its result.
    Joined(T),
    /// The joined leader panicked; no result exists for this flight.
    LeaderFailed,
}

/// Counters snapshot for `/metrics` (`coalescing` section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightStats {
    /// Computations led (one per distinct concurrent flight).
    pub leaders: u64,
    /// Calls that joined an in-flight leader instead of recomputing.
    pub followers: u64,
    /// Flights whose leader panicked.
    pub failures: u64,
    /// Flights currently in progress (gauge).
    pub in_flight: usize,
}

/// The coalescing group: one per value type, keyed by canonical request
/// key. `T` is cloned once per follower.
pub struct Singleflight<T> {
    slots: Mutex<HashMap<String, Arc<Slot<T>>>>,
    leaders: AtomicU64,
    followers: AtomicU64,
    failures: AtomicU64,
}

impl<T> Default for Singleflight<T> {
    fn default() -> Self {
        Singleflight {
            slots: Mutex::new(HashMap::new()),
            leaders: AtomicU64::new(0),
            followers: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }
}

/// Retires the leader's flight even if `compute` unwinds: on drop
/// without a published result the slot is marked failed, followers are
/// woken, and the key is freed for a fresh flight.
struct LeaderGuard<'a, T: Clone> {
    flight: &'a Singleflight<T>,
    key: &'a str,
    slot: &'a Arc<Slot<T>>,
    published: bool,
}

impl<T: Clone> Drop for LeaderGuard<'_, T> {
    fn drop(&mut self) {
        if !self.published {
            self.flight.failures.fetch_add(1, Ordering::Relaxed);
            self.slot.publish(SlotState::Failed);
        }
        self.flight.slots.lock().unwrap_or_else(PoisonError::into_inner).remove(self.key);
    }
}

impl<T: Clone> Singleflight<T> {
    pub fn new() -> Self {
        Singleflight::default()
    }

    /// Run `compute` for `key`, coalescing with any in-flight computation
    /// for the same key. Exactly one caller per flight executes
    /// `compute`; the rest block until its result (or failure) is
    /// published.
    pub fn run(&self, key: &str, compute: impl FnOnce() -> T) -> FlightResult<T> {
        let (slot, is_leader) = {
            let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
            match slots.get(key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Pending),
                        cv: Condvar::new(),
                    });
                    slots.insert(key.to_string(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if !is_leader {
            self.followers.fetch_add(1, Ordering::Relaxed);
            return slot.wait();
        }
        self.leaders.fetch_add(1, Ordering::Relaxed);
        let mut guard = LeaderGuard { flight: self, key, slot: &slot, published: false };
        let value = compute();
        guard.published = true;
        slot.publish(SlotState::Done(value.clone()));
        drop(guard);
        FlightResult::Led(value)
    }

    pub fn leaders(&self) -> u64 {
        self.leaders.load(Ordering::Relaxed)
    }

    pub fn followers(&self) -> u64 {
        self.followers.load(Ordering::Relaxed)
    }

    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    pub fn stats(&self) -> FlightStats {
        FlightStats {
            leaders: self.leaders(),
            followers: self.followers(),
            failures: self.failures(),
            in_flight: self.slots.lock().unwrap_or_else(PoisonError::into_inner).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn concurrent_identical_keys_compute_once() {
        const N: usize = 8;
        let flight = Singleflight::<u64>::new();
        let computed = AtomicU32::new(0);
        let gate = Barrier::new(N);
        let results: Vec<FlightResult<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..N)
                .map(|_| {
                    s.spawn(|| {
                        gate.wait();
                        flight.run("k", || {
                            computed.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for the
                            // other threads to join as followers.
                            std::thread::sleep(Duration::from_millis(50));
                            42
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "one leader computes");
        assert_eq!(flight.leaders(), 1);
        assert_eq!(flight.followers(), N as u64 - 1);
        for r in results {
            match r {
                FlightResult::Led(v) | FlightResult::Joined(v) => assert_eq!(v, 42),
                FlightResult::LeaderFailed => panic!("no failure occurred"),
            }
        }
        assert_eq!(flight.stats().in_flight, 0, "flight retired");
    }

    #[test]
    fn sequential_same_key_flights_do_not_coalesce() {
        let flight = Singleflight::<u64>::new();
        assert_eq!(flight.run("k", || 1), FlightResult::Led(1));
        assert_eq!(flight.run("k", || 2), FlightResult::Led(2), "retired flights restart");
        assert_eq!(flight.followers(), 0);
    }

    #[test]
    fn distinct_keys_run_independently() {
        let flight = Singleflight::<u64>::new();
        assert_eq!(flight.run("a", || 1), FlightResult::Led(1));
        assert_eq!(flight.run("b", || 2), FlightResult::Led(2));
        assert_eq!(flight.leaders(), 2);
    }

    #[test]
    fn errors_propagate_to_followers_as_values() {
        // The value type is a Result: an Err publishes like any value.
        let flight = Singleflight::<Result<u64, String>>::new();
        let r = flight.run("k", || Err("boom".to_string()));
        assert_eq!(r, FlightResult::Led(Err("boom".to_string())));
    }

    #[test]
    fn leader_panic_fails_followers_and_frees_the_key() {
        let flight = Singleflight::<u64>::new();
        let entered = Barrier::new(2);
        std::thread::scope(|s| {
            let leader = s.spawn(|| {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    flight.run("k", || {
                        entered.wait();
                        std::thread::sleep(Duration::from_millis(50));
                        panic!("leader died")
                    })
                }));
                assert!(r.is_err(), "the panic must resume unwinding in the leader");
            });
            let follower = s.spawn(|| {
                entered.wait();
                flight.run("k", || 7)
            });
            leader.join().expect("leader thread observed its own panic");
            let joined = follower.join().expect("follower must not panic");
            // The follower either joined the doomed flight (LeaderFailed)
            // or arrived after retirement and led its own (Led(7)).
            assert!(
                matches!(joined, FlightResult::LeaderFailed | FlightResult::Led(7)),
                "unexpected follower result: {joined:?}"
            );
        });
        assert_eq!(flight.failures(), 1);
        assert_eq!(flight.stats().in_flight, 0);
        // The key is reusable after the failure.
        assert_eq!(flight.run("k", || 9), FlightResult::Led(9));
    }
}
