//! The outcome memo-caches, keyed by the *canonical* serialisation of a
//! parsed request.
//!
//! Canonical means the key is produced by re-serialising the **parsed**
//! request, so two JSON bodies that differ in object key order,
//! whitespace, or spelled-out default fields collapse onto one entry.
//! Values are stored timing-stripped ([`Outcome::without_timing`]) — the
//! cached form is the canonical comparison form, and a hit is
//! byte-identical to a fresh run modulo `wall_ms`, which the service
//! layer re-stamps with the (near-zero) time the lookup took. Every
//! search in the suite is deterministic for a fixed request, which is
//! what makes memoisation sound in the first place.
//!
//! [`TieredOutcomeCache`] fronts the hot sharded LRU with an optional
//! persistent layer ([`DiskTier`]): misses fall through to disk, disk
//! hits are promoted back into the hot tier, inserts feed both.

use crate::lru::Lru;
use crate::persist::{DiskStats, DiskTier};
use cme_api::{CompareOutcome, CompareRequest, LintOutcome, LintRequest, OptimizeRequest, Outcome};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The cache key for a request: its serialised form after parsing, which
/// normalises field order and defaults. (Serialisation of a parsed
/// request cannot fail; the debug form is a defensive fallback, not a
/// second key space.)
pub fn canonical_key(req: &OptimizeRequest) -> String {
    // A spelled-out default estimator collapses onto the field-absent
    // form (same behaviour ⇒ same entry); non-default backends key
    // separately, since they produce different outcomes.
    if req.estimator == Some(cme_api::EstimatorSpec::default()) {
        let mut r = req.clone();
        r.estimator = None;
        return serde_json::to_string(&r).unwrap_or_else(|_| format!("unserialisable:{r:?}"));
    }
    serde_json::to_string(req).unwrap_or_else(|_| format!("unserialisable:{req:?}"))
}

/// The cache key for a lint request (same canonicalisation rule).
pub fn canonical_lint_key(req: &LintRequest) -> String {
    serde_json::to_string(req).unwrap_or_else(|_| format!("unserialisable:{req:?}"))
}

/// The cache key for a compare request. Two extra normalisations on top
/// of the canonical-serialisation rule: the base request's own
/// `strategy` field is pinned to a fixed value (the tournament ignores
/// it — `strategies` selects the entrants), and a spelled-out default
/// estimator collapses onto the field-absent form, both so requests that
/// answer identically share one entry.
pub fn canonical_compare_key(req: &CompareRequest) -> String {
    let mut r = req.clone();
    r.base.strategy = cme_api::StrategySpec::Tiling;
    if r.base.estimator == Some(cme_api::EstimatorSpec::default()) {
        r.base.estimator = None;
    }
    serde_json::to_string(&r).unwrap_or_else(|_| format!("unserialisable:{r:?}"))
}

/// Thread-safe LRU over independently locked [`Lru`] shards, plus hit
/// and eviction telemetry for `/metrics`. Capacity 0 disables caching
/// (lookups miss, inserts drop).
pub struct OutcomeCache {
    shards: Vec<Mutex<Lru>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl OutcomeCache {
    pub fn new(capacity: usize) -> Self {
        // Shard only when each shard stays big enough (≥ 32 entries) that
        // hot keys colliding on one shard cannot thrash a near-empty
        // cache; small capacities get a single shard. The remainder is
        // spread over the first shards so per-shard capacities sum to
        // exactly `capacity` — the configured bound is a hard ceiling.
        let shard_count = (capacity / 32).clamp(1, 8);
        let (base, rem) = (capacity / shard_count, capacity % shard_count);
        OutcomeCache {
            shards: (0..shard_count)
                .map(|i| Mutex::new(Lru::new(base + usize::from(i < rem))))
                .collect(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> MutexGuard<'_, Lru> {
        // DefaultHasher::new() is unkeyed, so shard placement is stable
        // across runs (replay-friendly).
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let i = (h.finish() % self.shards.len() as u64) as usize;
        self.shards[i].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a timing-stripped outcome, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<Outcome> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let found = self.shard(key).get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store the timing-stripped form of `outcome` under `key`.
    pub fn insert(&self, key: String, outcome: &Outcome) {
        if self.capacity == 0 {
            return;
        }
        if self.shard(&key).insert(key.clone(), outcome.without_timing()) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// Which tier answered a [`TieredOutcomeCache::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    Hot,
    Disk,
}

/// The hot sharded LRU backed by an optional persistent layer. All
/// reads and writes keep the timing-stripped invariant of the tiers
/// below.
pub struct TieredOutcomeCache {
    hot: OutcomeCache,
    disk: Option<DiskTier>,
}

impl TieredOutcomeCache {
    /// Memory-only (the pre-runtime behaviour).
    pub fn new(capacity: usize) -> Self {
        TieredOutcomeCache { hot: OutcomeCache::new(capacity), disk: None }
    }

    /// Hot tier backed by a persistent layer.
    pub fn with_disk(capacity: usize, disk: DiskTier) -> Self {
        TieredOutcomeCache { hot: OutcomeCache::new(capacity), disk: Some(disk) }
    }

    /// Look up a key across the tiers; a disk hit is promoted into the
    /// hot tier so the next lookup stays in memory.
    pub fn get_tiered(&self, key: &str) -> Option<(Outcome, Tier)> {
        if let Some(out) = self.hot.get(key) {
            return Some((out, Tier::Hot));
        }
        let out = self.disk.as_ref()?.get(key)?;
        self.hot.insert(key.to_string(), &out);
        Some((out, Tier::Disk))
    }

    /// Tier-blind lookup (the common call site).
    pub fn get(&self, key: &str) -> Option<Outcome> {
        self.get_tiered(key).map(|(out, _)| out)
    }

    /// Store in the hot tier and (when configured) queue for disk.
    pub fn insert(&self, key: String, outcome: &Outcome) {
        if let Some(disk) = &self.disk {
            disk.insert(&key, outcome);
        }
        self.hot.insert(key, outcome);
    }

    /// Flush the persistent layer (no-op without one); returns entries
    /// written.
    pub fn flush(&self) -> usize {
        self.disk.as_ref().map_or(0, DiskTier::flush)
    }

    /// Persistent-layer telemetry, when configured.
    pub fn disk_stats(&self) -> Option<DiskStats> {
        self.disk.as_ref().map(DiskTier::stats)
    }

    pub fn len(&self) -> usize {
        self.hot.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hot.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.hot.capacity()
    }

    /// Hot-tier hits (disk hits count as hot misses plus `disk.hits`).
    pub fn hits(&self) -> u64 {
        self.hot.hits()
    }

    pub fn misses(&self) -> u64 {
        self.hot.misses()
    }

    pub fn evictions(&self) -> u64 {
        self.hot.evictions()
    }
}

/// The `/lint` memo-cache: one mutex around an [`Lru`] of timing-stripped
/// [`LintOutcome`]s. Lints are dependence analysis only — orders of
/// magnitude cheaper than a search — so a single shard suffices; the
/// telemetry mirrors [`OutcomeCache`] for `/metrics`. Capacity 0
/// disables caching.
pub struct LintCache {
    lru: Mutex<Lru<String, LintOutcome>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl LintCache {
    pub fn new(capacity: usize) -> Self {
        LintCache {
            lru: Mutex::new(Lru::new(capacity.max(1))),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Lru<String, LintOutcome>> {
        self.lru.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a timing-stripped lint outcome, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<LintOutcome> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let found = self.lock().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store the timing-stripped form of `outcome` under `key`.
    pub fn insert(&self, key: String, outcome: &LintOutcome) {
        if self.capacity == 0 {
            return;
        }
        if self.lock().insert(key, outcome.without_timing()) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// The `/compare` memo-cache: one mutex around an [`Lru`] of
/// timing-stripped [`CompareOutcome`]s. Tournaments are few and large,
/// so a single shard suffices; the telemetry mirrors [`OutcomeCache`]
/// for `/metrics`. Capacity 0 disables caching.
pub struct CompareCache {
    lru: Mutex<Lru<String, CompareOutcome>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CompareCache {
    pub fn new(capacity: usize) -> Self {
        CompareCache {
            lru: Mutex::new(Lru::new(capacity.max(1))),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Lru<String, CompareOutcome>> {
        self.lru.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a timing-stripped tournament, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<CompareOutcome> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let found = self.lock().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store the timing-stripped form of `outcome` under `key`.
    pub fn insert(&self, key: String, outcome: &CompareOutcome) {
        if self.capacity == 0 {
            return;
        }
        if self.lock().insert(key, outcome.without_timing()) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod key_tests {
    use super::{canonical_compare_key, canonical_key};
    use cme_api::{CompareRequest, EstimatorSpec, NestSource, OptimizeRequest, StrategySpec};

    #[test]
    fn canonical_key_covers_the_estimator_field() {
        let base = OptimizeRequest::new(NestSource::kernel_sized("T2D", 32), StrategySpec::Tiling);
        let spelled_default = base.clone().with_estimator(EstimatorSpec::cme);
        let lattice = base.clone().with_estimator(EstimatorSpec::lattice);

        // A spelled-out default collapses onto the field-absent key —
        // same behaviour, one cache entry.
        assert_eq!(canonical_key(&base), canonical_key(&spelled_default));
        // A different backend produces different outcomes, so it must
        // key separately.
        assert_ne!(canonical_key(&base), canonical_key(&lattice));
        assert!(canonical_key(&lattice).contains("\"estimator\":\"lattice\""));
        assert!(!canonical_key(&base).contains("estimator"));
    }

    #[test]
    fn compare_key_ignores_the_base_strategy_and_collapses_the_estimator() {
        let base = OptimizeRequest::new(NestSource::kernel_sized("T2D", 32), StrategySpec::Tiling);
        let tournament = CompareRequest::new(base.clone());

        // The base request's own strategy is ignored by the tournament,
        // so spelling a different one must not split the cache entry.
        let mut other = tournament.clone();
        other.base.strategy = StrategySpec::Interchange;
        assert_eq!(canonical_compare_key(&tournament), canonical_compare_key(&other));

        // Estimator canonicalisation matches the optimize-key rule.
        let mut spelled = tournament.clone();
        spelled.base.estimator = Some(EstimatorSpec::cme);
        assert_eq!(canonical_compare_key(&tournament), canonical_compare_key(&spelled));
        let mut lattice = tournament.clone();
        lattice.base.estimator = Some(EstimatorSpec::lattice);
        assert_ne!(canonical_compare_key(&tournament), canonical_compare_key(&lattice));

        // A different line-up is a different tournament.
        let solo = tournament.clone().with_strategies(vec![StrategySpec::Tiling]);
        assert_ne!(canonical_compare_key(&tournament), canonical_compare_key(&solo));
    }
}
