//! The one bounded-map primitive every runtime tier builds on: a plain
//! single-threaded LRU, generic over key and value. `HashMap` for
//! lookup, an index-linked list through a slab of entries for recency
//! order; both `get` and `insert` are O(1).
//!
//! Shard-level locking, telemetry and policy live in the tiers
//! ([`crate::OutcomeCache`], [`crate::DisplacementCache`], …) — this type
//! is deliberately policy-free so one implementation (and one test
//! suite) backs them all.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A single-threaded LRU map (one shard of the concurrent tiers).
/// Defaults to the outcome cache's key/value types.
pub struct Lru<K = String, V = cme_api::Outcome> {
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> Lru<K, V> {
    pub fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::new(),
            entries: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.entries[i].prev, self.entries[i].next);
        match prev {
            NIL => self.head = next,
            p => self.entries[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.entries[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.entries[i].prev = NIL;
        self.entries[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.entries[h].prev = i,
        }
        self.head = i;
    }

    /// Look up and mark most-recently-used.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(&self.entries[i].value)
    }

    /// Insert or refresh; returns `true` when a least-recently-used entry
    /// was evicted to make room.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.entries[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        let mut evicted = false;
        let i = if self.map.len() >= self.capacity {
            // Reuse the LRU slot in place of allocating a new one.
            let i = self.tail;
            self.unlink(i);
            self.map.remove(&self.entries[i].key);
            self.entries[i].key.clone_from(&key);
            self.entries[i].value = value;
            evicted = true;
            i
        } else {
            self.entries.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
            self.entries.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Keys in recency order, most recent first (test/diagnostic helper).
    pub fn keys_by_recency(&self) -> Vec<&K> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            keys.push(&self.entries[i].key);
            i = self.entries[i].next;
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recency(lru: &Lru<String, u32>) -> Vec<&str> {
        lru.keys_by_recency().into_iter().map(String::as_str).collect()
    }

    #[test]
    fn evicts_least_recently_used_not_least_recently_inserted() {
        let mut lru: Lru<String, u32> = Lru::new(3);
        for (k, v) in [("a", 1u32), ("b", 2), ("c", 3)] {
            assert!(!lru.insert(k.into(), v));
        }
        // Touch `a`: recency becomes a, c, b.
        assert!(lru.get("a").is_some());
        assert_eq!(recency(&lru), ["a", "c", "b"]);
        // A fourth insert must evict `b`, the LRU — not `a`, the oldest.
        assert!(lru.insert("d".into(), 4));
        assert_eq!(lru.len(), 3);
        assert!(lru.get("b").is_none());
        assert_eq!(recency(&lru), ["d", "a", "c"]);
        // Re-inserting an existing key refreshes, never evicts.
        assert!(!lru.insert("c".into(), 33));
        assert_eq!(recency(&lru), ["c", "d", "a"]);
        assert_eq!(lru.get("c"), Some(&33));
    }

    #[test]
    fn non_string_keys_work() {
        let mut lru: Lru<(i64, i64), &'static str> = Lru::new(2);
        lru.insert((1, 2), "x");
        lru.insert((3, 4), "y");
        assert_eq!(lru.get(&(1, 2)), Some(&"x"));
        assert!(lru.insert((5, 6), "z"), "capacity 2 must evict");
        assert!(lru.get(&(3, 4)).is_none(), "(3,4) was the LRU");
        assert_eq!(lru.len(), 2);
    }
}
