//! The one bounded-map primitive every runtime tier builds on: a plain
//! single-threaded LRU, generic over key and value. `HashMap` for
//! lookup, an index-linked list through a slab of entries for recency
//! order; both `get` and `insert` are O(1).
//!
//! Shard-level locking, telemetry and policy live in the tiers
//! ([`crate::OutcomeCache`], [`crate::DisplacementCache`], …) — this type
//! is deliberately policy-free so one implementation (and one test
//! suite) backs them all.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A single-threaded LRU map (one shard of the concurrent tiers).
/// Defaults to the outcome cache's key/value types.
pub struct Lru<K = String, V = cme_api::Outcome> {
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> Lru<K, V> {
    pub fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::new(),
            entries: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.entries[i].prev, self.entries[i].next);
        match prev {
            NIL => self.head = next,
            p => self.entries[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.entries[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.entries[i].prev = NIL;
        self.entries[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.entries[h].prev = i,
        }
        self.head = i;
    }

    /// Look up and mark most-recently-used.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(&self.entries[i].value)
    }

    /// Insert or refresh; returns `true` when a least-recently-used entry
    /// was evicted to make room.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.entries[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        // The single clone point for a fresh key: the map and the slab
        // each need an owned copy, so one clone per new-key insert is the
        // floor — both branches below only *move* their copy.
        let slab_key = key.clone();
        let mut evicted = false;
        let i = if self.map.len() >= self.capacity {
            // Reuse the LRU slot in place of allocating a new one; the
            // displaced key comes *out* of the slot (no re-clone) just to
            // unmap it.
            let i = self.tail;
            self.unlink(i);
            let old = std::mem::replace(&mut self.entries[i].key, slab_key);
            self.map.remove(&old);
            self.entries[i].value = value;
            evicted = true;
            i
        } else {
            self.entries.push(Entry { key: slab_key, value, prev: NIL, next: NIL });
            self.entries.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Keys in recency order, most recent first (test/diagnostic helper).
    pub fn keys_by_recency(&self) -> Vec<&K> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            keys.push(&self.entries[i].key);
            i = self.entries[i].next;
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recency(lru: &Lru<String, u32>) -> Vec<&str> {
        lru.keys_by_recency().into_iter().map(String::as_str).collect()
    }

    #[test]
    fn evicts_least_recently_used_not_least_recently_inserted() {
        let mut lru: Lru<String, u32> = Lru::new(3);
        for (k, v) in [("a", 1u32), ("b", 2), ("c", 3)] {
            assert!(!lru.insert(k.into(), v));
        }
        // Touch `a`: recency becomes a, c, b.
        assert!(lru.get("a").is_some());
        assert_eq!(recency(&lru), ["a", "c", "b"]);
        // A fourth insert must evict `b`, the LRU — not `a`, the oldest.
        assert!(lru.insert("d".into(), 4));
        assert_eq!(lru.len(), 3);
        assert!(lru.get("b").is_none());
        assert_eq!(recency(&lru), ["d", "a", "c"]);
        // Re-inserting an existing key refreshes, never evicts.
        assert!(!lru.insert("c".into(), 33));
        assert_eq!(recency(&lru), ["c", "d", "a"]);
        assert_eq!(lru.get("c"), Some(&33));
    }

    /// A key that counts clones, so the insert paths can be audited.
    struct CountedKey {
        id: u64,
        clones: std::rc::Rc<std::cell::Cell<u64>>,
    }

    impl std::hash::Hash for CountedKey {
        fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
            self.id.hash(state);
        }
    }

    impl PartialEq for CountedKey {
        fn eq(&self, other: &Self) -> bool {
            self.id == other.id
        }
    }

    impl Eq for CountedKey {}

    impl Clone for CountedKey {
        fn clone(&self) -> Self {
            self.clones.set(self.clones.get() + 1);
            CountedKey { id: self.id, clones: std::rc::Rc::clone(&self.clones) }
        }
    }

    #[test]
    fn insert_clones_the_key_exactly_once_on_every_path() {
        let clones = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let key = |id: u64| CountedKey { id, clones: std::rc::Rc::clone(&clones) };

        let mut lru: Lru<CountedKey, u64> = Lru::new(2);
        // Growth path: map + slab each own a copy — one clone.
        assert!(!lru.insert(key(1), 10));
        assert_eq!(clones.get(), 1);
        assert!(!lru.insert(key(2), 20));
        assert_eq!(clones.get(), 2);
        // Eviction path: the displaced key moves out of the slot and the
        // new key moves in — still exactly one clone, no re-clone of
        // either key.
        assert!(lru.insert(key(3), 30));
        assert_eq!(clones.get(), 3);
        // Refresh path: the key already lives in the map — zero clones
        // (constructing the argument key above is not a clone).
        assert!(!lru.insert(key(3), 33));
        assert_eq!(clones.get(), 3, "refreshing an existing key must not clone");
        assert_eq!(lru.get(&key(3)), Some(&33));
        assert_eq!(clones.get(), 3, "get never clones");
    }

    /// Reference model: a `HashMap` for values plus a `VecDeque` in
    /// recency order (front = most recent). O(n) everywhere — obviously
    /// correct, and exactly what the slab/linked-list `Lru` must match.
    struct ModelLru {
        map: std::collections::HashMap<u64, u64>,
        recency: std::collections::VecDeque<u64>,
        capacity: usize,
    }

    impl ModelLru {
        fn new(capacity: usize) -> Self {
            ModelLru {
                map: std::collections::HashMap::new(),
                recency: std::collections::VecDeque::new(),
                capacity: capacity.max(1),
            }
        }

        fn touch(&mut self, key: u64) {
            self.recency.retain(|&k| k != key);
            self.recency.push_front(key);
        }

        fn get(&mut self, key: u64) -> Option<u64> {
            let v = *self.map.get(&key)?;
            self.touch(key);
            Some(v)
        }

        fn insert(&mut self, key: u64, value: u64) -> bool {
            if self.map.insert(key, value).is_some() {
                self.touch(key);
                return false;
            }
            let mut evicted = false;
            if self.map.len() > self.capacity {
                let lru = self.recency.pop_back().expect("over capacity ⇒ nonempty");
                self.map.remove(&lru);
                evicted = true;
            }
            self.recency.push_front(key);
            evicted
        }
    }

    #[test]
    fn model_based_random_trace_matches_the_reference() {
        // Deterministic xorshift so failures replay; small key universes
        // force constant collision/refresh/eviction traffic.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (capacity, universe) in [(1usize, 3u64), (2, 3), (3, 8), (7, 10), (16, 12), (8, 64)] {
            let mut lru: Lru<u64, u64> = Lru::new(capacity);
            let mut model = ModelLru::new(capacity);
            for step in 0..4_000u64 {
                let r = next();
                let key = r % universe;
                if r & 1 == 0 {
                    let got = lru.get(&key).copied();
                    let want = model.get(key);
                    assert_eq!(got, want, "get({key}) diverged at step {step} (cap {capacity})");
                } else {
                    let value = step;
                    let evicted = lru.insert(key, value);
                    let model_evicted = model.insert(key, value);
                    assert_eq!(
                        evicted, model_evicted,
                        "insert({key}) eviction diverged at step {step} (cap {capacity})"
                    );
                }
                assert_eq!(lru.len(), model.map.len(), "len diverged at step {step}");
                let order: Vec<u64> = lru.keys_by_recency().into_iter().copied().collect();
                let want: Vec<u64> = model.recency.iter().copied().collect();
                assert_eq!(order, want, "recency order diverged at step {step} (cap {capacity})");
            }
        }
    }

    #[test]
    fn non_string_keys_work() {
        let mut lru: Lru<(i64, i64), &'static str> = Lru::new(2);
        lru.insert((1, 2), "x");
        lru.insert((3, 4), "y");
        assert_eq!(lru.get(&(1, 2)), Some(&"x"));
        assert!(lru.insert((5, 6), "z"), "capacity 2 must evict");
        assert!(lru.get(&(3, 4)).is_none(), "(3,4) was the LRU");
        assert_eq!(lru.len(), 2);
    }
}
