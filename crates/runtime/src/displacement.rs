//! The process-wide displacement cache: the engine's per-request
//! `(coeffs, base-delta, line)` memo promoted to a bounded, shard-locked
//! global store.
//!
//! [`cme_core::reuse::original_displacements`] — the Diophantine half of
//! reuse-candidate generation — is a pure function of the
//! [`DisplacementKey`] (address coefficients, base-address delta, line
//! size, loop spans), so its results can be shared across requests,
//! worker threads and cache levels without any effect on outcomes:
//! byte-identity with the cache disabled is pinned by tests. Engines
//! still keep their per-request memo (no spans in the key, zero
//! contention within a request); this store only sees each distinct key
//! once per request, on the engine's local miss.
//!
//! Sharding and bounds mirror the outcome cache: per-shard LRUs whose
//! capacities sum exactly to the configured bound, shard placement by
//! the unkeyed `DefaultHasher` (stable across runs). Capacity 0 disables
//! the store (every lookup computes).

use crate::lru::Lru;
use cme_core::{DisplacementKey, DisplacementProvider};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

type Shard = Lru<DisplacementKey, Arc<Vec<Vec<i64>>>>;

/// Counters snapshot for `/metrics` (`displacement_cache` section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisplacementStats {
    pub entries: usize,
    pub capacity: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// Bounded sharded store of displacement sets, shared by every engine
/// the serve runtime builds. Implements [`DisplacementProvider`], the
/// seam `cme_core::EvalEngine` consults on local-memo misses.
pub struct DisplacementCache {
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl DisplacementCache {
    pub fn new(capacity: usize) -> Self {
        // Same sharding rule as the outcome cache: shard only when each
        // shard keeps ≥ 32 entries, and spread the remainder so per-shard
        // capacities sum to exactly `capacity`.
        let shard_count = (capacity / 32).clamp(1, 8);
        let (base, rem) = (capacity / shard_count, capacity % shard_count);
        DisplacementCache {
            shards: (0..shard_count)
                .map(|i| Mutex::new(Lru::new(base + usize::from(i < rem))))
                .collect(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &DisplacementKey) -> MutexGuard<'_, Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let i = (h.finish() % self.shards.len() as u64) as usize;
        self.shards[i].lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    pub fn stats(&self) -> DisplacementStats {
        DisplacementStats {
            entries: self.len(),
            capacity: self.capacity,
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
        }
    }
}

impl DisplacementProvider for DisplacementCache {
    /// Serve `key` from the store or compute (outside any lock) and
    /// retain the result. Two threads racing on the same key compute the
    /// same deterministic value; whichever inserts first wins and both
    /// return equal sets.
    fn get_or_compute(
        &self,
        key: &DisplacementKey,
        compute: &mut dyn FnMut() -> Vec<Vec<i64>>,
    ) -> Arc<Vec<Vec<i64>>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(compute());
        }
        if let Some(hit) = self.shard(key).get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(compute());
        let mut shard = self.shard(key);
        if let Some(raced) = shard.get(key) {
            // A concurrent request inserted the (identical) value while
            // we computed; keep the stored Arc so memory is shared.
            return Arc::clone(raced);
        }
        if shard.insert(key.clone(), Arc::clone(&fresh)) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(delta: i64) -> DisplacementKey {
        DisplacementKey { coeffs: vec![1, 64], delta, line: 32, spans: vec![64, 64] }
    }

    fn get(
        cache: &DisplacementCache,
        k: &DisplacementKey,
        computed: &mut u32,
    ) -> Arc<Vec<Vec<i64>>> {
        cache.get_or_compute(k, &mut || {
            *computed += 1;
            vec![vec![k.delta]]
        })
    }

    #[test]
    fn second_lookup_hits_without_recomputing() {
        let cache = DisplacementCache::new(64);
        let mut computed = 0;
        let a = get(&cache, &key(3), &mut computed);
        let b = get(&cache, &key(3), &mut computed);
        assert_eq!(computed, 1, "one computation for two lookups");
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a, &b), "hit returns the stored allocation");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_spans_are_distinct_keys() {
        // The per-engine memo omits spans (fixed per engine); the global
        // store must not — different iteration spaces may share
        // coefficients and deltas yet have different displacement sets.
        let cache = DisplacementCache::new(64);
        let mut computed = 0;
        let a = key(0);
        let mut b = key(0);
        b.spans = vec![32, 32];
        get(&cache, &a, &mut computed);
        get(&cache, &b, &mut computed);
        assert_eq!(computed, 2, "span variants must not alias");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_is_a_hard_ceiling_with_eviction_telemetry() {
        for capacity in [8usize, 13, 100] {
            let cache = DisplacementCache::new(capacity);
            let mut computed = 0;
            for d in 0..200 {
                get(&cache, &key(d), &mut computed);
            }
            assert!(cache.len() <= capacity, "len {} > capacity {capacity}", cache.len());
            assert!(cache.evictions() >= 200 - capacity as u64);
        }
    }

    #[test]
    fn zero_capacity_disables_the_store() {
        let cache = DisplacementCache::new(0);
        let mut computed = 0;
        get(&cache, &key(1), &mut computed);
        get(&cache, &key(1), &mut computed);
        assert_eq!(computed, 2, "disabled store always computes");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.hits(), 0);
    }
}
