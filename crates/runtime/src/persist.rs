//! The outcome cache's on-disk layer: an append-only JSON-lines file,
//! versioned by a schema fingerprint, loaded lazily and flushed on
//! shutdown.
//!
//! File format (`<cache-dir>/outcomes.jsonl`):
//!
//! ```text
//! {"schema":"<fingerprint>"}                 ← header line
//! {"key":"<canonical key>","outcome":{…}}    ← one entry per line
//! ```
//!
//! * **Versioned.** The header's fingerprint digests the serialised
//!   shape of a sentinel [`Outcome`] plus the crate version; a file
//!   written by an incompatible build is ignored wholesale (and
//!   rewritten on the next flush) instead of feeding stale bytes to
//!   clients.
//! * **Lazy.** Nothing is read at construction. The first lookup (or
//!   insert) scans the file once, building a key → byte-span index;
//!   outcome bodies stay on disk until a key actually hits, so start-up
//!   cost is one sequential read of the index, not a deserialisation of
//!   every stored outcome.
//! * **Append-only.** Inserts buffer in memory ([`DiskTier::flush`]
//!   appends them — called on `/shutdown` and SIGTERM). Within a file,
//!   later entries for a key shadow earlier ones; since every search is
//!   deterministic per canonical key, shadowed entries are byte-equal
//!   anyway and re-warming a key is skipped entirely.

use cme_api::Outcome;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// One persisted entry.
#[derive(Serialize, Deserialize)]
struct DiskLine {
    key: String,
    outcome: Outcome,
}

#[derive(Serialize, Deserialize)]
struct Header {
    schema: String,
}

/// Fingerprint of the persisted schema: the serialised shape of a
/// sentinel outcome (field names and structure, not values) plus the
/// crate version. Computed with the unkeyed `DefaultHasher`, which is
/// stable across processes of one build.
pub fn schema_fingerprint() -> String {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    // The sentinel always serialises; an empty shape would still
    // version by crate version below.
    let shape = serde_json::to_string(&sentinel_outcome()).unwrap_or_default();
    let mut h = DefaultHasher::new();
    shape.hash(&mut h);
    env!("CARGO_PKG_VERSION").hash(&mut h);
    format!("{:016x}", h.finish())
}

/// A fixed-value outcome whose JSON spells out the full field layout —
/// `Option` fields populated so renames/removals anywhere in the tree
/// change the fingerprint.
fn sentinel_outcome() -> Outcome {
    use cme_api::cme::estimate::SolverStats;
    use cme_api::cme::{CacheSpec, MissEstimate};
    use cme_api::Transform;
    let est = MissEstimate {
        n_samples: 1,
        volume: 1,
        exact: true,
        per_ref: Vec::new(),
        solver: SolverStats::default(),
        levels: None,
    };
    Outcome {
        strategy: "schema-probe".into(),
        kernel: "schema-probe".into(),
        cache: CacheSpec::paper_8k().into(),
        transform: Transform::default(),
        before: est.clone(),
        after: est,
        ga: None,
        explored: None,
        legality: None,
        wall_ms: 0,
    }
}

/// Byte span of one entry line within the file.
#[derive(Clone, Copy)]
struct Span {
    offset: u64,
    len: u64,
}

struct DiskState {
    /// Key → span of its (last) on-disk line. Empty when the file is
    /// absent or carries a foreign fingerprint.
    index: HashMap<String, Span>,
    /// Entries accepted since the last flush, in insertion order.
    pending: Vec<(String, String)>,
    /// The file must be rewritten from scratch on flush (absent, or its
    /// header named another schema).
    rewrite: bool,
}

/// Counters snapshot for `/metrics` (`cache.disk` section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    /// Whether the lazy index has been built yet.
    pub loaded: bool,
    /// Indexed on-disk entries plus unflushed pending entries (0 until
    /// loaded).
    pub entries: usize,
    pub hits: u64,
    pub misses: u64,
    /// Entries accepted for appending since start-up.
    pub appended: u64,
}

/// The persistent tier behind [`crate::TieredOutcomeCache`].
pub struct DiskTier {
    path: PathBuf,
    fingerprint: String,
    state: OnceLock<Mutex<DiskState>>,
    hits: AtomicU64,
    misses: AtomicU64,
    appended: AtomicU64,
}

impl DiskTier {
    /// A tier rooted at `dir` (created on first flush if absent).
    pub fn new(dir: &Path) -> Self {
        DiskTier {
            path: dir.join("outcomes.jsonl"),
            fingerprint: schema_fingerprint(),
            state: OnceLock::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            appended: AtomicU64::new(0),
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    fn loaded(&self) -> bool {
        self.state.get().is_some()
    }

    /// Build (once) and lock the index. A malformed or foreign-schema
    /// file yields an empty index marked for rewrite — stale bytes are
    /// never served.
    fn state(&self) -> MutexGuard<'_, DiskState> {
        self.state
            .get_or_init(|| Mutex::new(self.load()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn load(&self) -> DiskState {
        let empty = |rewrite| DiskState { index: HashMap::new(), pending: Vec::new(), rewrite };
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return empty(true);
        };
        let mut lines = text.split_inclusive('\n');
        let Some(header_line) = lines.next() else {
            return empty(true);
        };
        match serde_json::from_str::<Header>(header_line.trim_end()) {
            Ok(h) if h.schema == self.fingerprint => {}
            _ => return empty(true),
        }
        let mut index = HashMap::new();
        let mut offset = header_line.len() as u64;
        for line in lines {
            let span = Span { offset, len: line.trim_end().len() as u64 };
            offset += line.len() as u64;
            // Only the key is needed for the index; the outcome body is
            // parsed on demand. A line that fails to parse is skipped —
            // a torn final append must not poison the prior entries.
            if let Ok(entry) = serde_json::from_str::<DiskLine>(line.trim_end()) {
                index.insert(entry.key, span);
            }
        }
        DiskState { index, pending: Vec::new(), rewrite: false }
    }

    /// Look up a persisted outcome (timing-stripped form).
    pub fn get(&self, key: &str) -> Option<Outcome> {
        let span = {
            let state = self.state();
            match state.index.get(key) {
                Some(span) => *span,
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        };
        match self.read_span(span) {
            Some(entry) if entry.key == key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.outcome)
            }
            _ => {
                // The file changed under us or the span is torn; treat
                // as a miss rather than serving corrupt bytes.
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn read_span(&self, span: Span) -> Option<DiskLine> {
        let mut file = std::fs::File::open(&self.path).ok()?;
        file.seek(SeekFrom::Start(span.offset)).ok()?;
        let mut buf = vec![0u8; span.len as usize];
        file.read_exact(&mut buf).ok()?;
        let text = String::from_utf8(buf).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Accept an outcome for appending (buffered until [`Self::flush`]).
    /// Keys already on disk or already pending are skipped — re-warming
    /// a deterministic outcome never grows the file.
    pub fn insert(&self, key: &str, outcome: &Outcome) {
        let mut state = self.state();
        if state.index.contains_key(key) || state.pending.iter().any(|(k, _)| k == key) {
            return;
        }
        let Ok(json) = serde_json::to_string(&DiskLine {
            key: key.to_string(),
            outcome: outcome.without_timing(),
        }) else {
            return;
        };
        state.pending.push((key.to_string(), json));
        self.appended.fetch_add(1, Ordering::Relaxed);
    }

    /// Append pending entries (rewriting the file first when it was
    /// absent or foreign-schema). Best-effort: I/O failure leaves the
    /// pending buffer intact for a later flush. Returns the number of
    /// entries written.
    pub fn flush(&self) -> usize {
        let mut state = self.state();
        if state.pending.is_empty() && !state.rewrite {
            return 0;
        }
        if let Some(dir) = self.path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                return 0;
            }
        }
        let fresh = state.rewrite || !self.path.exists();
        let open = if fresh {
            std::fs::File::create(&self.path)
        } else {
            std::fs::OpenOptions::new().append(true).open(&self.path)
        };
        let Ok(mut file) = open else {
            return 0;
        };
        let mut offset = if fresh {
            let Ok(header) = serde_json::to_string(&Header { schema: self.fingerprint.clone() })
            else {
                return 0;
            };
            if file.write_all(header.as_bytes()).is_err() || file.write_all(b"\n").is_err() {
                return 0;
            }
            state.index.clear();
            header.len() as u64 + 1
        } else {
            match file.metadata() {
                Ok(m) => m.len(),
                Err(_) => return 0,
            }
        };
        let mut written = 0;
        let pending = std::mem::take(&mut state.pending);
        for (key, json) in pending {
            if file.write_all(json.as_bytes()).is_err() || file.write_all(b"\n").is_err() {
                // Keep the unwritten tail for a later retry.
                state.pending.push((key, json));
                continue;
            }
            state.index.insert(key, Span { offset, len: json.len() as u64 });
            offset += json.len() as u64 + 1;
            written += 1;
        }
        let _ = file.sync_all();
        state.rewrite = false;
        written
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    pub fn stats(&self) -> DiskStats {
        let entries = match self.state.get() {
            Some(m) => {
                let s = m.lock().unwrap_or_else(PoisonError::into_inner);
                s.index.len() + s.pending.len()
            }
            None => 0,
        };
        DiskStats {
            loaded: self.loaded(),
            entries,
            hits: self.hits(),
            misses: self.misses(),
            appended: self.appended(),
        }
    }
}
