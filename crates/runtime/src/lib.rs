//! cme-runtime — process-wide evaluation state for the serve layer.
//!
//! The engine layers below (`cme-core`, `cme-tileopt`, `cme-api`) are
//! deliberately per-request: build an engine, run a search, drop it.
//! This crate owns everything whose natural lifetime is the *process*:
//!
//! * [`DisplacementCache`] — the engine's per-request Diophantine memo
//!   promoted to a bounded, shard-locked global store, plugged into
//!   every engine through the [`cme_core::DisplacementProvider`] seam.
//! * [`Singleflight`] — in-flight coalescing: identical canonical
//!   request keys arriving concurrently share one computation.
//! * [`TieredOutcomeCache`] — the hot sharded outcome LRU backed by an
//!   optional append-only on-disk layer ([`DiskTier`]), versioned by a
//!   schema fingerprint and flushed on shutdown.
//! * [`LintCache`] — the (single-shard) `/lint` memo-cache.
//!
//! [`Runtime`] bundles the four plus a [`cme_api::Session`] wired to the
//! displacement store; the serve router drives requests through it.
//! Nothing here changes what a request answers — every tier stores
//! timing-stripped values and byte-identity with all tiers disabled is
//! pinned by tests — only how often the process recomputes.

#![forbid(unsafe_code)]

pub mod displacement;
pub mod flight;
pub mod lru;
pub mod outcome;
pub mod persist;

pub use displacement::{DisplacementCache, DisplacementStats};
pub use flight::{FlightResult, FlightStats, Singleflight};
pub use lru::Lru;
pub use outcome::{
    canonical_compare_key, canonical_key, canonical_lint_key, CompareCache, LintCache,
    OutcomeCache, Tier, TieredOutcomeCache,
};
pub use persist::{schema_fingerprint, DiskStats, DiskTier};

use cme_api::{
    ApiError, CompareOutcome, CompareRequest, LintOutcome, LintRequest, OptimizeRequest, Outcome,
    Session,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Sizing and persistence knobs for a [`Runtime`]. Entry counts are per
/// cache; 0 disables that cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Hot-tier outcome cache entries.
    pub outcome_entries: usize,
    /// Lint cache entries.
    pub lint_entries: usize,
    /// Compare (tournament) cache entries.
    pub compare_entries: usize,
    /// Process-wide displacement store entries.
    pub displacement_entries: usize,
    /// Directory for the persistent outcome tier; `None` = memory only.
    pub cache_dir: Option<PathBuf>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            outcome_entries: 1024,
            lint_entries: 1024,
            // Tournaments multiply the work of a single optimize request
            // by the line-up size, so even a shallow memo pays for itself.
            compare_entries: 256,
            // Displacement sets are small (a handful of short vectors)
            // and shared across every request touching the same array
            // shapes, so the default store is deeper than the outcome
            // caches.
            displacement_entries: 4096,
            cache_dir: None,
        }
    }
}

/// How an optimize request was answered, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Served from the hot outcome tier.
    CacheHot,
    /// Served from the persistent tier (and promoted).
    CacheDisk,
    /// Computed by this call (flight leader).
    Computed,
    /// Joined a concurrent identical computation.
    Coalesced,
    /// The joined flight's leader panicked.
    LeaderFailed,
}

/// Why [`Runtime::optimize`] failed: a request-level API error (maps to
/// the usual 4xx statuses) or a panicked flight leader (a server fault —
/// 500).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    Api(ApiError),
    LeaderFailed,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Api(e) => e.fmt(f),
            RuntimeError::LeaderFailed => {
                write!(f, "internal error: the coalesced computation for this request failed")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ApiError> for RuntimeError {
    fn from(e: ApiError) -> Self {
        RuntimeError::Api(e)
    }
}

/// The process-wide evaluation state: one per server process, shared by
/// every worker. All methods take `&self`.
pub struct Runtime {
    session: Session,
    displacements: Arc<DisplacementCache>,
    outcomes: TieredOutcomeCache,
    lints: LintCache,
    compares: CompareCache,
    flights: Singleflight<Result<Outcome, ApiError>>,
}

impl Runtime {
    pub fn new(config: &RuntimeConfig) -> Self {
        let displacements = Arc::new(DisplacementCache::new(config.displacement_entries));
        let session =
            Session::builder().displacement_provider(Arc::clone(&displacements) as _).build();
        let outcomes = match &config.cache_dir {
            Some(dir) => TieredOutcomeCache::with_disk(config.outcome_entries, DiskTier::new(dir)),
            None => TieredOutcomeCache::new(config.outcome_entries),
        };
        Runtime {
            session,
            displacements,
            outcomes,
            lints: LintCache::new(config.lint_entries),
            compares: CompareCache::new(config.compare_entries),
            flights: Singleflight::new(),
        }
    }

    /// The session every request runs through (its engines share the
    /// displacement store).
    pub fn session(&self) -> &Session {
        &self.session
    }

    pub fn displacements(&self) -> &DisplacementCache {
        &self.displacements
    }

    pub fn outcomes(&self) -> &TieredOutcomeCache {
        &self.outcomes
    }

    pub fn lints(&self) -> &LintCache {
        &self.lints
    }

    pub fn compares(&self) -> &CompareCache {
        &self.compares
    }

    pub fn flights(&self) -> &Singleflight<Result<Outcome, ApiError>> {
        &self.flights
    }

    /// Answer an optimize request through every tier: outcome cache
    /// (hot, then disk), then a coalesced computation. The outcome is
    /// the timing-stripped form; callers re-stamp `wall_ms`.
    pub fn optimize(&self, req: &OptimizeRequest) -> (Result<Outcome, RuntimeError>, Resolution) {
        let key = canonical_key(req);
        if let Some((hit, tier)) = self.outcomes.get_tiered(&key) {
            let how = match tier {
                Tier::Hot => Resolution::CacheHot,
                Tier::Disk => Resolution::CacheDisk,
            };
            return (Ok(hit), how);
        }
        match self.flights.run(&key, || self.session.run(req)) {
            FlightResult::Led(result) => {
                if let Ok(out) = &result {
                    self.outcomes.insert(key, out);
                }
                (
                    result.map(|out| out.without_timing()).map_err(RuntimeError::Api),
                    Resolution::Computed,
                )
            }
            FlightResult::Joined(result) => (
                result.map(|out| out.without_timing()).map_err(RuntimeError::Api),
                Resolution::Coalesced,
            ),
            FlightResult::LeaderFailed => {
                (Err(RuntimeError::LeaderFailed), Resolution::LeaderFailed)
            }
        }
    }

    /// Answer a lint request through the lint memo-cache.
    pub fn lint(&self, req: &LintRequest) -> (Result<LintOutcome, ApiError>, bool) {
        let key = canonical_lint_key(req);
        if let Some(hit) = self.lints.get(&key) {
            return (Ok(hit), true);
        }
        let result = self.session.lint(req);
        if let Ok(out) = &result {
            self.lints.insert(key, out);
        }
        (result.map(|out| out.without_timing()), false)
    }

    /// Answer a compare request: whole-tournament memo first, then
    /// per-family reuse of the outcome cache — only the families the
    /// outcome cache cannot answer are recomputed (as one parallel
    /// batch), and their fresh outcomes feed the outcome cache back, so
    /// a tournament also warms `/optimize` and vice versa. The outcome
    /// is timing-stripped; callers re-stamp `wall_ms`.
    pub fn compare(&self, req: &CompareRequest) -> (Result<CompareOutcome, ApiError>, bool) {
        let key = canonical_compare_key(req);
        if let Some(hit) = self.compares.get(&key) {
            return (Ok(hit), true);
        }
        if req.strategies.is_empty() {
            return (
                Err(ApiError::BadRequest("compare request needs at least one strategy".into())),
                false,
            );
        }
        let entrants: Vec<OptimizeRequest> =
            (0..req.strategies.len()).map(|k| req.entrant(k)).collect();
        let entrant_keys: Vec<String> = entrants.iter().map(canonical_key).collect();
        let mut outcomes: Vec<Option<Outcome>> =
            entrant_keys.iter().map(|k| self.outcomes.get(k)).collect();
        let missing: Vec<usize> = (0..outcomes.len()).filter(|&i| outcomes[i].is_none()).collect();
        let fresh: Vec<OptimizeRequest> = missing.iter().map(|&i| entrants[i].clone()).collect();
        for (&i, result) in missing.iter().zip(self.session.run_batch(&fresh)) {
            match result {
                Ok(out) => {
                    self.outcomes.insert(entrant_keys[i].clone(), &out);
                    outcomes[i] = Some(out.without_timing());
                }
                Err(e) => return (Err(e), false),
            }
        }
        let ranked = CompareOutcome::rank(outcomes.into_iter().flatten().collect(), 0);
        self.compares.insert(key, &ranked);
        (Ok(ranked), false)
    }

    /// Flush the persistent outcome tier (no-op without one); returns
    /// entries written.
    pub fn flush(&self) -> usize {
        self.outcomes.flush()
    }
}
