//! The runtime's semantic contract: process-wide state changes how often
//! the suite recomputes, never what it answers.
//!
//! * Displacement sharing is invisible — outcomes with the provider
//!   attached are byte-identical to outcomes without it.
//! * `Runtime::optimize` resolves through the tiers in order (hot disk
//!   compute) with the advertised [`Resolution`] labels.
//! * The persistent tier survives a process restart (modelled as a
//!   second `Runtime` over the same directory) and ignores files written
//!   under a foreign schema fingerprint.
//! * Concurrent identical requests coalesce onto one computation.

use cme_runtime::{Resolution, Runtime, RuntimeConfig};
use cme_suite_runtime_testutil::*;

mod cme_suite_runtime_testutil {
    use cme_api::cme::CacheSpec;
    use cme_api::{NestSource, OptimizeRequest, StrategySpec};
    use std::path::PathBuf;

    /// A small registry-kernel tiling request (deterministic per seed).
    pub fn tiling_request(n: i64, seed: u64) -> OptimizeRequest {
        OptimizeRequest::new(NestSource::kernel_sized("T2D", n), StrategySpec::Tiling)
            .with_cache(CacheSpec::direct_mapped(512, 32))
            .with_seed(seed)
    }

    /// A fresh scratch directory under the system temp dir.
    pub fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cme-runtime-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }
}

#[test]
fn displacement_sharing_is_byte_invisible() {
    let without = cme_api::Session::default();
    let shared = Runtime::new(&RuntimeConfig {
        outcome_entries: 0, // force every run through the engines
        ..RuntimeConfig::default()
    });
    for req in [tiling_request(24, 7), tiling_request(24, 7), tiling_request(20, 9)] {
        let plain = without.run(&req).expect("plain run succeeds");
        let (routed, _) = shared.optimize(&req);
        let routed = routed.expect("runtime run succeeds");
        assert_eq!(
            serde_json::to_string(&plain.without_timing()).expect("serialises"),
            serde_json::to_string(&routed.without_timing()).expect("serialises"),
            "provider on/off must be byte-identical"
        );
    }
    let stats = shared.displacements().stats();
    assert!(stats.misses > 0, "the engines consulted the store");
    assert!(
        stats.hits > 0,
        "the repeated request must hit displacement entries populated by the first"
    );
}

#[test]
fn tiers_resolve_in_order_hot_then_compute() {
    let rt = Runtime::new(&RuntimeConfig::default());
    let req = tiling_request(16, 3);
    let (first, how_first) = rt.optimize(&req);
    assert_eq!(how_first, Resolution::Computed);
    let (second, how_second) = rt.optimize(&req);
    assert_eq!(how_second, Resolution::CacheHot);
    assert_eq!(
        first.expect("computed"),
        second.expect("cached"),
        "cache hit is the timing-stripped computed outcome"
    );
    assert_eq!(rt.outcomes().hits(), 1);
    assert_eq!(rt.outcomes().misses(), 1);
}

#[test]
fn persistent_tier_survives_restart_and_promotes() {
    let dir = scratch_dir("roundtrip");
    let config = RuntimeConfig { cache_dir: Some(dir.clone()), ..RuntimeConfig::default() };
    let req = tiling_request(16, 5);
    // First process: compute, then flush on shutdown.
    let warm = {
        let rt = Runtime::new(&config);
        let (out, how) = rt.optimize(&req);
        assert_eq!(how, Resolution::Computed);
        assert_eq!(rt.flush(), 1, "one outcome flushed");
        out.expect("computed")
    };
    // Second process over the same directory: the first request is a
    // disk-tier hit, promoted so the next is hot.
    let rt = Runtime::new(&config);
    let (restored, how) = rt.optimize(&req);
    assert_eq!(how, Resolution::CacheDisk);
    assert_eq!(
        serde_json::to_string(&warm).expect("serialises"),
        serde_json::to_string(&restored.expect("disk hit")).expect("serialises"),
        "restart must reproduce the outcome byte for byte"
    );
    let disk = rt.outcomes().disk_stats().expect("disk tier configured");
    assert!(disk.loaded);
    assert_eq!((disk.entries, disk.hits), (1, 1));
    let (_, how) = rt.optimize(&req);
    assert_eq!(how, Resolution::CacheHot, "disk hit was promoted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_schema_files_are_ignored_not_served() {
    let dir = scratch_dir("foreign");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    std::fs::write(
        dir.join("outcomes.jsonl"),
        "{\"schema\":\"0000000000000000\"}\n{\"key\":\"k\",\"outcome\":{}}\n",
    )
    .expect("seed foreign file");
    let config = RuntimeConfig { cache_dir: Some(dir.clone()), ..RuntimeConfig::default() };
    let rt = Runtime::new(&config);
    let req = tiling_request(16, 5);
    let (_, how) = rt.optimize(&req);
    assert_eq!(how, Resolution::Computed, "foreign bytes must never answer");
    assert_eq!(rt.flush(), 1);
    // The rewritten file is now native: a fresh runtime reads it back.
    let rt2 = Runtime::new(&config);
    let (_, how) = rt2.optimize(&req);
    assert_eq!(how, Resolution::CacheDisk);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_identical_requests_coalesce() {
    const N: usize = 6;
    // Outcome cache off so every call reaches the flight group.
    let rt = Runtime::new(&RuntimeConfig { outcome_entries: 0, ..RuntimeConfig::default() });
    let req = tiling_request(24, 11);
    let gate = std::sync::Barrier::new(N);
    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                s.spawn(|| {
                    gate.wait();
                    let (out, _) = rt.optimize(&req);
                    serde_json::to_string(&out.expect("run succeeds").without_timing())
                        .expect("serialises")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panic")).collect()
    });
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "all coalesced answers are byte-identical");
    }
    let flights = rt.flights().stats();
    assert_eq!(
        flights.leaders + flights.followers,
        N as u64,
        "every call went through the flight group"
    );
    assert!(
        flights.followers > 0 || flights.leaders < N as u64,
        "with a barrier start, at least some calls must coalesce (leaders={}, followers={})",
        flights.leaders,
        flights.followers
    );
    assert_eq!(flights.in_flight, 0);
}
