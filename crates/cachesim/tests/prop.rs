//! Property tests: the production simulator must agree with a naive,
//! obviously-correct reference implementation on random traces, and obey
//! basic cache laws (inclusion of misses under shrinking associativity,
//! cold-miss counts equal to distinct lines touched).

use cme_cachesim::{AccessOutcome, CacheGeometry, Simulator};
use proptest::prelude::*;
use std::collections::HashSet;

/// Reference model: fully explicit LRU with timestamps.
struct RefCache {
    geo: CacheGeometry,
    time: u64,
    /// (set, line) -> last-use time, resident flag via membership.
    resident: Vec<Vec<(i64, u64)>>,
    touched: HashSet<i64>,
}

impl RefCache {
    fn new(geo: CacheGeometry) -> Self {
        RefCache {
            geo,
            time: 0,
            resident: vec![Vec::new(); geo.sets() as usize],
            touched: HashSet::new(),
        }
    }

    fn access(&mut self, addr: i64) -> AccessOutcome {
        self.time += 1;
        let line = self.geo.line_of(addr);
        let set = self.geo.set_of_line(line) as usize;
        let ways = &mut self.resident[set];
        if let Some(e) = ways.iter_mut().find(|(l, _)| *l == line) {
            e.1 = self.time;
            return AccessOutcome::Hit;
        }
        if ways.len() as i64 >= self.geo.assoc {
            // Evict the least recently used.
            let (idx, _) = ways.iter().enumerate().min_by_key(|(_, (_, t))| *t).unwrap();
            ways.swap_remove(idx);
        }
        ways.push((line, self.time));
        if self.touched.insert(line) {
            AccessOutcome::ColdMiss
        } else {
            AccessOutcome::ReplacementMiss
        }
    }
}

fn arb_geo() -> impl Strategy<Value = CacheGeometry> {
    (0usize..4, 0usize..3).prop_map(|(s, a)| {
        let (size, line) = [(64i64, 8i64), (128, 16), (256, 16), (256, 32)][s];
        let assoc = [1i64, 2, 4][a];
        CacheGeometry { size, line, assoc }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn simulator_matches_reference(
        geo in arb_geo(),
        trace in prop::collection::vec(0i64..1024, 1..300),
    ) {
        prop_assume!(geo.validate().is_ok());
        let mut sim = Simulator::new(geo);
        let mut reference = RefCache::new(geo);
        for &addr in &trace {
            prop_assert_eq!(sim.access(addr), reference.access(addr), "addr {}", addr);
        }
    }

    #[test]
    fn cold_misses_equal_distinct_lines(
        geo in arb_geo(),
        trace in prop::collection::vec(0i64..2048, 1..300),
    ) {
        prop_assume!(geo.validate().is_ok());
        let mut sim = Simulator::new(geo);
        let mut cold = 0u64;
        for &addr in &trace {
            if sim.access(addr) == AccessOutcome::ColdMiss {
                cold += 1;
            }
        }
        let distinct: HashSet<i64> = trace.iter().map(|&a| geo.line_of(a)).collect();
        prop_assert_eq!(cold as usize, distinct.len());
    }

    /// LRU stack inclusion: with the *same set count*, adding ways can
    /// never increase the miss count (each set's k-way LRU content is the
    /// top-k of its LRU stack). Note the capacity doubles with the ways —
    /// equal-capacity FA vs DM does NOT satisfy inclusion, which an
    /// earlier version of this property "discovered" the hard way.
    #[test]
    fn more_ways_same_sets_never_miss_more(
        trace in prop::collection::vec(0i64..1024, 1..300),
    ) {
        // 8 sets each: 128B 1-way, 256B 2-way, 512B 4-way.
        let geos = [
            CacheGeometry { size: 128, line: 16, assoc: 1 },
            CacheGeometry { size: 256, line: 16, assoc: 2 },
            CacheGeometry { size: 512, line: 16, assoc: 4 },
        ];
        let mut misses = [0u32; 3];
        for (k, geo) in geos.iter().enumerate() {
            let mut sim = Simulator::new(*geo);
            for &a in &trace {
                if sim.access(a) != AccessOutcome::Hit {
                    misses[k] += 1;
                }
            }
        }
        prop_assert!(misses[1] <= misses[0], "2-way ({}) > 1-way ({})", misses[1], misses[0]);
        prop_assert!(misses[2] <= misses[1], "4-way ({}) > 2-way ({})", misses[2], misses[1]);
    }
}
