//! The simulator proper: exact LRU set-associative cache over a trace.

use crate::geometry::CacheGeometry;
use crate::stats::{RefStats, SimReport};
use cme_loopnest::trace::for_each_access;
use cme_loopnest::{LoopNest, MemoryLayout, TileSizes};
use std::collections::HashSet;

/// Outcome of a single access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    Hit,
    /// Miss on a never-before-touched line.
    ColdMiss,
    /// Miss on a line that was previously resident (capacity/conflict).
    ReplacementMiss,
}

/// Exact LRU cache simulator.
///
/// Per set, lines are kept most-recently-used first; `assoc` bounds the
/// resident lines. Cold misses are identified with a global first-touch
/// set, matching the paper's definition of compulsory misses (which tiling
/// cannot change — §3.1).
pub struct Simulator {
    geo: CacheGeometry,
    sets: Vec<Vec<i64>>,
    touched: HashSet<i64>,
}

impl Simulator {
    pub fn new(geo: CacheGeometry) -> Self {
        geo.validate().expect("invalid cache geometry");
        Simulator { geo, sets: vec![Vec::new(); geo.sets() as usize], touched: HashSet::new() }
    }

    pub fn geometry(&self) -> CacheGeometry {
        self.geo
    }

    /// Access one byte address; returns the outcome and updates state.
    pub fn access(&mut self, addr: i64) -> AccessOutcome {
        self.access_reporting(addr).0
    }

    /// As [`Self::access`], additionally reporting the memory line this
    /// access evicted (if any) — what a hierarchy needs to maintain
    /// inclusion across levels.
    pub fn access_reporting(&mut self, addr: i64) -> (AccessOutcome, Option<i64>) {
        let line = self.geo.line_of(addr);
        let set = self.geo.set_of_line(line) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            // Hit: move to MRU position.
            ways[..=pos].rotate_right(1);
            return (AccessOutcome::Hit, None);
        }
        // Miss: insert at MRU, evict LRU if over capacity.
        ways.insert(0, line);
        let evicted = if ways.len() > self.geo.assoc as usize { ways.pop() } else { None };
        let outcome = if self.touched.insert(line) {
            AccessOutcome::ColdMiss
        } else {
            AccessOutcome::ReplacementMiss
        };
        (outcome, evicted)
    }

    /// Drop a memory line from the cache if resident (back-invalidation
    /// from an outer inclusive level). First-touch history is unaffected:
    /// a re-access is a replacement miss, not a cold one.
    pub fn invalidate_line(&mut self, line: i64) {
        let set = self.geo.set_of_line(line) as usize;
        self.sets[set].retain(|&l| l != line);
    }

    /// Reset cache contents and first-touch history.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.touched.clear();
    }
}

/// Simulate a (possibly tiled) nest and return per-reference statistics.
pub fn simulate_nest(
    nest: &LoopNest,
    layout: &MemoryLayout,
    tiles: Option<&TileSizes>,
    geo: CacheGeometry,
) -> SimReport {
    let mut sim = Simulator::new(geo);
    let mut per_ref = vec![RefStats::default(); nest.refs.len()];
    for_each_access(nest, layout, tiles, |a| {
        let s = &mut per_ref[a.ref_idx];
        s.accesses += 1;
        match sim.access(a.addr) {
            AccessOutcome::Hit => {}
            AccessOutcome::ColdMiss => s.cold += 1,
            AccessOutcome::ReplacementMiss => s.replacement += 1,
        }
    });
    SimReport { per_ref }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> CacheGeometry {
        // 4 sets × 1 way × 8-byte lines = 32 bytes.
        CacheGeometry { size: 32, line: 8, assoc: 1 }
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut sim = Simulator::new(tiny_cache());
        // Lines 0 and 4 map to set 0 and evict each other.
        assert_eq!(sim.access(0), AccessOutcome::ColdMiss);
        assert_eq!(sim.access(32), AccessOutcome::ColdMiss); // line 4, set 0
        assert_eq!(sim.access(0), AccessOutcome::ReplacementMiss);
        assert_eq!(sim.access(4), AccessOutcome::Hit); // same line as 0
    }

    #[test]
    fn two_way_lru() {
        let mut sim = Simulator::new(CacheGeometry { size: 32, line: 8, assoc: 2 });
        // 2 sets; lines 0, 2, 4 map to set 0.
        assert_eq!(sim.access(0), AccessOutcome::ColdMiss); // line 0
        assert_eq!(sim.access(16), AccessOutcome::ColdMiss); // line 2
        assert_eq!(sim.access(0), AccessOutcome::Hit);
        assert_eq!(sim.access(32), AccessOutcome::ColdMiss); // line 4 evicts LRU (line 2)
        assert_eq!(sim.access(0), AccessOutcome::Hit);
        assert_eq!(sim.access(16), AccessOutcome::ReplacementMiss);
    }

    #[test]
    fn spatial_hits_within_line() {
        let mut sim = Simulator::new(tiny_cache());
        assert_eq!(sim.access(0), AccessOutcome::ColdMiss);
        for a in 1..8 {
            assert_eq!(sim.access(a), AccessOutcome::Hit, "addr {a}");
        }
        assert_eq!(sim.access(8), AccessOutcome::ColdMiss);
    }

    #[test]
    fn reset_clears_history() {
        let mut sim = Simulator::new(tiny_cache());
        sim.access(0);
        sim.reset();
        assert_eq!(sim.access(0), AccessOutcome::ColdMiss);
    }

    #[test]
    fn simulate_streaming_nest() {
        use cme_loopnest::builder::{sub, NestBuilder};
        // do i = 1, 64: read x(i) — REAL*4, 8-byte lines ⇒ one cold miss
        // every 2 elements, no replacement misses.
        let mut nb = NestBuilder::new("stream");
        let i = nb.add_loop("i", 1, 64);
        let x = nb.array("x", &[64]);
        nb.read(x, &[sub(i)]);
        let nest = nb.finish().unwrap();
        let layout = MemoryLayout::contiguous(&nest);
        let rep = simulate_nest(&nest, &layout, None, tiny_cache());
        assert_eq!(rep.per_ref[0].accesses, 64);
        assert_eq!(rep.per_ref[0].cold, 32);
        assert_eq!(rep.per_ref[0].replacement, 0);
        assert!((rep.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fully_associative_behaves_as_lru_stack() {
        let geo = CacheGeometry { size: 32, line: 8, assoc: 4 }; // 1 set, 4 ways
        let mut sim = Simulator::new(geo);
        for l in 0..4 {
            assert_eq!(sim.access(l * 8), AccessOutcome::ColdMiss);
        }
        // Touch line 0 to make line 1 the LRU, then insert line 4.
        assert_eq!(sim.access(0), AccessOutcome::Hit);
        assert_eq!(sim.access(32), AccessOutcome::ColdMiss);
        assert_eq!(sim.access(8), AccessOutcome::ReplacementMiss); // line 1 was evicted
    }
}
