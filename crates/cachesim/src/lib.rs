#![forbid(unsafe_code)]
//! Trace-driven cache simulator: the ground-truth oracle.
//!
//! The paper's methodology reports *model-derived* miss ratios (Cache Miss
//! Equations, sampled). This crate provides what the original authors
//! validated against in prior work: an exact, trace-driven simulation of a
//! direct-mapped or k-way LRU cache, with misses classified as *cold*
//! (first touch of a memory line — the paper's compulsory misses) or
//! *replacement* (everything else: capacity + conflict). CME results are
//! validated point-by-point against this oracle in `cme-core`'s tests.

pub mod geometry;
pub mod hierarchy;
pub mod sim;
pub mod stats;

pub use geometry::CacheGeometry;
pub use hierarchy::{simulate_nest_hierarchy, HierarchyReport, HierarchySim, LevelGeometry};
pub use sim::{simulate_nest, AccessOutcome, Simulator};
pub use stats::{RefStats, SimReport};
