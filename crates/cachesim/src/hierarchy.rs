//! Inclusive multi-level trace simulation — the ground-truth oracle for
//! the hierarchy-aware CME analysis.
//!
//! Every level observes every access ("access-through"): each level
//! updates its own LRU state and fills the line on a miss, so a level's
//! miss stream is exactly what the standalone single-level simulator
//! would produce on the same trace — which is also what the per-level CME
//! analysis models. Inclusion is enforced on top: when an outer level
//! evicts a line, the victim is back-invalidated from every inner level.
//! For *nested* geometries (equal line size, outer sets a multiple of
//! inner sets, outer ways ≥ inner ways) the LRU stack property makes
//! back-invalidation provably never fire, every outer miss is also an
//! inner miss, and per-level miss counts are monotonically non-increasing
//! outward — the invariant the latency-monotonicity property tests lean
//! on.
//!
//! The weighted cost of a trace mirrors the CME objective: Σ per level of
//! replacement misses × that level's miss latency (cold misses excluded —
//! tiling cannot change them).

use crate::geometry::CacheGeometry;
use crate::sim::{AccessOutcome, Simulator};
use crate::stats::{RefStats, SimReport};
use cme_loopnest::trace::for_each_access;
use cme_loopnest::{LoopNest, MemoryLayout, TileSizes};
use serde::{Deserialize, Serialize};

/// One simulated level: a geometry plus the cost of a miss at this level
/// (the fetch from the next level out; memory for the last level).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelGeometry {
    pub geo: CacheGeometry,
    pub miss_latency: f64,
}

impl LevelGeometry {
    pub fn new(geo: CacheGeometry, miss_latency: f64) -> Self {
        LevelGeometry { geo, miss_latency }
    }
}

/// Exact inclusive multi-level LRU simulator.
pub struct HierarchySim {
    levels: Vec<(Simulator, f64)>,
}

impl HierarchySim {
    /// Build from levels ordered innermost (L1) first. Panics on an
    /// empty list or mismatched line sizes — back-invalidation is only
    /// well-defined when every level tracks the same line granularity.
    pub fn new(levels: &[LevelGeometry]) -> Self {
        assert!(!levels.is_empty(), "hierarchy simulator needs at least one level");
        let line = levels[0].geo.line;
        assert!(
            levels.iter().all(|l| l.geo.line == line),
            "hierarchy simulator requires one line size across levels"
        );
        HierarchySim {
            levels: levels.iter().map(|l| (Simulator::new(l.geo), l.miss_latency)).collect(),
        }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Access one byte address at every level (innermost first),
    /// returning the per-level outcomes. Evictions at an outer level
    /// back-invalidate the victim from every inner level, preserving
    /// inclusion.
    pub fn access(&mut self, addr: i64) -> Vec<AccessOutcome> {
        let mut outcomes = Vec::with_capacity(self.levels.len());
        self.access_with(addr, |_, outcome| outcomes.push(outcome));
        outcomes
    }

    /// Allocation-free access for the trace hot loop: `sink` receives
    /// `(level index, outcome)` for every level, innermost first.
    pub fn access_with(&mut self, addr: i64, mut sink: impl FnMut(usize, AccessOutcome)) {
        for k in 0..self.levels.len() {
            let (outcome, evicted) = self.levels[k].0.access_reporting(addr);
            if let Some(victim) = evicted {
                for inner in 0..k {
                    self.levels[inner].0.invalidate_line(victim);
                }
            }
            sink(k, outcome);
        }
    }
}

/// Per-level simulation outcome for a whole nest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyReport {
    /// One [`SimReport`] per level, innermost first.
    pub levels: Vec<SimReport>,
    /// The per-level miss latencies the weighted cost uses.
    pub miss_latencies: Vec<f64>,
}

impl HierarchyReport {
    /// The innermost (L1) level's report.
    pub fn l1(&self) -> &SimReport {
        &self.levels[0]
    }

    /// Latency-weighted replacement cost of the trace: Σ per level of
    /// replacement misses × miss latency — the exact counterpart of
    /// `MissEstimate::weighted_cost` in `cme-core`.
    pub fn weighted_cost(&self) -> f64 {
        self.levels
            .iter()
            .zip(&self.miss_latencies)
            .map(|(rep, lat)| rep.totals().replacement as f64 * lat)
            .sum()
    }
}

/// Simulate a (possibly tiled) nest through an inclusive hierarchy and
/// return per-reference statistics per level.
pub fn simulate_nest_hierarchy(
    nest: &LoopNest,
    layout: &MemoryLayout,
    tiles: Option<&TileSizes>,
    levels: &[LevelGeometry],
) -> HierarchyReport {
    let mut sim = HierarchySim::new(levels);
    let mut per_level = vec![vec![RefStats::default(); nest.refs.len()]; levels.len()];
    for_each_access(nest, layout, tiles, |a| {
        sim.access_with(a.addr, |k, outcome| {
            let s = &mut per_level[k][a.ref_idx];
            s.accesses += 1;
            match outcome {
                AccessOutcome::Hit => {}
                AccessOutcome::ColdMiss => s.cold += 1,
                AccessOutcome::ReplacementMiss => s.replacement += 1,
            }
        });
    });
    HierarchyReport {
        levels: per_level.into_iter().map(|per_ref| SimReport { per_ref }).collect(),
        miss_latencies: levels.iter().map(|l| l.miss_latency).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_nest;
    use cme_loopnest::builder::{sub, NestBuilder};

    fn t2d(n: i64) -> LoopNest {
        let mut nb = NestBuilder::new(format!("t2d_{n}"));
        let i = nb.add_loop("i", 1, n);
        let j = nb.add_loop("j", 1, n);
        let a = nb.array("a", &[n, n]);
        let b = nb.array("b", &[n, n]);
        nb.read(b, &[sub(i), sub(j)]);
        nb.write(a, &[sub(j), sub(i)]);
        nb.finish().unwrap()
    }

    #[test]
    fn single_level_hierarchy_equals_plain_simulator() {
        let nest = t2d(24);
        let layout = MemoryLayout::contiguous(&nest);
        let geo = CacheGeometry::direct_mapped(1024, 32);
        let plain = simulate_nest(&nest, &layout, None, geo);
        let hier = simulate_nest_hierarchy(&nest, &layout, None, &[LevelGeometry::new(geo, 1.0)]);
        assert_eq!(hier.levels[0], plain);
        assert_eq!(hier.weighted_cost(), plain.totals().replacement as f64);
    }

    #[test]
    fn nested_outer_level_filters_misses_without_back_invalidation() {
        // L2 = same line, 4× the sets, 2× the ways: nested geometry, so
        // L1 behaviour is untouched and L2 misses ⊆ L1 misses per access.
        let nest = t2d(24);
        let layout = MemoryLayout::contiguous(&nest);
        let l1 = CacheGeometry::direct_mapped(1024, 32);
        let l2 = CacheGeometry { size: 8192, line: 32, assoc: 2 };
        let hier = simulate_nest_hierarchy(
            &nest,
            &layout,
            None,
            &[LevelGeometry::new(l1, 10.0), LevelGeometry::new(l2, 80.0)],
        );
        // L1 stream identical to the standalone simulation.
        assert_eq!(hier.levels[0], simulate_nest(&nest, &layout, None, l1));
        // And so is L2's (access-through + nested geometry ⇒ no
        // back-invalidation anywhere).
        assert_eq!(hier.levels[1], simulate_nest(&nest, &layout, None, l2));
        let (t1, t2) = (hier.levels[0].totals(), hier.levels[1].totals());
        assert!(t2.misses() <= t1.misses(), "outer level must filter");
        assert!(t2.replacement <= t1.replacement);
        assert_eq!(t1.accesses, t2.accesses);
    }

    #[test]
    fn weighted_cost_weights_each_level() {
        let nest = t2d(16);
        let layout = MemoryLayout::contiguous(&nest);
        let l1 = CacheGeometry::direct_mapped(512, 32);
        let l2 = CacheGeometry { size: 4096, line: 32, assoc: 2 };
        let hier = simulate_nest_hierarchy(
            &nest,
            &layout,
            None,
            &[LevelGeometry::new(l1, 3.0), LevelGeometry::new(l2, 7.0)],
        );
        let expect = hier.levels[0].totals().replacement as f64 * 3.0
            + hier.levels[1].totals().replacement as f64 * 7.0;
        assert_eq!(hier.weighted_cost(), expect);
    }

    #[test]
    fn back_invalidation_enforces_inclusion_on_hostile_geometries() {
        // A *smaller* outer level (not nested): evictions there must
        // back-invalidate L1 so the hierarchy stays inclusive.
        let mut sim = HierarchySim::new(&[
            LevelGeometry::new(CacheGeometry { size: 64, line: 8, assoc: 8 }, 1.0), // 1 set, 8 ways
            LevelGeometry::new(CacheGeometry { size: 16, line: 8, assoc: 2 }, 1.0), // 1 set, 2 ways
        ]);
        // Fill L2 (2 ways) with lines 0 and 1; line 2 evicts line 0 from
        // L2, which must also leave L1.
        sim.access(0);
        sim.access(8);
        sim.access(16);
        let outcomes = sim.access(0);
        assert_eq!(
            outcomes[0],
            AccessOutcome::ReplacementMiss,
            "line 0 was back-invalidated from L1 by L2's eviction"
        );
    }

    #[test]
    fn mismatched_line_sizes_are_rejected() {
        let result = std::panic::catch_unwind(|| {
            HierarchySim::new(&[
                LevelGeometry::new(CacheGeometry::direct_mapped(1024, 32), 1.0),
                LevelGeometry::new(CacheGeometry::direct_mapped(8192, 64), 1.0),
            ])
        });
        assert!(result.is_err());
    }
}
