//! Cache geometry: size, line size, associativity, and address mapping.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size: i64,
    /// Line (block) size in bytes.
    pub line: i64,
    /// Ways per set (1 = direct-mapped).
    pub assoc: i64,
}

impl CacheGeometry {
    /// A direct-mapped cache.
    pub fn direct_mapped(size: i64, line: i64) -> Self {
        CacheGeometry { size, line, assoc: 1 }
    }

    /// The paper's primary configuration: 8 KB direct-mapped, 32-byte
    /// lines (Table 2, Fig. 8).
    pub fn paper_8k() -> Self {
        CacheGeometry::direct_mapped(8 * 1024, 32)
    }

    /// The paper's secondary configuration: 32 KB direct-mapped, 32-byte
    /// lines (Fig. 9).
    pub fn paper_32k() -> Self {
        CacheGeometry::direct_mapped(32 * 1024, 32)
    }

    /// A k-way set-associative variant of `self`.
    pub fn with_assoc(self, assoc: i64) -> Self {
        CacheGeometry { assoc, ..self }
    }

    /// Number of sets.
    pub fn sets(&self) -> i64 {
        self.size / (self.line * self.assoc)
    }

    /// Number of lines the cache can hold.
    pub fn lines(&self) -> i64 {
        self.size / self.line
    }

    /// Memory line of a byte address.
    pub fn line_of(&self, addr: i64) -> i64 {
        addr.div_euclid(self.line)
    }

    /// Cache set of a memory line.
    pub fn set_of_line(&self, line: i64) -> i64 {
        line.rem_euclid(self.sets())
    }

    /// Cache set of a byte address.
    pub fn set_of_addr(&self, addr: i64) -> i64 {
        self.set_of_line(self.line_of(addr))
    }

    /// Validate the geometry: positive power-of-two sizes, line divides
    /// size, associativity divides the line count.
    pub fn validate(&self) -> Result<(), String> {
        if self.size <= 0 || self.line <= 0 || self.assoc <= 0 {
            return Err("cache parameters must be positive".into());
        }
        if self.size % self.line != 0 {
            return Err("line size must divide cache size".into());
        }
        if (self.size / self.line) % self.assoc != 0 {
            return Err("associativity must divide the number of lines".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        let c = CacheGeometry::paper_8k();
        assert_eq!(c.sets(), 256);
        assert_eq!(c.lines(), 256);
        assert!(c.validate().is_ok());
        let c32 = CacheGeometry::paper_32k();
        assert_eq!(c32.sets(), 1024);
    }

    #[test]
    fn mapping() {
        let c = CacheGeometry::paper_8k();
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(31), 0);
        assert_eq!(c.line_of(32), 1);
        assert_eq!(c.set_of_addr(32), 1);
        // Wrap-around: address one cache-size later maps to the same set.
        assert_eq!(c.set_of_addr(100), c.set_of_addr(100 + 8192));
        assert_ne!(c.line_of(100), c.line_of(100 + 8192));
    }

    #[test]
    fn associative_sets() {
        let c = CacheGeometry::paper_8k().with_assoc(2);
        assert_eq!(c.sets(), 128);
        assert!(c.validate().is_ok());
        assert!(CacheGeometry { size: 100, line: 32, assoc: 1 }.validate().is_err());
    }
}
