//! Miss statistics, per reference and aggregated.

use serde::{Deserialize, Serialize};

/// Access/miss counters for one reference (or one aggregate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefStats {
    pub accesses: u64,
    /// First touch of a memory line (compulsory misses).
    pub cold: u64,
    /// Misses on previously touched lines (capacity + conflict).
    pub replacement: u64,
}

impl RefStats {
    pub fn misses(&self) -> u64 {
        self.cold + self.replacement
    }

    pub fn hits(&self) -> u64 {
        self.accesses - self.misses()
    }

    /// Total miss ratio (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Replacement miss ratio — the paper's optimisation target.
    pub fn replacement_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.replacement as f64 / self.accesses as f64
        }
    }

    pub fn merge(&mut self, other: &RefStats) {
        self.accesses += other.accesses;
        self.cold += other.cold;
        self.replacement += other.replacement;
    }
}

/// Simulation outcome for a whole nest.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    pub per_ref: Vec<RefStats>,
}

impl SimReport {
    pub fn totals(&self) -> RefStats {
        let mut t = RefStats::default();
        for r in &self.per_ref {
            t.merge(r);
        }
        t
    }

    pub fn miss_ratio(&self) -> f64 {
        self.totals().miss_ratio()
    }

    pub fn replacement_ratio(&self) -> f64 {
        self.totals().replacement_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = RefStats { accesses: 100, cold: 10, replacement: 15 };
        assert_eq!(s.misses(), 25);
        assert_eq!(s.hits(), 75);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.replacement_ratio() - 0.15).abs() < 1e-12);
        assert_eq!(RefStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn merge_and_totals() {
        let mut a = RefStats { accesses: 10, cold: 2, replacement: 1 };
        a.merge(&RefStats { accesses: 30, cold: 3, replacement: 6 });
        assert_eq!(a, RefStats { accesses: 40, cold: 5, replacement: 7 });
        let rep =
            SimReport { per_ref: vec![a, RefStats { accesses: 60, cold: 0, replacement: 0 }] };
        assert_eq!(rep.totals().accesses, 100);
        assert!((rep.replacement_ratio() - 0.07).abs() < 1e-12);
    }
}
