//! Closed integer intervals `[lo, hi]` with exact (widening) arithmetic.

use serde::{Deserialize, Serialize};

/// A closed integer interval `[lo, hi]`. Empty iff `lo > hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    pub lo: i64,
    pub hi: i64,
}

impl Interval {
    /// The interval `[lo, hi]`.
    pub const fn new(lo: i64, hi: i64) -> Self {
        Interval { lo, hi }
    }

    /// The single-point interval `[v, v]`.
    pub const fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// A canonical empty interval.
    pub const fn empty() -> Self {
        Interval { lo: 1, hi: 0 }
    }

    /// True iff the interval contains no integers.
    pub const fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Number of integers in the interval (0 if empty).
    pub fn len(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.hi as i128 - self.lo as i128 + 1) as u64
        }
    }

    /// True iff `v` lies in the interval.
    pub const fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Intersection of two intervals (possibly empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Smallest interval containing both (the convex hull of the union).
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Translate by `d`.
    pub fn shift(&self, d: i64) -> Interval {
        if self.is_empty() {
            *self
        } else {
            Interval::new(self.lo + d, self.hi + d)
        }
    }

    /// Pointwise multiplication by a scalar (may swap endpoints).
    pub fn scale(&self, k: i64) -> Interval {
        if self.is_empty() {
            return Interval::empty();
        }
        let a = self.lo.checked_mul(k).expect("interval scale overflow");
        let b = self.hi.checked_mul(k).expect("interval scale overflow");
        Interval::new(a.min(b), a.max(b))
    }

    /// Minkowski sum `{ a + b : a ∈ self, b ∈ other }`.
    pub fn add(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Tightest interval containing all multiples of `g` inside `self`
    /// divided by `g`: `{ v/g : v ∈ self, g | v }`. Empty if no multiple of
    /// `g > 0` lies in the interval.
    pub fn div_exact(&self, g: i64) -> Interval {
        assert!(g > 0, "div_exact requires positive divisor");
        Interval::new(
            self.lo.div_euclid(g) + i64::from(self.lo.rem_euclid(g) != 0),
            self.hi.div_euclid(g),
        )
    }

    /// Iterate the integers of the interval in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.lo..=self.hi
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = Interval::new(2, 5);
        assert_eq!(a.len(), 4);
        assert!(a.contains(2) && a.contains(5) && !a.contains(6));
        assert!(Interval::empty().is_empty());
        assert_eq!(a.intersect(&Interval::new(4, 9)), Interval::new(4, 5));
        assert!(a.intersect(&Interval::new(6, 9)).is_empty());
        assert_eq!(a.hull(&Interval::new(7, 8)), Interval::new(2, 8));
        assert_eq!(a.shift(-2), Interval::new(0, 3));
    }

    #[test]
    fn scale_swaps_endpoints_for_negative_factor() {
        assert_eq!(Interval::new(2, 5).scale(-3), Interval::new(-15, -6));
        assert_eq!(Interval::new(-1, 4).scale(0), Interval::new(0, 0));
    }

    #[test]
    fn div_exact_finds_multiples() {
        // Multiples of 4 in [5, 14] are {8, 12} -> divided: [2, 3].
        assert_eq!(Interval::new(5, 14).div_exact(4), Interval::new(2, 3));
        // No multiple of 7 in [8, 13].
        assert!(Interval::new(8, 13).div_exact(7).is_empty());
        // Negative range: multiples of 3 in [-7, -2] are {-6, -3}.
        assert_eq!(Interval::new(-7, -2).div_exact(3), Interval::new(-2, -1));
    }

    #[test]
    fn empty_interval_len_zero() {
        assert_eq!(Interval::empty().len(), 0);
        assert_eq!(Interval::new(3, 3).len(), 1);
    }

    #[test]
    fn minkowski_add() {
        assert_eq!(Interval::new(1, 2).add(&Interval::new(-3, 4)), Interval::new(-2, 6));
        assert!(Interval::empty().add(&Interval::new(0, 1)).is_empty());
    }
}
