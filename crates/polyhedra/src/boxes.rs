//! Integer boxes (products of intervals).
//!
//! Boxes are the central geometric object of the fast CME solver: untiled
//! iteration spaces are boxes, and each convex region of a tiled iteration
//! space is a box in (block, intra-tile-offset) coordinates.

use crate::interval::Interval;
use serde::{Deserialize, Serialize};

/// A product of closed integer intervals, one per variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntBox {
    pub dims: Vec<Interval>,
}

impl IntBox {
    /// Build from per-dimension intervals.
    pub fn new(dims: Vec<Interval>) -> Self {
        IntBox { dims }
    }

    /// The box `[0, size_t - 1]` per dimension.
    pub fn from_sizes(sizes: &[i64]) -> Self {
        IntBox { dims: sizes.iter().map(|&s| Interval::new(0, s - 1)).collect() }
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// True iff any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(Interval::is_empty)
    }

    /// Number of integer points (saturating at `u64::MAX`).
    pub fn volume(&self) -> u64 {
        let mut v: u128 = 1;
        for iv in &self.dims {
            v = v.saturating_mul(iv.len() as u128);
            if v == 0 {
                return 0;
            }
        }
        u64::try_from(v).unwrap_or(u64::MAX)
    }

    /// True iff the point lies inside the box.
    pub fn contains(&self, x: &[i64]) -> bool {
        debug_assert_eq!(x.len(), self.dims.len());
        self.dims.iter().zip(x).all(|(iv, v)| iv.contains(*v))
    }

    /// Whether the intersection with `other` is non-empty, without
    /// materialising it.
    pub fn overlaps(&self, other: &IntBox) -> bool {
        debug_assert_eq!(self.dims.len(), other.dims.len());
        !self.is_empty()
            && !other.is_empty()
            && self.dims.iter().zip(&other.dims).all(|(a, b)| a.lo <= b.hi && b.lo <= a.hi)
    }

    /// Component-wise intersection (possibly empty).
    pub fn intersect(&self, other: &IntBox) -> IntBox {
        debug_assert_eq!(self.dims.len(), other.dims.len());
        IntBox { dims: self.dims.iter().zip(&other.dims).map(|(a, b)| a.intersect(b)).collect() }
    }

    /// The box translated by `r` (component-wise): `{ x + r : x ∈ self }`.
    pub fn shift(&self, r: &[i64]) -> IntBox {
        debug_assert_eq!(r.len(), self.dims.len());
        IntBox { dims: self.dims.iter().zip(r).map(|(iv, &d)| iv.shift(d)).collect() }
    }

    /// `self \ other` as a list of *disjoint* boxes (standard per-dimension
    /// slab decomposition: at most `2·n_dims` pieces). An empty result
    /// means `other` covers `self`.
    pub fn subtract(&self, other: &IntBox) -> Vec<IntBox> {
        debug_assert_eq!(self.dims.len(), other.dims.len());
        if self.is_empty() {
            return Vec::new();
        }
        let common = self.intersect(other);
        if common.is_empty() {
            return vec![self.clone()];
        }
        let mut out = Vec::new();
        // Peel dimension by dimension: pieces outside `other` in dimension
        // t keep self's range in dims > t and the already-clamped common
        // range in dims < t, so the pieces are pairwise disjoint.
        let mut core = self.clone();
        for t in 0..self.dims.len() {
            let iv = core.dims[t];
            let c = common.dims[t];
            if iv.lo < c.lo {
                let mut below = core.clone();
                below.dims[t] = Interval::new(iv.lo, c.lo - 1);
                out.push(below);
            }
            if iv.hi > c.hi {
                let mut above = core.clone();
                above.dims[t] = Interval::new(c.hi + 1, iv.hi);
                out.push(above);
            }
            core.dims[t] = c;
        }
        out
    }

    /// Clamp one dimension to an interval, returning `None` if the result
    /// is empty.
    pub fn clamp_dim(&self, dim: usize, iv: Interval) -> Option<IntBox> {
        let mut b = self.clone();
        b.dims[dim] = b.dims[dim].intersect(&iv);
        if b.dims[dim].is_empty() {
            None
        } else {
            Some(b)
        }
    }

    /// The point with the given lexicographic rank (0-based, row-major:
    /// first dimension most significant). Panics if `rank ≥ volume`.
    pub fn point_at_rank(&self, rank: u64) -> Vec<i64> {
        debug_assert!(!self.is_empty());
        let mut r = rank as u128;
        let mut out = vec![0i64; self.dims.len()];
        // Compute suffix volumes.
        let mut suffix: Vec<u128> = vec![1; self.dims.len() + 1];
        for t in (0..self.dims.len()).rev() {
            suffix[t] = suffix[t + 1].saturating_mul(self.dims[t].len() as u128);
        }
        debug_assert!(r < suffix[0], "rank out of range");
        for t in 0..self.dims.len() {
            let q = r / suffix[t + 1];
            out[t] = self.dims[t].lo + q as i64;
            r -= q * suffix[t + 1];
        }
        out
    }

    /// Lexicographic rank of a point inside the box (inverse of
    /// [`IntBox::point_at_rank`]).
    pub fn rank_of_point(&self, x: &[i64]) -> u64 {
        debug_assert!(self.contains(x));
        let mut rank: u128 = 0;
        for (iv, v) in self.dims.iter().zip(x) {
            rank = rank * (iv.len() as u128) + (v - iv.lo) as u128;
        }
        u64::try_from(rank).expect("rank overflow")
    }

    /// Iterate every point of the box in lexicographic order. Intended for
    /// small boxes (tests, enumeration baselines).
    pub fn iter_points(&self) -> BoxPointIter<'_> {
        BoxPointIter {
            b: self,
            next: if self.is_empty() {
                None
            } else {
                Some(self.dims.iter().map(|iv| iv.lo).collect())
            },
        }
    }

    /// The first (lexicographically smallest) point, if non-empty.
    pub fn lex_min(&self) -> Option<Vec<i64>> {
        if self.is_empty() {
            None
        } else {
            Some(self.dims.iter().map(|iv| iv.lo).collect())
        }
    }

    /// The last (lexicographically greatest) point, if non-empty.
    pub fn lex_max(&self) -> Option<Vec<i64>> {
        if self.is_empty() {
            None
        } else {
            Some(self.dims.iter().map(|iv| iv.hi).collect())
        }
    }
}

/// Lexicographic point iterator over a box.
pub struct BoxPointIter<'a> {
    b: &'a IntBox,
    next: Option<Vec<i64>>,
}

impl Iterator for BoxPointIter<'_> {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        let cur = self.next.take()?;
        // Compute successor.
        let mut succ = cur.clone();
        let mut t = self.b.dims.len();
        loop {
            if t == 0 {
                self.next = None;
                break;
            }
            t -= 1;
            if succ[t] < self.b.dims[t].hi {
                succ[t] += 1;
                for u in t + 1..self.b.dims.len() {
                    succ[u] = self.b.dims[u].lo;
                }
                self.next = Some(succ);
                break;
            }
        }
        Some(cur)
    }
}

/// Compare two points lexicographically.
pub fn lex_cmp(a: &[i64], b: &[i64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        match x.cmp(y) {
            std::cmp::Ordering::Equal => continue,
            o => return o,
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(ranges: &[(i64, i64)]) -> IntBox {
        IntBox::new(ranges.iter().map(|&(a, b)| Interval::new(a, b)).collect())
    }

    #[test]
    fn volume_and_contains() {
        let b = bx(&[(1, 3), (0, 4)]);
        assert_eq!(b.volume(), 15);
        assert!(b.contains(&[2, 4]));
        assert!(!b.contains(&[0, 0]));
        assert!(bx(&[(1, 0), (0, 4)]).is_empty());
        assert_eq!(bx(&[(1, 0)]).volume(), 0);
    }

    #[test]
    fn rank_roundtrip() {
        let b = bx(&[(1, 3), (-1, 2)]);
        for (i, p) in b.iter_points().enumerate() {
            assert_eq!(b.rank_of_point(&p), i as u64);
            assert_eq!(b.point_at_rank(i as u64), p);
        }
        assert_eq!(b.iter_points().count() as u64, b.volume());
    }

    #[test]
    fn iteration_is_lexicographic() {
        let b = bx(&[(0, 1), (0, 1)]);
        let pts: Vec<_> = b.iter_points().collect();
        assert_eq!(pts, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn lex_min_max() {
        let b = bx(&[(2, 5), (1, 1)]);
        assert_eq!(b.lex_min(), Some(vec![2, 1]));
        assert_eq!(b.lex_max(), Some(vec![5, 1]));
        assert_eq!(bx(&[(1, 0)]).lex_min(), None);
    }

    #[test]
    fn shift_translates() {
        let b = bx(&[(0, 2), (1, 3)]);
        assert_eq!(b.shift(&[5, -1]), bx(&[(5, 7), (0, 2)]));
    }

    #[test]
    fn subtract_is_exact_and_disjoint() {
        // Randomised: |a \ b| point-set must equal the piece union, pieces
        // pairwise disjoint.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..300 {
            let d = rng.gen_range(1..=3usize);
            let mk = |rng: &mut rand::rngs::StdRng| {
                IntBox::new(
                    (0..d)
                        .map(|_| {
                            let lo = rng.gen_range(-4..=4i64);
                            Interval::new(lo, lo + rng.gen_range(-1..=5i64))
                        })
                        .collect(),
                )
            };
            let a = mk(&mut rng);
            let b = mk(&mut rng);
            let pieces = a.subtract(&b);
            let expect: std::collections::HashSet<Vec<i64>> =
                a.iter_points().filter(|p| !b.contains(p)).collect();
            let mut got = std::collections::HashSet::new();
            for piece in &pieces {
                for p in piece.iter_points() {
                    assert!(got.insert(p), "pieces overlap: {pieces:?}");
                }
            }
            assert_eq!(got, expect, "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn clamp_dim_empty() {
        let b = bx(&[(0, 9)]);
        assert!(b.clamp_dim(0, Interval::new(10, 20)).is_none());
        assert_eq!(b.clamp_dim(0, Interval::new(5, 20)).unwrap(), bx(&[(5, 9)]));
    }

    #[test]
    fn lex_cmp_orders() {
        use std::cmp::Ordering::*;
        assert_eq!(lex_cmp(&[1, 2], &[1, 3]), Less);
        assert_eq!(lex_cmp(&[2, 0], &[1, 9]), Greater);
        assert_eq!(lex_cmp(&[1, 2], &[1, 2]), Equal);
    }
}
