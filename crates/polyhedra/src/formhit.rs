//! Fast exact decision of `∃ x ∈ Box : F(x) ∈ [A, B]` for an affine form
//! `F` over an integer box.
//!
//! This single predicate answers every CME replacement-equation emptiness
//! question (see `cme-core::interference`): "is there an iteration in this
//! piece of the reuse interval whose access falls into a given cache-set
//! byte window?" — the wrap-around cache variable is simply one more box
//! variable with a negative coefficient.
//!
//! The solver is exact (YES and NO answers are both certain) except when a
//! branch-and-bound node budget is exhausted, in which case it returns
//! [`HitResult::MaybeYes`]; callers treat that as a conflict, which can only
//! *over*-estimate misses — the conservative direction. Fallback statistics
//! are tracked so tests can assert the budget is essentially never hit on
//! real kernels.
//!
//! Pipeline per query:
//! 1. **Normalisation** — shift every variable to `[0, R_t]` and reflect
//!    negative coefficients so all coefficients are positive.
//! 2. **Hull test** — intersect the target window with the reachable hull
//!    `[0, Σ c_t·R_t]`.
//! 3. **gcd test** — the form only attains multiples of `g = gcd(c_t)`;
//!    divide through.
//! 4. **Max-gap lemma** — process coefficients in ascending order; a
//!    reachable set with hull width `W` and maximal gap `γ` extended by an
//!    arithmetic progression of step `c` has maximal gap
//!    `max(γ, c − W)` (and `γ` if `c ≤ W`). Any window at least as long as
//!    the final gap bound that lies inside the hull must contain a
//!    reachable value ⇒ certain YES.
//! 5. **Branch-and-bound** — otherwise branch on the *largest* coefficient
//!    (few feasible values) and recurse.

use crate::affine::AffineForm;
use crate::boxes::IntBox;
use crate::dioph::{div_ceil_i128, div_floor_i128, gcd};
use crate::interval::Interval;

/// Answer of a hit query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitResult {
    /// A point certainly exists.
    Yes,
    /// Certainly no point exists.
    No,
    /// Node budget exhausted; treated as YES by miss analysis
    /// (conservative).
    MaybeYes,
}

impl HitResult {
    /// True for `Yes` and `MaybeYes` (the conservative interpretation).
    pub fn as_conservative_bool(self) -> bool {
        !matches!(self, HitResult::No)
    }
}

/// Work budget and statistics for a sequence of queries.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Remaining branch nodes before giving up.
    pub nodes_left: u64,
    /// Total queries answered.
    pub queries: u64,
    /// Queries that exhausted the budget (returned `MaybeYes`).
    pub fallbacks: u64,
    /// Branch nodes expanded in total (across refills).
    pub nodes_used: u64,
    per_query_nodes: u64,
}

impl Budget {
    /// A budget allowing `per_query_nodes` branch nodes per query.
    pub fn new(per_query_nodes: u64) -> Self {
        Budget {
            nodes_left: per_query_nodes,
            queries: 0,
            fallbacks: 0,
            nodes_used: 0,
            per_query_nodes,
        }
    }

    fn refill(&mut self) {
        self.nodes_left = self.per_query_nodes;
        self.queries += 1;
    }

    fn spend(&mut self) -> bool {
        self.nodes_used += 1;
        if self.nodes_left == 0 {
            return false;
        }
        self.nodes_left -= 1;
        true
    }
}

impl Default for Budget {
    fn default() -> Self {
        // Generous default; the gap lemma answers the overwhelming majority
        // of queries without branching at all.
        Budget::new(20_000)
    }
}

/// Normalised query state: positive coefficients over `[0, R_t]` ranges.
#[derive(Debug, Clone)]
struct Norm {
    /// (coefficient, range) pairs, coefficient > 0, range ≥ 1 values.
    terms: Vec<(i64, i64)>,
    /// Window for `Σ c_t · y_t` (already offset by the constant term).
    window: Interval,
}

fn normalize(form: &AffineForm, b: &IntBox, window: Interval) -> Option<Norm> {
    if b.is_empty() || window.is_empty() {
        return None;
    }
    let mut c0 = form.c0 as i128;
    let mut terms = Vec::with_capacity(form.coeffs.len());
    for (c, iv) in form.coeffs.iter().zip(&b.dims) {
        let r = iv.len() as i128 - 1;
        if *c == 0 || r == 0 {
            c0 += (*c as i128) * (iv.lo as i128);
            continue;
        }
        if *c > 0 {
            c0 += (*c as i128) * (iv.lo as i128);
            terms.push((*c, r as i64));
        } else {
            // Reflect: x = hi - y  =>  c·x = c·hi + (-c)·y.
            c0 += (*c as i128) * (iv.hi as i128);
            terms.push((-*c, r as i64));
        }
    }
    let lo = (window.lo as i128 - c0).clamp(i64::MIN as i128, i64::MAX as i128) as i64;
    let hi = (window.hi as i128 - c0).clamp(i64::MIN as i128, i64::MAX as i128) as i64;
    Some(Norm { terms, window: Interval::new(lo, hi) })
}

/// Max-gap bound for the reachable set of `Σ c_t·y_t` with coefficients
/// processed in ascending order. Returns `(hull_width, gap_bound)`.
fn hull_and_gap(terms_sorted_asc: &[(i64, i64)]) -> (i128, i128) {
    let mut w: i128 = 0;
    let mut gap: i128 = 0;
    for &(c, r) in terms_sorted_asc {
        let c = c as i128;
        if c > w {
            gap = gap.max(c - w);
        }
        w += c * (r as i128);
    }
    (w, gap)
}

fn solve_norm(mut terms: Vec<(i64, i64)>, window: Interval, budget: &mut Budget) -> HitResult {
    // Constant case.
    if terms.is_empty() {
        return if window.contains(0) { HitResult::Yes } else { HitResult::No };
    }
    // Hull intersection.
    let hull_hi: i128 = terms.iter().map(|&(c, r)| c as i128 * r as i128).sum();
    let wlo = (window.lo as i128).max(0);
    let whi = (window.hi as i128).min(hull_hi);
    if wlo > whi {
        return HitResult::No;
    }
    // gcd reduction.
    let g = terms.iter().fold(0i64, |g, &(c, _)| gcd(g, c));
    debug_assert!(g > 0);
    let wlo_g = div_ceil_i128(wlo, g as i128);
    let whi_g = div_floor_i128(whi, g as i128);
    if wlo_g > whi_g {
        return HitResult::No;
    }
    if g > 1 {
        for t in &mut terms {
            t.0 /= g;
        }
    }
    // Gap lemma (coefficients ascending).
    terms.sort_unstable_by_key(|&(c, _)| c);
    let (hull_g, gap) = hull_and_gap(&terms);
    let clo = wlo_g.max(0);
    let chi = whi_g.min(hull_g);
    if clo > chi {
        return HitResult::No;
    }
    if chi - clo >= gap {
        return HitResult::Yes;
    }
    // Branch on the largest coefficient.
    if !budget.spend() {
        return HitResult::MaybeYes;
    }
    let (c, r) = terms.pop().expect("nonempty");
    let rest = terms;
    let rest_hull: i128 = rest.iter().map(|&(c2, r2)| c2 as i128 * r2 as i128).sum();
    // Feasible values a of this variable: need rest-sum ∈ [clo - c·a, chi - c·a] ∩ [0, rest_hull].
    let a_lo = div_ceil_i128(clo - rest_hull, c as i128).max(0);
    let a_hi = div_floor_i128(chi, c as i128).min(r as i128);
    if a_lo > a_hi {
        return HitResult::No;
    }
    let mut saw_maybe = false;
    for a in a_lo..=a_hi {
        let sub_lo = (clo - c as i128 * a).clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        let sub_hi = (chi - c as i128 * a).clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        match solve_norm(rest.clone(), Interval::new(sub_lo, sub_hi), budget) {
            HitResult::Yes => return HitResult::Yes,
            HitResult::MaybeYes => saw_maybe = true,
            HitResult::No => {}
        }
    }
    if saw_maybe {
        HitResult::MaybeYes
    } else {
        HitResult::No
    }
}

/// Decide `∃ x ∈ b : form(x) ∈ window`.
///
/// `Yes`/`No` are exact; `MaybeYes` only occurs when the node budget is
/// exhausted (conservatively treated as a hit by miss analysis).
pub fn interval_hit(
    form: &AffineForm,
    b: &IntBox,
    window: Interval,
    budget: &mut Budget,
) -> HitResult {
    budget.refill();
    let Some(norm) = normalize(form, b, window) else {
        return HitResult::No;
    };
    let r = solve_norm(norm.terms, norm.window, budget);
    if r == HitResult::MaybeYes {
        budget.fallbacks += 1;
    }
    r
}

/// Convenience wrapper: conservative boolean answer with a default budget.
pub fn interval_hit_bool(form: &AffineForm, b: &IntBox, window: Interval) -> bool {
    interval_hit(form, b, window, &mut Budget::default()).as_conservative_bool()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumhit::enum_interval_hit;

    fn bx(ranges: &[(i64, i64)]) -> IntBox {
        IntBox::new(ranges.iter().map(|&(a, b)| Interval::new(a, b)).collect())
    }

    #[test]
    fn constant_form() {
        let f = AffineForm::constant(1, 5);
        let b = bx(&[(0, 10)]);
        let mut bud = Budget::default();
        assert_eq!(interval_hit(&f, &b, Interval::new(5, 5), &mut bud), HitResult::Yes);
        assert_eq!(interval_hit(&f, &b, Interval::new(6, 9), &mut bud), HitResult::No);
    }

    #[test]
    fn single_variable_stride() {
        // F(x) = 4x, x in [0, 100]: hits [18, 21] at x=5 (20), misses [17, 18]?
        // multiples of 4 in [17,18]: none -> No ; in [18,21]: 20 -> Yes.
        let f = AffineForm::new(vec![4], 0);
        let b = bx(&[(0, 100)]);
        let mut bud = Budget::default();
        assert_eq!(interval_hit(&f, &b, Interval::new(18, 21), &mut bud), HitResult::Yes);
        assert_eq!(interval_hit(&f, &b, Interval::new(17, 18), &mut bud), HitResult::No);
        // Out of hull.
        assert_eq!(interval_hit(&f, &b, Interval::new(401, 500), &mut bud), HitResult::No);
    }

    #[test]
    fn negative_coefficients_reflect() {
        // F(x, y) = -3x + 2y + 1, x in [1,4], y in [0,5]: range [-11, 8].
        let f = AffineForm::new(vec![-3, 2], 1);
        let b = bx(&[(1, 4), (0, 5)]);
        let mut bud = Budget::default();
        for a in -15..12 {
            let want = enum_interval_hit(&f, &b, Interval::new(a, a + 1));
            let got = interval_hit(&f, &b, Interval::new(a, a + 1), &mut bud);
            assert_eq!(got.as_conservative_bool(), want, "window [{}, {}]", a, a + 1);
            assert_ne!(got, HitResult::MaybeYes);
        }
    }

    #[test]
    fn cache_like_query() {
        // Typical replacement query: addr = 4*i + 4000*j - 8192*n,
        // i in [0,999], j in [0,9], n in [-10, 10]; window = one 32-byte
        // line-set window [s*32, s*32+31].
        let f = AffineForm::new(vec![4, 4000, -8192], 0);
        let b = bx(&[(0, 999), (0, 9), (-10, 10)]);
        let mut bud = Budget::default();
        for s in 0..256 {
            let w = Interval::new(s * 32, s * 32 + 31);
            let got = interval_hit(&f, &b, w, &mut bud);
            // gcd is 4; every 32-byte window contains multiples of 4 and
            // i-steps of 4 are dense: must be Yes.
            assert_eq!(got, HitResult::Yes, "set {s}");
        }
        assert_eq!(bud.fallbacks, 0);
    }

    #[test]
    fn agrees_with_enumeration_on_random_cases() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
        for case in 0..500 {
            let n = rng.gen_range(1..=4usize);
            let coeffs: Vec<i64> = (0..n).map(|_| rng.gen_range(-40..=40i64)).collect();
            let c0 = rng.gen_range(-50..=50);
            let f = AffineForm::new(coeffs, c0);
            let dims: Vec<Interval> = (0..n)
                .map(|_| {
                    let lo = rng.gen_range(-6..=6i64);
                    Interval::new(lo, lo + rng.gen_range(0..=7i64))
                })
                .collect();
            let b = IntBox::new(dims);
            let wlo = rng.gen_range(-200..=200i64);
            let w = Interval::new(wlo, wlo + rng.gen_range(0..=10i64));
            let want = enum_interval_hit(&f, &b, w);
            let mut bud = Budget::default();
            let got = interval_hit(&f, &b, w, &mut bud);
            assert_ne!(got, HitResult::MaybeYes, "case {case} fell back");
            assert_eq!(got == HitResult::Yes, want, "case {case}: f={f} box={b:?} w={w}");
        }
    }

    #[test]
    fn budget_exhaustion_is_conservative() {
        // A pathological instance forced to branch with a zero budget must
        // return MaybeYes, never a wrong No.
        let f = AffineForm::new(vec![1000, 999], 0);
        let b = bx(&[(0, 30), (0, 30)]);
        let mut bud = Budget::new(0);
        let r = interval_hit(&f, &b, Interval::new(1, 2), &mut bud);
        assert_eq!(r, HitResult::MaybeYes);
        assert_eq!(bud.fallbacks, 1);
    }

    #[test]
    fn empty_box_or_window() {
        let f = AffineForm::new(vec![1], 0);
        let mut bud = Budget::default();
        assert_eq!(
            interval_hit(&f, &IntBox::new(vec![Interval::empty()]), Interval::new(0, 10), &mut bud),
            HitResult::No
        );
        assert_eq!(interval_hit(&f, &bx(&[(0, 5)]), Interval::empty(), &mut bud), HitResult::No);
    }
}
