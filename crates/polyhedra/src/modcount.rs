//! Count `|{ x ∈ Box : F(x) mod M = r }|` exactly, for every residue `r`.
//!
//! This is the *counting* companion of [`crate::modhit`]'s decision
//! procedure, and the arithmetic core of the lattice miss estimator: the
//! number of iteration points whose address falls in a given alignment
//! class (mod line size) or cache-set window (mod way size) is a sum of
//! per-dimension arithmetic-progression convolutions — no enumeration of
//! the box itself is ever needed.
//!
//! Complexity: `O(Σ_t m · min(R_t, p_t))` where `p_t = m / gcd(c_t, m)`
//! is the residue period of dimension `t` — independent of the box
//! volume.

use crate::affine::AffineForm;
use crate::boxes::IntBox;
use crate::dioph::gcd;
use crate::interval::Interval;

/// Largest modulus the dense counting path accepts (1 MiB of `u64`s).
const MAX_COUNT_MODULUS: i64 = 1 << 17;

/// Exact histogram of `F(x) mod m` over the box: `out[r]` is the number
/// of points `x ∈ b` with `F(x) ≡ r (mod m)`. `Σ out[r] = b.volume()`.
pub fn residue_counts(form: &AffineForm, b: &IntBox, m: i64) -> Vec<u64> {
    assert!(m > 0 && m <= MAX_COUNT_MODULUS, "modulus out of supported range");
    let m_us = m as usize;
    if b.is_empty() {
        return vec![0; m_us];
    }
    let mut counts = vec![0u64; m_us];
    counts[form.c0.rem_euclid(m) as usize] = 1;
    for (c, iv) in form.coeffs.iter().zip(&b.dims) {
        let cm = c.rem_euclid(m);
        let n = iv.len();
        // Fold the lower bound into the running offset by rotating the
        // histogram; a zero coefficient (or single value) only rotates.
        let base = (cm as i128 * iv.lo.rem_euclid(m) as i128 % m as i128) as usize;
        if base != 0 {
            counts.rotate_right(base);
        }
        if n <= 1 {
            continue;
        }
        if cm == 0 {
            // Every value of this dimension lands on the same residue:
            // the whole histogram scales by the extent.
            for cnt in &mut counts {
                *cnt *= n;
            }
            continue;
        }
        // Convolve with the multiset { k·cm mod m : 0 ≤ k < n }: the
        // orbit of cm has period p = m / gcd(cm, m); every orbit residue
        // appears ⌊n/p⌋ times and the first n mod p appear once more.
        let p = (m / gcd(cm, m)) as u64;
        let (full, rem) = (n / p, n % p);
        let mut mult: Vec<(usize, u64)> = Vec::with_capacity(p.min(n) as usize);
        let mut s = 0usize;
        for k in 0..p.min(n) {
            let w = full + u64::from(k < rem);
            if w > 0 {
                mult.push((s, w));
            }
            s = (s + cm as usize) % m_us;
        }
        let mut next = vec![0u64; m_us];
        for (r, &cnt) in counts.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            for &(shift, w) in &mult {
                next[(r + shift) % m_us] += cnt * w;
            }
        }
        counts = next;
    }
    counts
}

/// Exact count of points whose residue lies in `window ⊆ [0, m)`
/// (non-wrapping). Convenience over [`residue_counts`].
pub fn count_in_window(form: &AffineForm, b: &IntBox, m: i64, window: Interval) -> u64 {
    if window.is_empty() || b.is_empty() {
        return 0;
    }
    assert!(window.lo >= 0 && window.hi < m, "window must lie within [0, m)");
    if window.len() >= m as u64 {
        return b.volume();
    }
    let counts = residue_counts(form, b, m);
    counts[window.lo as usize..=window.hi as usize].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_enumeration() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for case in 0..400 {
            let n = rng.gen_range(1..=3usize);
            let m = [2i64, 4, 8, 12, 16, 32, 48][rng.gen_range(0..7usize)];
            let coeffs: Vec<i64> = (0..n).map(|_| rng.gen_range(-40..=40i64)).collect();
            let c0 = rng.gen_range(-30..=30);
            let f = AffineForm::new(coeffs, c0);
            let dims: Vec<Interval> = (0..n)
                .map(|_| {
                    let lo = rng.gen_range(-6..=6i64);
                    Interval::new(lo, lo + rng.gen_range(-1..=11i64))
                })
                .collect();
            let b = IntBox::new(dims);
            let got = residue_counts(&f, &b, m);
            let mut expect = vec![0u64; m as usize];
            for p in b.iter_points() {
                expect[f.eval(&p).rem_euclid(m) as usize] += 1;
            }
            assert_eq!(got, expect, "case {case}: f={f} m={m} box={b:?}");
        }
    }

    #[test]
    fn large_range_clips_to_period() {
        // Stride 4 mod 8 has period 2: a huge range splits evenly between
        // residues 0 and 4 (offset by c0 = 1 → residues 1 and 5).
        let f = AffineForm::new(vec![4], 1);
        let b = IntBox::new(vec![Interval::new(0, 1_999_999)]);
        let counts = residue_counts(&f, &b, 8);
        assert_eq!(counts[1], 1_000_000);
        assert_eq!(counts[5], 1_000_000);
        assert_eq!(counts.iter().sum::<u64>(), 2_000_000);
    }

    #[test]
    fn window_count_totals() {
        let f = AffineForm::new(vec![3, 5], -2);
        let b = IntBox::new(vec![Interval::new(0, 9), Interval::new(-3, 3)]);
        let m = 16;
        let total: u64 = (0..m).map(|r| count_in_window(&f, &b, m, Interval::new(r, r))).sum();
        assert_eq!(total, b.volume());
        assert_eq!(count_in_window(&f, &b, m, Interval::new(0, m - 1)), b.volume());
    }
}
