//! General integer constraint systems (`Σ c_t·x_t + c0 ≥ 0`).
//!
//! This is the explicit, inspectable representation of Cache Miss
//! Equations: a compulsory or replacement equation *is* such a polyhedron
//! (paper §2.1 — "the term equation is loosely used to refer to a set of
//! simultaneous equalities and inequalities"). The fast solver in
//! `cme-core` avoids materialising these systems on its hot path, but the
//! equation objects are still generated for documentation, testing, and
//! the explicit-solver baseline.

use crate::affine::AffineForm;
use crate::boxes::IntBox;
use crate::dioph::{div_ceil_i128, div_floor_i128};
use crate::interval::Interval;
use serde::{Deserialize, Serialize};

/// A single linear constraint `form ≥ 0`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Constraint {
    pub form: AffineForm,
}

impl Constraint {
    /// `form ≥ 0`.
    pub fn ge0(form: AffineForm) -> Self {
        Constraint { form }
    }

    /// `lhs ≥ rhs`.
    pub fn ge(lhs: AffineForm, rhs: AffineForm) -> Self {
        Constraint { form: lhs.sub(&rhs) }
    }

    /// `lhs ≤ rhs`.
    pub fn le(lhs: AffineForm, rhs: AffineForm) -> Self {
        Constraint { form: rhs.sub(&lhs) }
    }

    /// True iff the point satisfies the constraint.
    pub fn holds(&self, x: &[i64]) -> bool {
        self.form.eval(x) >= 0
    }
}

/// A conjunction of linear constraints over `n_vars` integer variables,
/// optionally pre-seeded with per-variable bounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Polyhedron {
    pub n_vars: usize,
    pub constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// The unconstrained polyhedron over `n_vars` variables.
    pub fn universe(n_vars: usize) -> Self {
        Polyhedron { n_vars, constraints: Vec::new() }
    }

    /// Constraints `lo_t ≤ x_t ≤ hi_t` from a box.
    pub fn from_box(b: &IntBox) -> Self {
        let n = b.n_dims();
        let mut p = Polyhedron::universe(n);
        for (t, iv) in b.dims.iter().enumerate() {
            let x = AffineForm::var(n, t);
            p.constraints.push(Constraint::ge(x.clone(), AffineForm::constant(n, iv.lo)));
            p.constraints.push(Constraint::le(x, AffineForm::constant(n, iv.hi)));
        }
        p
    }

    /// Add a constraint.
    pub fn and(&mut self, c: Constraint) -> &mut Self {
        debug_assert_eq!(c.form.n_vars(), self.n_vars);
        self.constraints.push(c);
        self
    }

    /// Add equality `form = 0` (two inequalities).
    pub fn and_eq0(&mut self, form: AffineForm) -> &mut Self {
        self.constraints.push(Constraint::ge0(form.clone()));
        self.constraints.push(Constraint::ge0(form.scale(-1)));
        self
    }

    /// True iff the point satisfies every constraint.
    pub fn contains(&self, x: &[i64]) -> bool {
        self.constraints.iter().all(|c| c.holds(x))
    }

    /// Interval bound propagation: iteratively tighten per-variable bounds
    /// using each constraint. Returns the tightened box, or `None` if
    /// infeasibility is detected. Starts from `start` (use a generous box
    /// for unbounded problems). Sound but not complete (a returned box does
    /// not guarantee an integer point exists).
    pub fn propagate_bounds(&self, start: &IntBox) -> Option<IntBox> {
        debug_assert_eq!(start.n_dims(), self.n_vars);
        let mut b = start.clone();
        if b.is_empty() {
            return None;
        }
        // Fixpoint with an iteration cap to guarantee termination.
        for _round in 0..(4 * self.n_vars.max(1)) {
            let mut changed = false;
            for c in &self.constraints {
                // Σ c_t x_t + c0 ≥ 0: bound each variable using the ranges
                // of the others.
                let f = &c.form;
                // Precompute the maximal attainable value of the form.
                let mut hi_sum: i128 = f.c0 as i128;
                for (t, &ct) in f.coeffs.iter().enumerate() {
                    if ct == 0 {
                        continue;
                    }
                    let iv = b.dims[t];
                    let (a, bb) = ((ct as i128) * iv.lo as i128, (ct as i128) * iv.hi as i128);
                    hi_sum += a.max(bb);
                }
                if hi_sum < 0 {
                    return None; // constraint unsatisfiable over the box
                }
                for (t, &ct) in f.coeffs.iter().enumerate() {
                    if ct == 0 {
                        continue;
                    }
                    let iv = b.dims[t];
                    let (a, bb) = ((ct as i128) * iv.lo as i128, (ct as i128) * iv.hi as i128);
                    let others_hi = hi_sum - a.max(bb);
                    // Need ct·x_t ≥ -others_hi  ⇒ bound on x_t.
                    let new_iv = if ct > 0 {
                        let min_x = div_ceil_i128(-others_hi, ct as i128);
                        Interval::new(min_x.clamp(i64::MIN as i128, i64::MAX as i128) as i64, iv.hi)
                    } else {
                        let max_x = div_floor_i128(others_hi, (-ct) as i128);
                        Interval::new(iv.lo, max_x.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
                    };
                    let tight = iv.intersect(&new_iv);
                    if tight != iv {
                        if tight.is_empty() {
                            return None;
                        }
                        b.dims[t] = tight;
                        changed = true;
                        // Recompute sums with the tightened interval.
                        let (a2, b2) =
                            ((ct as i128) * tight.lo as i128, (ct as i128) * tight.hi as i128);
                        hi_sum += a2.max(b2) - a.max(bb);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Some(b)
    }

    /// Exact integer emptiness over a bounding box: bound propagation plus
    /// branching on the variable with the smallest domain. `node_cap`
    /// bounds the search; on exhaustion the result is `None` (unknown).
    pub fn is_empty_int(&self, start: &IntBox, node_cap: &mut u64) -> Option<bool> {
        let Some(b) = self.propagate_bounds(start) else {
            return Some(true);
        };
        // Fully determined?
        if b.dims.iter().all(|iv| iv.lo == iv.hi) {
            let p: Vec<i64> = b.dims.iter().map(|iv| iv.lo).collect();
            return Some(!self.contains(&p));
        }
        if *node_cap == 0 {
            return None;
        }
        *node_cap -= 1;
        // Branch on the smallest non-singleton domain.
        let (t, iv) = b
            .dims
            .iter()
            .enumerate()
            .filter(|(_, iv)| iv.lo < iv.hi)
            .min_by_key(|(_, iv)| iv.len())
            .map(|(t, iv)| (t, *iv))
            .expect("non-singleton dim exists");
        let mid = iv.lo + (iv.hi - iv.lo) / 2;
        for half in [Interval::new(iv.lo, mid), Interval::new(mid + 1, iv.hi)] {
            let mut sub = b.clone();
            sub.dims[t] = half;
            match self.is_empty_int(&sub, node_cap) {
                Some(true) => continue,
                Some(false) => return Some(false),
                None => return None,
            }
        }
        Some(true)
    }

    /// Exact integer point count by enumeration over the propagated box
    /// (`None` if the box volume exceeds `cap`).
    pub fn count_int(&self, start: &IntBox, cap: u64) -> Option<u64> {
        let Some(b) = self.propagate_bounds(start) else {
            return Some(0);
        };
        if b.volume() > cap {
            return None;
        }
        Some(b.iter_points().filter(|p| self.contains(p)).count() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(ranges: &[(i64, i64)]) -> IntBox {
        IntBox::new(ranges.iter().map(|&(a, b)| Interval::new(a, b)).collect())
    }

    #[test]
    fn propagation_tightens() {
        // x + y ≤ 3, x,y ∈ [0,10] -> both ≤ 3.
        let mut p = Polyhedron::from_box(&bx(&[(0, 10), (0, 10)]));
        p.and(Constraint::le(AffineForm::new(vec![1, 1], 0), AffineForm::constant(2, 3)));
        let b = p.propagate_bounds(&bx(&[(0, 10), (0, 10)])).unwrap();
        assert_eq!(b, bx(&[(0, 3), (0, 3)]));
    }

    #[test]
    fn detects_infeasible() {
        // x ≥ 5 and x ≤ 3.
        let mut p = Polyhedron::universe(1);
        p.and(Constraint::ge(AffineForm::var(1, 0), AffineForm::constant(1, 5)));
        p.and(Constraint::le(AffineForm::var(1, 0), AffineForm::constant(1, 3)));
        assert!(p.propagate_bounds(&bx(&[(-100, 100)])).is_none());
        let mut cap = 1000;
        assert_eq!(p.is_empty_int(&bx(&[(-100, 100)]), &mut cap), Some(true));
    }

    #[test]
    fn emptiness_needs_branching() {
        // 2x + 2y = 5 has no integer solutions though bounds are fine.
        let mut p = Polyhedron::from_box(&bx(&[(0, 10), (0, 10)]));
        p.and_eq0(AffineForm::new(vec![2, 2], -5));
        let mut cap = 10_000;
        assert_eq!(p.is_empty_int(&bx(&[(0, 10), (0, 10)]), &mut cap), Some(true));
    }

    #[test]
    fn finds_integer_point() {
        // x = 2y, x + y = 9 -> y = 3, x = 6.
        let mut p = Polyhedron::from_box(&bx(&[(0, 10), (0, 10)]));
        p.and_eq0(AffineForm::new(vec![1, -2], 0));
        p.and_eq0(AffineForm::new(vec![1, 1], -9));
        let mut cap = 10_000;
        assert_eq!(p.is_empty_int(&bx(&[(0, 10), (0, 10)]), &mut cap), Some(false));
        assert!(p.contains(&[6, 3]));
    }

    #[test]
    fn count_matches_enumeration() {
        // x + y ≤ 4 over [0,4]² : C(6,2) = 15 points.
        let mut p = Polyhedron::from_box(&bx(&[(0, 4), (0, 4)]));
        p.and(Constraint::le(AffineForm::new(vec![1, 1], 0), AffineForm::constant(2, 4)));
        assert_eq!(p.count_int(&bx(&[(0, 4), (0, 4)]), 1_000), Some(15));
    }
}
