//! Decide `∃ x ∈ Box : F(x) mod M ∈ [a, b]` exactly.
//!
//! This is the *set-mapping* form of a replacement equation: an address
//! form hits a cache-set window modulo the cache size. `cme-core` uses it
//! as a cheap pre-filter before the exact line-resolving query (which needs
//! the wrap-around variable, see [`crate::formhit`]), and the solver
//! benchmarks compare it against enumeration.
//!
//! Strategy: reduce coefficients modulo `M`, clip each variable's range to
//! its residue period `M / gcd(c, M)` (longer ranges revisit the same
//! residues), then either enumerate (small clipped boxes) or compute the
//! exact attainable-residue set with a bitset sum-set ladder
//! (`O(M/64 · Σ log R_t)` words).

use crate::affine::AffineForm;
use crate::boxes::IntBox;
use crate::dioph::gcd;
use crate::interval::Interval;

/// Maximum modulus supported by the bitset path (64 MiB of bits).
const MAX_MODULUS: i64 = 1 << 29;

/// Dense bitset over residues `0..m`.
#[derive(Debug, Clone)]
struct ModBitset {
    m: usize,
    words: Vec<u64>,
}

impl ModBitset {
    fn new(m: usize) -> Self {
        ModBitset { m, words: vec![0; m.div_ceil(64)] }
    }

    fn set(&mut self, bit: usize) {
        debug_assert!(bit < self.m);
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    fn or_assign(&mut self, other: &ModBitset) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// `self` rotated left by `s` positions in the `m`-residue ring.
    fn rotate(&self, s: usize) -> ModBitset {
        let s = s % self.m;
        let mut out = ModBitset::new(self.m);
        if s == 0 {
            out.words.copy_from_slice(&self.words);
            return out;
        }
        for i in 0..self.m {
            if self.words[i / 64] >> (i % 64) & 1 == 1 {
                let j = (i + s) % self.m;
                out.words[j / 64] |= 1u64 << (j % 64);
            }
        }
        out
    }

    fn any_in(&self, w: Interval) -> bool {
        if w.is_empty() {
            return false;
        }
        let (lo, hi) = (w.lo.max(0) as usize, (w.hi as usize).min(self.m - 1));
        if lo > hi {
            return false;
        }
        // Word-wise scan with boundary masks.
        let (wl, wh) = (lo / 64, hi / 64);
        for wi in wl..=wh {
            let mut word = self.words[wi];
            if wi == wl {
                word &= u64::MAX << (lo % 64);
            }
            if wi == wh && (hi % 64) != 63 {
                word &= (1u64 << (hi % 64 + 1)) - 1;
            }
            if word != 0 {
                return true;
            }
        }
        false
    }
}

/// `OR_{k=0}^{n-1} rotate(a, k·c mod m)` via a doubling ladder (exactly `n`
/// shifts covered — no overshoot).
fn ap_closure(a: &ModBitset, c: usize, n: u64) -> ModBitset {
    debug_assert!(n >= 1);
    let m = a.m;
    // Ladder: l[j] = OR_{k < 2^j} rot(a, k c).
    let mut ladder = vec![a.clone()];
    let mut span: u64 = 1;
    while span * 2 <= n {
        let last = ladder.last().expect("nonempty ladder");
        let mut next = last.clone();
        let rot = last.rotate((span as u128 * c as u128 % m as u128) as usize);
        next.or_assign(&rot);
        ladder.push(next);
        span *= 2;
    }
    // Compose n from binary digits, highest first.
    let mut out: Option<ModBitset> = None;
    let mut offset: u64 = 0;
    for j in (0..ladder.len()).rev() {
        let p = 1u64 << j;
        if offset + p <= n {
            let shifted = ladder[j].rotate((offset as u128 * c as u128 % m as u128) as usize);
            match &mut out {
                None => out = Some(shifted),
                Some(acc) => acc.or_assign(&shifted),
            }
            offset += p;
        }
    }
    debug_assert_eq!(offset, n);
    out.expect("n >= 1")
}

/// Decide `∃ x ∈ b : form(x) mod m ∈ window` (`window ⊆ [0, m)`,
/// non-wrapping). Exact.
pub fn mod_hit(form: &AffineForm, b: &IntBox, m: i64, window: Interval) -> bool {
    assert!(m > 0 && m <= MAX_MODULUS, "modulus out of supported range");
    assert!(window.lo >= 0 && window.hi < m, "window must lie within [0, m)");
    if b.is_empty() || window.is_empty() {
        return false;
    }
    if window.len() >= m as u64 {
        return true;
    }
    // Normalise coefficients into [0, m) and clip ranges to residue periods.
    let mut c0 = form.c0.rem_euclid(m);
    let mut terms: Vec<(i64, u64)> = Vec::new(); // (coeff mod m, value count)
    for (c, iv) in form.coeffs.iter().zip(&b.dims) {
        let cm = c.rem_euclid(m);
        let count = iv.len();
        if cm == 0 || count <= 1 {
            c0 = (c0 + (cm as i128 * iv.lo.rem_euclid(m) as i128 % m as i128) as i64).rem_euclid(m);
            continue;
        }
        // Fold the lower bound into the constant.
        c0 = (c0 as i128 + cm as i128 * iv.lo.rem_euclid(m) as i128).rem_euclid(m as i128) as i64;
        let period = (m / gcd(cm, m)) as u64;
        terms.push((cm, count.min(period)));
    }
    if terms.is_empty() {
        return window.contains(c0);
    }
    // Small clipped boxes: enumerate residues directly.
    let total: u128 = terms.iter().map(|&(_, n)| n as u128).product();
    if total <= 4096 {
        return enum_residues(c0, &terms, m, window);
    }
    // Exact attainable-set DP.
    let mut attain = ModBitset::new(m as usize);
    attain.set(c0 as usize);
    for &(c, n) in &terms {
        attain = ap_closure(&attain, c as usize, n);
    }
    attain.any_in(window)
}

fn enum_residues(c0: i64, terms: &[(i64, u64)], m: i64, window: Interval) -> bool {
    fn rec(acc: i64, terms: &[(i64, u64)], m: i64, window: Interval) -> bool {
        match terms.split_first() {
            None => window.contains(acc),
            Some((&(c, n), rest)) => {
                let mut v = acc;
                for _ in 0..n {
                    if rec(v, rest, m, window) {
                        return true;
                    }
                    v = (v + c).rem_euclid(m);
                }
                false
            }
        }
    }
    rec(c0, terms, m, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumhit::enum_mod_hit;

    fn bx(ranges: &[(i64, i64)]) -> IntBox {
        IntBox::new(ranges.iter().map(|&(a, b)| Interval::new(a, b)).collect())
    }

    #[test]
    fn matches_enumeration_small() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for case in 0..400 {
            let n = rng.gen_range(1..=3usize);
            let m = [4i64, 8, 12, 16, 32, 48, 64][rng.gen_range(0..7usize)];
            let coeffs: Vec<i64> = (0..n).map(|_| rng.gen_range(-30..=30i64)).collect();
            let c0 = rng.gen_range(-20..=20);
            let f = AffineForm::new(coeffs, c0);
            let dims: Vec<Interval> = (0..n)
                .map(|_| {
                    let lo = rng.gen_range(-5..=5i64);
                    Interval::new(lo, lo + rng.gen_range(0..=9i64))
                })
                .collect();
            let b = IntBox::new(dims);
            let wlo = rng.gen_range(0..m);
            let whi = (wlo + rng.gen_range(0..=(m / 2))).min(m - 1);
            let w = Interval::new(wlo, whi);
            assert_eq!(
                mod_hit(&f, &b, m, w),
                enum_mod_hit(&f, &b, m, w),
                "case {case}: f={f} m={m} w={w} box={b:?}"
            );
        }
    }

    #[test]
    fn dp_path_large_ranges() {
        // Stride 4096 over a large range modulo 8192 only reaches {0, 4096}.
        let f = AffineForm::new(vec![4096], 0);
        let b = bx(&[(0, 1_000_000)]);
        assert!(mod_hit(&f, &b, 8192, Interval::new(4096, 4096)));
        assert!(!mod_hit(&f, &b, 8192, Interval::new(1, 4095)));
        // Stride 4 reaches every multiple of 4.
        let f = AffineForm::new(vec![4], 1);
        assert!(mod_hit(&f, &b, 8192, Interval::new(33, 33)));
        assert!(!mod_hit(&f, &b, 8192, Interval::new(34, 35)));
    }

    #[test]
    fn full_window_always_hits() {
        let f = AffineForm::new(vec![12345], 7);
        let b = bx(&[(0, 0)]);
        assert!(mod_hit(&f, &b, 64, Interval::new(0, 63)));
    }

    #[test]
    fn mixed_strides_dp() {
        // 4·i + 1000·j mod 256: j contributes multiples of 8 (1000 mod 256 = 232, gcd 8),
        // i fine-tunes by 4: attainable = multiples of 4.
        let f = AffineForm::new(vec![4, 1000], 0);
        let b = bx(&[(0, 5000), (0, 5000)]);
        assert!(mod_hit(&f, &b, 256, Interval::new(100, 100))); // 100 = 4·25
        assert!(!mod_hit(&f, &b, 256, Interval::new(101, 102)));
    }

    #[test]
    fn ap_closure_no_overshoot() {
        // Base {0}, step 3 mod 16, n = 3 covers exactly {0, 3, 6}.
        let mut a = ModBitset::new(16);
        a.set(0);
        let r = ap_closure(&a, 3, 3);
        assert!(r.any_in(Interval::new(0, 0)));
        assert!(r.any_in(Interval::new(3, 3)));
        assert!(r.any_in(Interval::new(6, 6)));
        assert!(!r.any_in(Interval::new(9, 9)), "overshoot: k=3 must not be included");
        assert!(!r.any_in(Interval::new(1, 2)));
    }
}
