//! Brute-force enumeration oracles.
//!
//! These are the "naive" baselines: exact but exponential in box volume.
//! They serve two purposes: (1) ground truth for property tests of the fast
//! solvers, (2) the baseline of the paper's §2.3 solver speed-up claim
//! (the paper reports ≈ 20× over a vertex-based method; we benchmark our
//! solver against plain enumeration in `cme-bench`).

use crate::affine::AffineForm;
use crate::boxes::IntBox;
use crate::interval::Interval;

/// Exhaustively decide `∃ x ∈ b : form(x) ∈ window`.
pub fn enum_interval_hit(form: &AffineForm, b: &IntBox, window: Interval) -> bool {
    if b.is_empty() || window.is_empty() {
        return false;
    }
    b.iter_points().any(|p| window.contains(form.eval(&p)))
}

/// Exhaustively count `|{ x ∈ b : form(x) ∈ window }|`.
pub fn enum_interval_count(form: &AffineForm, b: &IntBox, window: Interval) -> u64 {
    if b.is_empty() || window.is_empty() {
        return 0;
    }
    b.iter_points().filter(|p| window.contains(form.eval(p))).count() as u64
}

/// Exhaustively decide `∃ x ∈ b : form(x) mod m ∈ window` (`window`
/// interpreted within `[0, m)`).
pub fn enum_mod_hit(form: &AffineForm, b: &IntBox, m: i64, window: Interval) -> bool {
    debug_assert!(m > 0);
    if b.is_empty() || window.is_empty() {
        return false;
    }
    b.iter_points().any(|p| window.contains(form.eval(&p).rem_euclid(m)))
}

/// Collect the distinct values of `(form(x) - base).div_euclid(m)` over the
/// box for points whose residue falls in `window` — used as the oracle for
/// distinct-conflicting-line counting in set-associative analysis.
pub fn enum_distinct_quotients(
    form: &AffineForm,
    b: &IntBox,
    m: i64,
    window: Interval,
) -> Vec<i64> {
    let mut out = std::collections::BTreeSet::new();
    for p in b.iter_points() {
        let v = form.eval(&p);
        if window.contains(v.rem_euclid(m)) {
            out.insert(v.div_euclid(m));
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_basics() {
        let f = AffineForm::new(vec![3, -1], 0);
        let b = IntBox::new(vec![Interval::new(0, 3), Interval::new(0, 3)]);
        // Values: 3x - y for x,y in [0,3]: min -3, max 9.
        assert!(enum_interval_hit(&f, &b, Interval::new(9, 9)));
        assert!(!enum_interval_hit(&f, &b, Interval::new(10, 20)));
        assert_eq!(enum_interval_count(&f, &b, Interval::new(0, 0)), 2); // (0,0), (1,3)
    }

    #[test]
    fn mod_enumeration() {
        let f = AffineForm::new(vec![4], 0);
        let b = IntBox::new(vec![Interval::new(0, 7)]);
        // 4x mod 8 ∈ {0, 4}.
        assert!(enum_mod_hit(&f, &b, 8, Interval::new(4, 4)));
        assert!(!enum_mod_hit(&f, &b, 8, Interval::new(1, 3)));
    }

    #[test]
    fn distinct_quotients() {
        let f = AffineForm::new(vec![8], 0);
        let b = IntBox::new(vec![Interval::new(0, 5)]);
        // 8x for x in 0..=5: 0,8,16,24,32,40 ; mod 16 ∈ [0,7] => x even: 0,16,32 -> quotients 0,1,2
        assert_eq!(enum_distinct_quotients(&f, &b, 16, Interval::new(0, 7)), vec![0, 1, 2]);
    }
}
