//! Elementary number theory: gcd, extended gcd, and bounded linear
//! Diophantine solving. Reuse-vector generation (group-temporal reuse)
//! reduces to solving `a·x + b·y = c` with `x, y` in bounded ranges.

use crate::interval::Interval;

/// Non-negative greatest common divisor; `gcd(0, 0) = 0`.
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// gcd of a slice (0 for the empty slice).
pub fn gcd_all(xs: &[i64]) -> i64 {
    xs.iter().fold(0, |g, &x| gcd(g, x))
}

/// Least common multiple (saturating to avoid overflow on extreme inputs).
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    ((a.unsigned_abs() / g.unsigned_abs()) as i128 * b.unsigned_abs() as i128).min(i64::MAX as i128)
        as i64
}

/// Extended gcd: returns `(g, x, y)` with `a·x + b·y = g = gcd(a, b)`,
/// `g ≥ 0`.
pub fn egcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        if a < 0 {
            (-a, -1, 0)
        } else {
            (a, 1, 0)
        }
    } else {
        let (g, x, y) = egcd(b, a.rem_euclid(b));
        // a = q*b + r, r = a - q*b ; g = b*x + r*y = a*y + b*(x - q*y)
        let q = a.div_euclid(b);
        (g, y, x - q * y)
    }
}

/// All solutions of `a·x + b·y = c` with `x ∈ xr` and `y ∈ yr`, up to
/// `limit` solutions, ordered by increasing `x`. Handles the degenerate
/// cases `a = 0` and/or `b = 0`.
pub fn solve_2var(
    a: i64,
    b: i64,
    c: i64,
    xr: Interval,
    yr: Interval,
    limit: usize,
) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    if xr.is_empty() || yr.is_empty() || limit == 0 {
        return out;
    }
    match (a == 0, b == 0) {
        (true, true) => {
            if c == 0 {
                // Everything solves; return the corners then grid points up
                // to the limit (callers use small limits).
                'outer: for x in xr.iter() {
                    for y in yr.iter() {
                        out.push((x, y));
                        if out.len() >= limit {
                            break 'outer;
                        }
                    }
                }
            }
        }
        (true, false) => {
            if c % b == 0 && yr.contains(c / b) {
                for x in xr.iter() {
                    out.push((x, c / b));
                    if out.len() >= limit {
                        break;
                    }
                }
            }
        }
        (false, true) => {
            if c % a == 0 && xr.contains(c / a) {
                for y in yr.iter() {
                    out.push((c / a, y));
                    if out.len() >= limit {
                        break;
                    }
                }
            }
        }
        (false, false) => {
            let (g, x0, y0) = egcd(a, b);
            if c % g != 0 {
                return out;
            }
            let k = c / g;
            // Particular solution.
            let (px, py) = ((x0 as i128) * (k as i128), (y0 as i128) * (k as i128));
            // General: x = px + t*(b/g), y = py - t*(a/g).
            let (bs, as_) = ((b / g) as i128, (a / g) as i128);
            // Range of t from x ∈ xr.
            let t_from = |lo: i128, hi: i128, p: i128, step: i128| -> Option<(i128, i128)> {
                if step == 0 {
                    return if lo <= p && p <= hi {
                        Some((i128::MIN / 4, i128::MAX / 4))
                    } else {
                        None
                    };
                }
                let (a1, b1) = ((lo - p), (hi - p));
                let (mut tlo, mut thi) = if step > 0 {
                    (div_ceil_i128(a1, step), div_floor_i128(b1, step))
                } else {
                    (div_ceil_i128(b1, step), div_floor_i128(a1, step))
                };
                if tlo > thi {
                    return None;
                }
                // Avoid absurd ranges.
                tlo = tlo.max(i128::MIN / 4);
                thi = thi.min(i128::MAX / 4);
                Some((tlo, thi))
            };
            let Some((t1lo, t1hi)) = t_from(xr.lo as i128, xr.hi as i128, px, bs) else {
                return out;
            };
            let Some((t2lo, t2hi)) = t_from(yr.lo as i128, yr.hi as i128, py, -as_) else {
                return out;
            };
            let (tlo, thi) = (t1lo.max(t2lo), t1hi.min(t2hi));
            let mut t = tlo;
            while t <= thi && out.len() < limit {
                let x = px + t * bs;
                let y = py - t * as_;
                out.push((x as i64, y as i64));
                t += 1;
            }
            if bs < 0 {
                // Ensure increasing x order.
                out.reverse();
            }
        }
    }
    out
}

/// Floor division for i128.
pub fn div_floor_i128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division for i128.
pub fn div_ceil_i128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Floor division for i64.
pub fn div_floor(a: i64, b: i64) -> i64 {
    div_floor_i128(a as i128, b as i128) as i64
}

/// Ceiling division for i64.
pub fn div_ceil(a: i64, b: i64) -> i64 {
    div_ceil_i128(a as i128, b as i128) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd_all(&[8, 12, 20]), 4);
        assert_eq!(lcm(4, 6), 12);
    }

    #[test]
    fn egcd_identity() {
        for (a, b) in [(12, 18), (-5, 7), (0, 4), (9, 0), (-6, -8), (240, 46)] {
            let (g, x, y) = egcd(a, b);
            assert_eq!(g, gcd(a, b), "g for {a},{b}");
            assert_eq!(
                a as i128 * x as i128 + b as i128 * y as i128,
                g as i128,
                "bezout for {a},{b}"
            );
        }
    }

    #[test]
    fn solve_2var_finds_all() {
        // 3x + 5y = 1 with x,y in [-10, 10]
        let sols = solve_2var(3, 5, 1, Interval::new(-10, 10), Interval::new(-10, 10), 100);
        assert!(!sols.is_empty());
        for (x, y) in &sols {
            assert_eq!(3 * x + 5 * y, 1);
        }
        // Brute-force cross-check.
        let mut brute = Vec::new();
        for x in -10..=10 {
            for y in -10..=10 {
                if 3 * x + 5 * y == 1 {
                    brute.push((x, y));
                }
            }
        }
        let mut got = sols.clone();
        got.sort();
        brute.sort();
        assert_eq!(got, brute);
    }

    #[test]
    fn solve_2var_degenerate() {
        assert!(solve_2var(0, 0, 1, Interval::new(0, 3), Interval::new(0, 3), 10).is_empty());
        assert_eq!(solve_2var(0, 0, 0, Interval::new(0, 1), Interval::new(0, 1), 99).len(), 4);
        assert_eq!(
            solve_2var(0, 2, 4, Interval::new(0, 2), Interval::new(0, 9), 99),
            vec![(0, 2), (1, 2), (2, 2)]
        );
        assert_eq!(solve_2var(2, 0, 4, Interval::new(0, 9), Interval::new(7, 7), 99), vec![(2, 7)]);
        assert!(solve_2var(2, 4, 3, Interval::new(-9, 9), Interval::new(-9, 9), 99).is_empty());
    }

    #[test]
    fn division_rounding() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_floor(6, 3), 2);
        assert_eq!(div_ceil(6, 3), 2);
    }
}
