#![forbid(unsafe_code)]
//! Integer and polyhedral substrate for Cache Miss Equations.
//!
//! Cache Miss Equations (CMEs) describe cache misses as integer points of
//! parameterised polyhedra (Ghosh, Martonosi & Malik; Abella et al.,
//! ICPPW'02 §2). Solving them fast requires a small toolbox of exact
//! integer-geometry primitives, which this crate provides:
//!
//! * [`AffineForm`] — affine functions `c0 + Σ c_t·x_t` over `i64`
//!   (array addresses, subscripts and loop bounds are all affine).
//! * [`Interval`] / [`IntBox`] — integer intervals and boxes. After tiling,
//!   every convex region of an iteration space is a box in *(block,
//!   intra-tile offset)* coordinates, so all CME queries reduce to box
//!   queries.
//! * [`lex`] — decomposition of open lexicographic intervals
//!   `{ j : a ≺ j ≺ b }` into box-like pieces (the "iteration points
//!   between the reuse source and the current point" of replacement
//!   equations).
//! * [`formhit`] — the workhorse solver answering
//!   `∃ x ∈ Box : F(x) ∈ [A, B]` exactly and fast (gcd filtering + a
//!   max-gap density lemma + branch-and-bound). This is our equivalent of
//!   the specialised replacement-polyhedron emptiness tests of Bermudo et
//!   al. that the paper's solver builds on.
//! * [`modhit`] — the modular variant `∃ x ∈ Box : F(x) mod M ∈ [a, b]`
//!   (gcd saturation, period clipping, bitset sum-set fallback).
//! * [`modcount`] — the counting variant: the exact residue histogram of
//!   `F(x) mod M` over a box via arithmetic-progression convolution,
//!   independent of the box volume (the lattice estimator's core).
//! * [`enumhit`] — brute-force enumeration: the oracle the fast solvers are
//!   validated against and the "naive" baseline of the paper's §2.3
//!   speed-up claim.
//! * [`Polyhedron`] — general integer constraint systems with bound
//!   propagation; the explicit representation of CME equation systems.
//! * [`dioph`] — gcd / extended-gcd / linear-Diophantine helpers used by
//!   reuse-vector generation.
//!
//! All arithmetic is checked-by-construction: coefficients and bounds are
//! `i64`, intermediate products are widened to `i128` where overflow is
//! possible.

pub mod affine;
pub mod boxes;
pub mod dioph;
pub mod enumhit;
pub mod formhit;
pub mod interval;
pub mod lex;
pub mod modcount;
pub mod modhit;
pub mod polyhedron;

pub use affine::AffineForm;
pub use boxes::IntBox;
pub use formhit::{Budget, HitResult};
pub use interval::Interval;
pub use polyhedron::{Constraint, Polyhedron};
