//! Affine forms `c0 + Σ c_t · x_t` over `i64` variables.
//!
//! Everything CMEs manipulate — array addresses, subscripts, loop bounds —
//! is an affine function of the (possibly tiled) loop variables.

use crate::interval::Interval;
use crate::IntBox;
use serde::{Deserialize, Serialize};

/// An affine integer form `c0 + Σ coeffs[t] · x_t` over a fixed number of
/// variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AffineForm {
    /// Per-variable coefficients; length = number of variables in scope.
    pub coeffs: Vec<i64>,
    /// Constant term.
    pub c0: i64,
}

impl AffineForm {
    /// The zero form over `n_vars` variables.
    pub fn zero(n_vars: usize) -> Self {
        AffineForm { coeffs: vec![0; n_vars], c0: 0 }
    }

    /// The constant form `c` over `n_vars` variables.
    pub fn constant(n_vars: usize, c: i64) -> Self {
        AffineForm { coeffs: vec![0; n_vars], c0: c }
    }

    /// The single-variable form `x_v` over `n_vars` variables.
    pub fn var(n_vars: usize, v: usize) -> Self {
        let mut coeffs = vec![0; n_vars];
        coeffs[v] = 1;
        AffineForm { coeffs, c0: 0 }
    }

    /// Build from explicit parts.
    pub fn new(coeffs: Vec<i64>, c0: i64) -> Self {
        AffineForm { coeffs, c0 }
    }

    /// Number of variables in scope.
    pub fn n_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluate at an integer point. Panics if dimensions mismatch or the
    /// result overflows `i64` (inputs are validated upstream so this is a
    /// genuine internal error).
    pub fn eval(&self, x: &[i64]) -> i64 {
        debug_assert_eq!(x.len(), self.coeffs.len());
        let mut acc = self.c0 as i128;
        for (c, v) in self.coeffs.iter().zip(x) {
            acc += (*c as i128) * (*v as i128);
        }
        i64::try_from(acc).expect("affine eval overflow")
    }

    /// `self + other`.
    pub fn add(&self, other: &AffineForm) -> AffineForm {
        debug_assert_eq!(self.coeffs.len(), other.coeffs.len());
        AffineForm {
            coeffs: self.coeffs.iter().zip(&other.coeffs).map(|(a, b)| a + b).collect(),
            c0: self.c0 + other.c0,
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &AffineForm) -> AffineForm {
        debug_assert_eq!(self.coeffs.len(), other.coeffs.len());
        AffineForm {
            coeffs: self.coeffs.iter().zip(&other.coeffs).map(|(a, b)| a - b).collect(),
            c0: self.c0 - other.c0,
        }
    }

    /// `k · self`.
    pub fn scale(&self, k: i64) -> AffineForm {
        AffineForm { coeffs: self.coeffs.iter().map(|c| c * k).collect(), c0: self.c0 * k }
    }

    /// Add `d` to the constant term.
    pub fn shift(&self, d: i64) -> AffineForm {
        AffineForm { coeffs: self.coeffs.clone(), c0: self.c0 + d }
    }

    /// True iff all variable coefficients are zero.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// The displacement of the form along a direction vector `r`:
    /// `F(x + r) − F(x) = Σ c_t · r_t` (constant for affine forms).
    pub fn displacement(&self, r: &[i64]) -> i64 {
        debug_assert_eq!(r.len(), self.coeffs.len());
        let mut acc: i128 = 0;
        for (c, v) in self.coeffs.iter().zip(r) {
            acc += (*c as i128) * (*v as i128);
        }
        i64::try_from(acc).expect("affine displacement overflow")
    }

    /// Substitute variables by affine forms over a new variable space:
    /// `result(y) = c0 + Σ coeffs[t] · subst[t](y)`.
    pub fn compose(&self, subst: &[AffineForm]) -> AffineForm {
        debug_assert_eq!(subst.len(), self.coeffs.len());
        let n_new = subst.first().map_or(0, AffineForm::n_vars);
        let mut out = AffineForm::constant(n_new, self.c0);
        for (c, s) in self.coeffs.iter().zip(subst) {
            if *c != 0 {
                out = out.add(&s.scale(*c));
            }
        }
        out
    }

    /// The range of the form over an integer box (tightest interval).
    pub fn range_over(&self, b: &IntBox) -> Interval {
        debug_assert_eq!(b.dims.len(), self.coeffs.len());
        if b.is_empty() {
            return Interval::empty();
        }
        let mut lo = self.c0 as i128;
        let mut hi = self.c0 as i128;
        for (c, iv) in self.coeffs.iter().zip(&b.dims) {
            let (a, b2) = ((*c as i128) * (iv.lo as i128), (*c as i128) * (iv.hi as i128));
            lo += a.min(b2);
            hi += a.max(b2);
        }
        Interval::new(
            i64::try_from(lo).expect("range_over overflow"),
            i64::try_from(hi).expect("range_over overflow"),
        )
    }

    /// Restrict the form to a subset of variables, fixing the remaining
    /// variables to the values given in `fixed` (entries `Some(v)` are
    /// folded into the constant term; `None` variables are kept, in order).
    pub fn partial_eval(&self, fixed: &[Option<i64>]) -> AffineForm {
        debug_assert_eq!(fixed.len(), self.coeffs.len());
        let mut coeffs = Vec::new();
        let mut c0 = self.c0 as i128;
        for (c, f) in self.coeffs.iter().zip(fixed) {
            match f {
                Some(v) => c0 += (*c as i128) * (*v as i128),
                None => coeffs.push(*c),
            }
        }
        AffineForm { coeffs, c0: i64::try_from(c0).expect("partial_eval overflow") }
    }
}

impl std::fmt::Display for AffineForm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (t, c) in self.coeffs.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            if first {
                write!(f, "{c}·x{t}")?;
                first = false;
            } else if *c < 0 {
                write!(f, " - {}·x{t}", -c)?;
            } else {
                write!(f, " + {c}·x{t}")?;
            }
        }
        if first {
            write!(f, "{}", self.c0)
        } else if self.c0 < 0 {
            write!(f, " - {}", -self.c0)
        } else if self.c0 > 0 {
            write!(f, " + {}", self.c0)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_ops() {
        // F(x, y) = 3x - 2y + 7
        let f = AffineForm::new(vec![3, -2], 7);
        assert_eq!(f.eval(&[1, 2]), 6);
        assert_eq!(f.displacement(&[1, 1]), 1);
        let g = AffineForm::new(vec![1, 1], 0);
        assert_eq!(f.add(&g).eval(&[2, 3]), f.eval(&[2, 3]) + g.eval(&[2, 3]));
        assert_eq!(f.sub(&g).eval(&[2, 3]), f.eval(&[2, 3]) - g.eval(&[2, 3]));
        assert_eq!(f.scale(-2).eval(&[1, 1]), -16);
    }

    #[test]
    fn compose_substitutes() {
        // F(i, j) = i + 10j ; i = 2a + 1, j = b  =>  F = 2a + 10b + 1
        let f = AffineForm::new(vec![1, 10], 0);
        let i = AffineForm::new(vec![2, 0], 1);
        let j = AffineForm::new(vec![0, 1], 0);
        let g = f.compose(&[i, j]);
        assert_eq!(g, AffineForm::new(vec![2, 10], 1));
    }

    #[test]
    fn range_over_box() {
        let f = AffineForm::new(vec![2, -3], 1);
        let b = IntBox::new(vec![Interval::new(0, 4), Interval::new(1, 2)]);
        // min at x=0,y=2: 1-6=-5 ; max at x=4,y=1: 8-3+1=6
        assert_eq!(f.range_over(&b), Interval::new(-5, 6));
    }

    #[test]
    fn partial_eval_folds_constants() {
        let f = AffineForm::new(vec![2, 5, -1], 3);
        let g = f.partial_eval(&[None, Some(4), None]);
        assert_eq!(g, AffineForm::new(vec![2, -1], 23));
        assert_eq!(g.eval(&[1, 2]), f.eval(&[1, 4, 2]));
    }

    #[test]
    fn display_is_readable() {
        let f = AffineForm::new(vec![1, -2], -3);
        assert_eq!(format!("{f}"), "1·x0 - 2·x1 - 3");
    }
}
