//! Decomposition of open lexicographic intervals into box-like pieces.
//!
//! Replacement equations quantify over "the iteration points between the
//! reuse source and the current iteration" (paper §2.1). In a
//! lexicographically ordered space of dimension `m`, the open interval
//! `{ j : a ≺ j ≺ b }` is a union of at most `2m + 1` pieces, each of the
//! shape *fixed prefix · one ranged coordinate · free suffix*. Intersected
//! with the (box-shaped) convex regions of the iteration space these pieces
//! become plain integer boxes, on which the `formhit` solver operates.

use crate::boxes::{lex_cmp, IntBox};
use crate::interval::Interval;
use std::cmp::Ordering;

/// One piece of a lexicographic interval: coordinates `0..fixed.len()` are
/// pinned, coordinate `fixed.len()` (if any) is constrained to `range`, and
/// all later coordinates are unconstrained (free within the ambient space).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexPiece {
    /// Values of the leading fixed coordinates.
    pub fixed: Vec<i64>,
    /// Constraint on the first non-fixed coordinate; `None` when every
    /// coordinate is fixed (a single-point piece only arises in degenerate
    /// inputs and is filtered out for open intervals).
    pub range: Option<Interval>,
}

impl LexPiece {
    /// Intersect this piece with an ambient box; `None` if empty. The
    /// result constrains all `n` dimensions of `ambient`.
    pub fn clip_to_box(&self, ambient: &IntBox) -> Option<IntBox> {
        let mut dims = ambient.dims.clone();
        for (t, v) in self.fixed.iter().enumerate() {
            if !dims[t].contains(*v) {
                return None;
            }
            dims[t] = Interval::point(*v);
        }
        if let Some(r) = self.range {
            let t = self.fixed.len();
            debug_assert!(t < dims.len(), "ranged coordinate out of bounds");
            dims[t] = dims[t].intersect(&r);
            if dims[t].is_empty() {
                return None;
            }
        }
        Some(IntBox::new(dims))
    }
}

/// Pieces of `{ j : j ≻ a }` (tail-strictly-greater), unbounded above.
fn strictly_greater(a: &[i64]) -> Vec<LexPiece> {
    // For each t: prefix = a[0..t], coordinate t ∈ [a_t + 1, +inf).
    (0..a.len())
        .map(|t| LexPiece {
            fixed: a[..t].to_vec(),
            range: Some(Interval::new(a[t] + 1, i64::MAX)),
        })
        .collect()
}

/// Pieces of `{ j : j ≺ b }`.
fn strictly_less(b: &[i64]) -> Vec<LexPiece> {
    (0..b.len())
        .map(|t| LexPiece {
            fixed: b[..t].to_vec(),
            range: Some(Interval::new(i64::MIN, b[t] - 1)),
        })
        .collect()
}

/// Decompose the open lexicographic interval `{ j : a ≺ j ≺ b }` into
/// disjoint pieces. Returns an empty vector when `a ⪰ b` (no points).
pub fn between_open(a: &[i64], b: &[i64]) -> Vec<LexPiece> {
    debug_assert_eq!(a.len(), b.len());
    if lex_cmp(a, b) != Ordering::Less {
        return Vec::new();
    }
    let mut pieces = Vec::new();
    // Find the first differing coordinate.
    let mut d = 0;
    while d < a.len() && a[d] == b[d] {
        d += 1;
    }
    debug_assert!(d < a.len(), "a ≺ b with equal coordinates is impossible");
    let prefix = &a[..d];
    // Piece set (all share the common prefix):
    // 1. j_d = a_d, tail ≻ a-tail  (pieces of the suffix problem)
    for mut p in strictly_greater(&a[d + 1..]) {
        let mut fixed = prefix.to_vec();
        fixed.push(a[d]);
        fixed.extend_from_slice(&p.fixed);
        p.fixed = fixed;
        pieces.push(p);
    }
    // 2. a_d < j_d < b_d, tail free
    if b[d] - a[d] >= 2 {
        pieces.push(LexPiece {
            fixed: prefix.to_vec(),
            range: Some(Interval::new(a[d] + 1, b[d] - 1)),
        });
    }
    // 3. j_d = b_d, tail ≺ b-tail
    for mut p in strictly_less(&b[d + 1..]) {
        let mut fixed = prefix.to_vec();
        fixed.push(b[d]);
        fixed.extend_from_slice(&p.fixed);
        p.fixed = fixed;
        pieces.push(p);
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force membership check of the piece list against direct lex
    /// comparison over a small ambient box.
    fn check_cover(a: &[i64], b: &[i64], ambient: &IntBox) {
        let pieces = between_open(a, b);
        let boxes: Vec<IntBox> = pieces.iter().filter_map(|p| p.clip_to_box(ambient)).collect();
        for p in ambient.iter_points() {
            let inside = lex_cmp(a, &p) == Ordering::Less && lex_cmp(&p, b) == Ordering::Less;
            let covered = boxes.iter().filter(|bx| bx.contains(&p)).count();
            assert_eq!(covered, usize::from(inside), "point {p:?} for ({a:?}, {b:?})");
        }
    }

    #[test]
    fn covers_exactly_once_2d() {
        let ambient = IntBox::from_sizes(&[5, 5]);
        check_cover(&[1, 2], &[3, 1], &ambient);
        check_cover(&[0, 0], &[4, 4], &ambient);
        check_cover(&[2, 4], &[3, 0], &ambient);
        check_cover(&[2, 2], &[2, 3], &ambient); // adjacent: empty interval
        check_cover(&[3, 3], &[1, 1], &ambient); // reversed: empty
    }

    #[test]
    fn covers_exactly_once_3d() {
        let ambient = IntBox::from_sizes(&[3, 3, 3]);
        check_cover(&[0, 1, 2], &[2, 1, 0], &ambient);
        check_cover(&[1, 1, 1], &[1, 2, 2], &ambient);
        check_cover(&[0, 0, 0], &[0, 0, 1], &ambient);
        check_cover(&[0, 0, 0], &[2, 2, 2], &ambient);
    }

    #[test]
    fn piece_count_bound() {
        // For m dims, at most 2m - 1 pieces (d = 0 case: (m-1) + 1 + (m-1)).
        for m in 1..=6 {
            let a = vec![0i64; m];
            let mut b = vec![9i64; m];
            b[0] = 9;
            let pieces = between_open(&a, &b);
            assert!(pieces.len() < 2 * m, "m={m}: {} pieces", pieces.len());
        }
    }

    #[test]
    fn empty_for_adjacent_points() {
        // (1,1) and (1,2) are consecutive: nothing strictly between.
        let pieces = between_open(&[1, 1], &[1, 2]);
        let ambient = IntBox::from_sizes(&[5, 5]);
        assert!(pieces
            .iter()
            .filter_map(|p| p.clip_to_box(&ambient))
            .all(|b| b.is_empty() || b.volume() == 0));
    }
}
