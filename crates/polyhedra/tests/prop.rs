//! Property-based tests: the fast solvers must agree with brute-force
//! enumeration on arbitrary instances, and the lexicographic decomposition
//! must partition the open interval exactly.

use cme_polyhedra::boxes::lex_cmp;
use cme_polyhedra::enumhit::{enum_interval_hit, enum_mod_hit};
use cme_polyhedra::formhit::{interval_hit, Budget, HitResult};
use cme_polyhedra::lex::between_open;
use cme_polyhedra::modhit::mod_hit;
use cme_polyhedra::{AffineForm, IntBox, Interval};
use proptest::prelude::*;

fn arb_box(max_dims: usize, max_len: i64) -> impl Strategy<Value = IntBox> {
    prop::collection::vec((-8i64..8, 0i64..max_len), 1..=max_dims).prop_map(|dims| {
        IntBox::new(dims.into_iter().map(|(lo, len)| Interval::new(lo, lo + len)).collect())
    })
}

fn arb_form(n: usize, max_coeff: i64) -> impl Strategy<Value = AffineForm> {
    (prop::collection::vec(-max_coeff..=max_coeff, n), -60i64..60)
        .prop_map(|(c, c0)| AffineForm::new(c, c0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn formhit_agrees_with_enumeration(
        (b, f, wlo, wlen) in arb_box(4, 6).prop_flat_map(|b| {
            let n = b.n_dims();
            (Just(b), arb_form(n, 50), -300i64..300, 0i64..12)
        })
    ) {
        let w = Interval::new(wlo, wlo + wlen);
        let want = enum_interval_hit(&f, &b, w);
        let mut budget = Budget::default();
        let got = interval_hit(&f, &b, w, &mut budget);
        prop_assert_ne!(got, HitResult::MaybeYes, "budget exhausted on a tiny instance");
        prop_assert_eq!(got == HitResult::Yes, want);
    }

    #[test]
    fn modhit_agrees_with_enumeration(
        (b, f, m_sel, wsel) in arb_box(3, 8).prop_flat_map(|b| {
            let n = b.n_dims();
            (Just(b), arb_form(n, 40), 0usize..5, (0i64..64, 0i64..16))
        })
    ) {
        let m = [4i64, 8, 16, 24, 64][m_sel];
        let wlo = wsel.0 % m;
        let whi = (wlo + wsel.1).min(m - 1);
        let w = Interval::new(wlo, whi);
        prop_assert_eq!(mod_hit(&f, &b, m, w), enum_mod_hit(&f, &b, m, w));
    }

    #[test]
    fn lex_pieces_partition(
        (dims, araw, braw) in (1usize..=4).prop_flat_map(|n| (
            Just(n),
            prop::collection::vec(0i64..4, n),
            prop::collection::vec(0i64..4, n),
        ))
    ) {
        let ambient = IntBox::from_sizes(&vec![4i64; dims]);
        let pieces = between_open(&araw, &braw);
        let boxes: Vec<IntBox> = pieces.iter().filter_map(|p| p.clip_to_box(&ambient)).collect();
        for p in ambient.iter_points() {
            let inside = lex_cmp(&araw, &p) == std::cmp::Ordering::Less
                && lex_cmp(&p, &braw) == std::cmp::Ordering::Less;
            let covered = boxes.iter().filter(|bx| bx.contains(&p)).count();
            prop_assert_eq!(covered, usize::from(inside));
        }
    }

    #[test]
    fn box_rank_roundtrip(b in arb_box(4, 4)) {
        prop_assume!(!b.is_empty());
        let vol = b.volume();
        prop_assume!(vol <= 4096);
        for rank in [0, vol / 3, vol / 2, vol - 1] {
            let p = b.point_at_rank(rank);
            prop_assert!(b.contains(&p));
            prop_assert_eq!(b.rank_of_point(&p), rank);
        }
    }

    #[test]
    fn interval_intersection_is_conservative(a in -20i64..20, b in 0i64..10, c in -20i64..20, d in 0i64..10) {
        let x = Interval::new(a, a + b);
        let y = Interval::new(c, c + d);
        let i = x.intersect(&y);
        for v in -40..40 {
            prop_assert_eq!(i.contains(v), x.contains(v) && y.contains(v));
        }
    }
}
