//! Criterion bench: one full 164-point sampled estimate — the GA's
//! objective evaluation (paper §2.3/§3.3: 450 of these per nest).

use cme_core::{CacheSpec, CmeModel, SamplingConfig};
use cme_loopnest::{MemoryLayout, TileSizes};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_estimate(c: &mut Criterion) {
    let model = CmeModel::new(CacheSpec::paper_8k());

    for (name, size) in [("MM", 500i64), ("T2D", 2000), ("DPSSB", 48)] {
        let spec = cme_kernels::kernel_by_name(name).unwrap();
        let nest = (spec.build)(size);
        let layout = MemoryLayout::contiguous(&nest);
        c.bench_function(&format!("estimate/{name}_{size}/untiled_164pts"), |b| {
            b.iter(|| {
                let an = model.analyze(black_box(&nest), &layout, None);
                an.estimate(&SamplingConfig::paper(), 1).replacement_misses()
            })
        });
        let tiles = TileSizes(nest.spans().iter().map(|s| (s / 9).max(1)).collect());
        c.bench_function(&format!("estimate/{name}_{size}/tiled_164pts"), |b| {
            b.iter(|| {
                let an = model.analyze(black_box(&nest), &layout, Some(&tiles));
                an.estimate(&SamplingConfig::paper(), 1).replacement_misses()
            })
        });
    }
}

criterion_group!(benches, bench_estimate);
criterion_main!(benches);
