//! Criterion bench: per-point CME classification (the inner loop of the
//! whole system) on MM at paper scale, untiled and tiled.

use cme_core::{CacheSpec, CmeModel};
use cme_loopnest::{MemoryLayout, TileSizes};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_classify(c: &mut Criterion) {
    let nest = cme_kernels::linalg::mm(500);
    let layout = MemoryLayout::contiguous(&nest);
    let model = CmeModel::new(CacheSpec::paper_8k());

    let untiled = model.analyze(&nest, &layout, None);
    let points: Vec<Vec<i64>> = (0..64u64)
        .map(|k| untiled.space.point_at_global_rank(k * 1_951_234 % untiled.space.volume()))
        .collect();
    c.bench_function("classify/mm500_untiled_64pts_4refs", |b| {
        b.iter(|| {
            let mut engine = untiled.engine();
            let mut misses = 0u32;
            for p in &points {
                for r in 0..4 {
                    if cme_core::classify::classify_point(&untiled, &mut engine, black_box(p), r)
                        != cme_core::Classification::Hit
                    {
                        misses += 1;
                    }
                }
            }
            misses
        })
    });

    let tiles = TileSizes(vec![50, 20, 40]);
    let tiled = model.analyze(&nest, &layout, Some(&tiles));
    let tpoints: Vec<Vec<i64>> = (0..64u64)
        .map(|k| tiled.space.point_at_global_rank(k * 1_951_234 % tiled.space.volume()))
        .collect();
    c.bench_function("classify/mm500_tiled_64pts_4refs", |b| {
        b.iter(|| {
            let mut engine = tiled.engine();
            let mut misses = 0u32;
            for p in &tpoints {
                for r in 0..4 {
                    if cme_core::classify::classify_point(&tiled, &mut engine, black_box(p), r)
                        != cme_core::Classification::Hit
                    {
                        misses += 1;
                    }
                }
            }
            misses
        })
    });
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
