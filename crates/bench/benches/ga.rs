//! Criterion bench: one complete GA tile-size search (§3.3: "every loop
//! nest took between 15 minutes and 4 hours on a SUN Ultra-60"; this
//! measures our equivalent).

use cme_core::CacheSpec;
use cme_ga::{run_ga, Domain, GaConfig};
use cme_loopnest::MemoryLayout;
use cme_tileopt::TilingOptimizer;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ga(c: &mut Criterion) {
    // Pure GA machinery on a cheap objective.
    c.bench_function("ga/machinery_quadratic_3vars", |b| {
        let domain = Domain::new(vec![512, 512, 512]);
        let obj = |v: &[i64]| v.iter().map(|x| ((x - 100) * (x - 100)) as f64).sum();
        b.iter(|| run_ga(black_box(&domain), &obj, &GaConfig::default()).best_cost)
    });

    // Full tile-size search on MM_100 (the paper's per-nest compile step).
    let nest = cme_kernels::linalg::mm(100);
    let layout = MemoryLayout::contiguous(&nest);
    c.bench_function("ga/full_tiling_search_mm100_8k", |b| {
        let opt = TilingOptimizer::new(CacheSpec::paper_8k());
        b.iter(|| opt.optimize(black_box(&nest), &layout).unwrap().ga.best_cost)
    });
}

criterion_group!(benches, bench_ga);
criterion_main!(benches);
