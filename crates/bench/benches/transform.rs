//! Criterion bench: analysis construction — tiled execution-space
//! building (§2.4 multi-region) and full `analyze` (address lifting +
//! reuse candidates + suffix tables).

use cme_core::{CacheSpec, CmeModel};
use cme_loopnest::{ExecSpace, MemoryLayout, TileSizes};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_transform(c: &mut Criterion) {
    let nest = cme_kernels::linalg::mm(500);
    let layout = MemoryLayout::contiguous(&nest);
    let tiles = TileSizes(vec![37, 22, 41]); // non-dividing: 8 regions

    c.bench_function("transform/tiled_space_mm500", |b| {
        b.iter(|| ExecSpace::tiled(black_box(&nest), &tiles).regions.len())
    });

    let model = CmeModel::new(CacheSpec::paper_8k());
    c.bench_function("transform/analyze_untiled_mm500", |b| {
        b.iter(|| model.analyze(black_box(&nest), &layout, None).addr.len())
    });
    c.bench_function("transform/analyze_tiled_mm500", |b| {
        b.iter(|| model.analyze(black_box(&nest), &layout, Some(&tiles)).addr.len())
    });

    let add = cme_kernels::nas::add(64);
    let add_layout = MemoryLayout::contiguous(&add);
    let add_tiles = TileSizes(vec![13, 9, 21, 3]); // 4-deep: 16 regions
    c.bench_function("transform/analyze_tiled_add64_4d", |b| {
        b.iter(|| model.analyze(black_box(&add), &add_layout, Some(&add_tiles)).space.regions.len())
    });
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
