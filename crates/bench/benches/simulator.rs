//! Criterion bench: ground-truth trace simulation throughput.

use cme_cachesim::{simulate_nest, CacheGeometry};
use cme_loopnest::{MemoryLayout, TileSizes};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let nest = cme_kernels::linalg::mm(64);
    let layout = MemoryLayout::contiguous(&nest);
    let geo = CacheGeometry::paper_8k();
    let accesses = nest.accesses();

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(accesses));
    g.bench_function("mm64_untiled", |b| {
        b.iter(|| simulate_nest(black_box(&nest), &layout, None, geo).replacement_ratio())
    });
    let tiles = TileSizes(vec![16, 16, 16]);
    g.bench_function("mm64_tiled16", |b| {
        b.iter(|| simulate_nest(black_box(&nest), &layout, Some(&tiles), geo).replacement_ratio())
    });
    g.bench_function("mm64_2way", |b| {
        b.iter(|| {
            simulate_nest(black_box(&nest), &layout, None, geo.with_assoc(2)).replacement_ratio()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
