//! Criterion bench: the interval-hit solver vs the modular solver vs
//! brute-force enumeration on cache-shaped queries (§2.3's solver
//! performance claim at micro scale).

use cme_polyhedra::enumhit::{enum_interval_hit, enum_mod_hit};
use cme_polyhedra::formhit::{interval_hit, Budget};
use cme_polyhedra::modhit::mod_hit;
use cme_polyhedra::{AffineForm, IntBox, Interval};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A realistic replacement-polyhedron query: 2-D piece of an MM-like
/// interval plus the cache wrap variable.
fn cache_query() -> (AffineForm, IntBox, Vec<Interval>) {
    let form = AffineForm::new(vec![4, 2000, -8192], 64);
    let bx =
        IntBox::new(vec![Interval::new(0, 499), Interval::new(0, 499), Interval::new(-40, 140)]);
    let windows = (0..64).map(|s| Interval::new(s * 32, s * 32 + 31)).collect();
    (form, bx, windows)
}

fn small_query() -> (AffineForm, IntBox, Vec<Interval>) {
    let form = AffineForm::new(vec![4, 72, -512], 0);
    let bx = IntBox::new(vec![Interval::new(0, 15), Interval::new(0, 11), Interval::new(-4, 12)]);
    let windows = (0..16).map(|s| Interval::new(s * 16, s * 16 + 15)).collect();
    (form, bx, windows)
}

fn bench_formhit(c: &mut Criterion) {
    let (form, bx, windows) = cache_query();
    c.bench_function("formhit/interval_hit/mm_scale_64sets", |b| {
        let mut budget = Budget::default();
        b.iter(|| {
            let mut hits = 0;
            for w in &windows {
                if interval_hit(black_box(&form), black_box(&bx), *w, &mut budget)
                    .as_conservative_bool()
                {
                    hits += 1;
                }
            }
            hits
        })
    });

    let (sform, sbx, swindows) = small_query();
    c.bench_function("formhit/interval_hit/small_16sets", |b| {
        let mut budget = Budget::default();
        b.iter(|| {
            let mut hits = 0;
            for w in &swindows {
                if interval_hit(black_box(&sform), black_box(&sbx), *w, &mut budget)
                    .as_conservative_bool()
                {
                    hits += 1;
                }
            }
            hits
        })
    });
    c.bench_function("formhit/enumeration/small_16sets", |b| {
        b.iter(|| {
            let mut hits = 0;
            for w in &swindows {
                if enum_interval_hit(black_box(&sform), black_box(&sbx), *w) {
                    hits += 1;
                }
            }
            hits
        })
    });

    // Modular set-mapping variant (2-D form, no wrap variable).
    let mform = AffineForm::new(vec![4, 72], 0);
    let mbx = IntBox::new(vec![Interval::new(0, 15), Interval::new(0, 11)]);
    c.bench_function("formhit/mod_hit/small_16sets", |b| {
        b.iter(|| {
            let mut hits = 0;
            for s in 0..16i64 {
                if mod_hit(
                    black_box(&mform),
                    black_box(&mbx),
                    512,
                    Interval::new(s * 16, s * 16 + 15),
                ) {
                    hits += 1;
                }
            }
            hits
        })
    });
    c.bench_function("formhit/mod_enum/small_16sets", |b| {
        b.iter(|| {
            let mut hits = 0;
            for s in 0..16i64 {
                if enum_mod_hit(
                    black_box(&mform),
                    black_box(&mbx),
                    512,
                    Interval::new(s * 16, s * 16 + 15),
                ) {
                    hits += 1;
                }
            }
            hits
        })
    });
}

criterion_group!(benches, bench_formhit);
criterion_main!(benches);
