#![forbid(unsafe_code)]
//! Shared experiment harness for regenerating the paper's tables and
//! figures. Each binary in `src/bin/` prints one table/figure with the
//! paper's reported numbers alongside our measured ones; `full_report`
//! runs everything and rewrites `EXPERIMENTS.md`.

use cme_core::{CacheSpec, CmeModel, MissEstimate, SamplingConfig};
use cme_ga::GaConfig;
use cme_kernels::KernelConfig;
use cme_loopnest::MemoryLayout;
use cme_tileopt::{KernelReport, TilingOptimizer};
use rayon::prelude::*;

/// The two cache configurations of the evaluation (§4.1).
pub fn cache_8k() -> CacheSpec {
    CacheSpec::paper_8k()
}
pub fn cache_32k() -> CacheSpec {
    CacheSpec::paper_32k()
}

/// Deterministic GA seed per kernel name so runs are reproducible but
/// kernels are independent.
pub fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0xA5A5_5A5A_0123_4567u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64))
}

/// Run the before/after-tiling experiment for one kernel configuration.
pub fn run_tiling(cfg: &KernelConfig, cache: CacheSpec) -> KernelReport {
    let nest = cfg.build();
    let layout = MemoryLayout::contiguous(&nest);
    let mut opt = TilingOptimizer::new(cache);
    opt.ga = GaConfig { seed: seed_for(&cfg.sized_name), ..GaConfig::default() };
    match opt.optimize(&nest, &layout) {
        Ok(out) => KernelReport {
            kernel: cfg.sized_name.clone(),
            cache_kb: cache.size / 1024,
            total_before_pct: out.before.miss_ratio() * 100.0,
            repl_before_pct: out.before.replacement_ratio() * 100.0,
            total_after_pct: out.after.miss_ratio() * 100.0,
            repl_after_pct: out.after.replacement_ratio() * 100.0,
            tiles: Some(out.tiles),
            ga_generations: out.ga.generations,
            ga_evaluations: out.ga.evaluations,
            ga_converged: out.ga.converged,
        },
        Err(e) => panic!("{}: {e}", cfg.sized_name),
    }
}

/// The Fig. 8 / Fig. 9 sweep: every figure configuration, in parallel.
pub fn sweep_figure(cache: CacheSpec) -> Vec<KernelReport> {
    let configs = cme_kernels::figure_configs();
    configs.par_iter().map(|cfg| run_tiling(cfg, cache)).collect()
}

/// Estimate the untiled miss ratios of a kernel (no optimisation).
pub fn untiled_estimate(cfg: &KernelConfig, cache: CacheSpec) -> MissEstimate {
    let nest = cfg.build();
    let layout = MemoryLayout::contiguous(&nest);
    CmeModel::new(cache)
        .analyze(&nest, &layout, None)
        .estimate(&SamplingConfig::paper(), seed_for(&cfg.sized_name))
}

/// One measured Table 3 row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table3Report {
    pub label: String,
    pub original_pct: f64,
    pub padding_pct: f64,
    pub padding_tiling_pct: f64,
}

/// Run the Table 3 pipeline (padding, then padding + tiling) for the
/// given paper rows on one cache.
pub fn run_table3(cache: CacheSpec, rows: &[cme_kernels::paper::Table3Row]) -> Vec<Table3Report> {
    use cme_tileopt::PaddingOptimizer;
    rows.par_iter()
        .map(|row| {
            let spec = cme_kernels::kernel_by_name(row.kernel).expect("kernel");
            let size = row.size.unwrap_or(spec.default_size);
            let nest = (spec.build)(size);
            let mut opt = PaddingOptimizer::new(cache);
            opt.ga = GaConfig { seed: seed_for(&nest.name), ..GaConfig::default() };
            let out = opt.optimize_then_tile(&nest).expect("legal");
            let tiled = out.tiled.as_ref().expect("pipeline output");
            Table3Report {
                label: match row.size {
                    Some(s) => format!("{} {s}", row.kernel),
                    None => row.kernel.to_string(),
                },
                original_pct: out.original.replacement_ratio() * 100.0,
                padding_pct: out.padded.replacement_ratio() * 100.0,
                padding_tiling_pct: tiled.after.replacement_ratio() * 100.0,
            }
        })
        .collect()
}

/// Kernels excluded from Table 4 per cache size (the Table 3 rows).
pub fn table3_kernels(cache_kb: i64) -> Vec<String> {
    let mut v = vec!["ADD".to_string(), "BTRIX".into(), "VPENTA1".into(), "VPENTA2".into()];
    if cache_kb == 8 {
        v.push("ADI_1000".into());
        v.push("ADI_2000".into());
    }
    v
}

/// Table 4 row: fraction of reports (excluding Table 3 kernels) with
/// post-tiling replacement ratio below each threshold, in percent.
pub fn table4_fractions(reports: &[KernelReport], cache_kb: i64) -> (f64, f64, f64) {
    let excluded = table3_kernels(cache_kb);
    let rows: Vec<&KernelReport> =
        reports.iter().filter(|r| !excluded.contains(&r.kernel)).collect();
    let n = rows.len().max(1) as f64;
    let frac = |thr: f64| rows.iter().filter(|r| r.repl_after_pct < thr).count() as f64 / n * 100.0;
    (frac(1.0), frac(2.0), frac(5.0))
}

/// Markdown/console table formatting helper.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut s = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            s.push_str(&format!(" {c:>w$} |"));
        }
        s
    };
    out.push_str(&fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>(), &widths));
    out.push('\n');
    out.push_str(&fmt_row(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(), &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_is_stable_and_distinct() {
        assert_eq!(seed_for("MM_500"), seed_for("MM_500"));
        assert_ne!(seed_for("MM_500"), seed_for("MM_2000"));
    }

    #[test]
    fn table4_excludes_table3_kernels() {
        let mk = |name: &str, repl: f64| KernelReport {
            kernel: name.into(),
            cache_kb: 8,
            total_before_pct: 0.0,
            repl_before_pct: 0.0,
            total_after_pct: 0.0,
            repl_after_pct: repl,
            tiles: None,
            ga_generations: 0,
            ga_evaluations: 0,
            ga_converged: true,
        };
        let reports = vec![mk("MM_500", 0.5), mk("ADD", 60.0), mk("T2D_100", 3.0)];
        let (p1, p2, p5) = table4_fractions(&reports, 8);
        // ADD excluded: of the two remaining, one < 1%, one < 5%.
        assert_eq!(p1, 50.0);
        assert_eq!(p2, 50.0);
        assert_eq!(p5, 100.0);
    }

    #[test]
    fn format_table_aligns() {
        let t = format_table(&["a", "bb"], &[vec!["1".into(), "22".into()]]);
        assert!(t.contains("| a | bb |"));
        assert!(t.contains("| 1 | 22 |"));
    }
}
