//! Quick performance probe (internal): time one estimate and one GA run
//! at paper scale.

use cme_core::{CacheSpec, CmeModel};
use cme_loopnest::MemoryLayout;
use cme_tileopt::TilingOptimizer;
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "MM".into());
    let size: i64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(500);
    let spec = cme_kernels::kernel_by_name(&which).expect("kernel");
    let nest = (spec.build)(size);
    let layout = MemoryLayout::contiguous(&nest);
    let model = CmeModel::new(CacheSpec::paper_8k());

    let t0 = Instant::now();
    let an = model.analyze(&nest, &layout, None);
    let est = an.estimate_paper(1);
    println!(
        "untiled estimate: {:?} | total {:.1}% repl {:.1}% | solver q={} fb={}",
        t0.elapsed(),
        est.miss_ratio() * 100.0,
        est.replacement_ratio() * 100.0,
        est.solver.queries,
        est.solver.fallbacks
    );

    let t1 = Instant::now();
    let tiles = cme_loopnest::TileSizes(nest.spans().iter().map(|s| (s / 7).max(1)).collect());
    let an2 = model.analyze(&nest, &layout, Some(&tiles));
    let est2 = an2.estimate_paper(2);
    println!(
        "tiled estimate {}: {:?} | total {:.1}% repl {:.1}%",
        tiles,
        t1.elapsed(),
        est2.miss_ratio() * 100.0,
        est2.replacement_ratio() * 100.0,
    );

    let t2 = Instant::now();
    let opt = TilingOptimizer::new(CacheSpec::paper_8k());
    let out = opt.optimize(&nest, &layout).expect("legal");
    println!(
        "GA: {:?} | gens {} evals {} tiles {} | before repl {:.1}% after repl {:.1}%",
        t2.elapsed(),
        out.ga.generations,
        out.ga.evaluations,
        out.tiles,
        out.before.replacement_ratio() * 100.0,
        out.after.replacement_ratio() * 100.0
    );
}
