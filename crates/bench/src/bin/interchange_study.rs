//! Extension: does searching the loop order *in addition to* tile sizes
//! buy anything once near-optimal tiling is in place? (The paper fixes
//! the source order; tiling with size-1 tiles can emulate most of
//! interchange's effect, so the expected answer is "rarely much".)

use cme_bench::seed_for;
use cme_core::CacheSpec;
use cme_ga::GaConfig;
use cme_loopnest::MemoryLayout;
use cme_tileopt::{optimize_with_interchange, TilingOptimizer};
use rayon::prelude::*;

fn main() {
    println!("Loop interchange + tiling vs tiling alone (8KB cache)\n");
    let cases: Vec<(&str, i64)> = vec![
        ("T2D", 500),
        ("T3DJIK", 100),
        ("T3DIKJ", 100),
        ("MM", 100),
        ("MATMUL", 100),
        ("DPSSB", 48),
        ("DRADBG1", 48),
        ("VPENTA2", 128),
    ];
    let rows: Vec<Vec<String>> = cases
        .par_iter()
        .map(|&(name, n)| {
            let spec = cme_kernels::kernel_by_name(name).expect("kernel");
            let nest = (spec.build)(n);
            let layout = MemoryLayout::contiguous(&nest);
            let mut opt = TilingOptimizer::new(CacheSpec::paper_8k());
            opt.ga = GaConfig { seed: seed_for(&nest.name), ..GaConfig::default() };
            let identity = opt.optimize(&nest, &layout).expect("legal");
            let inter = optimize_with_interchange(&opt, &nest).expect("legal");
            let accesses = nest.accesses() as f64;
            vec![
                format!("{name}_{n}"),
                format!("{:.2}", identity.ga.best_cost / accesses * 100.0),
                format!("{:.2}", inter.tiling.ga.best_cost / accesses * 100.0),
                format!("{:?}", inter.permutation),
                inter.explored.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        cme_bench::format_table(
            &["kernel", "tiling repl%", "interchange+tiling repl%", "best order", "legal orders"],
            &rows
        )
    );
    println!("(order [0,1,..] = source order; tiling alone already captures most of the benefit)");
}
