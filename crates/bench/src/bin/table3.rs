//! Table 3: replacement miss ratios for the conflict-dominated kernels —
//! original, after GA padding, after padding + tiling — 8 KB and 32 KB.

use cme_bench::seed_for;
use cme_core::CacheSpec;
use cme_ga::GaConfig;
use cme_kernels::kernel_by_name;
use cme_kernels::paper::{Table3Row, TABLE3_32K, TABLE3_8K};
use cme_tileopt::PaddingOptimizer;
use rayon::prelude::*;

fn run_rows(cache: CacheSpec, rows: &'static [Table3Row]) -> Vec<Vec<String>> {
    rows.par_iter()
        .map(|row| {
            let spec = kernel_by_name(row.kernel).expect("kernel");
            let size = row.size.unwrap_or(spec.default_size);
            let nest = (spec.build)(size);
            let mut opt = PaddingOptimizer::new(cache);
            opt.ga = GaConfig { seed: seed_for(&nest.name), ..GaConfig::default() };
            let out = opt.optimize_then_tile(&nest).expect("legal");
            let tiled = out.tiled.as_ref().expect("pipeline output");
            let label = match row.size {
                Some(s) => format!("{} {s}", row.kernel),
                None => row.kernel.to_string(),
            };
            vec![
                label,
                format!("{:.1} ({:.1})", out.original.replacement_ratio() * 100.0, row.original),
                format!("{:.1} ({:.1})", out.padded.replacement_ratio() * 100.0, row.padding),
                format!(
                    "{:.1} ({:.1})",
                    tiled.after.replacement_ratio() * 100.0,
                    row.padding_tiling
                ),
            ]
        })
        .collect()
}

fn main() {
    println!("Table 3 — replacement miss ratio: original / padding / padding+tiling");
    println!("paper values in parentheses\n");
    let header = ["kernel", "original%", "padding%", "padding+tiling%"];
    println!("8KB cache");
    println!("{}", cme_bench::format_table(&header, &run_rows(CacheSpec::paper_8k(), TABLE3_8K)));
    println!("32KB cache");
    println!("{}", cme_bench::format_table(&header, &run_rows(CacheSpec::paper_32k(), TABLE3_32K)));
}
