//! Ablation: how sensitive is the result to the paper's GA parameters
//! (§3.3: population 30, crossover 0.9, mutation 0.001, 15–25
//! generations)? Each variant runs the MM_200 tile search and reports the
//! best replacement ratio found and the evaluation budget spent.

use cme_core::{CacheSpec, SamplingConfig};
use cme_ga::GaConfig;
use cme_loopnest::MemoryLayout;
use cme_tileopt::TilingOptimizer;
use rayon::prelude::*;

fn main() {
    let nest = cme_kernels::linalg::mm(200);
    let layout = MemoryLayout::contiguous(&nest);
    let accesses = nest.accesses() as f64;
    let base = GaConfig::default();
    let variants: Vec<(String, GaConfig)> = vec![
        ("paper (pop30 pc.9 pm.001)".into(), base),
        ("pop 10".into(), GaConfig { population: 10, ..base }),
        ("pop 60".into(), GaConfig { population: 60, ..base }),
        ("pc 0.5".into(), GaConfig { crossover_prob: 0.5, ..base }),
        ("pc 1.0".into(), GaConfig { crossover_prob: 1.0, ..base }),
        ("pm 0 (no mutation)".into(), GaConfig { mutation_prob: 0.0, ..base }),
        ("pm 0.01".into(), GaConfig { mutation_prob: 0.01, ..base }),
        ("pm 0.05".into(), GaConfig { mutation_prob: 0.05, ..base }),
        ("gens 5..10".into(), GaConfig { min_generations: 5, max_generations: 10, ..base }),
        ("gens 40..60".into(), GaConfig { min_generations: 40, max_generations: 60, ..base }),
        ("margin 10%".into(), GaConfig { convergence_margin: 0.10, ..base }),
    ];
    println!("GA parameter ablation on MM_200 (8KB cache), 3 seeds each\n");
    let rows: Vec<Vec<String>> = variants
        .par_iter()
        .map(|(label, cfg)| {
            let mut ratios = Vec::new();
            let mut evals = Vec::new();
            let mut gens = Vec::new();
            for seed in [1u64, 2, 3] {
                let mut opt = TilingOptimizer::new(CacheSpec::paper_8k());
                opt.sampling = SamplingConfig::paper();
                opt.ga = GaConfig { seed, ..*cfg };
                let out = opt.optimize(&nest, &layout).expect("legal");
                ratios.push(out.ga.best_cost / accesses * 100.0);
                evals.push(out.ga.evaluations);
                gens.push(out.ga.generations);
            }
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            let worst = ratios.iter().cloned().fold(0.0f64, f64::max);
            vec![
                label.clone(),
                format!("{mean:.2}"),
                format!("{worst:.2}"),
                format!("{:.0}", evals.iter().sum::<u64>() as f64 / evals.len() as f64),
                format!("{:.0}", gens.iter().sum::<u32>() as f64 / gens.len() as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        cme_bench::format_table(
            &["variant", "mean best repl%", "worst repl%", "mean evals", "mean gens"],
            &rows
        )
    );
}
