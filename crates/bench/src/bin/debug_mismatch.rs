//! Internal debugging tool: per-point diff between CME classification and
//! the exact simulator. Not part of the evaluation suite.

use cme_cachesim::{AccessOutcome, CacheGeometry, Simulator};
use cme_core::{CacheSpec, Classification, CmeModel};
use cme_loopnest::trace::for_each_access;
use cme_loopnest::{ExecSpace, MemoryLayout};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("matmul");
    let (nest, size, line, assoc) = match which {
        "matmul" => (cme_kernels::linalg::matmul(7), 128, 16, 1),
        "jacobi" => (cme_kernels::stencils::jacobi3d(8), 512, 32, 1),
        "mm4" => (cme_kernels::linalg::mm(6), 256, 32, 4),
        "t3d" => (cme_kernels::transposes::t3djik(6), 256, 32, 1),
        _ => panic!("unknown"),
    };
    let layout = MemoryLayout::contiguous(&nest);
    let spec = CacheSpec { size, line, assoc };
    let model = CmeModel::new(spec);
    let an = model.analyze(&nest, &layout, None);

    // Simulator per-access outcomes in execution order.
    let mut sim = Simulator::new(CacheGeometry { size, line, assoc });
    let mut outcomes = Vec::new();
    for_each_access(&nest, &layout, None, |a| {
        outcomes.push(sim.access(a.addr));
    });

    let space = ExecSpace::untiled(&nest);
    let mut idx = 0;
    let mut mismatches = 0;
    space.for_each_point(|v| {
        for r in 0..nest.refs.len() {
            let cme = an.classify(v, r);
            let simr = match outcomes[idx] {
                AccessOutcome::Hit => Classification::Hit,
                AccessOutcome::ColdMiss => Classification::Cold,
                AccessOutcome::ReplacementMiss => Classification::Replacement,
            };
            if cme != simr && mismatches < 10 {
                mismatches += 1;
                println!("point {v:?} ref {r}: cme={cme:?} sim={simr:?}");
                let addr0 = an.addr[r].eval(v);
                println!(
                    "  addr {addr0} line {} set {}",
                    spec.line_of(addr0),
                    spec.set_of_line(spec.line_of(addr0))
                );
                for c in &an.candidates()[r] {
                    let src: Vec<i64> = v.iter().zip(&c.rv).map(|(a, b)| a - b).collect();
                    let valid = c.rv.iter().all(|&x| x == 0) || an.space.contains_v(&src);
                    if valid {
                        let saddr = an.addr[c.src_ref].eval(&src);
                        println!(
                            "  cand rv={:?} src_ref={} saddr={} line={} {}",
                            c.rv,
                            c.src_ref,
                            saddr,
                            spec.line_of(saddr),
                            if spec.line_of(saddr) == spec.line_of(addr0) {
                                "SAME-LINE"
                            } else {
                                ""
                            }
                        );
                    }
                }
            }
            idx += 1;
        }
    });
    println!("total mismatches scanned: (printed up to 10)");
}
