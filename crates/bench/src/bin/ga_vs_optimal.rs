//! §4.3: "Our technique is compared against the optimal solution
//! (counting replacement misses)". On kernels small enough for an
//! exhaustive sweep of every tile vector, compare the GA's tiling with
//! the true optimum.

use cme_core::SamplingConfig;
use cme_ga::GaConfig;
use cme_loopnest::MemoryLayout;
use cme_tileopt::{exhaustive_search, TilingOptimizer};
use rayon::prelude::*;

fn main() {
    println!("GA vs exhaustive optimum (replacement-miss objective, 8KB cache unless noted)\n");
    // (kernel, size, cache bytes) — exhaustive cost is |U|^d evaluations.
    let cases = [
        ("T2D", 48i64, 2048i64),
        ("T2D", 64, 4096),
        ("ADI", 32, 1024),
        ("MM", 14, 1024),
        ("VPENTA2", 48, 2048),
    ];
    let rows: Vec<Vec<String>> = cases
        .par_iter()
        .map(|&(name, n, cache_bytes)| {
            let spec = cme_kernels::kernel_by_name(name).expect("kernel");
            let nest = (spec.build)(n);
            let layout = MemoryLayout::contiguous(&nest);
            let cache = cme_core::CacheSpec::direct_mapped(cache_bytes, 32);
            let exact =
                exhaustive_search(&nest, &layout, cache, SamplingConfig::paper(), 1, 3_000_000);
            let mut opt = TilingOptimizer::new(cache);
            opt.ga = GaConfig { seed: cme_bench::seed_for(&nest.name), ..GaConfig::default() };
            let out = opt.optimize(&nest, &layout).expect("legal");
            let accesses = nest.accesses() as f64;
            vec![
                format!("{name}_{n} ({}B)", cache_bytes),
                format!("{:.3}%", exact.best_cost / accesses * 100.0),
                format!("{}", exact.best_tiles),
                format!("{:.3}%", out.ga.best_cost / accesses * 100.0),
                format!("{}", out.tiles),
                format!("{:.3}%", (out.ga.best_cost - exact.best_cost).max(0.0) / accesses * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        cme_bench::format_table(
            &["case", "optimal repl%", "optimal tiles", "GA repl%", "GA tiles", "gap"],
            &rows
        )
    );
    println!("(gap = GA − optimal replacement ratio; near-optimal means gap ≈ 0)");
}
