//! Table 2: miss ratios before/after tiling for four kernels
//! (8 KB direct-mapped, 32 B lines).

use cme_bench::{cache_8k, run_tiling};
use cme_kernels::kernel_by_name;
use cme_kernels::paper::TABLE2;

fn main() {
    println!("Table 2 — miss ratio before/after GA tiling (8KB direct-mapped, 32B lines)");
    println!("paper values in parentheses\n");
    let mut rows = Vec::new();
    for row in TABLE2 {
        let spec = kernel_by_name(row.kernel).expect("kernel");
        let cfg = spec
            .configs()
            .into_iter()
            .find(|c| c.size == row.size)
            .unwrap_or_else(|| spec.configs()[0].clone());
        let rep = run_tiling(&cfg, cache_8k());
        rows.push(vec![
            format!("{} N={}", row.kernel, row.size),
            format!("{:.1} ({:.1})", rep.total_before_pct, row.no_tiling_total),
            format!("{:.1} ({:.1})", rep.repl_before_pct, row.no_tiling_repl),
            format!("{:.1} ({:.1})", rep.total_after_pct, row.tiling_total),
            format!("{:.1} ({:.1})", rep.repl_after_pct, row.tiling_repl),
            rep.tiles.map(|t| t.to_string()).unwrap_or_default(),
        ]);
    }
    println!(
        "{}",
        cme_bench::format_table(
            &[
                "kernel",
                "total% no-tiling",
                "repl% no-tiling",
                "total% tiling",
                "repl% tiling",
                "tiles"
            ],
            &rows
        )
    );
}
