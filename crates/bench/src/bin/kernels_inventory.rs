//! Table 1: the evaluated kernels.

fn main() {
    println!("Table 1 — evaluated kernels (reconstructions; see DESIGN.md §3)\n");
    let rows: Vec<Vec<String>> = cme_kernels::all_kernels()
        .iter()
        .map(|k| {
            vec![
                k.name.to_string(),
                k.program.to_string(),
                k.depth.to_string(),
                if k.sizes.is_empty() {
                    format!("fixed n={}", k.default_size)
                } else {
                    format!("{:?}", k.sizes)
                },
                k.description.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        cme_bench::format_table(&["kernel", "program", "loops", "sizes", "description"], &rows)
    );
}
