//! §2.3 claim: 164 sampled points give a miss-ratio confidence interval
//! of width 0.1 at the paper's "90% confidence".
//!
//! Two experiments:
//! 1. accuracy — sampled vs exhaustive-analytic miss ratios on spaces
//!    small enough to classify completely;
//! 2. coverage — across many seeds, how often the ±0.05 interval around
//!    the estimate contains the true ratio (should be ≳ 90%).

use cme_core::{CmeModel, SamplingConfig};
use cme_loopnest::MemoryLayout;
use rayon::prelude::*;

fn main() {
    let model = CmeModel::new(cme_bench::cache_8k());
    let cases = [("T2D", 100i64), ("MM", 40), ("MATMUL", 40), ("JACOBI3D", 40), ("DPSSB", 24)];
    println!("Sampling accuracy (164 points, z=1.28, half-width 0.05) vs exhaustive analysis\n");
    let mut rows = Vec::new();
    let mut worst_err: f64 = 0.0;
    let mut coverage_all = Vec::new();
    for (name, n) in cases {
        let spec = cme_kernels::kernel_by_name(name).expect("kernel");
        let nest = (spec.build)(n);
        let layout = MemoryLayout::contiguous(&nest);
        let an = model.analyze(&nest, &layout, None);
        let exact = an.exhaustive();
        let exact_ratio = exact.miss_ratio();
        let seeds: Vec<u64> = (0..200).collect();
        let estimates: Vec<f64> = seeds
            .par_iter()
            .map(|&s| an.estimate(&SamplingConfig::paper(), s).miss_ratio())
            .collect();
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        let max_err = estimates.iter().map(|e| (e - exact_ratio).abs()).fold(0.0f64, f64::max);
        let covered = estimates.iter().filter(|e| (*e - exact_ratio).abs() <= 0.05).count();
        let coverage = covered as f64 / estimates.len() as f64 * 100.0;
        coverage_all.push(coverage);
        worst_err = worst_err.max(max_err);
        rows.push(vec![
            format!("{name}_{n}"),
            format!("{:.2}", exact_ratio * 100.0),
            format!("{:.2}", mean * 100.0),
            format!("{:.2}", max_err * 100.0),
            format!("{coverage:.1}%"),
        ]);
    }
    println!(
        "{}",
        cme_bench::format_table(
            &["kernel", "exact miss%", "mean est%", "max |err|%", "CI coverage (±5%)"],
            &rows
        )
    );
    println!("worst absolute error across all seeds/kernels: {:.2}%", worst_err * 100.0);
    println!(
        "mean CI coverage: {:.1}% (target ≥ ~90%)",
        coverage_all.iter().sum::<f64>() / coverage_all.len() as f64
    );
    println!(
        "\nsample-size formula: n = ceil(z^2*p(1-p)/h^2) = {} points (paper: 164)",
        SamplingConfig::paper().sample_size()
    );
}
