//! Extension (paper §5 declined this): compare the GA-chosen tilings with
//! classical tile-size-selection heuristics on the same kernels, same
//! model, same cache.

use cme_bench::{cache_8k, seed_for};
use cme_core::{CmeModel, SamplingConfig};
use cme_ga::GaConfig;
use cme_loopnest::{MemoryLayout, TileSizes};
use cme_tileopt::baselines::{fixed_fraction, lrw_square, tss_coleman_mckinley};
use cme_tileopt::TilingOptimizer;
use rayon::prelude::*;

fn repl_pct(
    model: &CmeModel,
    nest: &cme_loopnest::LoopNest,
    layout: &MemoryLayout,
    tiles: &TileSizes,
) -> f64 {
    let an = if tiles.is_trivial(nest) {
        model.analyze(nest, layout, None)
    } else {
        model.analyze(nest, layout, Some(tiles))
    };
    an.estimate(&SamplingConfig::paper(), 11).replacement_ratio() * 100.0
}

fn main() {
    println!("Baseline comparison — replacement miss ratio (%) after tiling, 8KB cache\n");
    let cache = cache_8k();
    let model = CmeModel::new(cache);
    let configs = cme_kernels::figure_configs();
    let rows: Vec<Vec<String>> = configs
        .par_iter()
        .map(|cfg| {
            let nest = cfg.build();
            let layout = MemoryLayout::contiguous(&nest);
            let none = repl_pct(&model, &nest, &layout, &TileSizes::trivial(&nest));
            let lrw = repl_pct(&model, &nest, &layout, &lrw_square(&nest, &layout, cache));
            let tss =
                repl_pct(&model, &nest, &layout, &tss_coleman_mckinley(&nest, &layout, cache));
            let fix = repl_pct(&model, &nest, &layout, &fixed_fraction(&nest, cache, 0.5));
            let mut opt = TilingOptimizer::new(cache);
            opt.ga = GaConfig { seed: seed_for(&cfg.sized_name), ..GaConfig::default() };
            let ga = opt
                .optimize(&nest, &layout)
                .map(|o| o.after.replacement_ratio() * 100.0)
                .unwrap_or(f64::NAN);
            vec![
                cfg.sized_name.clone(),
                format!("{none:.1}"),
                format!("{lrw:.1}"),
                format!("{tss:.1}"),
                format!("{fix:.1}"),
                format!("{ga:.1}"),
            ]
        })
        .collect();
    println!(
        "{}",
        cme_bench::format_table(&["kernel", "untiled", "LRW", "TSS", "fixed 1/2", "CME+GA"], &rows)
    );
    // Aggregate: how often the GA matches or beats each baseline.
    let mut wins = [0usize; 3];
    let mut total = 0usize;
    for row in &rows {
        let ga: f64 = row[5].parse().unwrap_or(f64::NAN);
        if ga.is_nan() {
            continue;
        }
        total += 1;
        for (k, col) in [2usize, 3, 4].iter().enumerate() {
            let base: f64 = row[*col].parse().unwrap_or(f64::NAN);
            if ga <= base + 0.1 {
                wins[k] += 1;
            }
        }
    }
    println!(
        "CME+GA matches-or-beats: LRW {}/{total}, TSS {}/{total}, fixed {}/{total}",
        wins[0], wins[1], wins[2]
    );
}
