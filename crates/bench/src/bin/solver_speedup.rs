//! §2.3 claim: the specialised CME solver is much faster than generic
//! approaches ("an average speed-up of 20 over a method based on
//! identifying the vertices of the polyhedra").
//!
//! We time three classifiers on identical sampled points:
//! * fast  — the production path (lexmax search + `formhit` box solver);
//! * explicit — generic polyhedron bound-propagation/branching over the
//!   materialised replacement equations (our stand-in for a
//!   vertex/general-purpose method);
//! * the speed-up ratio between them.

use cme_core::equations::{classify_explicit, CmeEquations};
use cme_core::CmeModel;
use cme_loopnest::{MemoryLayout, TileSizes};
use std::time::Instant;

fn main() {
    let model = CmeModel::new(cme_bench::cache_8k());
    let cases: Vec<(&str, i64, Option<TileSizes>)> = vec![
        ("T2D", 100, None),
        ("T2D", 100, Some(TileSizes(vec![30, 40]))),
        ("MM", 60, None),
        ("MM", 60, Some(TileSizes(vec![20, 15, 60]))),
        ("DPSSB", 24, None),
    ];
    println!("Solver speed-up: fast CME path vs explicit polyhedron solving\n");
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (name, n, tiles) in cases {
        let spec = cme_kernels::kernel_by_name(name).expect("kernel");
        let nest = (spec.build)(n);
        let layout = MemoryLayout::contiguous(&nest);
        let an = model.analyze(&nest, &layout, tiles.as_ref());
        let eqs = CmeEquations::generate(&an);
        // Sample a fixed set of points.
        let vol = an.space.volume();
        let points: Vec<Vec<i64>> =
            (0..200).map(|k| an.space.point_at_global_rank(k * (vol / 200).max(1) % vol)).collect();
        let t_fast = Instant::now();
        let mut fast_out = Vec::new();
        for p in &points {
            for r in 0..an.addr.len() {
                fast_out.push(an.classify(p, r));
            }
        }
        let fast = t_fast.elapsed();
        let t_slow = Instant::now();
        let mut slow_out = Vec::new();
        for p in &points {
            for r in 0..an.addr.len() {
                slow_out.push(classify_explicit(&an, &eqs, p, r));
            }
        }
        let slow = t_slow.elapsed();
        assert_eq!(fast_out, slow_out, "classifiers must agree");
        let ratio = slow.as_secs_f64() / fast.as_secs_f64();
        ratios.push(ratio);
        let label = match &tiles {
            Some(t) => format!("{name}_{n} tiled {t}"),
            None => format!("{name}_{n}"),
        };
        rows.push(vec![
            label,
            format!("{:.2?}", fast),
            format!("{:.2?}", slow),
            format!("{ratio:.1}x"),
        ]);
    }
    println!(
        "{}",
        cme_bench::format_table(&["case", "fast path", "explicit path", "speed-up"], &rows)
    );
    let geo = ratios.iter().product::<f64>().powf(1.0 / ratios.len() as f64);
    println!("geometric-mean speed-up: {geo:.1}x (paper reports ~20x over a vertex-based method)");
}
