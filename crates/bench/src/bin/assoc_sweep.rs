//! Extension experiment: set-associative caches.
//!
//! The paper's evaluation is direct-mapped, but §2.2 defines the k-way
//! behaviour ("in a k-way set associative cache ... k distinct contentions
//! are needed before a cache miss occurs") and our engine implements it by
//! counting distinct conflicting lines. This sweep reports *total* miss
//! ratios across associativities, cross-checked against the exact
//! simulator: kernels whose same-array references are all uniformly
//! generated must match exactly; DPSSB (non-uniform pair) is allowed to
//! be conservative (model ≥ simulator), the documented CME limitation.

use cme_cachesim::{simulate_nest, CacheGeometry};
use cme_core::{CacheSpec, CmeModel};
use cme_loopnest::MemoryLayout;
use rayon::prelude::*;

fn main() {
    println!("Total miss ratio vs associativity (8KB, 32B lines): CME (simulator)\n");
    // (name, size, exact-match expected)
    let cases: Vec<(&str, i64, bool)> = vec![
        ("T2D", 64, true),
        ("MM", 32, true),
        ("VPENTA2", 64, true),
        ("ADI", 64, true),
        ("DPSSB", 16, false), // non-uniform pair: conservative only
    ];
    let assocs = [1i64, 2, 4, 8];
    let rows: Vec<Vec<String>> = cases
        .par_iter()
        .map(|&(name, n, exact)| {
            let spec = cme_kernels::kernel_by_name(name).expect("kernel");
            let nest = (spec.build)(n);
            let layout = MemoryLayout::contiguous(&nest);
            let mut row = vec![format!("{name}_{n}{}", if exact { "" } else { " (conservative)" })];
            for assoc in assocs {
                let cache = CacheSpec { size: 8192, line: 32, assoc };
                let model = CmeModel::new(cache);
                let rep = model.analyze(&nest, &layout, None).exhaustive();
                let sim = simulate_nest(
                    &nest,
                    &layout,
                    None,
                    CacheGeometry { size: 8192, line: 32, assoc },
                );
                let (c, s) = (rep.miss_ratio() * 100.0, sim.miss_ratio() * 100.0);
                if exact {
                    assert!((c - s).abs() < 1e-9, "{name}_{n} assoc {assoc}: CME {c} != sim {s}");
                } else {
                    assert!(c >= s - 1e-9, "{name}_{n} assoc {assoc}: CME {c} must be ≥ sim {s}");
                }
                row.push(format!("{c:.2} ({s:.2})"));
            }
            row
        })
        .collect();
    println!("{}", cme_bench::format_table(&["kernel", "1-way", "2-way", "4-way", "8-way"], &rows));
    println!("Higher associativity removes conflict misses; capacity misses remain.");
}
