//! Figure 8: replacement miss ratio before and after loop tiling for every
//! kernel configuration, 8 KB direct-mapped cache.

use cme_bench::{cache_8k, sweep_figure};

fn main() {
    println!("Figure 8 — replacement miss ratio, NO-tiling vs tiling (8KB cache)\n");
    let reports = sweep_figure(cache_8k());
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                format!("{:.1}", r.repl_before_pct),
                format!("{:.1}", r.repl_after_pct),
                r.tiles.as_ref().map(|t| t.to_string()).unwrap_or_default(),
                format!("{}g/{}e", r.ga_generations, r.ga_evaluations),
            ]
        })
        .collect();
    println!(
        "{}",
        cme_bench::format_table(
            &["kernel", "repl% NO tiling", "repl% tiling", "tiles", "GA"],
            &rows
        )
    );
    if std::env::args().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&reports).expect("serialise"));
    }
}
