//! Headline claims (§1 and §6):
//! * matrix multiply's miss ratio drops by up to a factor of ~7;
//! * T3DJIK (N=100) replacement ratio 36.7% -> 0.6%;
//! * DPSSB replacement ratio 55.5% -> 1.25%.

use cme_bench::{cache_8k, run_tiling};
use cme_kernels::paper::headline;

fn main() {
    println!("Headline claims (8KB direct-mapped cache)\n");
    let mut rows = Vec::new();
    // MM family: total miss ratio factor.
    for size in [100i64, 500, 2000] {
        let spec = cme_kernels::kernel_by_name("MM").unwrap();
        let cfg = spec.configs().into_iter().find(|c| c.size == size).unwrap();
        let r = run_tiling(&cfg, cache_8k());
        let factor = r.total_before_pct / r.total_after_pct.max(1e-9);
        rows.push(vec![
            r.kernel.clone(),
            format!("{:.1}", r.total_before_pct),
            format!("{:.1}", r.total_after_pct),
            format!("{factor:.1}x"),
            format!("(paper: up to {:.0}x)", headline::MM_MISS_RATIO_FACTOR),
        ]);
    }
    println!(
        "{}",
        cme_bench::format_table(
            &["kernel", "total miss% before", "total miss% after", "factor", "paper"],
            &rows
        )
    );

    // T3DJIK N=100.
    let spec = cme_kernels::kernel_by_name("T3DJIK").unwrap();
    let cfg = spec.configs().into_iter().find(|c| c.size == 100).unwrap();
    let r = run_tiling(&cfg, cache_8k());
    println!(
        "T3DJIK N=100: repl {:.1}% -> {:.1}%   (paper: {:.1}% -> {:.1}%)",
        r.repl_before_pct,
        r.repl_after_pct,
        headline::T3DJIK_BEFORE,
        headline::T3DJIK_AFTER
    );

    // DPSSB.
    let spec = cme_kernels::kernel_by_name("DPSSB").unwrap();
    let cfg = &spec.configs()[0];
    let r = run_tiling(cfg, cache_8k());
    println!(
        "DPSSB:        repl {:.1}% -> {:.1}%   (paper: {:.1}% -> {:.2}%)",
        r.repl_before_pct,
        r.repl_after_pct,
        headline::DPSSB_BEFORE,
        headline::DPSSB_AFTER
    );
}
