//! Service throughput: requests/second through a real `cme serve`
//! loopback server across three temperatures:
//!
//! * **cold** — every request is a distinct kernel geometry, so both the
//!   outcome cache and the process-wide displacement cache miss and the
//!   GA pays full CME price;
//! * **near-miss** — one kernel/cache repeated with varying GA seeds:
//!   every canonical request is new (outcome-cache miss) but the
//!   searches re-evaluate overlapping candidate tilings, so the shared
//!   displacement cache answers the Diophantine half;
//! * **hot** — one canonical request repeated; the sharded outcome LRU
//!   answers without running anything.
//!
//! Writes `BENCH_serve.json` so all three rows are tracked across PRs
//! (skipped with `--no-write`, the CI smoke mode).
//!
//! With `--assert-baseline` the run additionally reads the recorded
//! `BENCH_serve.json` and **fails** (exit 1) when the hot-path (outcome-
//! cache-served) throughput drops more than the tolerance below the
//! recorded `hot.requests_per_sec` figure — the CI bench-regression gate
//! that caught the IO driver's timer-tick stall. `--tolerance FRAC`
//! adjusts the allowed drop (default 0.50: loopback rps under a shared
//! CI box is noisy, and the regression this guards was a 14× drop).
//!
//! ```text
//! cargo run --release -p cme-bench --bin serve_throughput \
//!     [--no-write] [--assert-baseline] [--tolerance FRAC]
//! ```

use cme_api::{NestSource, OptimizeRequest, StrategySpec};
use cme_core::{CacheSpec, SamplingConfig};
use cme_serve::{HttpClient, ServeConfig};
use std::time::{Duration, Instant};

const COLD_REQUESTS: usize = 16;
const NEAR_MISS_REQUESTS: usize = 48;
const HOT_REQUESTS: usize = 2_000;
const CLIENTS: usize = 4;

/// The near-miss/hot kernel side; cold sizes are picked disjoint from it.
const BASE_SIZE: i64 = 128;

/// A displacement-heavy tiling search: a long-line L2-style cache makes
/// the Diophantine enumeration (`original_displacements`) the dominant
/// cost of a fresh request, while a lean GA budget keeps the
/// classification half small. This is the regime the process-wide
/// displacement cache exists for.
fn request(size: i64, seed: u64) -> String {
    let mut req = OptimizeRequest::new(NestSource::kernel_sized("MM", size), StrategySpec::Tiling)
        .with_cache(CacheSpec { size: 32_768, line: 256, assoc: 1 })
        .with_sampling(SamplingConfig::fixed(32))
        .with_seed(seed);
    req.ga.population = 10;
    req.ga.min_generations = 2;
    req.ga.max_generations = 4;
    serde_json::to_string(&req).expect("requests serialise")
}

struct Phase {
    label: &'static str,
    requests: usize,
    wall: Duration,
}

impl Phase {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.wall.as_secs_f64()
    }

    fn mean_ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1e3 / self.requests as f64
    }

    fn json(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("requests".into(), serde::Value::UInt(self.requests as u64)),
            ("wall_ms".into(), serde::Value::Float(self.wall.as_secs_f64() * 1e3)),
            ("requests_per_sec".into(), serde::Value::Float(self.rps())),
            ("mean_ms".into(), serde::Value::Float(self.mean_ms())),
        ])
    }

    fn print(&self) {
        println!(
            "{:<9}: {:>5} requests in {:>8.1} ms  → {:>9.1} req/s  ({:.3} ms/request)",
            self.label,
            self.requests,
            self.wall.as_secs_f64() * 1e3,
            self.rps(),
            self.mean_ms()
        );
    }
}

/// Fire `bodies` at the server round-robin over `CLIENTS` keep-alive
/// connections on worker threads; every response must be a 200.
fn run_phase(label: &'static str, addr: std::net::SocketAddr, bodies: &[String]) -> Phase {
    let started = Instant::now();
    std::thread::scope(|scope| {
        for chunk in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                for body in bodies.iter().skip(chunk).step_by(CLIENTS) {
                    let (status, resp) = client.post("/optimize", body).expect("optimize");
                    assert_eq!(status, 200, "{resp}");
                }
            });
        }
    });
    Phase { label, requests: bodies.len(), wall: started.elapsed() }
}

fn main() {
    let mut write = true;
    let mut assert_baseline = false;
    let mut tolerance = 0.50f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-write" => write = false,
            "--assert-baseline" => assert_baseline = true,
            "--tolerance" => {
                let v = args.next().expect("--tolerance needs a value");
                tolerance = v.parse().expect("tolerance fraction");
                assert!((0.0..1.0).contains(&tolerance), "tolerance must be in [0, 1)");
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: CLIENTS,
        queue_depth: 64,
        cache_entries: 1024,
        ..ServeConfig::default()
    };
    let handle = cme_serve::start(&config).expect("bind ephemeral port");
    let addr = handle.addr();
    println!("serve_throughput against http://{addr}  ({CLIENTS} workers / {CLIENTS} clients)\n");
    let runtime = &handle.app().runtime;

    // Cold: every request is a distinct transpose side (all ≠ BASE_SIZE),
    // so canonical keys, coefficient matrices and spans are all new —
    // nothing in the process can answer for anything.
    let cold_bodies: Vec<String> =
        (0..COLD_REQUESTS as i64).map(|k| request(BASE_SIZE + 1 + k, 0xCE11)).collect();
    let cold = run_phase("cold", addr, &cold_bodies);
    cold.print();

    // Near-miss: one kernel/cache with varying seeds. Every canonical
    // request is new, so the GA runs — but the searches revisit
    // overlapping tilings, and the process-wide displacement cache
    // answers the Diophantine solves it has already done.
    let near_bodies: Vec<String> =
        (0..NEAR_MISS_REQUESTS as u64).map(|s| request(BASE_SIZE, 1_000 + s)).collect();
    let near = run_phase("near-miss", addr, &near_bodies);
    near.print();

    // Hot: one canonical request repeated (a near-miss body, so the
    // outcome entry is already warm) — every request is a cache hit.
    let hot_bodies: Vec<String> = (0..HOT_REQUESTS).map(|_| request(BASE_SIZE, 1_000)).collect();
    let hot = run_phase("hot", addr, &hot_bodies);
    hot.print();

    let near_speedup = near.rps() / cold.rps();
    let hot_speedup = hot.rps() / cold.rps();
    println!("\nnear-miss speedup: {near_speedup:.1}× requests/sec (displacement cache)");
    println!("cache-hot speedup: {hot_speedup:.0}× requests/sec (outcome cache)");

    // Confirm each phase hit the tier it claims before reporting it.
    let outcomes = runtime.outcomes();
    let disp = runtime.displacements().stats();
    assert!(
        outcomes.hits() >= HOT_REQUESTS as u64,
        "hot phase must be outcome-cache-served (hits = {})",
        outcomes.hits()
    );
    assert!(
        disp.hits > 0,
        "near-miss phase must be displacement-cache-served (hits = {})",
        disp.hits
    );
    assert!(
        near_speedup >= 3.0,
        "displacement sharing must make near-misses ≥3× cold ({near_speedup:.2}×)"
    );

    let doc = serde::Value::Object(vec![
        ("bench".into(), serde::Value::Str("serve_throughput".into())),
        (
            "kernel".into(),
            serde::Value::Str(format!("MM_{BASE_SIZE} tiling GA, 32 KB / 256 B line")),
        ),
        ("workers".into(), serde::Value::UInt(CLIENTS as u64)),
        ("clients".into(), serde::Value::UInt(CLIENTS as u64)),
        (cold.label.into(), cold.json()),
        ("near_miss".into(), near.json()),
        (hot.label.into(), hot.json()),
        ("near_miss_over_cold_rps".into(), serde::Value::Float(near_speedup)),
        ("hot_over_cold_rps".into(), serde::Value::Float(hot_speedup)),
        ("cache_hits".into(), serde::Value::UInt(outcomes.hits())),
        ("cache_misses".into(), serde::Value::UInt(outcomes.misses())),
        ("displacement_hits".into(), serde::Value::UInt(disp.hits)),
        ("displacement_misses".into(), serde::Value::UInt(disp.misses)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialises");
    if assert_baseline {
        assert_against_baseline(hot.rps(), tolerance);
    }
    if write {
        std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
        println!("\nwrote BENCH_serve.json");
    }

    handle.shutdown_and_join();
}

/// The CI bench-regression gate: compare this run's hot-path throughput
/// against the figure recorded in `BENCH_serve.json` and exit non-zero
/// when it regressed by more than `tolerance`. An *improved* figure
/// always passes (the recorded baseline is refreshed by the next full
/// `serve_throughput` run, not by the gate).
fn assert_against_baseline(current_rps: f64, tolerance: f64) {
    let raw = std::fs::read_to_string("BENCH_serve.json")
        .expect("--assert-baseline needs a recorded BENCH_serve.json in the working directory");
    let doc: serde::Value = serde_json::from_str(&raw).expect("BENCH_serve.json parses");
    let recorded = doc
        .get("hot")
        .and_then(|phase| phase.get("requests_per_sec"))
        .and_then(|v| match v {
            serde::Value::Float(f) => Some(*f),
            serde::Value::Int(i) => Some(*i as f64),
            serde::Value::UInt(u) => Some(*u as f64),
            _ => None,
        })
        .expect("BENCH_serve.json records hot.requests_per_sec");
    let floor = recorded * (1.0 - tolerance);
    if current_rps < floor {
        eprintln!(
            "bench regression: hot-path throughput {current_rps:.1} req/s is below {floor:.1} \
             ({:.0}% of the recorded {recorded:.1})",
            (1.0 - tolerance) * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "baseline OK: {current_rps:.1} req/s vs recorded {recorded:.1} \
         (floor {floor:.1}, tolerance {tolerance})"
    );
}
