//! Service throughput: requests/second through a real `cme serve`
//! loopback server, cold (every request unique — the GA runs) versus
//! cache-hot (the same canonical request repeated — the sharded LRU
//! answers). Writes `BENCH_serve.json` so the cold/hot ratio is tracked
//! across PRs.
//!
//! ```text
//! cargo run --release -p cme-bench --bin serve_throughput
//! ```

use cme_api::{NestSource, OptimizeRequest, StrategySpec};
use cme_serve::{HttpClient, ServeConfig};
use std::time::{Duration, Instant};

const COLD_REQUESTS: usize = 16;
const HOT_REQUESTS: usize = 2_000;
const CLIENTS: usize = 4;

/// A mid-weight tiling search: enough GA work that memoisation matters,
/// small enough that the cold phase stays in seconds.
fn request(seed: u64) -> String {
    let req = OptimizeRequest::new(NestSource::kernel_sized("T2D", 64), StrategySpec::Tiling)
        .with_seed(seed);
    serde_json::to_string(&req).expect("requests serialise")
}

struct Phase {
    label: &'static str,
    requests: usize,
    wall: Duration,
}

impl Phase {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.wall.as_secs_f64()
    }

    fn mean_ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1e3 / self.requests as f64
    }

    fn json(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("requests".into(), serde::Value::UInt(self.requests as u64)),
            ("wall_ms".into(), serde::Value::Float(self.wall.as_secs_f64() * 1e3)),
            ("requests_per_sec".into(), serde::Value::Float(self.rps())),
            ("mean_ms".into(), serde::Value::Float(self.mean_ms())),
        ])
    }
}

/// Fire `bodies` at the server round-robin over `CLIENTS` keep-alive
/// connections on worker threads; every response must be a 200.
fn run_phase(label: &'static str, addr: std::net::SocketAddr, bodies: &[String]) -> Phase {
    let started = Instant::now();
    std::thread::scope(|scope| {
        for chunk in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                for body in bodies.iter().skip(chunk).step_by(CLIENTS) {
                    let (status, resp) = client.post("/optimize", body).expect("optimize");
                    assert_eq!(status, 200, "{resp}");
                }
            });
        }
    });
    Phase { label, requests: bodies.len(), wall: started.elapsed() }
}

fn main() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: CLIENTS,
        queue_depth: 64,
        cache_entries: 1024,
        ..ServeConfig::default()
    };
    let handle = cme_serve::start(&config).expect("bind ephemeral port");
    let addr = handle.addr();
    println!("serve_throughput against http://{addr}  ({CLIENTS} workers / {CLIENTS} clients)\n");

    // Cold: every request has a distinct seed, so every canonical key is
    // new and the GA runs each time.
    let cold_bodies: Vec<String> = (0..COLD_REQUESTS as u64).map(|s| request(1_000 + s)).collect();
    let cold = run_phase("cold", addr, &cold_bodies);
    println!(
        "cold : {:>5} requests in {:>8.1} ms  → {:>9.1} req/s  ({:.2} ms/request)",
        cold.requests,
        cold.wall.as_secs_f64() * 1e3,
        cold.rps(),
        cold.mean_ms()
    );

    // Hot: one canonical request repeated. Its seed is one of the cold
    // phase's, so the entry is already warm and every hot request is a
    // cache hit.
    let hot_bodies: Vec<String> = (0..HOT_REQUESTS).map(|_| request(1_000)).collect();
    let hot = run_phase("hot", addr, &hot_bodies);
    println!(
        "hot  : {:>5} requests in {:>8.1} ms  → {:>9.1} req/s  ({:.3} ms/request)",
        hot.requests,
        hot.wall.as_secs_f64() * 1e3,
        hot.rps(),
        hot.mean_ms()
    );

    let speedup = hot.rps() / cold.rps();
    println!("\ncache-hot speedup: {speedup:.0}× requests/sec");

    // Confirm the hot phase really hit the cache before reporting it.
    let app = handle.app();
    let hits = app.cache.hits();
    assert!(hits >= HOT_REQUESTS as u64, "hot phase must be cache-served (hits = {hits})");

    let doc = serde::Value::Object(vec![
        ("bench".into(), serde::Value::Str("serve_throughput".into())),
        ("kernel".into(), serde::Value::Str("T2D_64 tiling GA".into())),
        ("workers".into(), serde::Value::UInt(CLIENTS as u64)),
        ("clients".into(), serde::Value::UInt(CLIENTS as u64)),
        (cold.label.into(), cold.json()),
        (hot.label.into(), hot.json()),
        ("hot_over_cold_rps".into(), serde::Value::Float(speedup)),
        ("cache_hits".into(), serde::Value::UInt(hits)),
        ("cache_misses".into(), serde::Value::UInt(app.cache.misses())),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialises");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    handle.shutdown_and_join();
}
