//! Table 4: percentage of kernels (excluding the Table 3 kernels) whose
//! post-tiling replacement miss ratio is below 1 %, 2 % and 5 %.

use cme_bench::{cache_32k, cache_8k, sweep_figure, table4_fractions};
use cme_kernels::paper::TABLE4;

fn main() {
    println!("Table 4 — replacement miss ratios after tiling (excluding Table 3 kernels)");
    println!("paper values in parentheses\n");
    let mut rows = Vec::new();
    for (cache, paper) in [(cache_8k(), &TABLE4[0]), (cache_32k(), &TABLE4[1])] {
        let reports = sweep_figure(cache);
        let (p1, p2, p5) = table4_fractions(&reports, cache.size / 1024);
        rows.push(vec![
            format!("{}KB", cache.size / 1024),
            format!("{p1:.1} ({:.1})", paper.below_1pct),
            format!("{p2:.1} ({:.1})", paper.below_2pct),
            format!("{p5:.1} ({:.1})", paper.below_5pct),
        ]);
    }
    println!("{}", cme_bench::format_table(&["cache", "<1%", "<2%", "<5%"], &rows));
}
