//! §3.3 claims: the GA converges in 15–25 generations and needs on the
//! order of 450 objective evaluations per loop nest.

use cme_bench::{cache_8k, seed_for};
use cme_ga::GaConfig;
use cme_loopnest::MemoryLayout;
use cme_tileopt::TilingOptimizer;
use rayon::prelude::*;

fn main() {
    println!("GA convergence study (8KB cache) — paper §3.3:");
    println!("  \"near-optimal results in most cases after 15 generations ... between 15 and 25\"");
    println!("  \"the required 450 evaluations (15 iterations of the GA x 30 individuals)\"\n");
    let configs = cme_kernels::figure_configs();
    let results: Vec<(String, u32, u64, bool, Vec<(u32, f64, f64)>)> = configs
        .par_iter()
        .map(|cfg| {
            let nest = cfg.build();
            let layout = MemoryLayout::contiguous(&nest);
            let mut opt = TilingOptimizer::new(cache_8k());
            opt.ga = GaConfig { seed: seed_for(&cfg.sized_name), ..GaConfig::default() };
            let (out, ga) = opt.optimize_traced(&nest, &layout).expect("legal");
            let _ = out;
            let hist = ga.history.iter().map(|h| (h.generation, h.best, h.average)).collect();
            (cfg.sized_name.clone(), ga.generations, ga.evaluations, ga.converged, hist)
        })
        .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, gens, evals, conv, _)| {
            vec![
                name.clone(),
                gens.to_string(),
                evals.to_string(),
                if *conv { "2% criterion".into() } else { "generation cap".into() },
            ]
        })
        .collect();
    println!(
        "{}",
        cme_bench::format_table(&["kernel", "generations", "distinct evals", "stopped by"], &rows)
    );
    let gens: Vec<u32> = results.iter().map(|r| r.1).collect();
    let evals: Vec<u64> = results.iter().map(|r| r.2).collect();
    let converged = results.iter().filter(|r| r.3).count();
    println!(
        "generations: min {} / mean {:.1} / max {}  (paper: 15..25)",
        gens.iter().min().unwrap(),
        gens.iter().sum::<u32>() as f64 / gens.len() as f64,
        gens.iter().max().unwrap()
    );
    println!(
        "distinct evaluations: min {} / mean {:.0} / max {} (paper budget: 450 incl. duplicates)",
        evals.iter().min().unwrap(),
        evals.iter().sum::<u64>() as f64 / evals.len() as f64,
        evals.iter().max().unwrap()
    );
    println!("stopped by the 2% convergence criterion: {}/{} kernels", converged, results.len());
    assert!(gens.iter().all(|&g| (15..=25).contains(&g)), "Fig. 7 bounds violated");
}
