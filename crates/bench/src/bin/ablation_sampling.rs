//! Ablation: sample-size / accuracy / time trade-off of the §2.3
//! estimator. The paper fixes 164 points (CI width 0.1 at its "90%"
//! quantile); this sweep shows what other budgets would buy.

use cme_core::{CmeModel, SamplingConfig};
use cme_loopnest::MemoryLayout;
use std::time::Instant;

fn main() {
    let model = CmeModel::new(cme_bench::cache_8k());
    let cases: Vec<(&str, i64)> = vec![("T2D", 100), ("MM", 48), ("DPSSB", 24)];
    let budgets: [u64; 5] = [41, 82, 164, 328, 656];
    println!("Sampling budget ablation (error vs exhaustive analysis; 100 seeds each)\n");
    let mut rows = Vec::new();
    for (name, n) in cases {
        let spec = cme_kernels::kernel_by_name(name).expect("kernel");
        let nest = (spec.build)(n);
        let layout = MemoryLayout::contiguous(&nest);
        let an = model.analyze(&nest, &layout, None);
        let exact = an.exhaustive().miss_ratio();
        for budget in budgets {
            let cfg = SamplingConfig::fixed(budget);
            let t0 = Instant::now();
            let mut max_err = 0.0f64;
            let mut sum_err = 0.0f64;
            for seed in 0..100u64 {
                let est = an.estimate(&cfg, seed).miss_ratio();
                let err = (est - exact).abs();
                max_err = max_err.max(err);
                sum_err += err;
            }
            let elapsed = t0.elapsed() / 100;
            rows.push(vec![
                format!("{name}_{n}"),
                budget.to_string(),
                format!("{:.2}", sum_err / 100.0 * 100.0),
                format!("{:.2}", max_err * 100.0),
                format!("{elapsed:.1?}"),
            ]);
        }
    }
    println!(
        "{}",
        cme_bench::format_table(
            &["kernel", "points", "mean |err| %", "max |err| %", "time/estimate"],
            &rows
        )
    );
    println!("(the paper's 164-point design sits at the knee: ~1% mean error, sub-ms estimates)");
}
