//! Evaluation-engine throughput: cold-path candidate evaluations per
//! second on the paper's matmul request (MM at its default size, 8 KB
//! paper cache, 164-point sampling), three ways:
//!
//! * **from_scratch** — the pre-PR evaluation path: a full
//!   `CmeModel::analyze` per candidate, eagerly materialising the
//!   explicit reuse candidates (as the old `analyze` did), then the
//!   sampled estimate;
//! * **engine** — the shared [`EvalEngine`]: per-kernel analysis computed
//!   once, candidates borrow it (byte-identical results);
//! * **engine_early_abandon** — the engine with the `SamplingConfig::
//!   early_abandon` knob on and a rolling incumbent, the GA's actual
//!   search regime (approximate costs for hopeless candidates,
//!   deterministic, reported before/after estimates unaffected);
//! * **lattice** — the closed-form lattice backend behind the same
//!   `Estimator` seam: per-candidate cost independent of the iteration
//!   count (no per-point sampling), so it must beat the sampled engine
//!   arm's evals/s.
//!
//! Writes `BENCH_eval.json` (skipped with `--no-write`, the CI smoke
//! mode). The candidate count is the first positional argument
//! (default 150).
//!
//! With `--assert-baseline` the run additionally reads the recorded
//! `BENCH_eval.json` and **fails** (exit 1) when the cold-path engine
//! throughput drops more than the tolerance below the recorded
//! `engine.evals_per_sec` figure — the CI bench-regression gate.
//! `--tolerance FRAC` adjusts the allowed drop (default 0.30).
//!
//! ```text
//! cargo run --release -p cme-bench --bin eval_throughput [N] [--no-write] \
//!     [--assert-baseline] [--tolerance FRAC]
//! ```

use cme_core::engine::{fold_seed, SEED_SPLIT};
use cme_core::{
    CacheSpec, CmeModel, EarlyAbandonConfig, Estimator, EvalEngine, LatticeEstimator,
    SamplingConfig,
};
use cme_loopnest::{MemoryLayout, TileSizes};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Arm {
    label: &'static str,
    evals: usize,
    wall_s: f64,
}

impl Arm {
    fn eps(&self) -> f64 {
        self.evals as f64 / self.wall_s
    }

    fn json(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("evaluations".into(), serde::Value::UInt(self.evals as u64)),
            ("wall_ms".into(), serde::Value::Float(self.wall_s * 1e3)),
            ("evals_per_sec".into(), serde::Value::Float(self.eps())),
            ("ms_per_eval".into(), serde::Value::Float(self.wall_s * 1e3 / self.evals as f64)),
        ])
    }
}

fn main() {
    let mut n: usize = 150;
    let mut write = true;
    let mut assert_baseline = false;
    let mut tolerance = 0.30f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-write" => write = false,
            "--assert-baseline" => assert_baseline = true,
            "--tolerance" => {
                let v = args.next().expect("--tolerance needs a value");
                tolerance = v.parse().expect("tolerance fraction");
                assert!((0.0..1.0).contains(&tolerance), "tolerance must be in [0, 1)");
            }
            other => n = other.parse().expect("candidate count"),
        }
    }

    let spec = cme_kernels::kernel_by_name("MM").expect("MM kernel");
    let nest = (spec.build)(spec.default_size);
    let layout = MemoryLayout::contiguous(&nest);
    let model = CmeModel::new(CacheSpec::paper_8k());
    let sampling = SamplingConfig::paper();
    let seed = 0xCE11u64;

    // Distinct pseudo-random candidates, the mix a GA generation sees.
    let spans = nest.spans();
    let mut rng = StdRng::seed_from_u64(7);
    let cands: Vec<Vec<i64>> =
        (0..n).map(|_| spans.iter().map(|&s| rng.gen_range(1..=s)).collect()).collect();

    // Pre-PR path: from-scratch analysis per candidate. The old
    // `analyze` built the explicit reuse candidates eagerly; force the
    // (now lazy) lift to reproduce its cost faithfully.
    let t0 = Instant::now();
    let mut check_scratch = 0.0f64;
    for v in &cands {
        let tiles = TileSizes(v.clone());
        let eff = (!tiles.is_trivial(&nest)).then_some(&tiles);
        let an = model.analyze(&nest, &layout, eff);
        std::hint::black_box(an.candidates().len());
        let h = fold_seed(seed ^ SEED_SPLIT, v);
        check_scratch += an.estimate(&sampling, h).replacement_misses();
    }
    let scratch = Arm { label: "from_scratch", evals: n, wall_s: t0.elapsed().as_secs_f64() };

    // Engine path (identical costs, shared analysis).
    let t0 = Instant::now();
    let engine = EvalEngine::new(model, &nest, &layout, sampling, seed);
    let mut check_engine = 0.0f64;
    for v in &cands {
        check_engine += engine.cost(v, None);
    }
    let engined = Arm { label: "engine", evals: n, wall_s: t0.elapsed().as_secs_f64() };
    assert_eq!(
        check_scratch.to_bits(),
        check_engine.to_bits(),
        "engine must be byte-identical to the from-scratch path"
    );

    // Engine + early abandonment with a rolling incumbent (frozen
    // per-candidate here; the GA freezes it per generation).
    let abandoning = sampling.with_early_abandon(EarlyAbandonConfig { check_every: 32 });
    let t0 = Instant::now();
    let engine_ea = EvalEngine::new(model, &nest, &layout, abandoning, seed);
    let mut incumbent: Option<f64> = None;
    for v in &cands {
        let c = engine_ea.cost(v, incumbent);
        if incumbent.is_none_or(|b| c < b) {
            incumbent = Some(c);
        }
    }
    let abandon =
        Arm { label: "engine_early_abandon", evals: n, wall_s: t0.elapsed().as_secs_f64() };

    // Lattice backend over the same shared engine: closed-form counting,
    // no per-point sampling — the second `Estimator` implementation.
    let t0 = Instant::now();
    let lattice_est = LatticeEstimator::new(&engine);
    let mut check_lattice = 0.0f64;
    for v in &cands {
        check_lattice += lattice_est.cost(v, None);
    }
    std::hint::black_box(check_lattice);
    let lattice = Arm { label: "lattice", evals: n, wall_s: t0.elapsed().as_secs_f64() };

    // Strategy-family arms: the same MM request answered by the GA
    // (tiling), the cache-oblivious halving and the latency-based probe
    // ladder — evals-to-answer and wall time per family. The tournament
    // claim this pins: the latency-based family reaches its answer with
    // at least 10x fewer evaluations than the GA and in less wall time.
    let families = family_arms();

    let speedup = engined.eps() / scratch.eps();
    let speedup_ea = abandon.eps() / scratch.eps();
    let speedup_lattice = lattice.eps() / engined.eps();
    for arm in [&scratch, &engined, &abandon, &lattice] {
        println!(
            "{:>22}: {:8.1} evals/s ({:.3} ms/eval)",
            arm.label,
            arm.eps(),
            arm.wall_s * 1e3 / arm.evals as f64
        );
    }
    println!(
        "engine speedup {speedup:.2}x, with early abandon {speedup_ea:.2}x; \
         lattice {speedup_lattice:.2}x over the sampled engine"
    );
    assert!(
        lattice.eps() > engined.eps(),
        "lattice backend ({:.1} evals/s) must beat the sampled engine arm ({:.1} evals/s)",
        lattice.eps(),
        engined.eps()
    );

    let doc = serde::Value::Object(vec![
        ("bench".into(), serde::Value::Str("eval_throughput".into())),
        ("kernel".into(), serde::Value::Str(nest.name.clone())),
        ("cache".into(), serde::Value::Str("paper 8 KB direct-mapped, 32 B lines".into())),
        ("sampling".into(), serde::Value::Str("paper 164-point".into())),
        ("candidates".into(), serde::Value::UInt(n as u64)),
        ("from_scratch".into(), scratch.json()),
        ("engine".into(), engined.json()),
        ("engine_early_abandon".into(), abandon.json()),
        ("lattice".into(), lattice.json()),
        ("families".into(), families),
        ("engine_speedup".into(), serde::Value::Float(speedup)),
        ("early_abandon_speedup".into(), serde::Value::Float(speedup_ea)),
        ("lattice_speedup".into(), serde::Value::Float(speedup_lattice)),
        (
            "note".into(),
            serde::Value::Str(
                "engine arm is byte-identical to from_scratch (asserted); early-abandon arm is \
                 the deterministic approximate search mode"
                    .into(),
            ),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialise") + "\n";
    if assert_baseline {
        assert_against_baseline(engined.eps(), tolerance);
    }
    if write {
        std::fs::write("BENCH_eval.json", &json).expect("write BENCH_eval.json");
        println!("wrote BENCH_eval.json");
    }
}

/// The per-family evals-to-answer arms: one `Session::run` per tiling
/// family on the paper's MM request. Returns the JSON section written
/// into `BENCH_eval.json` and asserts the latency-based family's
/// efficiency claim (≥ 10x fewer evaluations than the GA, less wall
/// time).
fn family_arms() -> serde::Value {
    use cme_api::{NestSource, OptimizeRequest, Session, StrategySpec};

    let session = Session::default();
    let specs: [(&str, StrategySpec); 3] = [
        ("ga", StrategySpec::Tiling),
        ("oblivious", StrategySpec::CacheOblivious),
        ("latency", StrategySpec::LatencyBased),
    ];
    let mut section = Vec::new();
    let mut ga_evals = 0u64;
    let mut ga_wall = 0u64;
    let mut latency_evals = 0u64;
    let mut latency_wall = 0u64;
    for (label, spec) in specs {
        let req = OptimizeRequest::new(NestSource::kernel("MM"), spec).with_seed(7);
        let out = session.run(&req).expect(label);
        // Evals-to-answer: GA fitness evaluations, probe-ladder probes,
        // or one closed-form derivation (cache-oblivious).
        let evals = out.ga.as_ref().map(|ga| ga.evaluations).or(out.explored).unwrap_or(1);
        match label {
            "ga" => (ga_evals, ga_wall) = (evals, out.wall_ms),
            "latency" => (latency_evals, latency_wall) = (evals, out.wall_ms),
            _ => {}
        }
        println!(
            "family {label:>10}: {evals:>6} evals to answer, {:>6} ms, cost {:.1}",
            out.wall_ms,
            out.after.weighted_cost()
        );
        section.push((
            label.to_string(),
            serde::Value::Object(vec![
                ("evals_to_answer".into(), serde::Value::UInt(evals)),
                ("wall_ms".into(), serde::Value::UInt(out.wall_ms)),
                ("weighted_cost".into(), serde::Value::Float(out.after.weighted_cost())),
            ]),
        ));
    }
    assert!(
        latency_evals * 10 <= ga_evals,
        "latency-based family must answer with >= 10x fewer evaluations than the GA \
         ({latency_evals} probes vs {ga_evals} GA evaluations)"
    );
    assert!(
        latency_wall < ga_wall.max(1),
        "latency-based family must answer faster than the GA ({latency_wall} ms vs {ga_wall} ms)"
    );
    serde::Value::Object(section)
}

/// The CI bench-regression gate: compare the cold-path engine throughput
/// of this run against the figure recorded in `BENCH_eval.json` and exit
/// non-zero when it regressed by more than `tolerance`. An *improved*
/// figure always passes (the recorded baseline is refreshed by the next
/// full `eval_throughput` run, not by the gate).
fn assert_against_baseline(current_eps: f64, tolerance: f64) {
    let raw = std::fs::read_to_string("BENCH_eval.json")
        .expect("--assert-baseline needs a recorded BENCH_eval.json in the working directory");
    let doc: serde::Value = serde_json::from_str(&raw).expect("BENCH_eval.json parses");
    let recorded = doc
        .get("engine")
        .and_then(|arm| arm.get("evals_per_sec"))
        .and_then(|v| match v {
            serde::Value::Float(f) => Some(*f),
            serde::Value::Int(i) => Some(*i as f64),
            serde::Value::UInt(u) => Some(*u as f64),
            _ => None,
        })
        .expect("BENCH_eval.json records engine.evals_per_sec");
    let floor = recorded * (1.0 - tolerance);
    if current_eps < floor {
        eprintln!(
            "bench regression: cold-path engine throughput {current_eps:.1} evals/s is below \
             {floor:.1} ({:.0}% of the recorded {recorded:.1})",
            (1.0 - tolerance) * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "baseline OK: {current_eps:.1} evals/s vs recorded {recorded:.1} \
         (floor {floor:.1}, tolerance {tolerance})"
    );
}
