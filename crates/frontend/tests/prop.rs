//! Property tests for the textual frontend: rendering is the lossless
//! inverse of parsing (rectangular and triangular), lowering an imperfect
//! nest reproduces the statement-major access stream exactly, and the
//! parser never panics.

use cme_frontend::{lower, parse, render};
use cme_loopnest::{AccessKind, ArrayDecl, ArrayId, Layout, LoopDef, LoopNest, MemRef};
use cme_polyhedra::AffineForm;
use proptest::prelude::*;

const LOOP_NAMES: [&str; 3] = ["i", "j", "k"];
const ARRAY_NAMES: [&str; 3] = ["a", "b", "c"];

/// Per-dimension subscript recipe: `coeff * var + off` (guaranteed in
/// range by sizing the extent to the recipe's maximum).
#[derive(Debug, Clone)]
struct DimRecipe {
    var: usize,
    coeff: i64,
    off: i64,
}

/// Build a valid nest from raw generator choices. `tri[t] = Some(p)`
/// makes loop `t` triangular — upper bound `x_p` for an outer `p < t` —
/// so its hull span becomes `p`'s hull span.
#[allow(clippy::type_complexity)]
fn build_nest(
    spans: &[i64],
    tri: &[Option<usize>],
    arrays: &[(Vec<DimRecipe>, i64, bool)],
    refs: &[(usize, bool, i64)],
) -> LoopNest {
    let depth = spans.len();
    // Constant hull span per loop after triangular substitution.
    let mut hulls: Vec<i64> = Vec::with_capacity(depth);
    for (t, &s) in spans.iter().enumerate() {
        let h = match tri[t] {
            Some(p) if p < t => hulls[p],
            _ => s,
        };
        hulls.push(h);
    }
    let loops: Vec<LoopDef> = hulls
        .iter()
        .enumerate()
        .map(|(t, &h)| match tri[t] {
            Some(p) if p < t => {
                let mut coeffs = vec![0i64; depth];
                coeffs[p] = 1;
                LoopDef::with_affine_bounds(
                    LOOP_NAMES[t],
                    1,
                    h,
                    None,
                    Some(AffineForm::new(coeffs, 0)),
                )
            }
            _ => LoopDef::new(LOOP_NAMES[t], 1, h),
        })
        .collect();
    let decls: Vec<ArrayDecl> = arrays
        .iter()
        .enumerate()
        .map(|(k, (dims, elem, row))| ArrayDecl {
            name: ARRAY_NAMES[k].to_string(),
            // Extent covers the recipe at its maximum plus the ref-level
            // wobble (+1) below (subscripts are checked over the hull).
            extents: dims.iter().map(|d| d.coeff * hulls[d.var] + d.off + 1).collect(),
            elem_size: *elem,
            layout: if *row { Layout::RowMajor } else { Layout::ColumnMajor },
        })
        .collect();
    let mem_refs: Vec<MemRef> = refs
        .iter()
        .map(|&(which, write, wobble)| {
            let a = which % arrays.len();
            let subscripts: Vec<AffineForm> = arrays[a]
                .0
                .iter()
                .map(|d| {
                    let mut coeffs = vec![0i64; depth];
                    coeffs[d.var] = d.coeff;
                    AffineForm::new(coeffs, d.off + wobble)
                })
                .collect();
            MemRef {
                array: ArrayId(a),
                subscripts,
                access: if write { AccessKind::Write } else { AccessKind::Read },
            }
        })
        .collect();
    let nest = LoopNest { name: "prop_nest".to_string(), loops, arrays: decls, refs: mem_refs };
    nest.validate().expect("generator only builds valid nests");
    nest
}

/// One body item of a generated imperfect program: a run of statements
/// over the 1-D array `x[i + w]`, or an inner `j` loop (rectangular span
/// `m` or triangular `j <= i`) over the 2-D array `a[i][j + w]`. Each
/// statement is `(w, is_write)`.
#[derive(Debug, Clone)]
enum Item {
    Run(Vec<(i64, bool)>),
    Loop { tri: bool, body: Vec<(i64, bool)> },
}

/// Render the imperfect-program recipe as kernel source.
fn imperfect_source(n: i64, m: i64, items: &[Item]) -> String {
    let e1 = n.max(m) + 2;
    let mut s = format!(
        "kernel imp;\nreal4 x[{}];\nreal4 a[{}][{}];\nfor (i = 1; i <= {n}; i++) {{\n",
        n + 2,
        n + 2,
        e1
    );
    let stmt = |s: &mut String, indent: &str, arr: &str, sub: String, write: bool| {
        if write {
            s.push_str(&format!("{indent}{arr}[{sub}] = 0;\n"));
        } else {
            s.push_str(&format!("{indent}load {arr}[{sub}];\n"));
        }
    };
    for item in items {
        match item {
            Item::Run(stmts) => {
                for &(w, write) in stmts {
                    let sub = if w == 0 { "i".to_string() } else { format!("i + {w}") };
                    stmt(&mut s, "  ", "x", sub, write);
                }
            }
            Item::Loop { tri, body } => {
                let hi = if *tri { "i".to_string() } else { m.to_string() };
                s.push_str(&format!("  for (j = 1; j <= {hi}; j++) {{\n"));
                for &(w, write) in body {
                    let sub = if w == 0 { "i][j".to_string() } else { format!("i][j + {w}") };
                    stmt(&mut s, "    ", "a", sub, write);
                }
                s.push_str("  }\n");
            }
        }
    }
    s.push_str("}\n");
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ render is the identity on valid nests (and therefore
    /// parse → serialize → parse is stable after one round). Loops may be
    /// triangular: any non-outermost loop can take an outer variable as
    /// its upper bound.
    #[test]
    fn parse_render_parse_round_trips(
        (spans, tri_raw, arrays, refs) in (1usize..=3).prop_flat_map(|depth| (
            prop::collection::vec(1i64..=6, depth..=depth),
            prop::collection::vec((any::<bool>(), 0usize..3), depth..=depth),
            prop::collection::vec(
                (
                    prop::collection::vec(
                        (0usize..depth, 1i64..=2, 0i64..=2), 1..=2,
                    ),
                    prop::collection::vec(0usize..=1, 1..=1), // elem size selector
                    any::<bool>(),
                ),
                1..=3,
            ),
            prop::collection::vec((0usize..=2, any::<bool>(), 0i64..=1), 1..=4),
        ))
    ) {
        let arrays: Vec<(Vec<DimRecipe>, i64, bool)> = arrays
            .into_iter()
            .map(|(dims, elem_sel, row)| (
                dims.into_iter().map(|(var, coeff, off)| DimRecipe { var, coeff, off }).collect(),
                if elem_sel[0] == 0 { 4 } else { 8 },
                row,
            ))
            .collect();
        let tri: Vec<Option<usize>> = tri_raw
            .iter()
            .enumerate()
            .map(|(t, &(on, p))| if t > 0 && on { Some(p % t) } else { None })
            .collect();
        let nest = build_nest(&spans, &tri, &arrays, &refs);
        let src = render(&nest).expect("valid nests render");
        let back = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        prop_assert_eq!(&back, &nest, "round-trip drifted:\n{}", src);
        // Idempotence: rendering the re-parsed nest reproduces the bytes.
        prop_assert_eq!(render(&back).unwrap(), src);
    }

    /// Statement-major fission is exact: lowering an imperfect nest and
    /// concatenating the sub-nests' trace streams replays each maximal
    /// statement run over its full iteration space, in textual order,
    /// access for access — checked against an independent oracle that
    /// enumerates the recipe with plain Rust loops and computes byte
    /// addresses from the layout's bases and column-major strides.
    #[test]
    fn lowering_concatenation_matches_statement_major_oracle(
        (n, m, raw_items) in (2i64..=5, 2i64..=4, prop::collection::vec(
            (0usize..=1, any::<bool>(), prop::collection::vec((0i64..=1, any::<bool>()), 1..=3)),
            1..=4,
        ))
    ) {
        let items: Vec<Item> = raw_items
            .into_iter()
            .map(|(kind, tri, stmts)| {
                if kind == 0 {
                    Item::Run(stmts)
                } else {
                    let mut body = stmts;
                    body.truncate(2);
                    Item::Loop { tri, body }
                }
            })
            .collect();
        use cme_loopnest::trace::collect_trace;
        use cme_loopnest::MemoryLayout;

        let src = imperfect_source(n, m, &items);
        let subs = lower(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        // All sub-nests share the array table, so the contiguous layout
        // is the same for each; take it from the first.
        let layout = MemoryLayout::contiguous(&subs[0]);
        let mut actual: Vec<(usize, i64)> = Vec::new();
        for sub in &subs {
            prop_assert_eq!(&MemoryLayout::contiguous(sub), &layout);
            actual.extend(collect_trace(sub, &layout, None).iter().map(|a| (a.ref_idx, a.addr)));
        }

        // Oracle: x is array 0 (rank 1), a is array 1 (rank 2,
        // column-major): addr = base + 4·((s0−1) + e0·(s1−1)).
        let addr_x = |s0: i64| layout.bases[0] + 4 * (s0 - 1);
        let e0 = layout.padded_extents[1][0];
        let addr_a = |s0: i64, s1: i64| layout.bases[1] + 4 * ((s0 - 1) + e0 * (s1 - 1));
        let mut expected: Vec<(usize, i64)> = Vec::new();
        let mut groups = 0usize;
        let mut idx = 0usize;
        while idx < items.len() {
            groups += 1;
            match &items[idx] {
                Item::Run(_) => {
                    // Adjacent statement runs merge into one maximal run
                    // (one sub-nest).
                    let mut stmts: Vec<(i64, bool)> = Vec::new();
                    while let Some(Item::Run(r)) = items.get(idx) {
                        stmts.extend(r.iter().copied());
                        idx += 1;
                    }
                    for i in 1..=n {
                        for (r, &(w, _)) in stmts.iter().enumerate() {
                            expected.push((r, addr_x(i + w)));
                        }
                    }
                }
                Item::Loop { tri, body } => {
                    for i in 1..=n {
                        let hi = if *tri { i } else { m };
                        for j in 1..=hi {
                            for (r, &(w, _)) in body.iter().enumerate() {
                                expected.push((r, addr_a(i, j + w)));
                            }
                        }
                    }
                    idx += 1;
                }
            }
        }
        prop_assert_eq!(subs.len(), groups, "one sub-nest per maximal run:\n{}", src);
        prop_assert_eq!(actual, expected, "trace drifted:\n{}", src);
    }

    /// The parser rejects garbage with an error, never a panic.
    #[test]
    fn parser_never_panics(tokens in prop::collection::vec(0usize..=15, 0..=40)) {
        let vocab = [
            "for", "(", ")", "{", "}", "[", "]", ";", "=", "+", "*", "real4",
            "kernel", "load", "x", "7",
        ];
        let src: String =
            tokens.iter().map(|&t| vocab[t]).collect::<Vec<_>>().join(" ");
        let _ = parse(&src); // must return, Ok or Err
    }
}
