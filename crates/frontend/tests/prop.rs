//! Property tests for the textual frontend: rendering is the lossless
//! inverse of parsing, and the parser never panics.

use cme_frontend::{parse, render};
use cme_loopnest::{AccessKind, ArrayDecl, ArrayId, Layout, LoopDef, LoopNest, MemRef};
use cme_polyhedra::AffineForm;
use proptest::prelude::*;

const LOOP_NAMES: [&str; 3] = ["i", "j", "k"];
const ARRAY_NAMES: [&str; 3] = ["a", "b", "c"];

/// Per-dimension subscript recipe: `coeff * var + off` (guaranteed in
/// range by sizing the extent to the recipe's maximum).
#[derive(Debug, Clone)]
struct DimRecipe {
    var: usize,
    coeff: i64,
    off: i64,
}

/// Build a valid nest from raw generator choices.
#[allow(clippy::type_complexity)]
fn build_nest(
    spans: &[i64],
    arrays: &[(Vec<DimRecipe>, i64, bool)],
    refs: &[(usize, bool, i64)],
) -> LoopNest {
    let loops: Vec<LoopDef> =
        spans.iter().enumerate().map(|(t, &s)| LoopDef::new(LOOP_NAMES[t], 1, s)).collect();
    let decls: Vec<ArrayDecl> = arrays
        .iter()
        .enumerate()
        .map(|(k, (dims, elem, row))| ArrayDecl {
            name: ARRAY_NAMES[k].to_string(),
            // Extent covers the recipe at its maximum plus the ref-level
            // wobble (+1) below.
            extents: dims.iter().map(|d| d.coeff * spans[d.var] + d.off + 1).collect(),
            elem_size: *elem,
            layout: if *row { Layout::RowMajor } else { Layout::ColumnMajor },
        })
        .collect();
    let mem_refs: Vec<MemRef> = refs
        .iter()
        .map(|&(which, write, wobble)| {
            let a = which % arrays.len();
            let subscripts: Vec<AffineForm> = arrays[a]
                .0
                .iter()
                .map(|d| {
                    let mut coeffs = vec![0i64; spans.len()];
                    coeffs[d.var] = d.coeff;
                    AffineForm::new(coeffs, d.off + wobble)
                })
                .collect();
            MemRef {
                array: ArrayId(a),
                subscripts,
                access: if write { AccessKind::Write } else { AccessKind::Read },
            }
        })
        .collect();
    let nest = LoopNest { name: "prop_nest".to_string(), loops, arrays: decls, refs: mem_refs };
    nest.validate().expect("generator only builds valid nests");
    nest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ render is the identity on valid nests (and therefore
    /// parse → serialize → parse is stable after one round).
    #[test]
    fn parse_render_parse_round_trips(
        (spans, arrays, refs) in (1usize..=3).prop_flat_map(|depth| (
            prop::collection::vec(1i64..=6, depth..=depth),
            prop::collection::vec(
                (
                    prop::collection::vec(
                        (0usize..depth, 1i64..=2, 0i64..=2), 1..=2,
                    ),
                    prop::collection::vec(0usize..=1, 1..=1), // elem size selector
                    any::<bool>(),
                ),
                1..=3,
            ),
            prop::collection::vec((0usize..=2, any::<bool>(), 0i64..=1), 1..=4),
        ))
    ) {
        let arrays: Vec<(Vec<DimRecipe>, i64, bool)> = arrays
            .into_iter()
            .map(|(dims, elem_sel, row)| (
                dims.into_iter().map(|(var, coeff, off)| DimRecipe { var, coeff, off }).collect(),
                if elem_sel[0] == 0 { 4 } else { 8 },
                row,
            ))
            .collect();
        let nest = build_nest(&spans, &arrays, &refs);
        let src = render(&nest).expect("valid nests render");
        let back = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        prop_assert_eq!(&back, &nest, "round-trip drifted:\n{}", src);
        // Idempotence: rendering the re-parsed nest reproduces the bytes.
        prop_assert_eq!(render(&back).unwrap(), src);
    }

    /// The parser rejects garbage with an error, never a panic.
    #[test]
    fn parser_never_panics(tokens in prop::collection::vec(0usize..=15, 0..=40)) {
        let vocab = [
            "for", "(", ")", "{", "}", "[", "]", ";", "=", "+", "*", "real4",
            "kernel", "load", "x", "7",
        ];
        let src: String =
            tokens.iter().map(|&t| vocab[t]).collect::<Vec<_>>().join(" ");
        let _ = parse(&src); // must return, Ok or Err
    }
}
