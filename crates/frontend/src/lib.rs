#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `cme-frontend` — a small C-like textual format for affine loop nests.
//!
//! The optimiser is kernel-agnostic: any perfectly nested loop with affine
//! array subscripts can be analysed. This crate is the bridge from *source
//! text* to the [`cme_loopnest::LoopNest`] IR, so kernels can arrive as
//! code instead of registry names or hand-written JSON:
//!
//! ```
//! let nest = cme_frontend::parse(
//!     "kernel mm;
//!      real4 a[8][8]; real4 b[8][8]; real4 c[8][8];
//!      base 0;
//!      for (i = 0; i < 8; i++) {
//!        for (j = 0; j < 8; j++) {
//!          for (k = 0; k < 8; k++) {
//!            a[i][j] += b[i][k] * c[k][j];
//!          }
//!        }
//!      }",
//! )
//! .unwrap();
//! assert_eq!(nest.depth(), 3);
//! assert_eq!(nest.refs.len(), 4); // read a, read b, read c, write a
//!
//! // Rendering is lossless: parse(render(n)) == n.
//! let back = cme_frontend::parse(&cme_frontend::render(&nest).unwrap()).unwrap();
//! assert_eq!(back, nest);
//! ```
//!
//! # The format
//!
//! A kernel file is: optional directives and array declarations (any
//! order), then exactly one perfectly nested `for` tower whose innermost
//! block holds the body statements.
//!
//! * `kernel NAME;` / `kernel "any name";` — nest name (default `inline`).
//! * `base 0;` — source subscripts and loop bounds are 0-based (C
//!   convention); they are shifted onto the IR's 1-based Fortran
//!   convention without changing the access pattern. Default is `base 1;`.
//! * `real4 a[100][50];` — array declaration. Element types: `realN` (`N`
//!   bytes per element), with `float` ≡ `real4` and `double` ≡ `real8`.
//!   Arrays are column-major unless prefixed `rowmajor`
//!   (`colmajor` spells the default).
//! * `for (i = 1; i <= 100; i++) { … }` — unit-stride loop; `<` and
//!   `+= 1` are accepted spellings. Bounds are affine in the *outer* loop
//!   variables, so triangular towers parse directly:
//!   `for (j = 1; j <= i; j++)` or `for (j = i + 1; j < n; j++)` with a
//!   constant `n`-substituted bound. Constant bounds stay plain constants
//!   on the wire. For [`parse`], loops must be perfectly nested: a block
//!   holds either exactly one `for` or the body statements. [`lower`]
//!   additionally accepts imperfect nests (statements and `for`s
//!   interleaved) and splits them into perfect sub-nests by
//!   statement-major fission.
//! * Body statements generate the memory-reference stream in textual
//!   order. `x[i] = expr;` reads every array reference in `expr`
//!   left-to-right, then writes `x[i]`; compound assignment
//!   (`x[i] += expr;`) reads `x[i]` first (read-modify-write).
//!   `load expr;` touches references without writing — the escape hatch
//!   for reference streams with no terminating store. Scalars,
//!   constants and arithmetic operators only shape the stream; the cache
//!   model sees the references.
//! * Subscripts are affine in the loop variables: `a[2*i + j - 1]`.
//! * Comments: `// line` and `/* block */`.
//!
//! `parse` validates the result exactly like an inline wire nest
//! ([`cme_loopnest::LoopNest::validate`]), so out-of-bounds subscripts and
//! rank mismatches are reported with the reference index, not deferred to
//! the optimiser.

mod lex;
mod parse;
mod render;

pub use parse::{lower, parse, parse_with_spans, RefSpan};
pub use render::render;

use cme_loopnest::NestError;

/// Why source text could not become a nest, or a nest could not become
/// source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// Syntax error at 1-based `line`:`col`.
    Parse {
        /// Line of the offending token.
        line: usize,
        /// Column of the offending token.
        col: usize,
        /// What was wrong.
        msg: String,
    },
    /// The text parsed but the nest violates an IR invariant (the inner
    /// error names the failing loop/array/reference).
    Invalid(NestError),
    /// The nest cannot be expressed in the textual format (e.g.
    /// non-identifier or duplicate loop/array names).
    Render(String),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse { line, col, msg } => write!(f, "line {line}:{col}: {msg}"),
            FrontendError::Invalid(e) => write!(f, "{e}"),
            FrontendError::Render(msg) => write!(f, "cannot render nest: {msg}"),
        }
    }
}

impl std::error::Error for FrontendError {}

/// True iff `name` is usable as a bare identifier in kernel source: an
/// ASCII identifier that is not one of the format's keywords. Loop and
/// array names must satisfy this; kernel names fall back to the quoted
/// spelling when they do not.
pub fn is_bare_name(name: &str) -> bool {
    let mut chars = name.chars();
    let head_ok = matches!(chars.next(), Some(c) if c == '_' || c.is_ascii_alphabetic());
    head_ok && chars.all(|c| c == '_' || c.is_ascii_alphanumeric()) && !is_keyword(name)
}

/// The format's reserved words (including every `realN` element type).
pub(crate) fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "for" | "load" | "kernel" | "base" | "rowmajor" | "colmajor" | "float" | "double"
    ) || (name.len() > 4
        && name.starts_with("real")
        && name[4..].chars().all(|c| c.is_ascii_digit()))
}
