//! Recursive-descent parser: kernel source → [`LoopNest`].

use crate::lex::{lex, Tok, Token};
use crate::{is_keyword, FrontendError};
use cme_loopnest::{AccessKind, ArrayDecl, ArrayId, Layout, LoopDef, LoopNest, MemRef};
use cme_polyhedra::AffineForm;

/// 1-based source position of one array reference, aligned with the
/// nest's reference stream: `spans[k]` is where `nest.refs[k]`'s array
/// name appears in the source (diagnostics attach these to lints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefSpan {
    /// Line of the reference's array name.
    pub line: usize,
    /// Column of the reference's array name.
    pub col: usize,
}

/// Parse kernel source text into a validated [`LoopNest`].
///
/// See the crate docs for the format. The returned nest has already
/// passed [`LoopNest::validate`]; errors carry 1-based source positions
/// for syntax problems and the IR's reference-indexed wording for
/// semantic ones.
pub fn parse(src: &str) -> Result<LoopNest, FrontendError> {
    parse_with_spans(src).map(|(nest, _)| nest)
}

/// As [`parse`], also returning one [`RefSpan`] per reference, in
/// reference-stream order. The `base 0;` rebase rewrites subscripts in
/// place without reordering the stream, so spans stay aligned.
pub fn parse_with_spans(src: &str) -> Result<(LoopNest, Vec<RefSpan>), FrontendError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let (nest, spans) = p.program()?;
    nest.validate().map_err(FrontendError::Invalid)?;
    debug_assert_eq!(nest.refs.len(), spans.len());
    Ok((nest, spans))
}

/// Lower a possibly *imperfect* nest into perfect sub-nests.
///
/// Where [`parse`] insists a block holds either exactly one `for` or a
/// statement list, `lower` accepts any interleaving of statements and
/// nested `for` towers (and several towers at top level) and splits the
/// program at statement boundaries: every maximal run of statements
/// becomes one perfect [`LoopNest`] under its full enclosing loop tower,
/// in textual order — statement-major fission. Sub-nests are named
/// `{kernel}__s{k}` (`k` counting runs in textual order), share the full
/// array table (so array ids and layouts agree across sub-nests), and
/// each passes [`LoopNest::validate`].
///
/// Concatenating the sub-nests' access streams tower-by-tower reproduces
/// the statement-major reading of the source: for each run, its tower's
/// iteration space in lexicographic order, the run's references in
/// textual order per point.
pub fn lower(src: &str) -> Result<Vec<LoopNest>, FrontendError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let nests = p.program_imperfect()?;
    for nest in &nests {
        nest.validate().map_err(FrontendError::Invalid)?;
    }
    Ok(nests)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err_at(&self, tok: &Token, msg: impl Into<String>) -> FrontendError {
        FrontendError::Parse { line: tok.line, col: tok.col, msg: msg.into() }
    }

    fn expect(&mut self, want: Tok) -> Result<Token, FrontendError> {
        let t = self.next();
        if t.kind == want {
            Ok(t)
        } else {
            Err(self.err_at(&t, format!("expected {want}, found {}", t.kind)))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Token), FrontendError> {
        let t = self.next();
        match &t.kind {
            Tok::Ident(s) => Ok((s.clone(), t.clone())),
            other => Err(self.err_at(&t, format!("expected {what}, found {other}"))),
        }
    }

    /// A possibly negated integer literal.
    fn expect_int(&mut self, what: &str) -> Result<i64, FrontendError> {
        let neg = self.peek().kind == Tok::Minus;
        if neg {
            self.next();
        }
        let t = self.next();
        match &t.kind {
            Tok::Int(v) => Ok(if neg { -v } else { *v }),
            other => Err(self.err_at(&t, format!("expected {what}, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<(LoopNest, Vec<RefSpan>), FrontendError> {
        let (name, base, arrays) = self.header()?;

        // The loop tower and its body.
        let mut loops: Vec<LoopDef> = Vec::new();
        let mut refs: Vec<(MemRef, RefSpan)> = Vec::new();
        self.for_tower(&arrays, &mut loops, &mut refs)?;
        self.expect(Tok::Eof)?;
        finalize_bounds(&mut loops);

        let (refs, spans) = refs.into_iter().unzip();
        let mut nest =
            LoopNest { name: name.unwrap_or_else(|| "inline".to_string()), loops, arrays, refs };
        if base == Some(0) {
            rebase_to_one(&mut nest);
        }
        Ok((nest, spans))
    }

    /// As [`Self::program`], accepting imperfect nesting: statement runs
    /// and `for` towers interleave freely; each run snapshots one perfect
    /// sub-nest (see [`lower`]).
    fn program_imperfect(&mut self) -> Result<Vec<LoopNest>, FrontendError> {
        let (name, base, arrays) = self.header()?;
        let name = name.unwrap_or_else(|| "inline".to_string());
        let mut loops: Vec<LoopDef> = Vec::new();
        let mut out: Vec<LoopNest> = Vec::new();
        let mut counter = 0usize;
        while matches!(&self.peek().kind, Tok::Ident(w) if w == "for") {
            self.imperfect_tower(&arrays, &mut loops, &name, &mut counter, &mut out)?;
        }
        let eof = self.expect(Tok::Eof)?;
        if out.is_empty() {
            return Err(self.err_at(&eof, "the program has no statements to lower"));
        }
        if base == Some(0) {
            for nest in &mut out {
                rebase_to_one(nest);
            }
        }
        Ok(out)
    }

    /// Header: directives and declarations, any order, until `for`.
    #[allow(clippy::type_complexity)]
    fn header(&mut self) -> Result<(Option<String>, Option<i64>, Vec<ArrayDecl>), FrontendError> {
        let mut name: Option<String> = None;
        let mut base: Option<i64> = None;
        let mut arrays: Vec<ArrayDecl> = Vec::new();
        loop {
            let tok = self.peek().clone();
            match &tok.kind {
                Tok::Ident(word) => match word.as_str() {
                    "for" => break,
                    "kernel" => {
                        self.next();
                        if name.is_some() {
                            return Err(self.err_at(&tok, "duplicate `kernel` directive"));
                        }
                        let t = self.next();
                        name = Some(match &t.kind {
                            Tok::Ident(s) => s.clone(),
                            Tok::Str(s) => s.clone(),
                            other => {
                                return Err(
                                    self.err_at(&t, format!("expected kernel name, found {other}"))
                                )
                            }
                        });
                        self.expect(Tok::Semi)?;
                    }
                    "base" => {
                        self.next();
                        if base.is_some() {
                            return Err(self.err_at(&tok, "duplicate `base` directive"));
                        }
                        let v = self.expect_int("0 or 1")?;
                        if v != 0 && v != 1 {
                            return Err(self.err_at(&tok, "`base` must be 0 or 1"));
                        }
                        base = Some(v);
                        self.expect(Tok::Semi)?;
                    }
                    _ => {
                        let decl = self.declaration(&arrays)?;
                        arrays.push(decl);
                    }
                },
                Tok::Eof => return Err(self.err_at(&tok, "expected a `for` loop nest")),
                other => {
                    return Err(self
                        .err_at(&tok, format!("expected a declaration or `for`, found {other}")))
                }
            }
        }
        Ok((name, base, arrays))
    }

    /// `[rowmajor|colmajor] TYPE NAME [E]... ;` — `TYPE` is `float`,
    /// `double` or `realN`. The layout prefix applies to this
    /// declaration only (the default is always column-major).
    fn declaration(&mut self, arrays: &[ArrayDecl]) -> Result<ArrayDecl, FrontendError> {
        let mut decl_layout = Layout::ColumnMajor;
        let (mut word, mut tok) = self.expect_ident("an element type")?;
        if word == "rowmajor" || word == "colmajor" {
            decl_layout = if word == "rowmajor" { Layout::RowMajor } else { Layout::ColumnMajor };
            (word, tok) = self.expect_ident("an element type")?;
        }
        let elem_size = match word.as_str() {
            "float" => 4,
            "double" => 8,
            w if is_keyword(w) && w.starts_with("real") => w[4..]
                .parse::<i64>()
                .map_err(|_| self.err_at(&tok, format!("element size in `{w}` overflows i64")))?,
            other => {
                return Err(self.err_at(
                    &tok,
                    format!("unknown element type `{other}` (use float, double or realN)"),
                ))
            }
        };
        let (name, name_tok) = self.expect_ident("an array name")?;
        if is_keyword(&name) {
            return Err(self.err_at(&name_tok, format!("`{name}` is a reserved word")));
        }
        if arrays.iter().any(|a| a.name == name) {
            return Err(self.err_at(&name_tok, format!("array `{name}` declared twice")));
        }
        let mut extents = Vec::new();
        while self.peek().kind == Tok::LBracket {
            self.next();
            extents.push(self.expect_int("an array extent")?);
            self.expect(Tok::RBracket)?;
        }
        if extents.is_empty() {
            return Err(
                self.err_at(&name_tok, format!("array `{name}` needs at least one `[extent]`"))
            );
        }
        self.expect(Tok::Semi)?;
        Ok(ArrayDecl { name, extents, elem_size, layout: decl_layout })
    }

    /// One `for (v = lo; v <= hi; v++) {` header. Bounds are affine in
    /// the *outer* loop variables (`loops` so far); a constant expression
    /// folds to a plain constant bound, keeping rectangular nests
    /// byte-identical on the wire. The returned def's affine forms span
    /// only the outer variables — [`finalize_bounds`] widens them to the
    /// final nest depth.
    fn for_header(
        &mut self,
        arrays: &[ArrayDecl],
        loops: &[LoopDef],
    ) -> Result<LoopDef, FrontendError> {
        let (word, tok) = self.expect_ident("`for`")?;
        if word != "for" {
            return Err(self.err_at(&tok, format!("expected `for`, found `{word}`")));
        }
        self.expect(Tok::LParen)?;
        let (var, var_tok) = self.expect_ident("a loop variable")?;
        if is_keyword(&var) {
            return Err(self.err_at(&var_tok, format!("`{var}` is a reserved word")));
        }
        if loops.iter().any(|l| l.name == var) || arrays.iter().any(|a| a.name == var) {
            return Err(self.err_at(&var_tok, format!("name `{var}` is already in use")));
        }
        self.expect(Tok::Assign)?;
        let lo_tok = self.peek().clone();
        let lo_form = self.affine(loops)?;
        self.expect(Tok::Semi)?;
        let (cond_var, cond_tok) = self.expect_ident("the loop variable")?;
        if cond_var != var {
            return Err(self.err_at(
                &cond_tok,
                format!("condition tests `{cond_var}`, loop variable is `{var}`"),
            ));
        }
        let strict = match self.next() {
            t if t.kind == Tok::Le => false,
            t if t.kind == Tok::Lt => true,
            t => return Err(self.err_at(&t, format!("expected `<` or `<=`, found {}", t.kind))),
        };
        let hi_tok = self.peek().clone();
        let mut hi_form = self.affine(loops)?;
        if strict {
            hi_form = hi_form.shift(-1);
        }
        self.expect(Tok::Semi)?;
        let (inc_var, inc_tok) = self.expect_ident("the loop variable")?;
        if inc_var != var {
            return Err(self.err_at(
                &inc_tok,
                format!("increment updates `{inc_var}`, loop variable is `{var}`"),
            ));
        }
        match self.next() {
            t if t.kind == Tok::PlusPlus => {}
            t if t.kind == Tok::PlusEq => {
                let step_tok = self.peek().clone();
                let step = self.expect_int("a step")?;
                if step != 1 {
                    return Err(self.err_at(
                        &step_tok,
                        format!("only unit-stride loops are supported, got step {step}"),
                    ));
                }
            }
            t => return Err(self.err_at(&t, format!("expected `++` or `+= 1`, found {}", t.kind))),
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        // Constant hull of each bound over the outer loops' hull
        // intervals — the IR's canonical hull rule.
        let lo = self.hull_bound(&lo_form, loops, false, &lo_tok)?;
        let hi = self.hull_bound(&hi_form, loops, true, &hi_tok)?;
        Ok(LoopDef::with_affine_bounds(
            var,
            lo,
            hi,
            Some(lo_form).filter(|f| !f.is_constant()),
            Some(hi_form).filter(|f| !f.is_constant()),
        ))
    }

    /// Interval-hull endpoint of a bound form over the outer loops' hull
    /// ranges, in widened arithmetic.
    fn hull_bound(
        &self,
        form: &AffineForm,
        loops: &[LoopDef],
        want_max: bool,
        tok: &Token,
    ) -> Result<i64, FrontendError> {
        let mut acc = form.c0 as i128;
        for (c, l) in form.coeffs.iter().zip(loops) {
            let (a, b) = ((*c as i128) * (l.lo as i128), (*c as i128) * (l.hi as i128));
            acc += if want_max { a.max(b) } else { a.min(b) };
        }
        i64::try_from(acc).map_err(|_| self.err_at(tok, "loop bound overflows i64"))
    }

    /// One `for` header + its block; recurses while the block holds
    /// another `for`, otherwise parses body statements. Enforces perfect
    /// nesting: a block is either one `for` or a statement list.
    fn for_tower(
        &mut self,
        arrays: &[ArrayDecl],
        loops: &mut Vec<LoopDef>,
        refs: &mut Vec<(MemRef, RefSpan)>,
    ) -> Result<(), FrontendError> {
        let def = self.for_header(arrays, loops)?;
        loops.push(def);

        if matches!(&self.peek().kind, Tok::Ident(w) if w == "for") {
            self.for_tower(arrays, loops, refs)?;
        } else {
            while self.peek().kind != Tok::RBrace {
                self.statement(arrays, loops, refs)?;
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(())
    }

    /// One `for` header + a block interleaving statement runs and nested
    /// towers (the imperfect grammar behind [`lower`]). Each maximal
    /// statement run snapshots a perfect sub-nest over the current tower.
    fn imperfect_tower(
        &mut self,
        arrays: &[ArrayDecl],
        loops: &mut Vec<LoopDef>,
        kernel: &str,
        counter: &mut usize,
        out: &mut Vec<LoopNest>,
    ) -> Result<(), FrontendError> {
        let def = self.for_header(arrays, loops)?;
        loops.push(def);
        loop {
            match &self.peek().kind {
                Tok::RBrace => break,
                Tok::Ident(w) if w == "for" => {
                    self.imperfect_tower(arrays, loops, kernel, counter, out)?;
                }
                _ => {
                    let mut refs: Vec<(MemRef, RefSpan)> = Vec::new();
                    loop {
                        match &self.peek().kind {
                            Tok::RBrace => break,
                            Tok::Ident(w) if w == "for" => break,
                            _ => self.statement(arrays, loops, &mut refs)?,
                        }
                    }
                    let mut sub_loops = loops.clone();
                    finalize_bounds(&mut sub_loops);
                    out.push(LoopNest {
                        name: format!("{kernel}__s{counter}"),
                        loops: sub_loops,
                        arrays: arrays.to_vec(),
                        refs: refs.into_iter().map(|(r, _)| r).collect(),
                    });
                    *counter += 1;
                }
            }
        }
        self.expect(Tok::RBrace)?;
        loops.pop();
        Ok(())
    }

    /// One body statement; appends its reference stream to `refs`.
    fn statement(
        &mut self,
        arrays: &[ArrayDecl],
        loops: &[LoopDef],
        refs: &mut Vec<(MemRef, RefSpan)>,
    ) -> Result<(), FrontendError> {
        if matches!(&self.peek().kind, Tok::Ident(w) if w == "load") {
            self.next();
            self.expression(arrays, loops, refs)?;
            self.expect(Tok::Semi)?;
            return Ok(());
        }
        let tok = self.peek().clone();
        let Tok::Ident(_) = &tok.kind else {
            return Err(self.err_at(&tok, format!("expected a statement, found {}", tok.kind)));
        };
        let first = self.reference(arrays, loops)?;
        let assign = match self.peek().kind {
            Tok::Assign => Some(false),
            Tok::PlusEq | Tok::MinusEq | Tok::StarEq | Tok::SlashEq => Some(true),
            _ => None,
        };
        match assign {
            Some(read_modify_write) => {
                let Some((lhs, span)) = first else {
                    return Err(self.err_at(&tok, "cannot assign to a loop variable"));
                };
                self.next();
                if read_modify_write {
                    refs.push((MemRef { access: AccessKind::Read, ..lhs.clone() }, span));
                }
                self.expression(arrays, loops, refs)?;
                refs.push((MemRef { access: AccessKind::Write, ..lhs }, span));
            }
            None => {
                // Expression statement: the parsed prefix is a read,
                // whatever follows adds more reads.
                if let Some(r) = first {
                    refs.push(r);
                }
                self.expression_tail(arrays, loops, refs)?;
            }
        }
        self.expect(Tok::Semi)?;
        Ok(())
    }

    /// `IDENT [aff]...` — an array reference (as a read) with its source
    /// span, or `None` when the identifier is a bare loop variable.
    fn reference(
        &mut self,
        arrays: &[ArrayDecl],
        loops: &[LoopDef],
    ) -> Result<Option<(MemRef, RefSpan)>, FrontendError> {
        let (name, tok) = self.expect_ident("an array reference")?;
        if self.peek().kind != Tok::LBracket {
            if loops.iter().any(|l| l.name == name) {
                return Ok(None); // loop variable used as a value
            }
            return Err(self.err_at(
                &tok,
                format!("`{name}` is not a loop variable and has no subscripts (scalars are not modelled; declare an array)"),
            ));
        }
        let Some(idx) = arrays.iter().position(|a| a.name == name) else {
            return Err(self.err_at(&tok, format!("array `{name}` is not declared")));
        };
        let mut subscripts = Vec::new();
        while self.peek().kind == Tok::LBracket {
            self.next();
            subscripts.push(self.affine(loops)?);
            self.expect(Tok::RBracket)?;
        }
        let span = RefSpan { line: tok.line, col: tok.col };
        Ok(Some((MemRef { array: ArrayId(idx), subscripts, access: AccessKind::Read }, span)))
    }

    /// Body expression: scanned for array references (in textual order —
    /// that *is* the semantics the cache model sees); arithmetic shape is
    /// not interpreted.
    fn expression(
        &mut self,
        arrays: &[ArrayDecl],
        loops: &[LoopDef],
        refs: &mut Vec<(MemRef, RefSpan)>,
    ) -> Result<(), FrontendError> {
        self.unary(arrays, loops, refs)?;
        self.expression_tail(arrays, loops, refs)
    }

    fn expression_tail(
        &mut self,
        arrays: &[ArrayDecl],
        loops: &[LoopDef],
        refs: &mut Vec<(MemRef, RefSpan)>,
    ) -> Result<(), FrontendError> {
        while matches!(self.peek().kind, Tok::Plus | Tok::Minus | Tok::Star | Tok::Slash) {
            self.next();
            self.unary(arrays, loops, refs)?;
        }
        Ok(())
    }

    fn unary(
        &mut self,
        arrays: &[ArrayDecl],
        loops: &[LoopDef],
        refs: &mut Vec<(MemRef, RefSpan)>,
    ) -> Result<(), FrontendError> {
        let tok = self.peek().clone();
        match &tok.kind {
            Tok::Minus => {
                self.next();
                self.unary(arrays, loops, refs)
            }
            Tok::Int(_) => {
                self.next();
                Ok(())
            }
            Tok::LParen => {
                self.next();
                self.expression(arrays, loops, refs)?;
                self.expect(Tok::RParen)?;
                Ok(())
            }
            Tok::Ident(_) => {
                if let Some(r) = self.reference(arrays, loops)? {
                    refs.push(r);
                }
                Ok(())
            }
            other => Err(self.err_at(&tok, format!("expected an operand, found {other}"))),
        }
    }

    /// Affine subscript expression over the loop variables.
    fn affine(&mut self, loops: &[LoopDef]) -> Result<AffineForm, FrontendError> {
        let mut acc = self.affine_term(loops)?;
        loop {
            match self.peek().kind {
                Tok::Plus => {
                    self.next();
                    acc = acc.add(&self.affine_term(loops)?);
                }
                Tok::Minus => {
                    self.next();
                    acc = acc.sub(&self.affine_term(loops)?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn affine_term(&mut self, loops: &[LoopDef]) -> Result<AffineForm, FrontendError> {
        let mut acc = self.affine_factor(loops)?;
        while self.peek().kind == Tok::Star {
            let tok = self.next();
            let rhs = self.affine_factor(loops)?;
            if rhs.is_constant() {
                acc = acc.scale(rhs.c0);
            } else if acc.is_constant() {
                acc = rhs.scale(acc.c0);
            } else {
                return Err(self.err_at(
                    &tok,
                    "non-affine subscript: cannot multiply two loop-variable expressions",
                ));
            }
        }
        Ok(acc)
    }

    fn affine_factor(&mut self, loops: &[LoopDef]) -> Result<AffineForm, FrontendError> {
        let tok = self.next();
        match &tok.kind {
            Tok::Minus => Ok(self.affine_factor(loops)?.scale(-1)),
            Tok::Int(v) => Ok(AffineForm::constant(loops.len(), *v)),
            Tok::LParen => {
                let inner = self.affine(loops)?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Tok::Ident(name) => match loops.iter().position(|l| &l.name == name) {
                Some(v) => Ok(AffineForm::var(loops.len(), v)),
                None => Err(self.err_at(
                    &tok,
                    format!("`{name}` is not a loop variable (subscripts must be affine in the loop variables)"),
                )),
            },
            other => Err(self.err_at(&tok, format!("expected a subscript term, found {other}"))),
        }
    }
}

/// Widen each loop's affine bound forms (parsed over its own outer
/// prefix) to span the full nest depth — the IR invariant. Coefficients
/// at the loop's own level and deeper stay zero.
fn finalize_bounds(loops: &mut [LoopDef]) {
    let depth = loops.len();
    for l in loops {
        for f in [&mut l.lo_aff, &mut l.hi_aff].into_iter().flatten() {
            let mut coeffs = f.coeffs.clone();
            coeffs.resize(depth, 0);
            *f = AffineForm::new(coeffs, f.c0);
        }
    }
}

/// Shift a `base 0;` nest onto the IR's 1-based convention without
/// changing its access pattern: every loop runs `[lo+1, hi+1]` and each
/// subscript is rewritten under the substitution `i ↦ i − 1` plus the
/// 0-based→1-based array shift, i.e. `c0 ↦ c0 − Σ coeffs + 1`. The
/// touched addresses (and therefore the analysis) are identical. Affine
/// loop bounds shift alongside: the bound value itself moves up by one
/// while its arguments (the shifted outer variables) move too, so
/// `c0 ↦ c0 + 1 − Σ coeffs`.
fn rebase_to_one(nest: &mut LoopNest) {
    for l in &mut nest.loops {
        l.lo += 1;
        l.hi += 1;
        for f in [&mut l.lo_aff, &mut l.hi_aff].into_iter().flatten() {
            let coeff_sum: i64 = f.coeffs.iter().sum();
            *f = f.shift(1 - coeff_sum);
        }
    }
    for r in &mut nest.refs {
        for s in &mut r.subscripts {
            let coeff_sum: i64 = s.coeffs.iter().sum();
            *s = s.shift(1 - coeff_sum);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MM8: &str = "
        kernel MM_8;
        real4 a[8][8];
        real4 b[8][8];
        real4 c[8][8];
        base 0;
        for (i = 0; i < 8; i++) {
          for (j = 0; j < 8; j++) {
            for (k = 0; k < 8; k++) {
              a[i][j] += b[i][k] * c[k][j];
            }
          }
        }";

    #[test]
    fn base0_mm_equals_registry_mm() {
        // The C-style source above must produce the registry nest
        // *exactly* — same loop bounds, same affine forms, same ref
        // stream — so inline outcomes can be byte-identical to named ones.
        let parsed = parse(MM8).unwrap();
        let registry = cme_kernels::kernel_by_name("MM").unwrap();
        assert_eq!(parsed, (registry.build)(8));
    }

    #[test]
    fn compound_assignment_reads_lhs_first() {
        let n = parse("real4 x[4]; for (i = 1; i <= 4; i++) { x[i] *= 2; }").unwrap();
        assert_eq!(n.refs.len(), 2);
        assert_eq!(n.refs[0].access, AccessKind::Read);
        assert_eq!(n.refs[1].access, AccessKind::Write);
        assert_eq!(n.refs[0].subscripts, n.refs[1].subscripts);
    }

    #[test]
    fn load_and_expression_statements_read_only() {
        let n = parse(
            "real4 x[4]; real8 y[4];
             for (i = 1; i <= 4; i++) { load x[i] + y[i]; x[i]; }",
        )
        .unwrap();
        assert_eq!(n.refs.len(), 3);
        assert!(n.refs.iter().all(|r| r.access == AccessKind::Read));
        assert_eq!(n.arrays[1].elem_size, 8);
    }

    #[test]
    fn affine_subscripts_parse() {
        let n = parse(
            "real4 cc[19];
             for (j = 1; j <= 9; j++) { cc[2*j - 1] = cc[19 - 2*j] + j; }",
        )
        .unwrap();
        assert_eq!(n.refs[0].subscripts[0], AffineForm::new(vec![-2], 19));
        assert_eq!(n.refs[1].subscripts[0], AffineForm::new(vec![2], -1));
    }

    #[test]
    fn triangular_bounds_parse() {
        let n = parse(
            "kernel tri;
             real4 a[9][9];
             for (i = 1; i <= 9; i++) {
               for (j = 1; j <= i; j++) { a[i][j] = 0; }
             }",
        )
        .unwrap();
        assert!(n.loops[0].is_rectangular());
        assert_eq!(n.loops[1].hi_aff, Some(AffineForm::new(vec![1, 0], 0)));
        assert_eq!((n.loops[1].lo, n.loops[1].hi), (1, 9), "hull of i over [1,9]");
        assert_eq!(n.iterations(), 45);
    }

    #[test]
    fn triangular_lower_bounds_parse() {
        // j from i to 6: upper-triangle walk via an affine *lower* bound.
        let n = parse(
            "real4 a[6][6];
             for (i = 1; i <= 6; i++) {
               for (j = i; j <= 6; j++) { a[i][j] = 0; }
             }",
        )
        .unwrap();
        assert_eq!(n.loops[1].lo_aff, Some(AffineForm::new(vec![1, 0], 0)));
        assert_eq!((n.loops[1].lo, n.loops[1].hi), (1, 6));
        assert_eq!(n.iterations(), 21);
    }

    #[test]
    fn strict_and_base0_triangular_bounds_rebase() {
        // C-style strict triangle: i in 0..8, j in 0..i. Rebasing to the
        // 1-based convention must rewrite the affine bound alongside the
        // hulls: j' <= i' - 1.
        let n = parse(
            "real4 a[8][8];
             base 0;
             for (i = 0; i < 8; i++) {
               for (j = 0; j < i; j++) { a[i][j] = 0; }
             }",
        )
        .unwrap();
        assert_eq!((n.loops[0].lo, n.loops[0].hi), (1, 8));
        assert_eq!(n.loops[1].hi_aff, Some(AffineForm::new(vec![1, 0], -1)));
        assert_eq!((n.loops[1].lo, n.loops[1].hi), (1, 7));
        assert_eq!(n.iterations(), 28); // sum over i' of (i' - 1)
    }

    #[test]
    fn affine_bound_referencing_the_loop_itself_is_rejected() {
        // `i` is not an *outer* variable of its own loop header.
        let e = parse("real4 a[4]; for (i = 1; i <= i; i++) { a[i] = 0; }").unwrap_err();
        assert!(matches!(e, FrontendError::Parse { .. }), "{e}");
    }

    #[test]
    fn lowering_splits_statement_runs_in_textual_order() {
        let subs = lower(
            "kernel imp;
             real4 x[4];
             real4 a[4][4];
             for (i = 1; i <= 4; i++) {
               x[i] = 0;
               for (j = 1; j <= i; j++) { a[i][j] = x[i]; }
               load x[i];
             }",
        )
        .unwrap();
        assert_eq!(subs.len(), 3);
        assert_eq!(
            subs.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["imp__s0", "imp__s1", "imp__s2"]
        );
        assert_eq!(subs.iter().map(LoopNest::depth).collect::<Vec<_>>(), [1, 2, 1]);
        // Sub-nests share one array table, so ids and layouts agree.
        assert_eq!(subs[0].arrays, subs[1].arrays);
        assert_eq!(subs[0].arrays, subs[2].arrays);
        // The triangular inner tower keeps its exact affine bound.
        assert_eq!(subs[1].loops[1].hi_aff, Some(AffineForm::new(vec![1, 0], 0)));
        assert_eq!(subs[1].iterations(), 10);
        // Each sub-nest is perfect: it renders and round-trips.
        for s in &subs {
            let src = crate::render(s).unwrap();
            assert_eq!(&parse(&src).unwrap(), s, "{src}");
        }
    }

    #[test]
    fn lowering_allows_sibling_towers_and_name_reuse() {
        let subs = lower(
            "real4 x[4]; real4 y[4];
             for (i = 1; i <= 4; i++) {
               for (j = 1; j <= 4; j++) { x[j] = 0; }
               for (j = 1; j <= 4; j++) { y[j] = 0; }
             }",
        )
        .unwrap();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].name, "inline__s0");
        assert_eq!(subs[1].name, "inline__s1");
        assert_eq!(subs[0].loops[1].name, "j");
        assert_eq!(subs[1].loops[1].name, "j");
    }

    #[test]
    fn lowering_handles_base0_and_top_level_siblings() {
        let subs = lower(
            "real4 x[8];
             base 0;
             for (i = 0; i < 8; i++) { x[i] = 0; }
             for (i = 0; i < 4; i++) { load x[i]; }",
        )
        .unwrap();
        assert_eq!(subs.len(), 2);
        assert_eq!((subs[0].loops[0].lo, subs[0].loops[0].hi), (1, 8));
        assert_eq!((subs[1].loops[0].lo, subs[1].loops[0].hi), (1, 4));
    }

    #[test]
    fn imperfect_nesting_is_rejected() {
        let e = parse(
            "real4 x[9];
             for (i = 1; i <= 3; i++) {
               x[i] = 0;
               for (j = 1; j <= 3; j++) { x[j] = 0; }
             }",
        )
        .unwrap_err();
        // The statement list may not be followed by a `for`: the inner
        // header's `(` trips the statement parser.
        assert!(matches!(e, FrontendError::Parse { .. }), "{e}");
    }

    #[test]
    fn spans_align_with_the_reference_stream() {
        let (nest, spans) = parse_with_spans(MM8).unwrap();
        assert_eq!(spans.len(), nest.refs.len());
        // Ref stream for `a[i][j] += b[i][k] * c[k][j]`: read a, read b,
        // read c, write a — the write's span is the *lhs* occurrence.
        assert_eq!(nest.refs.len(), 4);
        let stmt_line = spans[0].line;
        assert!(spans.iter().all(|s| s.line == stmt_line), "one statement, one line: {spans:?}");
        assert_eq!(spans[0], spans[3], "read-modify-write shares the lhs span");
        assert!(spans[0].col < spans[1].col && spans[1].col < spans[2].col, "{spans:?}");
    }

    #[test]
    fn semantic_errors_carry_ref_indices() {
        let e = parse("real4 x[4]; for (i = 1; i <= 5; i++) { x[i] = 1; }").unwrap_err();
        match e {
            FrontendError::Invalid(inner) => {
                assert!(inner.to_string().starts_with("ref 0 (`x`)"), "{inner}");
            }
            other => panic!("expected Invalid, got {other}"),
        }
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let e = parse("real4 x[4]\nfor (i = 1; i <= 4; i++) { x[i] = 1; }").unwrap_err();
        match e {
            FrontendError::Parse { line, .. } => {
                assert_eq!(line, 2, "missing `;` flagged at the next token")
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn reserved_and_duplicate_names_are_rejected() {
        assert!(parse("real4 load[4]; for (i = 1; i <= 4; i++) {}").is_err());
        assert!(parse("real4 x[4]; real8 x[4]; for (i = 1; i <= 4; i++) {}").is_err());
        assert!(parse("real4 x[4]; for (x = 1; x <= 4; x++) {}").is_err());
        assert!(parse("for (i = 1; i <= 2; i++) { for (i = 1; i <= 2; i++) {} }").is_err());
    }
}
