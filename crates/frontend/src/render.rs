//! Lossless rendering: [`LoopNest`] → canonical kernel source.

use crate::{is_bare_name, FrontendError};
use cme_loopnest::{AccessKind, Layout, LoopNest, MemRef};
use cme_polyhedra::AffineForm;

/// Render a nest as canonical kernel source such that
/// [`crate::parse`]`(render(n)) == n` — the serializer half of the
/// textual format.
///
/// The canonical form is always 1-based (no `base` directive) and uses
/// only `=`-assignments and `load` statements: the reference stream is
/// split at each write, so `[read a, read b, write c]` becomes
/// `c[…] = a[…] + b[…];`. Fails with [`FrontendError::Render`] when the
/// nest cannot round-trip: invalid nests, empty loop towers, or loop /
/// array names that are not distinct bare identifiers.
pub fn render(nest: &LoopNest) -> Result<String, FrontendError> {
    nest.validate().map_err(FrontendError::Invalid)?;
    if nest.loops.is_empty() {
        return Err(FrontendError::Render("the loop tower is empty".into()));
    }
    let mut names: Vec<&str> = Vec::new();
    for l in &nest.loops {
        names.push(&l.name);
    }
    for a in &nest.arrays {
        names.push(&a.name);
    }
    for (k, name) in names.iter().enumerate() {
        if !is_bare_name(name) {
            return Err(FrontendError::Render(format!(
                "`{name}` is not a bare identifier (loop and array names must be)"
            )));
        }
        if names[..k].contains(name) {
            return Err(FrontendError::Render(format!(
                "name `{name}` is used by more than one loop/array"
            )));
        }
    }

    let mut out = String::new();
    if is_bare_name(&nest.name) {
        out.push_str(&format!("kernel {};\n", nest.name));
    } else {
        let escaped = nest.name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!("kernel \"{escaped}\";\n"));
    }
    for a in &nest.arrays {
        let prefix = match a.layout {
            Layout::ColumnMajor => "",
            Layout::RowMajor => "rowmajor ",
        };
        let extents: String = a.extents.iter().map(|e| format!("[{e}]")).collect();
        out.push_str(&format!("{prefix}real{} {}{extents};\n", a.elem_size, a.name));
    }
    for (d, l) in nest.loops.iter().enumerate() {
        let lo = match &l.lo_aff {
            Some(f) => affine_text(nest, f),
            None => l.lo.to_string(),
        };
        let hi = match &l.hi_aff {
            Some(f) => affine_text(nest, f),
            None => l.hi.to_string(),
        };
        out.push_str(&"  ".repeat(d));
        out.push_str(&format!("for ({v} = {lo}; {v} <= {hi}; {v}++) {{\n", v = l.name));
    }
    let body_indent = "  ".repeat(nest.depth());
    for stmt in partition(&nest.refs) {
        out.push_str(&body_indent);
        let reads: Vec<String> = stmt.reads.iter().map(|r| ref_text(nest, r)).collect();
        match stmt.write {
            Some(w) => {
                let rhs = if reads.is_empty() { "0".to_string() } else { reads.join(" + ") };
                out.push_str(&format!("{} = {rhs};\n", ref_text(nest, w)));
            }
            None => out.push_str(&format!("load {};\n", reads.join(" + "))),
        }
    }
    for d in (0..nest.depth()).rev() {
        out.push_str(&"  ".repeat(d));
        out.push_str("}\n");
    }
    Ok(out)
}

/// A renderable statement: the reads preceding a write (or the trailing
/// reads of the stream, as one `load`).
struct Stmt<'a> {
    reads: Vec<&'a MemRef>,
    write: Option<&'a MemRef>,
}

/// Split the reference stream at each write. Re-parsing the statements
/// replays the exact stream: reads left-to-right, then the write.
fn partition(refs: &[MemRef]) -> Vec<Stmt<'_>> {
    let mut stmts = Vec::new();
    let mut reads = Vec::new();
    for r in refs {
        match r.access {
            AccessKind::Read => reads.push(r),
            AccessKind::Write => {
                stmts.push(Stmt { reads: std::mem::take(&mut reads), write: Some(r) });
            }
        }
    }
    if !reads.is_empty() {
        stmts.push(Stmt { reads, write: None });
    }
    stmts
}

fn ref_text(nest: &LoopNest, r: &MemRef) -> String {
    let subs: String = r.subscripts.iter().map(|s| format!("[{}]", affine_text(nest, s))).collect();
    format!("{}{subs}", nest.array(r.array).name)
}

/// `2*i - j + 3` — the affine form over the nest's loop-variable names.
fn affine_text(nest: &LoopNest, form: &AffineForm) -> String {
    let mut s = String::new();
    for (t, &c) in form.coeffs.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let var = &nest.loops[t].name;
        let magnitude = c.unsigned_abs();
        let term = if magnitude == 1 { var.clone() } else { format!("{magnitude}*{var}") };
        if s.is_empty() {
            if c < 0 {
                s.push('-');
            }
            s.push_str(&term);
        } else {
            s.push_str(if c < 0 { " - " } else { " + " });
            s.push_str(&term);
        }
    }
    if s.is_empty() {
        return form.c0.to_string();
    }
    if form.c0 != 0 {
        s.push_str(if form.c0 < 0 { " - " } else { " + " });
        s.push_str(&form.c0.unsigned_abs().to_string());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn registry_kernels_round_trip() {
        // Every Table 1 kernel must survive render → parse unchanged:
        // the textual format can express the whole registry.
        for spec in cme_kernels::all_kernels() {
            let nest = (spec.build)(spec.default_size.clamp(8, 20));
            let src = render(&nest).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let back = parse(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", spec.name));
            assert_eq!(back, nest, "{}:\n{src}", spec.name);
        }
    }

    #[test]
    fn triangular_bounds_render_and_round_trip() {
        let src = "real4 a[7][7];
             for (i = 1; i <= 7; i++) {
               for (j = i; j <= 7; j++) {
                 for (k = 1; k <= j - i + 1; k++) { a[j][k] = a[i][k]; }
               }
             }";
        let n = parse(src).unwrap();
        assert!(!n.is_rectangular());
        let canon = render(&n).unwrap();
        assert!(canon.contains("for (j = i; j <= 7; j++)"), "{canon}");
        assert!(canon.contains("for (k = 1; k <= -i + j + 1; k++)"), "{canon}");
        assert_eq!(parse(&canon).unwrap(), n);
    }

    #[test]
    fn write_only_and_trailing_reads_render() {
        let n = parse(
            "real4 x[4]; real4 y[4];
             for (i = 1; i <= 4; i++) { x[i] = 0; load y[i]; }",
        )
        .unwrap();
        let src = render(&n).unwrap();
        assert!(src.contains("x[i] = 0;"));
        assert!(src.contains("load y[i];"));
        assert_eq!(parse(&src).unwrap(), n);
    }

    #[test]
    fn quoted_kernel_names_round_trip() {
        let mut n = parse("real4 x[4]; for (i = 1; i <= 4; i++) { x[i] = 0; }").unwrap();
        n.name = "odd name \"x\\y\"".to_string();
        let src = render(&n).unwrap();
        assert_eq!(parse(&src).unwrap(), n);
    }

    #[test]
    fn unrenderable_nests_are_refused() {
        let mut n = parse("real4 x[4]; for (i = 1; i <= 4; i++) { x[i] = 0; }").unwrap();
        n.arrays[0].name = "weird name".to_string();
        assert!(matches!(render(&n), Err(FrontendError::Render(_))));
    }
}
