//! Tokeniser for the kernel source format.

use crate::FrontendError;

/// Token kinds. Multi-character operators are lexed greedily, so `<=` is
/// one token and `i++` is `Ident` + `PlusPlus`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    PlusPlus,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    Lt,
    Le,
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::PlusPlus => write!(f, "`++`"),
            Tok::PlusEq => write!(f, "`+=`"),
            Tok::MinusEq => write!(f, "`-=`"),
            Tok::StarEq => write!(f, "`*=`"),
            Tok::SlashEq => write!(f, "`/=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its 1-based source position.
#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub kind: Tok,
    pub line: usize,
    pub col: usize,
}

fn err(line: usize, col: usize, msg: impl Into<String>) -> FrontendError {
    FrontendError::Parse { line, col, msg: msg.into() }
}

/// Tokenise the whole input (ends with one `Eof` token).
pub(crate) fn lex(src: &str) -> Result<Vec<Token>, FrontendError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let (mut line, mut col) = (1usize, 1usize);
    let n = chars.len();
    while i < n {
        let (l, c) = (line, col);
        let ch = chars[i];
        let advance = |i: &mut usize, line: &mut usize, col: &mut usize| {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };
        if ch.is_whitespace() {
            advance(&mut i, &mut line, &mut col);
            continue;
        }
        // Comments.
        if ch == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                advance(&mut i, &mut line, &mut col);
            }
            continue;
        }
        if ch == '/' && i + 1 < n && chars[i + 1] == '*' {
            advance(&mut i, &mut line, &mut col);
            advance(&mut i, &mut line, &mut col);
            loop {
                if i + 1 >= n {
                    return Err(err(l, c, "unterminated block comment"));
                }
                if chars[i] == '*' && chars[i + 1] == '/' {
                    advance(&mut i, &mut line, &mut col);
                    advance(&mut i, &mut line, &mut col);
                    break;
                }
                advance(&mut i, &mut line, &mut col);
            }
            continue;
        }
        if ch == '_' || ch.is_ascii_alphabetic() {
            let mut s = String::new();
            while i < n && (chars[i] == '_' || chars[i].is_ascii_alphanumeric()) {
                s.push(chars[i]);
                advance(&mut i, &mut line, &mut col);
            }
            out.push(Token { kind: Tok::Ident(s), line: l, col: c });
            continue;
        }
        if ch.is_ascii_digit() {
            let mut s = String::new();
            while i < n && chars[i].is_ascii_digit() {
                s.push(chars[i]);
                advance(&mut i, &mut line, &mut col);
            }
            let v: i64 =
                s.parse().map_err(|_| err(l, c, format!("integer `{s}` overflows i64")))?;
            out.push(Token { kind: Tok::Int(v), line: l, col: c });
            continue;
        }
        if ch == '"' {
            advance(&mut i, &mut line, &mut col);
            let mut s = String::new();
            loop {
                if i >= n {
                    return Err(err(l, c, "unterminated string"));
                }
                match chars[i] {
                    '"' => {
                        advance(&mut i, &mut line, &mut col);
                        break;
                    }
                    '\\' => {
                        advance(&mut i, &mut line, &mut col);
                        if i >= n {
                            return Err(err(l, c, "unterminated string"));
                        }
                        match chars[i] {
                            '"' => s.push('"'),
                            '\\' => s.push('\\'),
                            other => {
                                return Err(err(
                                    line,
                                    col,
                                    format!("unsupported escape `\\{other}`"),
                                ))
                            }
                        }
                        advance(&mut i, &mut line, &mut col);
                    }
                    other => {
                        s.push(other);
                        advance(&mut i, &mut line, &mut col);
                    }
                }
            }
            out.push(Token { kind: Tok::Str(s), line: l, col: c });
            continue;
        }
        let two = if i + 1 < n { Some(chars[i + 1]) } else { None };
        let (kind, width) = match (ch, two) {
            ('+', Some('+')) => (Tok::PlusPlus, 2),
            ('+', Some('=')) => (Tok::PlusEq, 2),
            ('-', Some('=')) => (Tok::MinusEq, 2),
            ('*', Some('=')) => (Tok::StarEq, 2),
            ('/', Some('=')) => (Tok::SlashEq, 2),
            ('<', Some('=')) => (Tok::Le, 2),
            ('(', _) => (Tok::LParen, 1),
            (')', _) => (Tok::RParen, 1),
            ('{', _) => (Tok::LBrace, 1),
            ('}', _) => (Tok::RBrace, 1),
            ('[', _) => (Tok::LBracket, 1),
            (']', _) => (Tok::RBracket, 1),
            (';', _) => (Tok::Semi, 1),
            ('=', _) => (Tok::Assign, 1),
            ('+', _) => (Tok::Plus, 1),
            ('-', _) => (Tok::Minus, 1),
            ('*', _) => (Tok::Star, 1),
            ('/', _) => (Tok::Slash, 1),
            ('<', _) => (Tok::Lt, 1),
            (other, _) => return Err(err(l, c, format!("unexpected character `{other}`"))),
        };
        for _ in 0..width {
            advance(&mut i, &mut line, &mut col);
        }
        out.push(Token { kind, line: l, col: c });
    }
    out.push(Token { kind: Tok::Eof, line, col });
    Ok(out)
}
